//! Bug hunt: short fuzzing campaigns against all three simulated
//! compilers with every seeded bug enabled — a miniature version of the
//! paper's seven-month bug-finding study (§5.4, Table 3).
//!
//! Run with: `cargo run --release --example bug_hunt [seconds-per-compiler]`

use std::time::Duration;

use nnsmith::compilers::{ortsim, registry, trtsim, tvmsim, System};
use nnsmith::difftest::{run_campaign, CampaignConfig};
use nnsmith::{NnSmith, NnSmithConfig};

fn main() {
    let secs: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    let all_bugs = registry();
    println!(
        "Hunting {} seeded bugs ({} crash / {} semantic) for {secs}s per compiler…\n",
        all_bugs.len(),
        all_bugs
            .iter()
            .filter(|b| b.symptom == nnsmith::compilers::Symptom::Crash)
            .count(),
        all_bugs
            .iter()
            .filter(|b| b.symptom == nnsmith::compilers::Symptom::Semantic)
            .count(),
    );

    let mut total_found = std::collections::BTreeSet::new();
    for (compiler, seed) in [(tvmsim(), 1u64), (ortsim(), 2), (trtsim(), 3)] {
        let mut fuzzer = NnSmith::new(NnSmithConfig {
            seed,
            ..NnSmithConfig::default()
        });
        let result = run_campaign(
            &compiler,
            &mut fuzzer,
            &CampaignConfig {
                duration: Duration::from_secs(secs),
                ..CampaignConfig::default()
            },
        );
        println!(
            "{:>8}: {} cases, {} branches covered, {} unique crashes, {} mismatches",
            result.compiler,
            result.cases,
            result.total_coverage(),
            result.unique_crashes.len(),
            result.mismatches,
        );
        for id in &result.bugs_found {
            let descr = all_bugs
                .iter()
                .find(|b| b.id == id.as_str())
                .map(|b| b.description)
                .unwrap_or("?");
            println!("          found {id}: {descr}");
        }
        total_found.extend(result.bugs_found);
    }

    let exporter_found: Vec<_> = total_found
        .iter()
        .filter(|id| {
            all_bugs
                .iter()
                .any(|b| b.id == id.as_str() && b.system == System::Exporter)
        })
        .collect();
    println!(
        "\nTotal distinct seeded bugs found: {} / {} (of which {} exporter by-products)",
        total_found.len(),
        all_bugs.len(),
        exporter_found.len(),
    );
}
