//! Quickstart: generate one valid model, find numerically-valid inputs,
//! and differentially test it against a simulated compiler.
//!
//! Run with: `cargo run --release --example quickstart`

use nnsmith::compilers::{tvmsim, CompileOptions, CoverageSet};
use nnsmith::difftest::{run_case, TestCaseSource, Tolerance};
use nnsmith::{NnSmith, NnSmithConfig};

fn main() {
    // The full pipeline of Figure 3: constraint-guided graph generation
    // (Algorithms 1–2) plus gradient-guided value search (Algorithm 3).
    let mut fuzzer = NnSmith::new(NnSmithConfig {
        seed: 2023,
        ..NnSmithConfig::default()
    });

    let case = fuzzer.next_case().expect("a numerically-valid test case");
    println!(
        "Generated model ({} operators):",
        case.graph.operators().len()
    );
    println!("{}", case.graph.to_text());
    println!();

    // The reference execution is NaN/Inf-free by construction.
    let exec =
        nnsmith::ops::execute(&case.graph, &case.all_bindings()).expect("reference execution");
    assert!(!exec.has_exceptional());
    println!(
        "Reference outputs: {}",
        exec.outputs
            .iter()
            .map(|(v, t)| format!("%{} = {t}", v.node))
            .collect::<Vec<_>>()
            .join("; ")
    );

    // Differential testing against the TVM-like simulated compiler.
    let compiler = tvmsim();
    let mut cov = CoverageSet::new();
    let outcome = run_case(
        &compiler,
        &case,
        &CompileOptions::default(),
        Tolerance::default(),
        &mut cov,
    );
    println!();
    println!("Differential-test outcome vs tvmsim: {outcome:?}");
    println!(
        "Branch coverage from this one test case: {} / {} branches",
        cov.len(),
        compiler.manifest().total_branches()
    );
}
