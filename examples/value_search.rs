//! Gradient-guided value search on the Listing-1 `M3` pattern:
//! `Pow(Conv2d(Conv2d(x)), big_exponent)` explodes to Inf under random
//! values — and then the semantic bug hiding in the convolutions can
//! never be observed (§2.3 challenge 3). Algorithm 3 finds inputs that
//! keep every intermediate finite.
//!
//! Run with: `cargo run --release --example value_search`

use std::time::Duration;

use nnsmith::graph::{Graph, NodeKind, TensorType, ValueRef};
use nnsmith::ops::{execute, random_bindings, BinaryKind, Op};
use nnsmith::search::{nan_rate, search_values, SearchConfig, SearchMethod};
use nnsmith::solver::IntExpr;
use nnsmith::tensor::DType;
use rand::SeedableRng;

fn m3_model() -> Graph<Op> {
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(
        NodeKind::Input,
        vec![],
        vec![TensorType::concrete(DType::F32, &[1, 2, 8, 8])],
    );
    let mut cur = ValueRef::output0(x);
    // Two stacked convolutions (where the hypothetical bug lives).
    for i in 0..2 {
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[2, 2, 3, 3])],
        );
        let b = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        let out_hw = 8 - 2 * (i as i64 + 1);
        let conv = g.add_node(
            NodeKind::Operator(Op::Conv2d {
                in_channels: IntExpr::Const(2),
                out_channels: IntExpr::Const(2),
                kh: IntExpr::Const(3),
                kw: IntExpr::Const(3),
                stride: IntExpr::Const(1),
                padding: IntExpr::Const(0),
                dilation: IntExpr::Const(1),
            }),
            vec![cur, ValueRef::output0(w), ValueRef::output0(b)],
            vec![TensorType::concrete(DType::F32, &[1, 2, out_hw, out_hw])],
        );
        cur = ValueRef::output0(conv);
    }
    // Pow(Y, big) — the vulnerable operator that hides the bug under Inf.
    let exponent = g.add_node(
        NodeKind::Weight,
        vec![],
        vec![TensorType::concrete(DType::F32, &[])],
    );
    g.add_node(
        NodeKind::Operator(Op::Binary(BinaryKind::Pow)),
        vec![cur, ValueRef::output0(exponent)],
        vec![TensorType::concrete(DType::F32, &[1, 2, 4, 4])],
    );
    g
}

fn main() {
    let g = m3_model();
    println!("{}\n", g.to_text());

    // How often does naive random initialization blow up? (The §3.3
    // statistic: 56.8% of 20-node models with PyTorch's default init.)
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let rate = nan_rate(&g, 300, -5.0, 5.0, &mut rng);
    println!("NaN/Inf rate under random values: {:.1}%", rate * 100.0);

    for (label, method) in [
        ("Sampling", SearchMethod::Sampling),
        ("Gradient", SearchMethod::Gradient),
        ("Gradient+Proxy", SearchMethod::GradientProxy),
    ] {
        let mut srng = rand::rngs::StdRng::seed_from_u64(7);
        let outcome = search_values(
            &g,
            &SearchConfig {
                method,
                budget: Duration::from_millis(500),
                init_lo: -5.0,
                init_hi: 5.0,
                ..SearchConfig::default()
            },
            &mut srng,
        );
        match &outcome.bindings {
            Some(b) => {
                let exec = execute(&g, b).expect("run");
                assert!(!exec.has_exceptional());
                println!(
                    "{label:>15}: SUCCESS after {} iterations ({} µs) — outputs finite",
                    outcome.iterations,
                    outcome.elapsed.as_micros()
                );
            }
            None => println!(
                "{label:>15}: failed within budget ({} iterations)",
                outcome.iterations
            ),
        }
    }

    // Show a concrete failing-then-fixed trace.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let naive = random_bindings(&g, -5.0, 5.0, &mut rng).expect("bindings");
    let naive_exec = execute(&g, &naive).expect("run");
    println!(
        "\nnaive random values → exceptional at node: {:?}",
        naive_exec.first_exceptional
    );
}
