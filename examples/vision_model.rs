//! Hand-built vision model: the paper's Figure-1 graph, constructed with
//! the public API, executed on the reference backend, then compiled at O0
//! and O2 by every simulated compiler and cross-checked.
//!
//! ```text
//! def main(%x0, %x1) {
//!   %v0 = Conv2d(%x0, %w0)      : (1,2,62,62)
//!   %v1 = Add(%v0, %x1)         : (1,2,62,62)
//!   %v2 = Reshape(%v1, [62,62,2])
//!   return %v2
//! }
//! ```
//!
//! Run with: `cargo run --release --example vision_model`

use std::collections::HashMap;

use nnsmith::compilers::{
    ortsim, trtsim, tvmsim, BugConfig, CompileOptions, CoverageSet, OptLevel,
};
use nnsmith::graph::{Graph, NodeKind, TensorType, ValueRef};
use nnsmith::ops::{BinaryKind, Op};
use nnsmith::solver::IntExpr;
use nnsmith::tensor::{DType, Tensor};

fn main() {
    // --- Build Figure 1 -----------------------------------------------------
    let mut g: Graph<Op> = Graph::new();
    let x0 = g.add_node(
        NodeKind::Input,
        vec![],
        vec![TensorType::concrete(DType::F32, &[1, 3, 64, 64])],
    );
    let w0 = g.add_node(
        NodeKind::Weight,
        vec![],
        vec![TensorType::concrete(DType::F32, &[2, 3, 3, 3])],
    );
    let b0 = g.add_node(
        NodeKind::Weight,
        vec![],
        vec![TensorType::concrete(DType::F32, &[2])],
    );
    let conv = g.add_node(
        NodeKind::Operator(Op::Conv2d {
            in_channels: IntExpr::Const(3),
            out_channels: IntExpr::Const(2),
            kh: IntExpr::Const(3),
            kw: IntExpr::Const(3),
            stride: IntExpr::Const(1),
            padding: IntExpr::Const(0),
            dilation: IntExpr::Const(1),
        }),
        vec![
            ValueRef::output0(x0),
            ValueRef::output0(w0),
            ValueRef::output0(b0),
        ],
        vec![TensorType::concrete(DType::F32, &[1, 2, 62, 62])],
    );
    let x1 = g.add_node(
        NodeKind::Input,
        vec![],
        vec![TensorType::concrete(DType::F32, &[1, 2, 62, 62])],
    );
    let add = g.add_node(
        NodeKind::Operator(Op::Binary(BinaryKind::Add)),
        vec![ValueRef::output0(conv), ValueRef::output0(x1)],
        vec![TensorType::concrete(DType::F32, &[1, 2, 62, 62])],
    );
    g.add_node(
        NodeKind::Operator(Op::Reshape {
            dims: vec![IntExpr::Const(62), IntExpr::Const(62), IntExpr::Const(2)],
        }),
        vec![ValueRef::output0(add)],
        vec![TensorType::concrete(DType::F32, &[62, 62, 2])],
    );
    println!("{}\n", g.to_text());

    // --- Bind data -----------------------------------------------------------
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut weights = nnsmith::ops::Bindings::new();
    weights.insert(
        w0,
        Tensor::uniform(&[2, 3, 3, 3], DType::F32, -0.2, 0.2, &mut rng),
    );
    weights.insert(b0, Tensor::uniform(&[2], DType::F32, -0.1, 0.1, &mut rng));
    let mut inputs = HashMap::new();
    inputs.insert(
        x0,
        Tensor::uniform(&[1, 3, 64, 64], DType::F32, -1.0, 1.0, &mut rng),
    );
    inputs.insert(
        x1,
        Tensor::uniform(&[1, 2, 62, 62], DType::F32, -1.0, 1.0, &mut rng),
    );

    // --- Reference execution -------------------------------------------------
    let mut all = weights.clone();
    all.extend(inputs.iter().map(|(k, v)| (*k, v.clone())));
    let reference = nnsmith::ops::execute(&g, &all).expect("reference run");
    let ref_out = &reference.outputs[0].1;
    println!("reference output: {ref_out}");

    // --- Compile everywhere, O0 and O2, bugs disabled ------------------------
    for compiler in [tvmsim(), ortsim(), trtsim()] {
        for opt in [OptLevel::O0, OptLevel::O2] {
            let mut cov = CoverageSet::new();
            let options = CompileOptions {
                opt_level: opt,
                bugs: BugConfig::none(),
            };
            let compiled = compiler
                .compile(&g, &weights, &options, &mut cov)
                .expect("clean compile");
            let out = compiled.run(&inputs).expect("run");
            let diff = ref_out.max_abs_diff(&out[0]).expect("same shape");
            println!(
                "{:>7} {:?}: max |Δ| vs reference = {diff:.3e} ({} branches)",
                compiled.system.name(),
                opt,
                cov.len()
            );
            assert!(diff < 1e-4, "clean compilers must agree");
        }
    }
    println!("\nAll compilers agree with the reference on Figure 1. ✔");
}
