//! The observability layer's determinism contract, end-to-end: for a
//! case-budgeted triaged engine run, the phase profile's deterministic
//! view and the structured event log (minus each event's `t_ms` wall
//! stamp) must be byte-identical for workers=1 and workers=4.
//!
//! (The `bench report` half of the contract — identical artifacts render
//! an identical dashboard — is pinned by `nnsmith-bench`'s report module
//! tests.)

use std::time::Duration;

use nnsmith::compilers::BackendSet;
use nnsmith::difftest::{CampaignConfig, EngineConfig, ShardCtx, TestCase, TestCaseSource};
use nnsmith::graph::{Graph, NodeId, NodeKind, TensorType, ValueRef};
use nnsmith::obs::deterministic_event_lines;
use nnsmith::ops::{Bindings, Op, UnaryKind};
use nnsmith::tensor::{DType, ReduceKind, Tensor};
use nnsmith::triage::{run_matrix_triaged_engine, TriageConfig};

/// A deterministic source cycling through three behaviours: a clean tanh
/// case, a tvm-importer crasher (tvm-conv-5), and a mis-exporting
/// Log2-of-scalar case (exp-1) whose surviving backend mismatches and
/// pays an O0 localization.
struct MixedSource {
    emitted: usize,
    budget: usize,
}

impl TestCaseSource for MixedSource {
    fn name(&self) -> &str {
        "mixed"
    }

    fn next_case(&mut self) -> Option<TestCase> {
        if self.emitted >= self.budget {
            return None;
        }
        self.emitted += 1;
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        match self.emitted % 3 {
            0 => {
                // Clean: passes everywhere (exercises import init+reuse).
                g.add_node(
                    NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
                    vec![ValueRef::output0(x)],
                    vec![TensorType::concrete(DType::F32, &[4])],
                );
            }
            1 => {
                // tvmsim importer crash (tvm-conv-5); ort/trt pass.
                g.add_node(
                    NodeKind::Operator(Op::ArgExtreme {
                        largest: true,
                        axis: 0,
                        keepdims: false,
                    }),
                    vec![ValueRef::output0(x)],
                    vec![TensorType::concrete(DType::I64, &[])],
                );
            }
            _ => {
                // exp-1: Log2 of a scalar mis-exports, producing result
                // mismatches that drive the shared O0 localization.
                let sum = g.add_node(
                    NodeKind::Operator(Op::Reduce {
                        kind: ReduceKind::Sum,
                        axes: vec![0],
                        keepdims: false,
                    }),
                    vec![ValueRef::output0(x)],
                    vec![TensorType::concrete(DType::F32, &[])],
                );
                g.add_node(
                    NodeKind::Operator(Op::Unary(UnaryKind::Log2)),
                    vec![ValueRef::output0(sum)],
                    vec![TensorType::concrete(DType::F32, &[])],
                );
            }
        }
        let mut b = Bindings::new();
        b.insert(
            NodeId(0),
            Tensor::from_f32(&[4], vec![1.0, 2.0, 4.0, 8.0]).unwrap(),
        );
        Some(TestCase::from_bindings(g, b))
    }
}

fn factory() -> impl nnsmith::difftest::SourceFactory {
    nnsmith::difftest::FnSourceFactory::new("mixed", |_: ShardCtx| {
        Box::new(MixedSource {
            emitted: 0,
            budget: usize::MAX,
        }) as Box<dyn TestCaseSource + Send>
    })
}

fn config(workers: usize) -> EngineConfig {
    EngineConfig {
        workers,
        shards: 4,
        seed: 21,
        campaign: CampaignConfig {
            duration: Duration::from_secs(600),
            max_cases: Some(24),
            backends: BackendSet::all().iter().cloned().collect(),
            // Keep the campaign stationary so every exp-1 duplicate pays
            // the same phases (no "fix-on-find" drift).
            fix_found_bugs: false,
            log_events: true,
            ..CampaignConfig::default()
        },
    }
}

#[test]
fn phase_profile_and_event_log_are_worker_count_independent() {
    let cfg = TriageConfig::default();
    let (one, one_triage) = run_matrix_triaged_engine(&factory(), &config(1), &cfg);
    let (four, four_triage) = run_matrix_triaged_engine(&factory(), &config(4), &cfg);
    assert_eq!(one.result.cases, 24);

    // The deterministic projection (phase counts + counters) must agree
    // byte-for-byte, merged and per shard.
    assert_eq!(
        serde::json::to_string(&one.deterministic_view()),
        serde::json::to_string(&four.deterministic_view()),
        "merged phase counts/counters must not depend on the worker count"
    );
    assert_eq!(
        serde::json::to_string(&one.phases.clone().strip_wall()),
        serde::json::to_string(&four.phases.clone().strip_wall()),
        "per-shard phase counts must not depend on the worker count"
    );

    // The canonical event stream, minus the `t_ms` wall stamp, is the
    // same log.
    let lines_one = deterministic_event_lines(&one.events);
    let lines_four = deterministic_event_lines(&four.events);
    assert!(!lines_one.is_empty());
    assert_eq!(lines_one, lines_four);

    // The stream covers the whole campaign lifecycle.
    for kind in [
        "\"kind\":\"case_started\"",
        "\"kind\":\"verdict\"",
        "\"kind\":\"bug\"",
        "\"kind\":\"case_finished\"",
        "\"kind\":\"bin_update\"",
    ] {
        assert!(
            lines_one.iter().any(|l| l.contains(kind)),
            "no {kind} event in the log"
        );
    }

    // Spot-check the merged profile's shape: generation ran once per
    // case, the reference once per case, and the fanned-out backends
    // each compiled.
    let view = one.deterministic_view();
    assert_eq!(view.phase_counts["gen"], 24);
    assert_eq!(view.phase_counts["ref_exec"], 24);
    for backend in ["tvmsim", "ortsim", "trtsim"] {
        assert!(view.phase_counts[&format!("compile/{backend}")] > 0);
    }
    // The triage phase count is the deterministic ingest total.
    assert_eq!(view.phase_counts["triage"], one_triage.failures_seen as u64);
    assert_eq!(one_triage.failures_seen, four_triage.failures_seen);

    // PR-6 cache observability: the exp-1 mismatches paid a (shared) O0
    // localization run, and the clean cases reused the shared import.
    assert!(
        view.counters
            .keys()
            .any(|k| k.starts_with("localize/o0_run/")),
        "no O0 localization counter in {:?}",
        view.counters.keys().collect::<Vec<_>>()
    );
    assert!(
        view.counters.keys().any(|k| k.starts_with("import/init/")),
        "no import-init counter"
    );
    assert!(
        view.counters.keys().any(|k| k.starts_with("import/reuse/")),
        "no import-reuse counter"
    );
    // Campaign-pool counters are present even when the fixed source
    // never interns (schema stability for the trajectory gate).
    assert!(view.counters.contains_key("pool/base_hits"));
    assert!(view.counters.contains_key("pool/memo_hits"));

    // Triage's own canonical event stream agrees across worker counts
    // too (its bin keys are pure functions of each failure).
    assert_eq!(
        deterministic_event_lines(&one_triage.events),
        deterministic_event_lines(&four_triage.events)
    );
}
