//! Tzer as a first-class engine citizen, end-to-end: the IR mutator is
//! sharded across workers with the bit-reproducible merge contract, and
//! its coverage-pipeline findings flow through the `CaseOracle`/
//! `TriageSink` seam — reduced, binned on IR-keyed signatures, and
//! persisted in the reproducer corpus like every graph-level finding.
//! This is the fig8 acceptance in test form.

use std::time::Duration;

use nnsmith::baselines::TzerFactory;
use nnsmith::compilers::tvmsim;
use nnsmith::difftest::{CampaignConfig, EngineConfig};
use nnsmith::triage::{run_triaged_engine, Corpus, TriageConfig};

fn config(workers: usize) -> EngineConfig {
    EngineConfig {
        workers,
        shards: 4,
        seed: 90,
        campaign: CampaignConfig {
            duration: Duration::from_secs(600),
            // Enough mutants that every shard trips at least one seeded
            // TIR bug (variable divisors appear within a few mutants).
            max_cases: Some(160),
            ..CampaignConfig::default()
        },
    }
}

#[test]
fn tzer_findings_flow_through_triage_and_replay_from_the_corpus() {
    let compiler = tvmsim();
    let (report, triage) = run_triaged_engine(
        &compiler,
        &TzerFactory::default(),
        &config(2),
        &TriageConfig::default(),
    );
    assert_eq!(report.result.cases, 160);
    assert!(
        report.result.total_coverage() > 400,
        "IR campaigns still accumulate coverage: {}",
        report.result.total_coverage()
    );
    // Tzer reaches the seeded TIR bugs graph fuzzing cannot.
    assert!(
        report
            .result
            .bugs_found
            .iter()
            .any(|id| id.starts_with("tir-")),
        "bugs: {:?}",
        report.result.bugs_found
    );

    assert!(triage.failures_seen > 0);
    assert!(!triage.bins.is_empty(), "findings must be binned");
    let mut replayed = 0;
    for bin in triage.bins.values() {
        assert!(
            bin.reproducer.ir.is_some(),
            "Tzer reproducers carry IR payloads: {}",
            bin.signature
        );
        assert!(
            bin.bug_ids.iter().all(|id| id.starts_with("tir-")),
            "IR campaigns only implicate TIR bugs: {:?}",
            bin.bug_ids
        );
        let replay = bin.reproducer.replay().expect("known compiler");
        assert!(
            replay.reproduced,
            "bin {} replay observed {:?}",
            bin.signature, replay.observed
        );
        replayed += 1;
    }
    assert!(replayed > 0);

    // And the corpus round-trips the IR reproducers byte-identically.
    let corpus = triage.to_corpus();
    assert_eq!(corpus.len(), triage.bins.len());
    let js = corpus.to_json();
    let back = Corpus::from_json(&js).expect("decodes");
    assert_eq!(back.to_json(), js);
}

#[test]
fn tzer_triage_identical_across_worker_counts() {
    let compiler = tvmsim();
    let cfg = TriageConfig::default();
    let (one_report, one) =
        run_triaged_engine(&compiler, &TzerFactory::default(), &config(1), &cfg);
    let (four_report, four) =
        run_triaged_engine(&compiler, &TzerFactory::default(), &config(4), &cfg);
    assert_eq!(
        serde::json::to_string(&one_report.result),
        serde::json::to_string(&four_report.result),
        "merged campaign result must not depend on the worker count"
    );
    assert_eq!(
        serde::json::to_string(&one),
        serde::json::to_string(&four),
        "merged triage report must not depend on the worker count"
    );
}
