//! Multi-thread contention smoke for the sharded intern pool: many
//! threads hammering mixed intern/read traffic on one pool must neither
//! deadlock nor panic, hash-cons identity must hold across threads, and —
//! the can't-regress invariant — the read path must stay **lock-free**:
//! reads succeed while a writer thread is parked mid-insert.
//!
//! Like `tests/engine_determinism.rs`, the throughput assertion self-skips
//! below 4 cores (the build container has 1); the correctness assertions
//! always run.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nnsmith::solver::{IntExpr, InternPool, VarId};

fn chain(base: u32, len: u32) -> IntExpr {
    let mut e = IntExpr::Var(VarId(base));
    for i in 1..len {
        e = e * IntExpr::Var(VarId(base + i)) + IntExpr::from(i64::from(i));
    }
    e
}

#[test]
fn mixed_intern_read_hammer_has_no_deadlock_or_divergence() {
    let pool = InternPool::default();
    // Every thread interns the same 64 structures (plus a private set) and
    // records the handles it got for the shared ones.
    let threads = 8;
    let shared_handles: Vec<_> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let pool = pool.clone();
                scope.spawn(move || {
                    let mut shared = Vec::new();
                    for round in 0..64u32 {
                        // Shared structure: all threads must agree.
                        let id = pool.intern_int(&chain(round, 6));
                        shared.push(id);
                        // Private structure: exercises fresh inserts.
                        let mine = pool.intern_int(&chain(1000 + t * 100 + round, 4));
                        // Read-heavy mix: resolve + evaluate immediately.
                        assert!(pool.eval_int(mine, &|_| Some(2)).is_some());
                        assert!(pool.eval_int(id, &|_| Some(3)).is_some());
                    }
                    shared
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("worker must not panic"))
            .collect()
    });
    // Hash-cons identity across threads: every thread saw the same handle
    // for the same structure.
    for other in &shared_handles[1..] {
        assert_eq!(other, &shared_handles[0]);
    }
}

#[test]
fn reads_succeed_while_a_writer_is_parked_mid_insert() {
    let pool = InternPool::default();
    // Pre-intern a working set to read.
    let ids: Vec<_> = (0..256u32).map(|i| pool.intern_int(&chain(i, 5))).collect();

    // Park the writers: every shard's insert mutex is held, so the writer
    // thread below blocks inside its intern call...
    let stall = pool.stall_writers();
    let writer_done = Arc::new(AtomicBool::new(false));
    let writer = {
        let pool = pool.clone();
        let done = Arc::clone(&writer_done);
        std::thread::spawn(move || {
            // A fresh structure: must take the insert path and park.
            pool.intern_int(&chain(90_000, 8));
            done.store(true, Ordering::SeqCst);
        })
    };
    // Give the writer time to reach the mutex.
    std::thread::sleep(Duration::from_millis(50));
    assert!(
        !writer_done.load(Ordering::SeqCst),
        "writer should be parked while the stall guard is held"
    );

    // ...while reads keep succeeding: the read path takes no lock at all.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut reads = 0usize;
    for round in 0..1_000 {
        for &id in &ids {
            assert!(
                pool.eval_int(id, &|_| Some(1)).is_some(),
                "read blocked or failed while a writer was parked (round {round})"
            );
            reads += 1;
        }
        if Instant::now() > deadline {
            panic!("reads slowed to a crawl while a writer was parked");
        }
    }
    assert!(reads >= 256_000);
    assert!(
        !writer_done.load(Ordering::SeqCst),
        "writer must still be parked after the read storm"
    );

    // Release the writers; the parked intern completes normally.
    drop(stall);
    writer.join().expect("writer completes after the stall");
    assert!(writer_done.load(Ordering::SeqCst));
}

/// The scalability half: with ≥4 cores, four reader threads over one pool
/// must clearly out-read one (lock-free reads share nothing but cache
/// lines). Self-skips on smaller machines like the engine speedup smoke.
#[test]
fn concurrent_read_throughput_scales_when_cores_allow() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping read-throughput smoke: only {cores} core(s) available");
        return;
    }
    let pool = InternPool::default();
    let ids: Vec<_> = (0..512u32).map(|i| pool.intern_int(&chain(i, 5))).collect();

    let measure = |threads: usize| -> f64 {
        let total = Arc::new(AtomicUsize::new(0));
        let run_for = Duration::from_millis(300);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let pool = pool.clone();
                let ids = ids.clone();
                let total = Arc::clone(&total);
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut n = 0usize;
                    while start.elapsed() < run_for {
                        for &id in &ids {
                            if pool.eval_int(id, &|_| Some(1)).is_some() {
                                n += 1;
                            }
                        }
                    }
                    total.fetch_add(n, Ordering::Relaxed);
                });
            }
        });
        total.load(Ordering::Relaxed) as f64 / run_for.as_secs_f64()
    };

    let one = measure(1);
    let four = measure(4);
    let speedup = four / one;
    assert!(
        speedup > 1.5,
        "expected >1.5x aggregate reads with 4 threads, got {speedup:.2}x \
         ({four:.0} vs {one:.0} reads/s)"
    );
}
