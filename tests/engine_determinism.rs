//! The parallel engine's reproducibility contract, exercised end-to-end
//! with the real NNSmith pipeline: for a fixed seed and shard count, the
//! merged campaign result must not depend on the worker count.

use std::time::Duration;

use nnsmith::compilers::ortsim;
use nnsmith::difftest::{run_engine, CampaignConfig, EngineConfig};
use nnsmith::gen::GenConfig;
use nnsmith::pipeline::NnSmithFactory;
use nnsmith::search::SearchConfig;
use nnsmith::{NnSmith, NnSmithConfig};

fn quick_pipeline() -> NnSmithConfig {
    NnSmithConfig {
        gen: GenConfig {
            target_ops: 5,
            ..GenConfig::default()
        },
        search: SearchConfig {
            budget: Duration::from_millis(150),
            // Iteration-budgeted: a wall-clock search budget exhausts at
            // load-dependent points, breaking workers=1 ≡ workers=N.
            max_iters: Some(256),
            init_lo: -4.0,
            init_hi: 4.0,
            ..SearchConfig::default()
        },
        seed: 0, // overridden per shard by the factory
        max_attempts_per_case: 8,
        ..NnSmithConfig::default()
    }
}

fn engine_config(workers: usize) -> EngineConfig {
    EngineConfig {
        workers,
        shards: 4,
        seed: 1234,
        campaign: CampaignConfig {
            // Case-budgeted: determinism holds when max_cases drives
            // termination and the duration is generous.
            duration: Duration::from_secs(600),
            max_cases: Some(12),
            ..CampaignConfig::default()
        },
    }
}

#[test]
fn one_worker_and_four_workers_agree_bit_for_bit() {
    let compiler = ortsim();
    let factory = NnSmithFactory::new(quick_pipeline());
    let one = run_engine(&compiler, &factory, &engine_config(1));
    let four = run_engine(&compiler, &factory, &engine_config(4));

    assert_eq!(one.result.cases, 12);
    assert_eq!(one.result.cases, four.result.cases);
    assert_eq!(one.result.bugs_found, four.result.bugs_found);
    assert_eq!(one.result.unique_crashes, four.result.unique_crashes);
    assert_eq!(one.result.coverage, four.result.coverage);
    assert_eq!(one.result.op_instances, four.result.op_instances);
    assert_eq!(one.result.mismatches, four.result.mismatches);
    assert_eq!(one.result.numeric_invalid, four.result.numeric_invalid);
    assert_eq!(one.result.timeline, four.result.timeline);

    // Shard-level agreement too: the shard set, not the worker count,
    // defines the work.
    for (a, b) in one.shard_results.iter().zip(&four.shard_results) {
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.bugs_found, b.bugs_found);
    }

    // And the serialized report is byte-identical (the BENCH_*.json
    // promise).
    assert_eq!(
        serde::json::to_string(&one.result),
        serde::json::to_string(&four.result)
    );

    // The solver stats block is counter-derived and must carry over the
    // same determinism: compiled-tape work is fixed by the shard layout,
    // not by scheduling. A real generation campaign narrows domains, so
    // the watch index must demonstrably skip re-checks.
    assert_eq!(one.solver, four.solver);
    assert_eq!(
        serde::json::to_string(&one.solver),
        serde::json::to_string(&four.solver)
    );
    assert!(one.solver.checks > 0, "campaign ran solver checks");
    assert!(one.solver.tape_compiles > 0, "constraints hit the tape");
    assert!(one.solver.tape_evals > 0, "bytecode eval passes recorded");
    assert!(
        one.solver.constraints_skipped > 0,
        "watch-indexed propagation skipped re-checks: {:?}",
        one.solver
    );
}

#[test]
fn shard_sources_match_direct_pipeline_runs() {
    // A shard's case stream is exactly what a standalone NnSmith seeded
    // with the shard seed would produce.
    use nnsmith::difftest::{shard_seed, TestCaseSource};
    let seed = shard_seed(1234, 2);
    let mut direct = NnSmith::new(NnSmithConfig {
        seed,
        ..quick_pipeline()
    });
    let factory = NnSmithFactory::new(quick_pipeline());
    let mut shard = factory_make(&factory, 2);
    for _ in 0..2 {
        let a = direct.next_case().expect("case");
        let b = shard.next_case().expect("case");
        assert_eq!(a.graph, b.graph);
    }
}

fn factory_make(
    factory: &NnSmithFactory,
    index: usize,
) -> Box<dyn nnsmith::difftest::TestCaseSource + Send> {
    use nnsmith::difftest::{shard_seed, ShardCtx, SourceFactory};
    factory.make_source(ShardCtx {
        index,
        count: 4,
        seed: shard_seed(1234, index),
    })
}

/// The throughput half of the engine's acceptance: >1.5x cases/sec with 4
/// workers on the Figure-4 workload. Meaningless on fewer than 4 cores
/// (this build container has 1), so it gates on available parallelism.
#[test]
fn four_workers_beat_one_on_throughput_when_cores_allow() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 4 {
        eprintln!("skipping engine speedup smoke: only {cores} core(s) available");
        return;
    }
    use nnsmith::baselines::GraphFuzzerFactory;
    let compiler = ortsim();
    let cfg = |workers| EngineConfig {
        workers,
        shards: 8,
        seed: 7,
        campaign: CampaignConfig {
            duration: Duration::from_secs(3),
            ..CampaignConfig::default()
        },
    };
    let one = run_engine(&compiler, &GraphFuzzerFactory::default(), &cfg(1));
    let four = run_engine(&compiler, &GraphFuzzerFactory::default(), &cfg(4));
    let speedup = four.cases_per_sec() / one.cases_per_sec();
    assert!(
        speedup > 1.5,
        "expected >1.5x cases/sec with 4 workers, got {speedup:.2}x \
         ({:.0} vs {:.0} cases/s)",
        four.cases_per_sec(),
        one.cases_per_sec()
    );
}
