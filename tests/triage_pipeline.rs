//! End-to-end contracts of the triage subsystem:
//!
//! 1. reduction preserves the oracle verdict and is 1-minimal on seeded
//!    bugs across symptom/phase classes (crash, export crash, semantic
//!    mismatch) and systems;
//! 2. triage bins from a sharded engine run are identical for workers=1
//!    and workers=4;
//! 3. serialized reproducers replay to the same verdict byte-identically.

use std::time::Duration;

use nnsmith::compilers::{ortsim, trtsim, tvmsim, CompileOptions, Compiler};
use nnsmith::difftest::{CampaignConfig, EngineConfig, TestCase, Tolerance};
use nnsmith::gen::GenConfig;
use nnsmith::graph::{Graph, NodeId, NodeKind, TensorType, ValueRef};
use nnsmith::ops::{BinaryKind, Bindings, Op, UnaryKind};
use nnsmith::pipeline::NnSmithFactory;
use nnsmith::search::SearchConfig;
use nnsmith::tensor::{DType, Tensor};
use nnsmith::triage::{
    is_one_minimal, reduce_case, run_triaged_engine, Corpus, ReduceConfig, Reproducer, TriageConfig,
};
use nnsmith::NnSmithConfig;

/// Wraps a trigger graph in float noise (leading tanh on a side input and
/// a trailing relu consumer where the dtype allows) so reduction has real
/// work to do.
struct Case {
    compiler: Compiler,
    expect_key: &'static str,
    case: TestCase,
}

fn f32_t(dims: &[i64]) -> TensorType {
    TensorType::concrete(DType::F32, dims)
}

/// ortsim ort-t09: reduction-to-scalar fusion crash, padded with float noise.
fn ort_reduce_scalar() -> Case {
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(NodeKind::Input, vec![], vec![f32_t(&[5])]);
    let tanh = g.add_node(
        NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
        vec![ValueRef::output0(x)],
        vec![f32_t(&[5])],
    );
    let red = g.add_node(
        NodeKind::Operator(Op::Reduce {
            kind: nnsmith::tensor::ReduceKind::Sum,
            axes: vec![0],
            keepdims: false,
        }),
        vec![ValueRef::output0(tanh)],
        vec![f32_t(&[])],
    );
    g.add_node(
        NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
        vec![ValueRef::output0(red)],
        vec![f32_t(&[])],
    );
    let mut b = Bindings::new();
    b.insert(
        x,
        Tensor::from_f32(&[5], vec![0.1, 0.2, 0.3, 0.4, 0.5]).unwrap(),
    );
    Case {
        compiler: ortsim(),
        expect_key: "seeded:ort-t09",
        case: TestCase::from_bindings(g, b),
    }
}

/// exporter exp-6: back-to-back Cast crash (fires during export on any
/// compiler), padded with float noise.
fn exporter_cast_cast() -> Case {
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(NodeKind::Input, vec![], vec![f32_t(&[4])]);
    let tanh = g.add_node(
        NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
        vec![ValueRef::output0(x)],
        vec![f32_t(&[4])],
    );
    let c1 = g.add_node(
        NodeKind::Operator(Op::Cast { to: DType::I32 }),
        vec![ValueRef::output0(tanh)],
        vec![TensorType::concrete(DType::I32, &[4])],
    );
    g.add_node(
        NodeKind::Operator(Op::Cast { to: DType::F32 }),
        vec![ValueRef::output0(c1)],
        vec![f32_t(&[4])],
    );
    let mut b = Bindings::new();
    b.insert(
        x,
        Tensor::from_f32(&[4], vec![1.5, -0.5, 2.5, 0.25]).unwrap(),
    );
    Case {
        compiler: ortsim(),
        expect_key: "seeded:exp-6",
        case: TestCase::from_bindings(g, b),
    }
}

/// trtsim trt-u3: Pad feeding Reshape crashes the builder.
fn trt_pad_reshape() -> Case {
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(NodeKind::Input, vec![], vec![f32_t(&[2])]);
    let tanh = g.add_node(
        NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
        vec![ValueRef::output0(x)],
        vec![f32_t(&[2])],
    );
    let pad = g.add_node(
        NodeKind::Operator(Op::Pad {
            pads: vec![(
                nnsmith::solver::IntExpr::Const(1),
                nnsmith::solver::IntExpr::Const(1),
            )],
            kind: nnsmith::ops::PadKind::Replicate,
        }),
        vec![ValueRef::output0(tanh)],
        vec![f32_t(&[4])],
    );
    g.add_node(
        NodeKind::Operator(Op::Reshape {
            dims: vec![
                nnsmith::solver::IntExpr::Const(2),
                nnsmith::solver::IntExpr::Const(2),
            ],
        }),
        vec![ValueRef::output0(pad)],
        vec![f32_t(&[2, 2])],
    );
    let mut b = Bindings::new();
    b.insert(x, Tensor::from_f32(&[2], vec![0.3, -0.7]).unwrap());
    Case {
        compiler: trtsim(),
        expect_key: "seeded:trt-u3",
        case: TestCase::from_bindings(g, b),
    }
}

/// tvmsim tvm-simpl-1: the semantic (x/c)*c integer-simplification bug —
/// a mismatch localized to the optimizer, not a crash.
fn tvm_int_simplify() -> Case {
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(
        NodeKind::Input,
        vec![],
        vec![TensorType::concrete(DType::I32, &[2])],
    );
    let c = g.add_node(
        NodeKind::Weight,
        vec![],
        vec![TensorType::concrete(DType::I32, &[])],
    );
    let div = g.add_node(
        NodeKind::Operator(Op::Binary(BinaryKind::Div)),
        vec![ValueRef::output0(x), ValueRef::output0(c)],
        vec![TensorType::concrete(DType::I32, &[2])],
    );
    g.add_node(
        NodeKind::Operator(Op::Binary(BinaryKind::Mul)),
        vec![ValueRef::output0(div), ValueRef::output0(c)],
        vec![TensorType::concrete(DType::I32, &[2])],
    );
    let mut b = Bindings::new();
    b.insert(x, Tensor::from_i32(&[2], vec![7, 9]).unwrap());
    b.insert(c, Tensor::scalar(DType::I32, 3.0));
    Case {
        compiler: tvmsim(),
        expect_key: "seeded:tvm-simpl-1",
        case: TestCase::from_bindings(g, b),
    }
}

#[test]
fn reduction_preserves_verdict_and_is_one_minimal_on_seeded_bugs() {
    for case in [
        ort_reduce_scalar(),
        exporter_cast_cast(),
        trt_pad_reshape(),
        tvm_int_simplify(),
    ] {
        let red = reduce_case(
            &case.compiler,
            &case.case,
            &CompileOptions::default(),
            Tolerance::default(),
            &ReduceConfig::default(),
        )
        .unwrap_or_else(|| panic!("{}: not a finding", case.expect_key));
        assert_eq!(
            red.signature.key, case.expect_key,
            "verdict must be preserved"
        );
        assert!(
            red.reduced_ops <= 5,
            "{}: {} ops left",
            case.expect_key,
            red.reduced_ops
        );
        assert!(
            red.reduced_ops <= red.original_ops,
            "{}: reduction grew the case",
            case.expect_key
        );
        assert!(
            is_one_minimal(
                &case.compiler,
                &red.case,
                &CompileOptions::default(),
                Tolerance::default()
            ),
            "{}: a further single removal still triggers",
            case.expect_key
        );
        // The reduced case is a valid, concrete graph.
        assert!(red.case.graph.validate().is_ok());
        assert!(red.case.graph.is_concrete());

        // Reproducer: byte-identical JSON round-trip and verdict-identical
        // replay.
        let rep =
            Reproducer::from_reduction(&red, case.compiler.system().name(), Tolerance::default());
        let mut corpus = Corpus::new();
        corpus.insert(rep);
        let js = corpus.to_json();
        let back = Corpus::from_json(&js).expect("corpus decodes");
        assert_eq!(back.to_json(), js, "byte-identical corpus round-trip");
        for rep in back.reproducers.values() {
            let report = rep.replay().expect("known compiler");
            assert!(
                report.reproduced,
                "{}: replay observed {:?}",
                case.expect_key, report.observed
            );
        }
    }
}

fn quick_pipeline() -> NnSmithConfig {
    NnSmithConfig {
        gen: GenConfig {
            target_ops: 5,
            ..GenConfig::default()
        },
        search: SearchConfig {
            budget: Duration::from_secs(60),
            // Deterministic search: required for workers=1 ≡ workers=N.
            max_iters: Some(256),
            init_lo: -4.0,
            init_hi: 4.0,
            ..SearchConfig::default()
        },
        seed: 0, // overridden per shard
        max_attempts_per_case: 8,
        ..NnSmithConfig::default()
    }
}

fn engine_config(workers: usize) -> EngineConfig {
    EngineConfig {
        workers,
        shards: 4,
        seed: 77,
        campaign: CampaignConfig {
            duration: Duration::from_secs(600),
            max_cases: Some(16),
            ..CampaignConfig::default()
        },
    }
}

#[test]
fn triage_bins_identical_for_one_and_four_workers() {
    let compiler = tvmsim();
    let factory = NnSmithFactory::new(quick_pipeline());
    let cfg = TriageConfig::default();
    let (_, one) = run_triaged_engine(&compiler, &factory, &engine_config(1), &cfg);
    let (_, four) = run_triaged_engine(&compiler, &factory, &engine_config(4), &cfg);
    assert!(
        !one.bins.is_empty(),
        "expected at least one finding from the seeded-bug campaign"
    );
    assert_eq!(one.failures_seen, four.failures_seen);
    assert_eq!(
        serde::json::to_string(&one),
        serde::json::to_string(&four),
        "triage bins must not depend on the worker count"
    );

    // Regression corpus: everything the campaign distilled replays on a
    // fresh in-memory corpus, byte-identically.
    let corpus = one.to_corpus();
    let js = corpus.to_json();
    let back = Corpus::from_json(&js).expect("decodes");
    assert_eq!(back.to_json(), js);
    for (key, rep) in &back.reproducers {
        assert!(
            rep.graph.operators().len() <= 5,
            "{key}: reproducer not minimal ({} ops)",
            rep.graph.operators().len()
        );
        let report = rep.replay().expect("known compiler");
        assert!(report.reproduced, "{key}: observed {:?}", report.observed);
        assert!(
            is_one_minimal(
                &compiler,
                &rep.to_case(),
                &CompileOptions::default(),
                Tolerance::default()
            ),
            "{key}: reproducer is not 1-minimal"
        );
    }
}

/// NodeId sanity for the corpus maps: ids in weights/inputs must exist in
/// the graph (guards the reducer's node remapping).
#[test]
fn reproducer_bindings_reference_graph_nodes() {
    let case = ort_reduce_scalar();
    let red = reduce_case(
        &case.compiler,
        &case.case,
        &CompileOptions::default(),
        Tolerance::default(),
        &ReduceConfig::default(),
    )
    .expect("finding");
    let rep = Reproducer::from_reduction(&red, "ortsim", Tolerance::default());
    for &id in rep.weights.keys().chain(rep.inputs.keys()) {
        assert!((id as usize) < rep.graph.len(), "dangling binding {id}");
        let node = rep.graph.node(NodeId(id));
        assert!(matches!(node.kind, NodeKind::Input | NodeKind::Weight));
    }
}
