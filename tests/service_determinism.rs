//! The distributed campaign service's determinism contract:
//!
//! * `processes=1 ≡ processes=3` — the deterministic views of the merged
//!   report (engine summary, canonical event lines, merged campaign
//!   result) are byte-identical whether the work-units run inline or in
//!   child worker processes;
//! * the service's merged campaign result equals the in-process matrix
//!   engine's for the same campaign identity;
//! * a campaign killed mid-run (pause-after-K-units, the deterministic
//!   `kill -9` stand-in) and resumed from its snapshot emits the same
//!   bytes as an uninterrupted run.
//!
//! Child processes re-exec the dedicated `nnsmith_worker` binary
//! (`current_exe()` here is the libtest harness, which would swallow the
//! `work-unit` subcommand as a test filter).

use std::path::PathBuf;
use std::time::Duration;

use nnsmith::difftest::{run_matrix_engine, CampaignConfig, EngineConfig};
use nnsmith::obs::deterministic_event_lines;
use nnsmith::pipeline::NnSmithFactory;
use nnsmith::service::{
    plan_work_units, resume_service, run_service, FeedbackSpec, PipelineSpec, ServiceConfig,
    ServiceReport, ServiceRun, WorkUnit,
};
use nnsmith_bench::EngineSummary;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_nnsmith_worker"))
}

/// A quick guided campaign: small graphs, deterministic search budget,
/// the feedback loop checkpointing mid-shard.
fn service_config(processes: usize) -> ServiceConfig {
    ServiceConfig {
        processes,
        shards: 4,
        seed: 17,
        cases: 24,
        backends: vec!["tvm".into(), "ort".into(), "trt".into()],
        pipeline: PipelineSpec {
            target_ops: 5,
            search_max_iters: 96,
            ..PipelineSpec::default()
        },
        feedback: FeedbackSpec {
            enabled: true,
            checkpoint_every: 4,
            mutation_prob: 0.1,
            ..FeedbackSpec::default()
        },
        fix_found_bugs: true,
        log_events: true,
        worker: Some(worker_bin()),
        snapshot: None,
        stop_after_units: None,
    }
}

fn deterministic_bytes(report: &ServiceReport) -> (String, Vec<String>, String) {
    let config = service_config(1);
    let backends = nnsmith::compilers::BackendSet::from_names(&config.backends).unwrap();
    let summary = EngineSummary::from_matrix_report(&backends, &report.report).deterministic_view();
    (
        serde::json::to_string(&summary),
        deterministic_event_lines(&report.report.events),
        serde::json::to_string(&report.report.result),
    )
}

#[test]
fn work_unit_roundtrips_and_plans_match_engine_slices() {
    let config = service_config(1);
    let units = plan_work_units(&config);
    assert_eq!(units.len(), 4);
    assert_eq!(
        units.iter().map(|u| u.case_budget).collect::<Vec<_>>(),
        vec![6, 6, 6, 6]
    );
    for unit in &units {
        // Names are canonicalized at planning time (short forms in the
        // config, full names on the wire).
        assert_eq!(unit.backends, vec!["tvmsim", "ortsim", "trtsim"]);
        let js = serde::json::to_string(unit);
        let back: WorkUnit = serde::json::from_str(&js).expect("roundtrip");
        assert_eq!(&back, unit);
        assert_eq!(serde::json::to_string(&back), js);
    }
}

#[test]
fn processes_do_not_change_the_bytes() {
    let single = run_service(&service_config(1)).expect_complete();
    let multi = run_service(&service_config(3)).expect_complete();
    assert_eq!(single.processes, 1);
    assert_eq!(multi.processes, 3);
    assert_eq!(single.report.result.cases, 24);

    let (summary_1, events_1, result_1) = deterministic_bytes(&single);
    let (summary_3, events_3, result_3) = deterministic_bytes(&multi);
    assert_eq!(summary_1, summary_3, "engine summaries must be byte-equal");
    assert!(!events_1.is_empty());
    assert_eq!(
        events_1, events_3,
        "canonical event logs must be byte-equal"
    );
    assert_eq!(
        result_1, result_3,
        "merged campaign results must be byte-equal"
    );
}

#[test]
fn service_merge_equals_the_in_process_engine() {
    let config = service_config(1);
    let service = run_service(&config).expect_complete();

    let backends = nnsmith::compilers::BackendSet::from_names(&config.backends).unwrap();
    let factory = NnSmithFactory::for_backends(config.pipeline.to_config(), &backends)
        .with_feedback(config.feedback.to_config());
    let engine = run_matrix_engine(
        &factory,
        &EngineConfig {
            workers: 2,
            shards: config.shards,
            seed: config.seed,
            campaign: CampaignConfig {
                duration: Duration::from_secs(86_400),
                max_cases: Some(config.cases),
                backends: backends.iter().cloned().collect(),
                fix_found_bugs: config.fix_found_bugs,
                log_events: config.log_events,
                ..CampaignConfig::default()
            },
        },
    );

    // The merged campaign result — coverage, bugs, per-backend blocks,
    // feedback fold, logical timeline — is identical whether the shards
    // ran as threads of one process or as work-units of the service.
    assert_eq!(
        serde::json::to_string(&service.report.result),
        serde::json::to_string(&engine.result)
    );
    // So is the canonical event stream.
    assert_eq!(
        deterministic_event_lines(&service.report.events),
        deterministic_event_lines(&engine.events)
    );
}

#[test]
fn killed_campaign_resumes_to_identical_bytes() {
    let dir = std::env::temp_dir().join(format!("nnsmith-svc-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snapshot = dir.join("campaign.snap.json");

    // Phase 1: run with 2 processes, "kill" after 2 completed units.
    let mut config = service_config(2);
    config.snapshot = Some(snapshot.clone());
    config.stop_after_units = Some(2);
    match run_service(&config) {
        ServiceRun::Paused { completed_units } => assert!(completed_units >= 2),
        ServiceRun::Complete(_) => panic!("expected the run to pause"),
    }
    assert!(snapshot.exists(), "pause must leave a snapshot behind");

    // Phase 2: resume from the snapshot (different process count on
    // purpose — execution shape must not matter).
    let resumed = resume_service(&snapshot, 3, Some(worker_bin()))
        .expect("snapshot loads")
        .expect_complete();

    // Reference: the same campaign, never interrupted.
    let full = run_service(&service_config(1)).expect_complete();
    let (summary_r, events_r, result_r) = deterministic_bytes(&resumed);
    let (summary_f, events_f, result_f) = deterministic_bytes(&full);
    assert_eq!(summary_r, summary_f);
    assert_eq!(events_r, events_f);
    assert_eq!(result_r, result_f);

    std::fs::remove_dir_all(&dir).ok();
}
