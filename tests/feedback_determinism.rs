//! The feedback loop's two acceptance contracts, end-to-end through the
//! fig12 harness:
//!
//! 1. **Worker-count invariance** — the serialized `BENCH_fig12.json`
//!    record must be byte-identical for `workers=1` and `workers=4` at a
//!    fixed seed/shard count. Retention, yield checkpoints, mutation and
//!    sibling probes all run per shard on case counts (never
//!    wall-clock), so the guided arm inherits the engine's determinism
//!    contract unchanged.
//! 2. **The loop pays for itself** — at the pinned configuration the
//!    guided arm reaches at least as many distinct seeded bugs as the
//!    blind arm at the same case budget. (The *strictly more* gate runs
//!    in CI at the full fig12 budget via `fig12_feedback --gate`; this
//!    in-tree budget is sized for `cargo test`.)

use std::time::Duration;

use nnsmith::gen::GenConfig;
use nnsmith::search::SearchConfig;
use nnsmith::NnSmithConfig;
use nnsmith_bench::fig12::{run_fig12, Fig12Options};

fn opts(workers: usize) -> Fig12Options {
    Fig12Options {
        workers,
        // Small pinned budget: big enough for checkpoints and retention
        // to engage (per-shard budget 16 > checkpoint_every 4), small
        // enough for debug-mode `cargo test`.
        shards: 4,
        cases: 64,
        seed: 12,
        checkpoint_every: 4,
        pipeline: NnSmithConfig {
            gen: GenConfig {
                target_ops: 5,
                ..GenConfig::default()
            },
            search: SearchConfig {
                budget: Duration::from_millis(150),
                // Iteration-budgeted search: a wall-clock budget exhausts
                // at load-dependent points, breaking workers=1 ≡ workers=N.
                max_iters: Some(128),
                ..SearchConfig::default()
            },
            ..NnSmithConfig::default()
        },
        ..Fig12Options::default()
    }
}

#[test]
fn fig12_is_worker_invariant_and_the_loop_pays_for_itself() {
    let one = run_fig12(&opts(1));
    let four = run_fig12(&opts(4));

    // (1) Byte-equality of the whole record, exactly what the CI
    // feedback-smoke `cmp` asserts on the emitted artifacts.
    assert_eq!(
        serde::json::to_string(&one),
        serde::json::to_string(&four),
        "BENCH_fig12.json must not depend on the worker count"
    );

    // (2) Feedback machinery actually engaged.
    let fb = one.results[0]
        .feedback
        .as_ref()
        .expect("guided arm carries a feedback summary");
    assert!(fb.retained > 0, "coverage-novel cases must be retained");
    assert!(fb.checkpoints > 0, "case-count checkpoints must fire");
    assert_ne!(fb.corpus_digest, 0);
    assert!(one.results[1].feedback.is_none(), "blind arm has no loop");

    // (3) The acceptance floor: guidance never loses at the same case
    // budget.
    assert!(
        one.guided_bugs >= one.blind_bugs,
        "guided arm found {} distinct seeded bugs, blind found {}",
        one.guided_bugs,
        one.blind_bugs
    );
}
