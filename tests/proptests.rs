//! Workspace-level property-based tests: cross-crate invariants checked
//! over randomized inputs (proptest).

use proptest::prelude::*;

use nnsmith::graph::NodeKind;
use nnsmith::solver::{IntExpr, InternPool, Solver, VarId};
use nnsmith::tensor::{broadcast_shapes, DType, Tensor};

/// A small random integer-expression tree over variables `v0..v4` —
/// enough depth to exercise every smart-constructor rewrite.
fn arb_int_expr() -> impl Strategy<Value = IntExpr> {
    // proptest's vendored stand-in has no recursive combinator, so build
    // trees from a random instruction tape: each step either pushes a
    // leaf or combines the top two entries with a random operator.
    proptest::collection::vec((0u8..8, -4i64..5, 0u32..4), 1..24).prop_map(|tape| {
        let mut stack: Vec<IntExpr> = Vec::new();
        for (op, c, v) in tape {
            if stack.len() >= 2 && op < 5 {
                let b = stack.pop().expect("len checked");
                let a = stack.pop().expect("len checked");
                stack.push(match op {
                    0 => a + b,
                    1 => a - b,
                    2 => a * b,
                    3 => a / b,
                    _ => a % b,
                });
            } else if op.is_multiple_of(2) {
                stack.push(IntExpr::Const(c));
            } else {
                stack.push(IntExpr::Var(VarId(v)));
            }
        }
        let mut out = stack.pop().expect("tape non-empty");
        while let Some(next) = stack.pop() {
            out = out + next;
        }
        out
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Broadcasting is commutative.
    #[test]
    fn broadcast_commutes(
        a in proptest::collection::vec(1usize..5, 0..4),
        b in proptest::collection::vec(1usize..5, 0..4),
    ) {
        let ab = broadcast_shapes(&a, &b);
        let ba = broadcast_shapes(&b, &a);
        prop_assert_eq!(ab.ok(), ba.ok());
    }

    /// Broadcasting against itself is the identity.
    #[test]
    fn broadcast_idempotent(a in proptest::collection::vec(1usize..6, 0..4)) {
        prop_assert_eq!(broadcast_shapes(&a, &a).unwrap(), a);
    }

    /// Elementwise add over equal shapes is commutative.
    #[test]
    fn tensor_add_commutes(
        data in proptest::collection::vec(-100.0f64..100.0, 1..32),
    ) {
        let n = data.len();
        let a = Tensor::from_f64(&[n], data.clone()).unwrap();
        let rev: Vec<f64> = data.iter().rev().copied().collect();
        let b = Tensor::from_f64(&[n], rev).unwrap();
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    /// Cast to the same dtype is the identity; cast bool→int→bool of a
    /// bool tensor is the identity.
    #[test]
    fn cast_roundtrips(values in proptest::collection::vec(any::<bool>(), 1..32)) {
        let n = values.len();
        let t = Tensor::from_bool(&[n], values).unwrap();
        prop_assert_eq!(&t.cast(DType::Bool), &t);
        prop_assert_eq!(&t.cast(DType::I64).cast(DType::Bool), &t);
    }

    /// Solver models satisfy every asserted constraint (soundness).
    #[test]
    fn solver_models_satisfy_constraints(
        bounds in proptest::collection::vec((1i64..8, 8i64..64), 2..5),
        coeffs in proptest::collection::vec(1i64..4, 2..5),
        limit in 16i64..256,
    ) {
        let mut s = Solver::default();
        let vars: Vec<_> = bounds
            .iter()
            .enumerate()
            .map(|(i, (lo, hi))| s.new_var(format!("v{i}"), *lo, *hi))
            .collect();
        // Σ cᵢ·vᵢ ≤ limit
        let mut sum = IntExpr::Const(0);
        for (v, c) in vars.iter().zip(&coeffs) {
            sum = sum + IntExpr::var(*v) * IntExpr::from(*c);
        }
        s.assert(sum.clone().le(limit.into()));
        if let nnsmith::solver::SatResult::Sat(m) = s.check() {
            let total: i64 = vars
                .iter()
                .zip(&coeffs)
                .map(|(v, c)| m.get(*v).unwrap() * c)
                .sum();
            prop_assert!(total <= limit);
            for ((lo, hi), v) in bounds.iter().zip(&vars) {
                let val = m.get(*v).unwrap();
                prop_assert!(val >= *lo && val <= *hi);
            }
        }
    }

    /// Every model the generator emits type-checks *and* executes with
    /// exactly the shapes its edge types declare — the paper's central
    /// validity guarantee, checked end to end across solver, specs,
    /// generator and tensor kernels.
    #[test]
    fn generated_models_execute_with_declared_shapes(seed in 0u64..400) {
        use nnsmith::gen::{GenConfig, Generator};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let generator = Generator::new(GenConfig {
            target_ops: 6,
            ..GenConfig::default()
        });
        let model = generator.generate(&mut rng).expect("generation succeeds");
        prop_assert!(model.graph.validate().is_ok());
        let mut vrng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabcd);
        let bindings =
            nnsmith::ops::random_bindings(&model.graph, -2.0, 2.0, &mut vrng).unwrap();
        match nnsmith::ops::execute(&model.graph, &bindings) {
            Ok(exec) => {
                for (id, node) in model.graph.iter() {
                    for (index, declared) in node.outputs.iter().enumerate() {
                        let vref = nnsmith::graph::ValueRef { node: id, index };
                        let tensor = &exec.values[&vref];
                        prop_assert_eq!(
                            Some(tensor.shape().to_vec()),
                            declared.concrete_dims(),
                            "node {} ({})", id,
                            match &node.kind {
                                NodeKind::Operator(op) => op.name(),
                                _ => "leaf",
                            }
                        );
                        prop_assert_eq!(tensor.dtype(), declared.dtype);
                    }
                }
            }
            Err(nnsmith::ops::ExecError::Kernel { error, .. }) => {
                // Integer division by zero from random values is the only
                // legitimate runtime fault.
                let msg = format!("{error}");
                prop_assert!(msg.contains("division by zero"), "{msg}");
            }
            Err(other) => prop_assert!(false, "unexpected exec error: {other}"),
        }
    }

    /// Interning the same expression tree into two different pools yields
    /// structurally equal reads: tree roundtrips agree node-for-node even
    /// though the id spaces are unrelated.
    #[test]
    fn two_pools_agree_structurally(e in arb_int_expr()) {
        let p = InternPool::default();
        let q = InternPool::small();
        let a = p.intern_int(&e);
        let b = q.intern_int(&e);
        prop_assert!(p.structural_eq_int(a, &q, b));
        // Normalization is pool-independent, so the reconstructed trees
        // are identical (both fully folded the same way).
        prop_assert_eq!(p.to_int_expr(a), q.to_int_expr(b));
        // And rehoming a handle across pools lands on the hash-consed id.
        prop_assert_eq!(q.rehome_int(&p, a), b);
    }

    /// Base-resident and private interning agree structurally: canonical
    /// constants and variables resolve to the same pool-independent base
    /// id in every pool, mixed base/private trees hash-cons privately per
    /// pool, and `rehome` is exact in both regimes (identity on base ids,
    /// hash-consed landing on private ones).
    #[test]
    fn base_and_private_interning_agree(
        c in -8i64..=256,
        big in 2_000_000i64..2_100_000,
        v in 0u32..64,
    ) {
        let p = InternPool::default();
        let q = InternPool::small();
        // Canonical leaves are base-resident: the id is pool-independent
        // and rehoming it is the identity.
        let pc = p.intern_int(&IntExpr::Const(c));
        let qc = q.intern_int(&IntExpr::Const(c));
        prop_assert_eq!(pc, qc);
        prop_assert_eq!(q.rehome_int(&p, pc), pc);
        let pv = p.intern_int(&IntExpr::var(VarId(v)));
        prop_assert_eq!(pv, q.intern_int(&IntExpr::var(VarId(v))));
        // A mixed base/private tree interns privately per pool but still
        // agrees structurally, reads back identically, and rehomes onto
        // the other pool's hash-consed id.
        let e = IntExpr::var(VarId(v)) * IntExpr::Const(c) + IntExpr::Const(big);
        let a = p.intern_int(&e);
        let b = q.intern_int(&e);
        prop_assert!(p.structural_eq_int(a, &q, b));
        prop_assert_eq!(p.to_int_expr(a), q.to_int_expr(b));
        prop_assert_eq!(q.rehome_int(&p, a), b);
    }

    /// Hash-cons identity within a pool: interning the same tree twice is
    /// the same handle, and structurally distinct reads imply distinct
    /// handles.
    #[test]
    fn hash_cons_identity_within_a_pool(e in arb_int_expr(), f in arb_int_expr()) {
        let p = InternPool::default();
        let a1 = p.intern_int(&e);
        let a2 = p.intern_int(&e);
        prop_assert_eq!(a1, a2);
        let b = p.intern_int(&f);
        // Equal handles ⇔ equal normalized trees.
        prop_assert_eq!(a1 == b, p.to_int_expr(a1) == p.to_int_expr(b));
    }

    /// The pool's constant-folding smart constructors agree with the
    /// tree-level builders in `solver::expr`: interning a tree built by
    /// the operator overloads evaluates identically under any assignment.
    #[test]
    fn smart_constructors_agree_with_tree_builders(
        e in arb_int_expr(),
        vals in proptest::collection::vec(-3i64..9, 4),
    ) {
        let p = InternPool::default();
        let id = p.intern_int(&e);
        let lookup = |v: VarId| vals.get(v.0 as usize).copied();
        prop_assert_eq!(p.eval_int(id, &lookup), e.eval(&lookup));
        // Fully-concrete trees must fold to literals at intern time —
        // no arena nodes beyond the folded constant.
        let concrete = e.eval(&|v: VarId| vals.get(v.0 as usize).copied().map(|x| x.abs() + 1));
        if let Some(expected) = concrete {
            // Substitute the variables with constants and re-intern.
            fn subst(e: &IntExpr, vals: &[i64]) -> IntExpr {
                match e {
                    IntExpr::Const(c) => IntExpr::Const(*c),
                    IntExpr::Var(v) => IntExpr::Const(vals[v.0 as usize].abs() + 1),
                    IntExpr::Bin(op, a, b) => {
                        IntExpr::Bin(*op, Box::new(subst(a, vals)), Box::new(subst(b, vals)))
                    }
                }
            }
            let folded = p.intern_int(&subst(&e, &vals));
            prop_assert_eq!(p.as_const(folded), Some(expected));
        }
    }

    /// Exported models (with all exporter bugs off) are identical; with
    /// bugs on, export either crashes or yields a valid graph.
    #[test]
    fn exporter_preserves_validity(seed in 0u64..120) {
        use nnsmith::compilers::{export, BugConfig};
        use nnsmith::gen::{GenConfig, Generator};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let generator = Generator::new(GenConfig {
            target_ops: 6,
            ..GenConfig::default()
        });
        let model = generator.generate(&mut rng).expect("generation succeeds");
        let clean = export(&model.graph, &BugConfig::none()).expect("clean export");
        prop_assert_eq!(&clean.graph, &model.graph);
        if let Ok(buggy) = export(&model.graph, &BugConfig::all_on()) {
            prop_assert!(buggy.graph.validate().is_ok());
        }
    }
}
