//! Workspace integration tests: the full NNSmith pipeline against the
//! simulated compilers.

use std::time::Duration;

use nnsmith::compilers::{ortsim, trtsim, tvmsim, BugConfig, CompileOptions, CoverageSet};
use nnsmith::difftest::{
    run_campaign, run_case, CampaignConfig, TestCaseSource, TestOutcome, Tolerance,
};
use nnsmith::gen::GenConfig;
use nnsmith::search::SearchConfig;
use nnsmith::{NnSmith, NnSmithConfig};

fn quick(seed: u64) -> NnSmith {
    NnSmith::new(NnSmithConfig {
        gen: GenConfig {
            target_ops: 8,
            ..GenConfig::default()
        },
        search: SearchConfig {
            budget: Duration::from_millis(250),
            init_lo: -4.0,
            init_hi: 4.0,
            ..SearchConfig::default()
        },
        seed,
        max_attempts_per_case: 10,
        ..NnSmithConfig::default()
    })
}

/// With every seeded bug disabled, no compiler may ever disagree with the
/// reference — the core soundness property of the whole reproduction.
#[test]
fn clean_compilers_never_disagree_with_reference() {
    let mut fuzzer = quick(0xC1EA);
    let options = CompileOptions {
        bugs: BugConfig::none(),
        ..CompileOptions::default()
    };
    let compilers = [tvmsim(), ortsim(), trtsim()];
    let mut verdicts = 0;
    for _ in 0..6 {
        let Some(case) = fuzzer.next_case() else {
            continue;
        };
        for compiler in &compilers {
            let mut cov = CoverageSet::new();
            let outcome = run_case(compiler, &case, &options, Tolerance::default(), &mut cov);
            match outcome {
                TestOutcome::Pass | TestOutcome::NotImplemented | TestOutcome::NumericInvalid => {
                    verdicts += 1
                }
                other => panic!(
                    "clean {} disagreed: {other:?}\nmodel:\n{}",
                    compiler.system().name(),
                    case.graph.to_text()
                ),
            }
        }
    }
    assert!(verdicts >= 12, "only {verdicts} verdicts");
}

/// With the seeded bugs on, a short campaign must find some of them.
#[test]
fn seeded_bugs_are_discoverable() {
    let compiler = tvmsim();
    let mut fuzzer = quick(0xB06);
    let result = run_campaign(
        &compiler,
        &mut fuzzer,
        &CampaignConfig {
            duration: Duration::from_secs(8),
            ..CampaignConfig::default()
        },
    );
    assert!(result.cases >= 5, "only {} cases", result.cases);
    assert!(
        !result.bugs_found.is_empty(),
        "no seeded bugs found in {} cases",
        result.cases
    );
    // All findings must be real seeded ids.
    let registry = nnsmith::compilers::registry();
    for id in &result.bugs_found {
        assert!(
            registry.iter().any(|b| b.id == id.as_str()),
            "unknown bug id {id}"
        );
    }
}

/// Coverage accumulates monotonically and NNSmith covers pass files.
#[test]
fn campaign_coverage_is_monotone_and_reaches_passes() {
    let compiler = ortsim();
    let mut fuzzer = quick(0xC0FE);
    let result = run_campaign(
        &compiler,
        &mut fuzzer,
        &CampaignConfig {
            duration: Duration::from_secs(6),
            ..CampaignConfig::default()
        },
    );
    let mut prev = 0;
    for p in &result.timeline {
        assert!(p.total_branches >= prev, "coverage must not decrease");
        prev = p.total_branches;
    }
    assert!(result.pass_coverage(&compiler) > 0, "no pass coverage");
    assert!(
        result.total_coverage() <= compiler.manifest().total_branches() as usize,
        "coverage exceeds declared branches"
    );
}

/// The same seed reproduces the same campaign findings.
#[test]
fn campaigns_are_deterministic_modulo_time() {
    let compiler = tvmsim();
    let cfg = CampaignConfig {
        duration: Duration::from_secs(60),
        max_cases: Some(6),
        ..CampaignConfig::default()
    };
    let mut a = quick(7);
    let ra = run_campaign(&compiler, &mut a, &cfg);
    let mut b = quick(7);
    let rb = run_campaign(&compiler, &mut b, &cfg);
    assert_eq!(ra.cases, rb.cases);
    assert_eq!(ra.bugs_found, rb.bugs_found);
    assert_eq!(ra.coverage, rb.coverage);
}

/// Baselines plug into the same campaign driver.
#[test]
fn baselines_run_in_the_same_harness() {
    use nnsmith::baselines::{GraphFuzzer, GraphFuzzerConfig, Lemon};
    use rand::SeedableRng;
    let compiler = ortsim();
    let cfg = CampaignConfig {
        duration: Duration::from_secs(4),
        max_cases: Some(25),
        ..CampaignConfig::default()
    };
    let mut lemon = Lemon::new(rand::rngs::StdRng::seed_from_u64(1));
    let rl = run_campaign(&compiler, &mut lemon, &cfg);
    assert!(rl.cases > 0);
    let mut gf = GraphFuzzer::new(
        rand::rngs::StdRng::seed_from_u64(2),
        GraphFuzzerConfig::default(),
    );
    let rg = run_campaign(&compiler, &mut gf, &cfg);
    assert!(rg.cases > 0);
}

/// NNSmith finds strictly more seeded-bug *patterns* than the baselines
/// in a fixed model budget (the §5.4 expressiveness claim, miniaturized).
#[test]
fn nnsmith_reaches_more_bug_patterns_than_baselines() {
    use nnsmith::baselines::{GraphFuzzer, GraphFuzzerConfig, Lemon};
    use rand::SeedableRng;
    let registry = nnsmith::compilers::registry();
    let reach = |source: &mut dyn TestCaseSource, n: usize| -> usize {
        let mut hit = std::collections::BTreeSet::new();
        for _ in 0..n {
            let Some(case) = source.next_case() else {
                break;
            };
            for b in &registry {
                if b.triggers(&case.graph) {
                    hit.insert(b.id);
                }
            }
        }
        hit.len()
    };
    let mut nn = quick(9);
    let nn_count = reach(&mut nn, 40);
    let mut lemon = Lemon::new(rand::rngs::StdRng::seed_from_u64(3));
    let lemon_count = reach(&mut lemon, 40);
    let mut gf = GraphFuzzer::new(
        rand::rngs::StdRng::seed_from_u64(4),
        GraphFuzzerConfig::default(),
    );
    let gf_count = reach(&mut gf, 40);
    assert!(
        nn_count > lemon_count && nn_count > gf_count,
        "NNSmith {nn_count} vs LEMON {lemon_count} vs GraphFuzzer {gf_count}"
    );
}
