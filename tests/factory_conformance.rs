//! Cross-baseline conformance suite: every [`SourceFactory`] — NNSmith,
//! LEMON, GraphFuzzer and Tzer — must satisfy the same engine contract:
//!
//! 1. **Worker-count determinism** — for a fixed seed and shard count the
//!    merged, serialized campaign result is byte-identical at workers=1
//!    and workers=4 (the bit-reproducible merge behind every scaling
//!    claim);
//! 2. **Distinct per-shard RNG streams** — shard sources derive all
//!    randomness from their shard seed, and different shards produce
//!    different first cases;
//! 3. **Pool threading** — engine campaigns intern every tensor type into
//!    the campaign pool (no baseline path allocates a private mini-pool),
//!    the pool's node count grows during generation, and the process-wide
//!    live-node count returns to its baseline once the campaign state is
//!    dropped. (Tzer mutates low-level IR and interns nothing, which is
//!    its own conformance expectation.)
//!
//! The suite is macro-driven: one module per factory, same assertions.
//! Tests serialize on a file-global mutex because the live-node counter is
//! process-wide.

use std::sync::Mutex;
use std::time::Duration;

use nnsmith::baselines::{GraphFuzzerFactory, LemonFactory, TzerFactory};
use nnsmith::compilers::{ortsim, tvmsim, Compiler};
use nnsmith::difftest::{
    run_engine, shard_seed, CampaignConfig, EngineConfig, ShardCtx, SourceFactory,
};
use nnsmith::gen::GenConfig;
use nnsmith::pipeline::NnSmithFactory;
use nnsmith::solver::{live_node_count, InternPool};
use nnsmith::NnSmithConfig;

/// Serializes every test in this binary: the live-node assertions read a
/// process-wide counter that concurrently-running pool users would
/// perturb.
static GATE: Mutex<()> = Mutex::new(());

fn quick_nnsmith() -> NnSmithFactory {
    NnSmithFactory::new(NnSmithConfig {
        gen: GenConfig {
            target_ops: 5,
            ..GenConfig::default()
        },
        ..NnSmithConfig::default()
    })
}

fn engine_config(workers: usize, max_cases: usize) -> EngineConfig {
    EngineConfig {
        workers,
        shards: 4,
        seed: 1234,
        campaign: CampaignConfig {
            duration: Duration::from_secs(600),
            max_cases: Some(max_cases),
            ..CampaignConfig::default()
        },
    }
}

fn assert_workers_agree(compiler: &Compiler, factory: &dyn SourceFactory, max_cases: usize) {
    let one = run_engine(compiler, factory, &engine_config(1, max_cases));
    let four = run_engine(compiler, factory, &engine_config(4, max_cases));
    assert_eq!(one.result.cases, max_cases);
    assert_eq!(
        serde::json::to_string(&one.result),
        serde::json::to_string(&four.result),
        "{}: merged result depends on the worker count",
        factory.name()
    );
    for (a, b) in one.shard_results.iter().zip(&four.shard_results) {
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.coverage, b.coverage);
        assert_eq!(a.bugs_found, b.bugs_found);
    }
    // The campaign arena is content-addressed, so even its counters must
    // not depend on worker interleaving.
    assert_eq!(one.arena, four.arena);
}

fn assert_distinct_shard_streams(factory: &dyn SourceFactory) {
    let pool = InternPool::default();
    let ctx = |index| ShardCtx {
        index,
        count: 2,
        seed: shard_seed(77, index),
    };
    let mut a = factory.make_source_in(&pool, ctx(0));
    let mut b = factory.make_source_in(&pool, ctx(1));
    let ca = a.next_case().expect("case");
    let cb = b.next_case().expect("case");
    assert!(
        ca.graph != cb.graph || ca.ir != cb.ir,
        "{}: shard streams must be independent",
        factory.name()
    );
    // And re-creating shard 0 replays the identical stream.
    let mut a2 = factory.make_source_in(&pool, ctx(0));
    let ra = a2.next_case().expect("case");
    assert_eq!(ca.graph, ra.graph);
    assert_eq!(ca.ir, ra.ir);
}

fn assert_pool_threading(factory: &dyn SourceFactory, interns: bool) {
    let baseline = live_node_count();
    {
        let pool = InternPool::default();
        let before = pool.stats();
        let mut source = factory.make_source_in(
            &pool,
            ShardCtx {
                index: 0,
                count: 1,
                seed: shard_seed(5, 0),
            },
        );
        let mut cases = Vec::new();
        for _ in 0..3 {
            cases.push(source.next_case().expect("case"));
        }
        if interns {
            // Intern *traffic*, not just private growth: a zoo whose dims
            // are all canonical small constants resolves entirely in the
            // shared base segment, so the private node count may stand
            // still — but every one of those lookups bumps this pool's
            // per-pool base counters, which is exactly the proof that the
            // source threaded the campaign pool rather than a mini-pool.
            let after = pool.stats();
            assert!(
                after.int_nodes > before.int_nodes
                    || after.base_hits + after.base_misses > before.base_hits + before.base_misses,
                "{}: campaign pool saw no intern traffic",
                factory.name()
            );
            // The strong form of "no private mini-pools": every tensor
            // type of every emitted case is homed in the campaign pool.
            for case in &cases {
                for v in case.graph.all_values() {
                    assert!(
                        case.graph.value_type(v).pool().same_pool(&pool),
                        "{}: type homed outside the campaign pool",
                        factory.name()
                    );
                }
            }
        } else {
            // IR sources have nothing to intern — and must not sneak a
            // mini-pool in through an empty graph.
            assert_eq!(
                pool.stats().int_nodes,
                before.int_nodes,
                "{}",
                factory.name()
            );
            for case in &cases {
                assert!(case.is_ir());
                assert_eq!(case.graph.len(), 0);
            }
        }
    }
    // Campaign state dropped: every node the campaign interned (in the
    // shared pool or anywhere else) has been reclaimed.
    assert_eq!(
        live_node_count(),
        baseline,
        "{}: campaign leaked interned nodes",
        factory.name()
    );
}

macro_rules! conformance_suite {
    ($modname:ident, $factory:expr, $compiler:expr, cases: $cases:expr, interns: $interns:expr) => {
        mod $modname {
            use super::*;

            #[test]
            fn workers_1_and_4_agree_bit_for_bit() {
                let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
                assert_workers_agree(&$compiler, &$factory, $cases);
            }

            #[test]
            fn shard_rng_streams_are_distinct_and_replayable() {
                let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
                assert_distinct_shard_streams(&$factory);
            }

            #[test]
            fn campaign_pool_is_threaded_and_reclaimed() {
                let _gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
                assert_pool_threading(&$factory, $interns);
            }
        }
    };
}

conformance_suite!(nnsmith_suite, quick_nnsmith(), ortsim(), cases: 12, interns: true);
conformance_suite!(lemon_suite, LemonFactory, ortsim(), cases: 16, interns: true);
conformance_suite!(graphfuzzer_suite, GraphFuzzerFactory::default(), ortsim(), cases: 16, interns: true);
conformance_suite!(tzer_suite, TzerFactory::default(), tvmsim(), cases: 64, interns: false);
