//! Cross-backend differential matrix: one generated case, every
//! compiler.
//!
//! Pins the three contracts of the backend-set refactor:
//!
//! * **determinism** — a multi-backend, case-budgeted engine run is
//!   byte-identical across worker counts, including per-backend coverage
//!   sets, per-backend bug sets and backend-keyed triage bins;
//! * **attribution** — each backend's bug set contains only bugs seeded
//!   in that backend (or in the shared exporter frontend, whose bugs
//!   legitimately surface through any backend's differential run), and a
//!   3-backend campaign reaches seeded bugs from all three registries in
//!   one run;
//! * **backend-keyed binning** — the same symptom observed on two
//!   backends lands in two triage bins, each reduced and replayable
//!   against its originating backend.

use std::time::Duration;

use nnsmith_compilers::{bug_by_id, BackendSet, System};
use nnsmith_core::{NnSmithConfig, NnSmithFactory};
use nnsmith_difftest::{
    run_matrix_engine, CampaignConfig, EngineConfig, EngineReport, FnSourceFactory, ShardCtx,
    TestCase, TestCaseSource,
};
use nnsmith_graph::{Graph, NodeId, NodeKind, TensorType, ValueRef};
use nnsmith_ops::{Bindings, Op, UnaryKind};
use nnsmith_tensor::{DType, Tensor};
use nnsmith_triage::{run_matrix_triaged_engine, TriageConfig};

/// The backend set under test; the CI matrix overrides it per axis
/// (`BACKEND_MATRIX_SET=tvm` / `tvm,ort` / `tvm,ort,trt`).
fn backend_set() -> BackendSet {
    let spec = std::env::var("BACKEND_MATRIX_SET").unwrap_or_else(|_| "tvm,ort,trt".into());
    let names: Vec<&str> = spec.split(',').collect();
    BackendSet::from_names(&names).expect("BACKEND_MATRIX_SET names a known backend set")
}

fn engine_config(backends: &BackendSet, workers: usize, cases: usize, seed: u64) -> EngineConfig {
    EngineConfig {
        workers,
        shards: 4,
        seed,
        campaign: CampaignConfig {
            // Case-budgeted: the deadline never fires, which is what
            // makes the run reproducible across worker counts.
            duration: Duration::from_secs(86_400),
            max_cases: Some(cases),
            backends: backends.iter().cloned().collect(),
            ..CampaignConfig::default()
        },
    }
}

fn nnsmith_matrix_run(backends: &BackendSet, workers: usize, cases: usize) -> EngineReport {
    let factory = NnSmithFactory::for_backends(NnSmithConfig::default(), backends);
    run_matrix_engine(&factory, &engine_config(backends, workers, cases, 20))
}

/// NNSmith cases are expensive in unoptimized builds; keep tier-1 (debug)
/// budgets small and run the full budgets in release (CI's backend-matrix
/// job and the release workspace tests).
fn scaled(cases: usize) -> usize {
    if cfg!(debug_assertions) {
        (cases / 3).max(8)
    } else {
        cases
    }
}

#[test]
fn matrix_engine_deterministic_across_worker_counts() {
    let backends = backend_set();
    let cases = scaled(24);
    let one = nnsmith_matrix_run(&backends, 1, cases);
    let four = nnsmith_matrix_run(&backends, 4, cases);
    assert_eq!(one.result.cases, cases);
    // Byte-equality of the full merged result: per-backend coverage,
    // bug sets, crash keys, the logical timeline — everything serialized
    // (the merged timeline is the logical case clock, not wall time).
    assert_eq!(
        serde::json::to_string(&one.result),
        serde::json::to_string(&four.result),
        "merged matrix results must not depend on the worker count"
    );
    // Per-shard results are deterministic too, except their wall-clock
    // timelines (`elapsed_ms` is real time inside one shard).
    for (a, b) in one.shard_results.iter().zip(&four.shard_results) {
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.numeric_invalid, b.numeric_invalid);
        assert_eq!(a.mismatches, b.mismatches);
        assert_eq!(
            serde::json::to_string(&a.per_backend),
            serde::json::to_string(&b.per_backend),
            "per-shard per-backend results must not depend on the worker count"
        );
    }
}

#[test]
fn per_backend_bug_sets_stay_in_their_registry() {
    let backends = backend_set();
    let report = nnsmith_matrix_run(&backends, 2, scaled(48));
    assert_eq!(report.result.backends, backends.names());
    for compiler in backends.iter() {
        let name = compiler.system().name();
        let result = report.result.backend(name).expect("backend entry");
        for id in &result.bugs_found {
            let bug = bug_by_id(id).unwrap_or_else(|| panic!("{name} found unknown bug id {id:?}"));
            assert!(
                bug.system == compiler.system() || bug.system == System::Exporter,
                "{name} must only exhibit its own (or the exporter's) seeded bugs, got {id} \
                 seeded in {:?}",
                bug.system
            );
        }
        // Every backend's case count matches the campaign: no backend
        // was silently skipped.
        assert!(
            !result.coverage.is_empty(),
            "{name} accumulated no coverage — was it ever run?"
        );
    }
}

/// The acceptance gate: one 3-backend campaign reaches seeded bugs from
/// all three registries (`tvmsim`, `ortsim`, `trtsim`) — two-thirds of
/// the seeded bug surface was unreachable from a single-backend run.
#[test]
fn three_backend_campaign_reaches_all_three_registries() {
    if cfg!(debug_assertions) {
        // 160 NNSmith cases x 3 backends is a release-scale budget; the
        // CI backend-matrix job and the release workspace tests run it.
        eprintln!("skipping 3-registry reachability in debug (release-only budget)");
        return;
    }
    let backends = BackendSet::all();
    let report = nnsmith_matrix_run(&backends, 2, 160);
    let per_system = |sys: System| {
        report
            .result
            .bugs_found
            .iter()
            .filter(|id| bug_by_id(id).is_some_and(|b| b.system == sys))
            .count()
    };
    for sys in [System::TvmSim, System::OrtSim, System::TrtSim] {
        assert!(
            per_system(sys) > 0,
            "no seeded {sys:?} bug reached in a 3-backend campaign; found {:?}",
            report.result.bugs_found
        );
    }
    // And the per-backend attribution agrees: each backend's own set
    // carries its system's ids.
    for compiler in backends.iter() {
        let own = &report
            .result
            .backend(compiler.system().name())
            .expect("backend entry")
            .bugs_found;
        assert!(
            own.iter()
                .any(|id| bug_by_id(id).is_some_and(|b| b.system == compiler.system())),
            "{} exhibited no bug of its own registry: {own:?}",
            compiler.system().name()
        );
    }
}

/// Source emitting cases that trigger the exporter's Log2-of-scalar
/// mis-export (exp-1) — a semantic mismatch every backend observes —
/// interleaved with clean cases.
struct Log2Source {
    emitted: usize,
    n: usize,
}

impl TestCaseSource for Log2Source {
    fn name(&self) -> &str {
        "log2"
    }
    fn next_case(&mut self) -> Option<TestCase> {
        if self.emitted >= self.n {
            return None;
        }
        self.emitted += 1;
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[])],
        );
        let kind = if self.emitted.is_multiple_of(2) {
            UnaryKind::Log2
        } else {
            UnaryKind::Tanh
        };
        g.add_node(
            NodeKind::Operator(Op::Unary(kind)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[])],
        );
        let mut b = Bindings::new();
        b.insert(
            NodeId(0),
            Tensor::scalar(DType::F32, 2.0 + self.emitted as f64 * 0.5),
        );
        Some(TestCase::from_bindings(g, b))
    }
}

/// The backend-keyed binning regression: one root cause (exp-1) observed
/// on two backends must produce **two** bins — `tvmsim::…` and
/// `ortsim::…` — each with a reproducer that replays against its own
/// backend.
#[test]
fn same_symptom_on_two_backends_bins_separately() {
    let backends = BackendSet::from_names(&["tvm", "ort"]).expect("known");
    let factory = FnSourceFactory::new("log2", |_: ShardCtx| {
        Box::new(Log2Source { emitted: 0, n: 4 }) as Box<dyn TestCaseSource + Send>
    });
    let mut config = engine_config(&backends, 2, 8, 3);
    // Keep every duplicate firing so the backend dimension — not
    // fix-on-find — is what separates the bins.
    config.campaign.fix_found_bugs = false;
    let (report, triage) = run_matrix_triaged_engine(&factory, &config, &TriageConfig::default());

    // Both backends observed the same mismatches.
    assert_eq!(report.result.mismatches % 2, 0);
    assert!(report.result.mismatches > 0);
    let keys: Vec<&String> = triage.bins.keys().collect();
    assert_eq!(
        triage.bins.len(),
        2,
        "one symptom on two backends must make exactly two bins, got {keys:?}"
    );
    for (prefix, signature_backend) in [("tvmsim::", "tvmsim"), ("ortsim::", "ortsim")] {
        let (_, bin) = triage
            .bins
            .iter()
            .find(|(k, _)| k.starts_with(prefix))
            .unwrap_or_else(|| panic!("missing {prefix} bin in {keys:?}"));
        assert_eq!(bin.backend, signature_backend);
        assert_eq!(bin.bug_ids, vec!["exp-1".to_string()]);
        assert_eq!(bin.reproducer.compiler, signature_backend);
        let replay = bin.reproducer.replay().expect("known compiler");
        assert!(
            replay.reproduced,
            "{signature_backend} reproducer must replay on its own backend, observed {:?}",
            replay.observed
        );
    }
    // And the two bins carry the *same* signature — only the backend
    // dimension separates them.
    let sigs: Vec<_> = triage.bins.values().map(|b| &b.signature).collect();
    assert_eq!(sigs[0], sigs[1]);
}
