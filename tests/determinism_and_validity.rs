//! Workspace integration tests: determinism, validity rates, and the
//! paper's structural claims about generated models.

use std::collections::HashSet;

use nnsmith::gen::{GenConfig, Generator};
use nnsmith::graph::NodeKind;
use nnsmith::ops::Op;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// 100% of generated models must be valid (type-check and execute) — the
/// paper's generation-validity guarantee.
#[test]
fn all_generated_models_are_valid() {
    let generator = Generator::new(GenConfig::default());
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = generator.generate(&mut rng).expect("generation");
        assert!(model.graph.validate().is_ok(), "seed {seed}");
        assert!(model.graph.is_concrete(), "seed {seed}");
        // Spec re-check of every operator (type checking).
        for id in model.graph.operators() {
            let node = model.graph.node(id);
            let op = node.kind.as_operator().unwrap();
            let types: Vec<_> = node
                .inputs
                .iter()
                .map(|v| model.graph.value_type(*v).clone())
                .collect();
            for c in op.requires(&types).expect("spec applies") {
                assert_eq!(
                    c,
                    nnsmith::solver::BoolExpr::Lit(true),
                    "seed {seed}: {} violates {c}",
                    op.name()
                );
            }
        }
    }
}

/// The generator produces a wide operator vocabulary over a few dozen
/// models — the diversity half of "diverse yet valid".
#[test]
fn generation_covers_many_operator_kinds() {
    let generator = Generator::new(GenConfig::default());
    let mut names: HashSet<&'static str> = HashSet::new();
    let mut dtypes: HashSet<nnsmith::tensor::DType> = HashSet::new();
    let mut ranks: HashSet<usize> = HashSet::new();
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = generator.generate(&mut rng).expect("generation");
        for (_, node) in model.graph.iter() {
            if let NodeKind::Operator(op) = &node.kind {
                names.insert(op.name());
            }
            for t in &node.outputs {
                dtypes.insert(t.dtype);
                ranks.insert(t.rank());
            }
        }
    }
    assert!(names.len() >= 30, "only {} distinct operators", names.len());
    assert!(dtypes.len() >= 4, "only {:?}", dtypes);
    assert!(ranks.contains(&4) && ranks.contains(&1), "ranks: {ranks:?}");
}

/// Multi-input and multi-output models occur (the §3.2 claim about
/// multi-modal / multi-task model shapes).
#[test]
fn multi_input_and_multi_output_models_occur() {
    let generator = Generator::new(GenConfig::default());
    let mut multi_input = 0;
    let mut multi_output = 0;
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = generator.generate(&mut rng).expect("generation");
        let inputs = model
            .graph
            .iter()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Input))
            .count();
        if inputs >= 2 {
            multi_input += 1;
        }
        if model.graph.output_values().len() >= 2 {
            multi_output += 1;
        }
    }
    assert!(multi_input > 0, "no multi-input models in 30");
    assert!(multi_output > 0, "no multi-output models in 30");
}

/// Non-shape-preserving connections occur routinely — the structural
/// expressiveness LEMON/GraphFuzzer lack (§2.3, M0 pattern).
#[test]
fn non_shape_preserving_patterns_occur() {
    let generator = Generator::new(GenConfig::default());
    let mut broadcasting_binary = 0;
    let mut shape_changing = 0;
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = generator.generate(&mut rng).expect("generation");
        for id in model.graph.operators() {
            let node = model.graph.node(id);
            match node.kind.as_operator().unwrap() {
                Op::Binary(_) | Op::Compare(_) => {
                    let a = model.graph.value_type(node.inputs[0]);
                    let b = model.graph.value_type(node.inputs[1]);
                    if a.concrete_shape() != b.concrete_shape() {
                        broadcasting_binary += 1;
                    }
                }
                Op::Reshape { .. }
                | Op::Conv2d { .. }
                | Op::Reduce { .. }
                | Op::BroadcastTo { .. }
                | Op::Slice { .. } => shape_changing += 1,
                _ => {}
            }
        }
    }
    assert!(
        broadcasting_binary > 0,
        "no broadcasting binaries generated"
    );
    assert!(
        shape_changing > 5,
        "only {shape_changing} shape-changing ops"
    );
}

/// Attribute binning measurably diversifies attributes (the Fig. 9
/// mechanism): with binning, strictly more distinct dimension values
/// appear than without.
#[test]
fn binning_increases_attribute_diversity() {
    let count_values = |binning: bool| -> usize {
        let generator = Generator::new(GenConfig {
            binning,
            ..GenConfig::default()
        });
        let mut distinct: HashSet<i64> = HashSet::new();
        for seed in 100..115u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let model = generator.generate(&mut rng).expect("generation");
            for v in model.graph.all_values() {
                for d in model.graph.value_type(v).concrete_shape().unwrap() {
                    distinct.insert(d);
                }
            }
        }
        distinct.len()
    };
    let with = count_values(true);
    let without = count_values(false);
    assert!(
        with > without,
        "binning {with} distinct dims vs base {without}"
    );
}

/// Model JSON serialization is deterministic and well-formed (the
/// ONNX-interchange role). The offline serde stand-in has no
/// deserializer, so instead of a full round-trip this checks that
/// same-seed models serialize byte-identically, different seeds differ,
/// and the output is balanced JSON.
#[test]
fn models_serialize_deterministically_to_json() {
    let generator = Generator::new(GenConfig::default());
    let mut encodings = Vec::new();
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = generator.generate(&mut rng).expect("generation");
        let js = serde::json::to_string(&model.graph);
        let mut rng2 = StdRng::seed_from_u64(seed);
        let model2 = generator.generate(&mut rng2).expect("generation");
        assert_eq!(js, serde::json::to_string(&model2.graph));
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escaped = false;
        for c in js.chars() {
            match c {
                _ if escaped => escaped = false,
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced JSON");
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(js.contains("\"nodes\""), "graph fields present");
        encodings.push(js);
    }
    let distinct: std::collections::HashSet<&String> = encodings.iter().collect();
    assert_eq!(distinct.len(), 5, "different seeds serialize differently");
}
