//! Arena soak test: the executable form of the ROADMAP's paper-scale
//! memory warning.
//!
//! The paper's headline experiments are 4-hour campaigns. Under the old
//! process-wide arena every distinct constraint node a campaign interned
//! stayed live for the process lifetime, so days-long runs grew without
//! bound. With per-campaign [`InternPool`]s, dropping the campaign's pool
//! must return the process's live interned-node count to its baseline.
//! This test runs many sequential compressed-scale campaigns and pins
//! exactly that invariant after each one.
//!
//! Single `#[test]` on purpose: the live-node counter is process-global,
//! and a concurrently-running test interning into its own pool would make
//! the baseline assertion racy. (CI also pins `RUST_TEST_THREADS=1` for
//! this binary.)

use std::time::Duration;

use nnsmith::compilers::ortsim;
use nnsmith::difftest::{run_engine, CampaignConfig, EngineConfig};
use nnsmith::gen::GenConfig;
use nnsmith::pipeline::NnSmithFactory;
use nnsmith::search::SearchConfig;
use nnsmith::solver::{live_node_count, InternPool};
use nnsmith::NnSmithConfig;

fn mini_campaign_config(seed: u64) -> EngineConfig {
    EngineConfig {
        workers: 2,
        shards: 2,
        seed,
        campaign: CampaignConfig {
            duration: Duration::from_secs(120),
            max_cases: Some(4),
            ..CampaignConfig::default()
        },
    }
}

fn quick_pipeline() -> NnSmithConfig {
    NnSmithConfig {
        gen: GenConfig {
            target_ops: 4,
            ..GenConfig::default()
        },
        search: SearchConfig {
            budget: Duration::from_millis(100),
            max_iters: Some(128),
            init_lo: -4.0,
            init_hi: 4.0,
            ..SearchConfig::default()
        },
        seed: 0,
        max_attempts_per_case: 6,
        ..NnSmithConfig::default()
    }
}

#[test]
fn sequential_mini_campaigns_reclaim_interned_memory() {
    // Warm up anything lazily allocated outside pools — including the
    // process-wide read-only base segment, built on the first intern —
    // then take the baseline.
    {
        let warm = InternPool::default();
        warm.constant(1);
    }
    let baseline = live_node_count();

    // Base-resident interning is excluded from reclamation accounting:
    // resolving the whole canonical constant range allocates nothing and
    // moves the live count not at all, even while the pool is alive.
    {
        let pool = InternPool::default();
        for i in -8..=256 {
            pool.constant(i);
        }
        assert_eq!(
            live_node_count(),
            baseline,
            "base-resident interning must not touch the live-node account"
        );
    }
    assert_eq!(live_node_count(), baseline);

    let compiler = ortsim();
    let mut per_campaign_nodes = Vec::new();
    for round in 0..4u64 {
        let factory = NnSmithFactory::new(quick_pipeline());
        let report = run_engine(&compiler, &factory, &mini_campaign_config(round + 1));
        assert!(report.result.cases > 0, "round {round} produced no cases");
        assert!(
            report.arena.int_nodes > 0,
            "round {round}: the campaign pool must have interned (shards share it)"
        );
        per_campaign_nodes.push(report.arena.int_nodes);
        assert!(
            report.arena.base_hits > 0,
            "round {round}: campaign generation never touched the base segment"
        );
        // The engine dropped its pool when the run returned, and the
        // report holds no tensor types (capture_failures is off): every
        // node the campaign interned must be reclaimed.
        drop(report);
        assert_eq!(
            live_node_count(),
            baseline,
            "round {round}: campaign pool drop leaked interned nodes"
        );
    }

    // Sanity: campaigns really exercised the arena, not a few stray nodes.
    // The absolute counts are small by design and shrank twice over: hash
    // consing stores structurally equal caps once, the base segment absorbs
    // the canonical constants/vars entirely, and the per-source op memo
    // skips re-derivation — what remains private is the campaign-specific
    // tail (the base_hits assertion above covers the shared head).
    assert!(
        per_campaign_nodes.iter().all(|&n| n > 20),
        "campaigns interned suspiciously little: {per_campaign_nodes:?}"
    );

    // A handle that outlives the campaign keeps exactly its pool alive —
    // reclamation is reference-counted, not scope-bound. (Constants are
    // offset past the base segment's canonical range so every node here
    // is genuinely private and accounted.)
    let escaped = {
        let pool = InternPool::default();
        for i in 0..50 {
            pool.constant(3000 + i);
        }
        pool.clone()
    };
    assert_eq!(live_node_count(), baseline + 50);
    drop(escaped);
    assert_eq!(live_node_count(), baseline);

    // Optional CI artifact: machine-readable soak stats next to the
    // BENCH_*.json records.
    if let Ok(path) = std::env::var("ARENA_SOAK_JSON") {
        let rounds: Vec<String> = per_campaign_nodes.iter().map(|n| n.to_string()).collect();
        let json = format!(
            "{{\"baseline_live_nodes\":{baseline},\"campaign_int_nodes\":[{}],\"leak_free\":true}}",
            rounds.join(",")
        );
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("could not write {path}: {e}");
        }
    }
}
