//! # nnsmith
//!
//! A from-scratch Rust reproduction of **NNSmith: Generating Diverse and
//! Valid Test Cases for Deep Learning Compilers** (ASPLOS 2023).
//!
//! NNSmith fuzzes deep-learning compilers by (1) generating structurally
//! diverse *and valid* DNN computation graphs with an SMT-style constraint
//! solver, (2) finding model inputs/weights that avoid NaN/Inf with
//! gradient-guided search, and (3) differentially testing compiled models
//! against a reference interpreter.
//!
//! This umbrella crate re-exports the full workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`solver`] | incremental integer constraint solver (the Z3 role) |
//! | [`tensor`] | tensor runtime + autodiff (the PyTorch role) |
//! | [`graph`] | computation-graph IR |
//! | [`ops`] | operator specifications: `requires`/`type_transfer`/eval/vjp |
//! | [`gen`] | Algorithms 1–2: insertion-based generation, attribute binning |
//! | [`search`] | Algorithm 3: gradient-guided value search |
//! | [`compilers`] | simulated compilers (tvmsim/ortsim/trtsim), coverage, 72 seeded bugs |
//! | [`difftest`] | oracle comparison, fault localization, campaign driver |
//! | [`baselines`] | LEMON / GraphFuzzer / Tzer reimplementations |
//! | [`triage`] | test-case reduction, bug dedup, reproducer corpus |
//! | [`obs`] | phase profiler, deterministic views, structured event log |
//! | [`service`] | distributed resumable campaigns: work-units, orchestrator, snapshots |
//! | [`pipeline`] | the end-to-end fuzzer ([`NnSmith`]) |
//!
//! ## Quickstart
//!
//! ```
//! use nnsmith::{NnSmith, NnSmithConfig};
//! use nnsmith::difftest::{run_case, TestCaseSource, Tolerance};
//! use nnsmith::compilers::{tvmsim, CompileOptions, CoverageSet};
//!
//! let mut fuzzer = NnSmith::new(NnSmithConfig { seed: 1, ..Default::default() });
//! let case = fuzzer.next_case().expect("valid test case");
//! let mut cov = CoverageSet::new();
//! let outcome = run_case(&tvmsim(), &case, &CompileOptions::default(),
//!                        Tolerance::default(), &mut cov);
//! println!("{outcome:?}; covered {} branches", cov.len());
//! ```

pub use nnsmith_baselines as baselines;
pub use nnsmith_compilers as compilers;
pub use nnsmith_core as pipeline;
pub use nnsmith_difftest as difftest;
pub use nnsmith_gen as gen;
pub use nnsmith_graph as graph;
pub use nnsmith_obs as obs;
pub use nnsmith_ops as ops;
pub use nnsmith_search as search;
pub use nnsmith_service as service;
pub use nnsmith_solver as solver;
pub use nnsmith_tensor as tensor;
pub use nnsmith_triage as triage;

pub use nnsmith_core::{NnSmith, NnSmithConfig, PipelineStats};
