//! The service worker executable: one campaign work-unit per stdin
//! line, one outcome per stdout line (see `nnsmith_service::child_loop`).
//!
//! `nnsmith-service` re-execs `current_exe()` by default, which works
//! for real binaries whose `main` starts with
//! `nnsmith_service::maybe_work_unit_child()`. Integration tests can't
//! use that path (their `current_exe` is the libtest harness, which
//! would swallow `work-unit` as a test filter), so they point
//! `ServiceConfig::worker` at this dedicated binary instead — and it
//! doubles as the worker for any external orchestration.

fn main() {
    nnsmith::service::child_loop();
}
