//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: range and
//! tuple strategies, `collection::vec`, `prop_map` / `prop_flat_map`,
//! `any::<bool>()`, the `proptest!` macro (with `#![proptest_config(..)]`),
//! and `prop_assert*`. Sampling is deterministic per test (seeded from the
//! test name and case index); shrinking is not implemented — a failing
//! input is reported as-is by the standard assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The sampling source handed to strategies.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Creates a runner with a deterministic seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A generator of random values (no shrinking in this stand-in).
pub trait Strategy {
    /// Type of values produced.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing function and
    /// samples the result.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, runner: &mut TestRunner) -> U {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, runner: &mut TestRunner) -> S2::Value {
        (self.f)(self.inner.generate(runner)).generate(runner)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                ($(self.$idx.generate(runner),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    fn arbitrary() -> BoxedStrategy<Self>;
}

/// Object-safe boxed strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRunner) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        (self.0)(runner)
    }
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy(Box::new(|r| r.rng().gen_bool(0.5)))
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                BoxedStrategy(Box::new(|r| r.rng().gen_range(<$t>::MIN..=<$t>::MAX)))
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRunner};
    use rand::Rng;

    /// Length specifications accepted by [`vec`].
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, runner: &mut TestRunner) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _runner: &mut TestRunner) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn sample_len(&self, runner: &mut TestRunner) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                runner.rng().gen_range(self.clone())
            }
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn sample_len(&self, runner: &mut TestRunner) -> usize {
            runner.rng().gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = self.size.sample_len(runner);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRunner,
    };
}

/// FNV-1a over the test name, for per-test deterministic seeds.
#[doc(hidden)]
pub fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// The proptest entry macro: wraps each `fn name(arg in strategy, ..)`
/// into a `#[test]` that samples the strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __runner = $crate::TestRunner::from_seed(
                    $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), __case),
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __runner);)*
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..10, 10i64..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_sample_in_bounds(a in 3usize..7, b in -2i64..=2) {
            prop_assert!((3..7).contains(&a));
            prop_assert!((-2..=2).contains(&b));
        }

        #[test]
        fn vec_and_map(v in crate::collection::vec(1usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (1..5).contains(&x)));
        }

        #[test]
        fn flat_map_and_tuples(p in pair().prop_flat_map(|(a, b)| (a..b, Just(a)))) {
            let (x, lo) = p;
            prop_assert!(x >= lo);
        }

        #[test]
        fn any_bool_works(bits in crate::collection::vec(any::<bool>(), 1..10)) {
            prop_assert!(!bits.is_empty());
        }
    }
}
