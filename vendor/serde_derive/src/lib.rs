//! Offline stand-in for `serde_derive`.
//!
//! The build environment cannot reach crates.io, so this proc-macro crate
//! re-implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` by hand
//! (no `syn`/`quote`). `Serialize` generates a JSON emitter compatible with
//! the shim `serde` crate's `Serialize` trait; `Deserialize` generates a
//! marker impl. The parser covers what this workspace actually derives:
//! plain structs (named/tuple/unit) and enums (unit/tuple/struct variants),
//! with simple type parameters and no `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a type definition.
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(NamedStruct fields)` or
    /// `Some(TupleStruct arity)` otherwise.
    fields: Option<VariantFields>,
}

enum VariantFields {
    Named(Vec<String>),
    Tuple(usize),
}

struct Parsed {
    name: String,
    generics: Vec<String>,
    shape: Shape,
}

/// Skips `#[...]` attribute pairs starting at `i`; returns the new index.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Consumes a balanced `<...>` generics list starting at the `<`; returns
/// (type-parameter names, index just past the closing `>`).
fn parse_generics(tokens: &[TokenTree], mut i: usize) -> (Vec<String>, usize) {
    let mut depth = 0i32;
    let mut params = Vec::new();
    let mut expect_param = false;
    while let Some(tok) = tokens.get(i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                if depth == 1 {
                    expect_param = true;
                }
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                expect_param = true;
            }
            TokenTree::Punct(p)
                if p.as_char() == '\''
                // Lifetime parameter: the next ident is not a type param.
                && depth == 1 =>
            {
                expect_param = false;
            }
            TokenTree::Ident(id) if depth == 1 && expect_param => {
                let s = id.to_string();
                if s != "const" {
                    params.push(s);
                }
                expect_param = false;
            }
            _ => {}
        }
        i += 1;
    }
    (params, i)
}

/// Parses the comma-separated field names of a named-field body.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        fields.push(name.to_string());
        i += 1;
        // Skip `: Type` until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple body (top-level comma count).
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1usize;
    let mut trailing_comma = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Some(VariantFields::Tuple(count_tuple_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(VariantFields::Named(parse_named_fields(g)))
            }
            _ => None,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected `struct` or `enum`, found {other:?}"),
    };
    assert!(
        kind == "struct" || kind == "enum",
        "derive: unsupported item `{kind}`"
    );
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected type name, found {other:?}"),
    };
    i += 1;
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            let (params, next) = parse_generics(&tokens, i);
            generics = params;
            i = next;
        }
    }
    // Skip a `where` clause if present (none expected in this workspace).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }
    let shape = if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => panic!("derive: enum without body: {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g))
            }
            _ => Shape::UnitStruct,
        }
    };
    Parsed {
        name,
        generics,
        shape,
    }
}

/// `impl<K: ::serde::Trait> ::serde::Trait for Name<K>` header pieces.
fn impl_header(p: &Parsed, trait_name: &str) -> (String, String) {
    if p.generics.is_empty() {
        (String::new(), p.name.clone())
    } else {
        let bounds: Vec<String> = p
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let args = p.generics.join(", ");
        (
            format!("<{}>", bounds.join(", ")),
            format!("{}<{}>", p.name, args),
        )
    }
}

fn gen_named_fields_body(fields: &[String], accessor: &dyn Fn(&str) -> String) -> String {
    let mut body = String::from("out.push('{');\n");
    for (idx, f) in fields.iter().enumerate() {
        if idx > 0 {
            body.push_str("out.push(',');\n");
        }
        body.push_str(&format!("out.push_str(\"\\\"{f}\\\":\");\n"));
        body.push_str(&format!(
            "::serde::Serialize::serialize_value({}, out);\n",
            accessor(f)
        ));
    }
    body.push_str("out.push('}');\n");
    body
}

/// Hand-rolled `#[derive(Serialize)]`: implements the shim `serde`
/// crate's JSON-emitting `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let p = parse_input(input);
    let (generics, ty) = impl_header(&p, "Serialize");
    let body = match &p.shape {
        Shape::UnitStruct => "out.push_str(\"null\");\n".to_string(),
        Shape::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0, out);\n".to_string(),
        Shape::TupleStruct(n) => {
            let mut body = String::from("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    body.push_str("out.push(',');\n");
                }
                body.push_str(&format!(
                    "::serde::Serialize::serialize_value(&self.{i}, out);\n"
                ));
            }
            body.push_str("out.push(']');\n");
            body
        }
        Shape::NamedStruct(fields) => gen_named_fields_body(fields, &|f| format!("&self.{f}")),
        Shape::Enum(variants) => {
            let name = &p.name;
            let mut body = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => {
                        body.push_str(&format!(
                            "{name}::{vn} => out.push_str(\"\\\"{vn}\\\"\"),\n"
                        ));
                    }
                    Some(VariantFields::Tuple(n)) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pat = binders.join(", ");
                        let mut arm = format!("{name}::{vn}({pat}) => {{\n");
                        arm.push_str(&format!("out.push_str(\"{{\\\"{vn}\\\":\");\n"));
                        if *n == 1 {
                            arm.push_str("::serde::Serialize::serialize_value(__f0, out);\n");
                        } else {
                            arm.push_str("out.push('[');\n");
                            for (i, b) in binders.iter().enumerate() {
                                if i > 0 {
                                    arm.push_str("out.push(',');\n");
                                }
                                arm.push_str(&format!(
                                    "::serde::Serialize::serialize_value({b}, out);\n"
                                ));
                            }
                            arm.push_str("out.push(']');\n");
                        }
                        arm.push_str("out.push('}');\n}\n");
                        body.push_str(&arm);
                    }
                    Some(VariantFields::Named(fields)) => {
                        let pat = fields.join(", ");
                        let mut arm = format!("{name}::{vn} {{ {pat} }} => {{\n");
                        arm.push_str(&format!("out.push_str(\"{{\\\"{vn}\\\":\");\n"));
                        arm.push_str(&gen_named_fields_body(fields, &|f| f.to_string()));
                        arm.push_str("out.push('}');\n}\n");
                        body.push_str(&arm);
                    }
                }
            }
            body.push_str("}\n");
            body
        }
    };
    let out = format!(
        "impl{generics} ::serde::Serialize for {ty} {{\n\
         fn serialize_value(&self, out: &mut ::std::string::String) {{\n{body}}}\n}}\n"
    );
    out.parse()
        .expect("derive(Serialize): generated code must parse")
}

fn de_named_fields_body(fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::json::field({source}, \"{f}\")?"))
        .collect();
    format!("{{ {} }}", inits.join(", "))
}

fn de_tuple_fields_body(n: usize, source: &str) -> String {
    let inits: Vec<String> = (0..n)
        .map(|i| {
            format!("::serde::Deserialize::deserialize(::serde::json::arr_get({source}, {i})?)?")
        })
        .collect();
    format!("({})", inits.join(", "))
}

/// Hand-rolled `#[derive(Deserialize)]`: generates a parser for the exact
/// JSON shape the [`Serialize`](macro@Serialize) derive emits (objects for
/// named structs, transparent single-field tuple structs, externally-
/// tagged enums), so deriving both gives a faithful round-trip.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let p = parse_input(input);
    let (generics, ty) = impl_header(&p, "Deserialize");
    let name = &p.name;
    let body = match &p.shape {
        Shape::UnitStruct => format!("let _ = v;\n::std::result::Result::Ok({name})\n"),
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))\n")
        }
        Shape::TupleStruct(n) => format!(
            "::std::result::Result::Ok({name}{})\n",
            de_tuple_fields_body(*n, "v")
        ),
        Shape::NamedStruct(fields) => format!(
            "::std::result::Result::Ok({name}{})\n",
            de_named_fields_body(fields, "v")
        ),
        Shape::Enum(variants) => {
            let mut body = String::new();
            // Unit variants serialize as bare strings.
            body.push_str("if let ::std::option::Option::Some(tag) = v.as_str() {\n");
            body.push_str("return match tag {\n");
            for v in variants.iter().filter(|v| v.fields.is_none()) {
                let vn = &v.name;
                body.push_str(&format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                ));
            }
            body.push_str(&format!(
                "other => ::std::result::Result::Err(::serde::json::Error::new(\
                 ::std::format!(\"unknown variant {{other:?}} of {name}\"))),\n"
            ));
            body.push_str("};\n}\n");
            // Everything else is externally tagged: {"Variant": payload}.
            body.push_str("let (tag, payload) = ::serde::json::enum_variant(v)?;\n");
            body.push_str("match tag {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => {
                        // Reached only for documents tagging a unit variant
                        // as an object, which the encoder never emits.
                        body.push_str(&format!(
                            "\"{vn}\" => {{ let _ = payload; \
                             ::std::result::Result::Ok({name}::{vn}) }}\n"
                        ));
                    }
                    Some(VariantFields::Tuple(1)) => {
                        body.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(payload)?)),\n"
                        ));
                    }
                    Some(VariantFields::Tuple(n)) => {
                        body.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}{}),\n",
                            de_tuple_fields_body(*n, "payload")
                        ));
                    }
                    Some(VariantFields::Named(fields)) => {
                        body.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}{}),\n",
                            de_named_fields_body(fields, "payload")
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "other => ::std::result::Result::Err(::serde::json::Error::new(\
                 ::std::format!(\"unknown variant {{other:?}} of {name}\"))),\n"
            ));
            body.push_str("}\n");
            body
        }
    };
    let out = format!(
        "impl{generics} ::serde::Deserialize for {ty} {{\n\
         fn deserialize(v: &::serde::json::Value) \
         -> ::std::result::Result<Self, ::serde::json::Error> {{\n{body}}}\n}}\n"
    );
    out.parse()
        .expect("derive(Deserialize): generated code must parse")
}
