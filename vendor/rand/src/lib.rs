//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors a minimal, deterministic implementation of exactly the
//! API surface the NNSmith reproduction uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen_range`, `gen_bool`, `gen`), and [`seq::SliceRandom`]
//! (`choose`, `shuffle`).
//!
//! `StdRng` is xoshiro256** seeded through SplitMix64. Determinism for a
//! fixed seed is the property the workspace relies on (same-seed runs of
//! the fuzzer must be bit-reproducible); matching upstream `rand`'s exact
//! stream is explicitly *not* a goal.

/// Core random-number source: an infinite stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the "standard" distribution
/// (`rng.gen::<T>()`).
pub trait StandardSample {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, span)` without modulo bias worth caring about
/// for fuzzing purposes (128-bit multiply-shift).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return <$t>::standard_sample(rng);
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let t = <$t>::standard_sample(rng);
                self.start + t * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let t = <$t>::standard_sample(rng);
                lo + t * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws from the standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256** seeded via
    /// SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for code written against `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Random selection and shuffling over slices (mirrors
    /// `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly chooses one element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniformly chooses one element mutably, or `None` if empty.
        fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = super::uniform_below(rng, self.len() as u64);
                Some(&self[idx as usize])
            }
        }

        fn choose_mut<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<&mut T> {
            if self.is_empty() {
                None
            } else {
                let idx = super::uniform_below(rng, self.len() as u64);
                Some(&mut self[idx as usize])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// A `StdRng` seeded from system entropy — only used by code paths that do
/// not require reproducibility.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-8i64..=0);
            assert!((-8..=0).contains(&v));
            let u = r.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3];
        assert!(xs.choose(&mut r).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig);
        v.sort_unstable();
        assert_eq!(v, orig);
    }

    #[test]
    fn distribution_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[r.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!(
                (700..1300).contains(&b),
                "bucket count {b} far from uniform"
            );
        }
    }
}
