//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! backed by a simple wall-clock timer: a short warm-up, then `samples`
//! timed runs, reporting min/mean/max per benchmark on stdout.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`group/function/param`).
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Measured duration of the sample currently being collected.
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the total time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

fn run_samples(name: &str, samples: usize, mut sample: impl FnMut(&mut Bencher)) {
    // Warm-up plus iteration-count calibration: aim for ~20ms per sample.
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    sample(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(20);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut per_iter_times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters,
        };
        sample(&mut b);
        per_iter_times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let min = per_iter_times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter_times.iter().cloned().fold(0.0f64, f64::max);
    let mean = per_iter_times.iter().sum::<f64>() / per_iter_times.len().max(1) as f64;
    println!(
        "{name:<50} time: [{} {} {}]",
        format_duration(Duration::from_secs_f64(min)),
        format_duration(Duration::from_secs_f64(mean)),
        format_duration(Duration::from_secs_f64(max)),
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_samples(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_samples(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    default_samples: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.default_samples == 0 {
            10
        } else {
            self.default_samples
        };
        BenchmarkGroup {
            name: name.into(),
            samples,
            _parent: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let samples = if self.default_samples == 0 {
            10
        } else {
            self.default_samples
        };
        run_samples(&id.to_string(), samples, f);
        self
    }
}

/// Declares a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("noop", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(count > 0);
    }
}
