//! The multi-process orchestrator: plan work-units, farm them out to
//! child worker processes over JSONL, fold the outcomes like the
//! in-process engine would.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::Instant;

use nnsmith_compilers::BackendSet;
use nnsmith_difftest::{
    merge_shard_results, shard_case_budget, CampaignResult, EngineReport, SolveStats, TimelinePoint,
};
use nnsmith_obs::{sort_events, LoggedEvent, ShardedProfile};
use nnsmith_solver::PoolStats;

use crate::snapshot::CampaignSnapshot;
use crate::work_unit::{run_work_unit, FeedbackSpec, PipelineSpec, WorkUnit, WorkUnitOutcome};

/// Configuration of a service campaign: the campaign identity (what the
/// work-units are planned from) plus the process-level execution knobs
/// (which never influence the deterministic artifact — that is the
/// contract the service exists to keep).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker processes. Affects wall-clock time only, never the merged
    /// result: `processes=1 ≡ processes=M` byte-equality is pinned by
    /// `tests/service_determinism.rs`.
    pub processes: usize,
    /// Shard count — the reproducibility key, exactly as for the
    /// in-process engine.
    pub shards: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Total case budget, split across shards by
    /// [`shard_case_budget`].
    pub cases: usize,
    /// Backend names (full or short forms).
    pub backends: Vec<String>,
    /// Deterministic pipeline knobs.
    pub pipeline: PipelineSpec,
    /// Feedback-loop knobs.
    pub feedback: FeedbackSpec,
    /// Treat found seeded bugs as fixed.
    pub fix_found_bugs: bool,
    /// Emit the structured event log.
    pub log_events: bool,
    /// The worker executable to re-exec. `None` re-execs
    /// `std::env::current_exe()` — correct for real binaries whose `main`
    /// calls [`crate::maybe_work_unit_child`]; integration tests (whose
    /// `current_exe` is the libtest harness) point this at a dedicated
    /// worker binary instead.
    pub worker: Option<PathBuf>,
    /// Where to persist a [`CampaignSnapshot`] after every completed
    /// work-unit. `None` disables snapshotting.
    pub snapshot: Option<PathBuf>,
    /// Stop (returning [`ServiceRun::Paused`]) once this many work-units
    /// have completed *in this invocation* — the deterministic stand-in
    /// for `kill -9` in resume tests and CI smoke. Requires `snapshot`.
    pub stop_after_units: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            processes: 1,
            shards: 8,
            seed: 13,
            cases: 96,
            backends: BackendSet::all().names(),
            pipeline: PipelineSpec::default(),
            feedback: FeedbackSpec::default(),
            fix_found_bugs: true,
            log_events: true,
            worker: None,
            snapshot: None,
            stop_after_units: None,
        }
    }
}

impl ServiceConfig {
    fn backend_set(&self) -> BackendSet {
        BackendSet::from_names(&self.backends)
            .unwrap_or_else(|| panic!("unknown backends: {:?}", self.backends))
    }
}

/// What [`run_service`] / [`resume_service`] produced.
#[derive(Debug)]
pub enum ServiceRun {
    /// All work-units completed; the merged report.
    Complete(Box<ServiceReport>),
    /// `stop_after_units` tripped: the snapshot holds the state.
    Paused {
        /// Work-units completed across the campaign so far (including
        /// units preloaded from a resumed snapshot).
        completed_units: usize,
    },
}

impl ServiceRun {
    /// Unwraps the completed report.
    ///
    /// # Panics
    ///
    /// Panics if the run paused instead of completing.
    pub fn expect_complete(self) -> ServiceReport {
        match self {
            ServiceRun::Complete(report) => *report,
            ServiceRun::Paused { completed_units } => {
                panic!("service run paused after {completed_units} units")
            }
        }
    }
}

/// A completed service campaign: an [`EngineReport`] whose deterministic
/// views are byte-identical to the same campaign run at any other
/// process count (`EngineReport::workers` carries the process count
/// here).
#[derive(Debug)]
pub struct ServiceReport {
    /// The merged report, shaped exactly like the in-process engine's.
    pub report: EngineReport,
    /// Worker processes used.
    pub processes: usize,
}

/// Plans the campaign's work-units: one per shard, in shard-index
/// order, with case budgets cut by [`shard_case_budget`] — byte-for-byte
/// the slices the in-process engine would hand its shard workers.
pub fn plan_work_units(config: &ServiceConfig) -> Vec<WorkUnit> {
    let shards = config.shards.max(1);
    // Canonical names: a unit must reconstruct the identical set however
    // the config spelled them (short forms, duplicates).
    let backends = config.backend_set().names();
    (0..shards)
        .map(|index| WorkUnit {
            shard_index: index,
            shard_count: shards,
            campaign_seed: config.seed,
            case_budget: shard_case_budget(Some(config.cases), shards, index)
                .expect("total case budget is always Some"),
            backends: backends.clone(),
            pipeline: config.pipeline.clone(),
            feedback: config.feedback.clone(),
            fix_found_bugs: config.fix_found_bugs,
            log_events: config.log_events,
        })
        .collect()
}

/// Runs a campaign across `config.processes` worker processes and merges
/// the outcomes. See the crate docs for the determinism contract.
pub fn run_service(config: &ServiceConfig) -> ServiceRun {
    drive(config, Vec::new(), plan_work_units(config))
}

/// Resumes a campaign from a snapshot written by an earlier (killed or
/// paused) run: completed outcomes are preloaded, remaining work-units
/// are executed, and the merge is byte-identical to an uninterrupted
/// run — [`run_work_unit`] is a pure function of the unit, so it cannot
/// matter which invocation ran it.
///
/// `processes` and `worker` are execution knobs of *this* invocation
/// (deliberately not persisted: they never influence the artifact);
/// further snapshots are written back to `snapshot`.
pub fn resume_service(
    snapshot: &std::path::Path,
    processes: usize,
    worker: Option<PathBuf>,
) -> std::io::Result<ServiceRun> {
    let snap = CampaignSnapshot::load(snapshot)?;
    let config = ServiceConfig {
        processes,
        shards: snap.shards,
        seed: snap.seed,
        cases: snap.cases,
        backends: snap.backends,
        pipeline: snap.pipeline,
        feedback: snap.feedback,
        fix_found_bugs: snap.fix_found_bugs,
        log_events: snap.log_events,
        worker,
        snapshot: Some(snapshot.to_path_buf()),
        stop_after_units: None,
    };
    Ok(drive(&config, snap.completed, snap.remaining))
}

/// One spawned worker process plus its protocol state.
struct Worker {
    child: Child,
    stdin: Option<ChildStdin>,
    in_flight: Option<WorkUnit>,
    alive: bool,
}

enum FromChild {
    Line(usize, String),
    Eof(usize),
}

/// The shared execution loop of [`run_service`] and [`resume_service`]:
/// run `queue` (preloading `completed` into the merge slots), snapshot
/// after every completed unit, merge when the slots are full.
fn drive(
    config: &ServiceConfig,
    completed: Vec<WorkUnitOutcome>,
    queue: Vec<WorkUnit>,
) -> ServiceRun {
    let start = Instant::now();
    let shards = config.shards.max(1);
    let mut slots: Vec<Option<WorkUnitOutcome>> = (0..shards).map(|_| None).collect();
    for outcome in completed {
        let index = outcome.shard_index;
        assert!(
            index < shards,
            "snapshot outcome for shard {index} of {shards}"
        );
        slots[index] = Some(outcome);
    }
    let mut queue: VecDeque<WorkUnit> = queue.into();
    let mut done_this_run = 0usize;

    let processes = config.processes.max(1).min(queue.len().max(1));
    if processes <= 1 {
        // Single-process mode runs units inline — the reference stream
        // the multi-process path must reproduce byte-for-byte.
        while let Some(unit) = queue.pop_front() {
            let index = unit.shard_index;
            slots[index] = Some(run_work_unit(&unit));
            done_this_run += 1;
            save_snapshot(config, &slots, &queue, &[]);
            if let Some(stop) = config.stop_after_units {
                if done_this_run >= stop && !queue.is_empty() {
                    return pause(&slots);
                }
            }
        }
        return ServiceRun::Complete(Box::new(build_report(config, slots, start, processes)));
    }

    // Multi-process: spawn workers, deal units out, steal-as-you-finish.
    let worker_path = config
        .worker
        .clone()
        .or_else(|| std::env::current_exe().ok());
    let (tx, rx) = mpsc::channel::<FromChild>();
    let mut workers: Vec<Worker> = Vec::new();
    for id in 0..processes {
        let spawned = worker_path.as_ref().and_then(|path| {
            Command::new(path)
                .arg("work-unit")
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .ok()
        });
        let Some(mut child) = spawned else { continue };
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().expect("piped stdout");
        let tx = tx.clone();
        std::thread::spawn(move || {
            let reader = BufReader::new(stdout);
            for line in reader.lines() {
                match line {
                    Ok(line) => {
                        if tx.send(FromChild::Line(id, line)).is_err() {
                            return;
                        }
                    }
                    Err(_) => break,
                }
            }
            let _ = tx.send(FromChild::Eof(id));
        });
        workers.push(Worker {
            child,
            stdin,
            in_flight: None,
            alive: true,
        });
    }
    drop(tx);

    if workers.is_empty() {
        // Could not spawn any worker (no executable path, exec failure):
        // degrade to inline execution rather than losing the campaign.
        let mut inline = config.clone();
        inline.processes = 1;
        let completed: Vec<WorkUnitOutcome> = slots.into_iter().flatten().collect();
        return drive(&inline, completed, queue.into_iter().collect());
    }

    // Initial deal: one unit per worker; the rest are stolen from the
    // queue by whichever worker finishes first.
    for worker in workers.iter_mut() {
        if let Some(unit) = queue.pop_front() {
            dispatch(worker, unit);
        }
    }

    let mut paused = false;
    while workers.iter().any(|w| w.in_flight.is_some()) {
        let Ok(msg) = rx.recv() else { break };
        match msg {
            FromChild::Line(id, line) => {
                let Ok(outcome) = serde::json::from_str::<WorkUnitOutcome>(&line) else {
                    // Stray child chatter; the protocol is one outcome
                    // JSON object per line.
                    continue;
                };
                let worker = &mut workers[id];
                let Some(unit) = worker.in_flight.take() else {
                    continue;
                };
                assert_eq!(
                    outcome.shard_index, unit.shard_index,
                    "worker answered for the wrong shard"
                );
                slots[unit.shard_index] = Some(outcome);
                done_this_run += 1;
                snapshot_in_flight(config, &slots, &queue, &workers);
                if let Some(stop) = config.stop_after_units {
                    let units_left =
                        !queue.is_empty() || workers.iter().any(|w| w.in_flight.is_some());
                    if done_this_run >= stop && units_left {
                        paused = true;
                        break;
                    }
                }
                if let Some(next) = queue.pop_front() {
                    dispatch(&mut workers[id], next);
                }
            }
            FromChild::Eof(id) => {
                let worker = &mut workers[id];
                worker.alive = false;
                worker.stdin = None;
                // A dead child's in-flight unit is not lost:
                // run_work_unit is pure, so re-running it inline yields
                // the identical outcome.
                if let Some(unit) = worker.in_flight.take() {
                    slots[unit.shard_index] = Some(run_work_unit(&unit));
                    done_this_run += 1;
                    snapshot_in_flight(config, &slots, &queue, &workers);
                }
                if !workers.iter().any(|w| w.alive) {
                    // Every child died: finish the queue inline (the
                    // kill-switch still applies while draining).
                    while let Some(unit) = queue.pop_front() {
                        slots[unit.shard_index] = Some(run_work_unit(&unit));
                        done_this_run += 1;
                        snapshot_in_flight(config, &slots, &queue, &workers);
                        if let Some(stop) = config.stop_after_units {
                            if done_this_run >= stop && !queue.is_empty() {
                                paused = true;
                                break;
                            }
                        }
                    }
                    break;
                }
            }
        }
    }

    // Closing stdin tells each child to exit its loop; then reap.
    for worker in workers.iter_mut() {
        worker.stdin = None;
        if paused {
            let _ = worker.child.kill();
        }
        let _ = worker.child.wait();
    }
    drop(rx);

    if paused {
        return pause(&slots);
    }
    ServiceRun::Complete(Box::new(build_report(config, slots, start, processes)))
}

fn dispatch(worker: &mut Worker, unit: WorkUnit) {
    let line = serde::json::to_string(&unit);
    let sent = worker
        .stdin
        .as_mut()
        .and_then(|stdin| {
            stdin
                .write_all(line.as_bytes())
                .and_then(|()| stdin.write_all(b"\n"))
                .and_then(|()| stdin.flush())
                .ok()
        })
        .is_some();
    if sent {
        worker.in_flight = Some(unit);
    } else {
        // A broken pipe surfaces as Eof from the reader thread; keeping
        // the unit in_flight lets that handler re-run it inline.
        worker.in_flight = Some(unit);
        worker.alive = false;
    }
}

fn save_snapshot(
    config: &ServiceConfig,
    slots: &[Option<WorkUnitOutcome>],
    queue: &VecDeque<WorkUnit>,
    in_flight: &[WorkUnit],
) {
    let Some(path) = &config.snapshot else { return };
    // Remaining = in-flight units (not yet answered) plus the queue, in
    // shard-index order so the snapshot is independent of scheduling.
    let mut remaining: Vec<WorkUnit> = in_flight.to_vec();
    remaining.extend(queue.iter().cloned());
    remaining.sort_by_key(|u| u.shard_index);
    let snap = CampaignSnapshot {
        seed: config.seed,
        shards: config.shards.max(1),
        cases: config.cases,
        backends: config.backend_set().names(),
        pipeline: config.pipeline.clone(),
        feedback: config.feedback.clone(),
        fix_found_bugs: config.fix_found_bugs,
        log_events: config.log_events,
        completed: slots.iter().flatten().cloned().collect(),
        remaining,
    };
    if let Err(e) = snap.save(path) {
        eprintln!("warning: failed to write campaign snapshot: {e}");
    }
}

fn snapshot_in_flight(
    config: &ServiceConfig,
    slots: &[Option<WorkUnitOutcome>],
    queue: &VecDeque<WorkUnit>,
    workers: &[Worker],
) {
    let in_flight: Vec<WorkUnit> = workers.iter().filter_map(|w| w.in_flight.clone()).collect();
    save_snapshot(config, slots, queue, &in_flight);
}

fn pause(slots: &[Option<WorkUnitOutcome>]) -> ServiceRun {
    ServiceRun::Paused {
        completed_units: slots.iter().flatten().count(),
    }
}

/// Folds completed work-unit outcomes into an [`EngineReport`] shaped
/// exactly like the in-process engine's: same
/// [`merge_shard_results`] fold for the campaign result, same
/// [`ShardedProfile::from_shards`] fold for the profiles, same canonical
/// event ordering — all in **shard-index order**, never child-arrival
/// order (the slots are indexed by shard, so arrival order is erased
/// before any fold runs).
fn build_report(
    config: &ServiceConfig,
    slots: Vec<Option<WorkUnitOutcome>>,
    start: Instant,
    processes: usize,
) -> ServiceReport {
    let backends = config.backend_set();
    let outcomes: Vec<WorkUnitOutcome> = slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or_else(|| panic!("shard {i} produced no outcome")))
        .collect();

    let shard_results: Vec<CampaignResult> = outcomes.iter().map(|o| o.result.clone()).collect();
    let result = merge_shard_results(&backends, "NNSmith", &shard_results);

    // Cache counters (pool/*, import/*, localize/*) ride inside each
    // shard's own profile — see run_work_unit — so this index-order fold
    // is the one place they are ever summed.
    let phases = ShardedProfile::from_shards(outcomes.iter().map(|o| o.profile.clone()).collect());
    let solver = SolveStats::from_profile(&phases.merged);

    let mut arena = PoolStats::default();
    for outcome in &outcomes {
        arena.int_nodes += outcome.arena.int_nodes;
        arena.bool_nodes += outcome.arena.bool_nodes;
        arena.bytes += outcome.arena.bytes;
        arena.base_hits += outcome.arena.base_hits;
        arena.base_misses += outcome.arena.base_misses;
        arena.memo_hits += outcome.arena.memo_hits;
    }

    let mut events: Vec<LoggedEvent> = outcomes.into_iter().flat_map(|o| o.events).collect();
    sort_events(&mut events);

    let wall = start.elapsed();
    // No aggregator observed case arrivals here (they happened in other
    // processes), so the wall timeline is just the run's endpoints; the
    // logical timeline in `result.timeline` is the deterministic curve.
    let (total_branches, pass_branches) = result
        .timeline
        .last()
        .map(|p| (p.total_branches, p.pass_branches))
        .unwrap_or((0, 0));
    let wall_timeline = vec![
        TimelinePoint {
            elapsed_ms: 0,
            cases: 0,
            total_branches: 0,
            pass_branches: 0,
        },
        TimelinePoint {
            elapsed_ms: wall.as_millis() as u64,
            cases: result.cases,
            total_branches,
            pass_branches,
        },
    ];

    ServiceReport {
        report: EngineReport {
            result,
            shard_results,
            wall_timeline,
            wall,
            workers: processes,
            shards: config.shards.max(1),
            arena,
            phases,
            solver,
            events,
        },
        processes,
    }
}

/// The body of a worker process: read one [`WorkUnit`] JSON object per
/// stdin line, execute it, answer with one [`WorkUnitOutcome`] JSON
/// object on stdout. Exits 0 on stdin EOF (the parent hung up), 2 on a
/// malformed unit (a protocol bug, not a campaign outcome).
pub fn child_loop() -> ! {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let unit: WorkUnit = match serde::json::from_str(line) {
            Ok(unit) => unit,
            Err(e) => {
                eprintln!("work-unit child: malformed unit: {e:?}");
                std::process::exit(2);
            }
        };
        let outcome = run_work_unit(&unit);
        let mut payload = serde::json::to_string(&outcome);
        payload.push('\n');
        if stdout.write_all(payload.as_bytes()).is_err() || stdout.flush().is_err() {
            // Parent hung up mid-answer; nothing useful left to do.
            std::process::exit(0);
        }
    }
    std::process::exit(0);
}

/// Call first thing in `main`: when the process was re-exec'd with the
/// `work-unit` subcommand, becomes the worker loop and never returns.
/// A no-op for every other invocation.
pub fn maybe_work_unit_child() {
    if std::env::args().nth(1).as_deref() == Some("work-unit") {
        child_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ServiceConfig {
        ServiceConfig {
            processes: 1,
            shards: 3,
            seed: 5,
            cases: 7,
            backends: vec!["tvm".into(), "ort".into()],
            pipeline: PipelineSpec {
                target_ops: 4,
                search_max_iters: 64,
                ..PipelineSpec::default()
            },
            feedback: FeedbackSpec::default(),
            fix_found_bugs: true,
            log_events: true,
            worker: None,
            snapshot: None,
            stop_after_units: None,
        }
    }

    #[test]
    fn plans_cut_engine_identical_slices() {
        let units = plan_work_units(&tiny_config());
        assert_eq!(units.len(), 3);
        // 7 cases over 3 shards: 3, 2, 2 — remainder to the lowest
        // indices, exactly shard_case_budget's split.
        assert_eq!(
            units.iter().map(|u| u.case_budget).collect::<Vec<_>>(),
            vec![3, 2, 2]
        );
        for (i, unit) in units.iter().enumerate() {
            assert_eq!(unit.shard_index, i);
            assert_eq!(unit.shard_count, 3);
            assert_eq!(unit.campaign_seed, 5);
            // Short names are canonicalized at planning time.
            assert_eq!(unit.backends, vec!["tvmsim", "ortsim"]);
        }
    }

    #[test]
    fn single_process_run_merges_like_the_engine() {
        let report = run_service(&tiny_config()).expect_complete();
        assert_eq!(report.processes, 1);
        assert_eq!(report.report.result.cases, 7);
        assert_eq!(report.report.shard_results.len(), 3);
        // Logical timeline: start point + one per shard.
        assert_eq!(report.report.result.timeline.len(), 4);
        assert!(!report.report.events.is_empty());
        // Pool counters arrived via the per-shard profiles.
        assert!(report
            .report
            .phases
            .merged
            .counters
            .contains_key("pool/base_misses"));
    }

    #[test]
    fn pause_and_resume_single_process() {
        let dir = std::env::temp_dir().join(format!("nnsmith-svc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("pause.snap.json");
        let mut config = tiny_config();
        config.snapshot = Some(snap.clone());
        config.stop_after_units = Some(1);
        match run_service(&config) {
            ServiceRun::Paused { completed_units } => assert_eq!(completed_units, 1),
            ServiceRun::Complete(_) => panic!("expected pause"),
        }
        let resumed = resume_service(&snap, 1, None)
            .expect("snapshot loads")
            .expect_complete();
        let full = run_service(&tiny_config()).expect_complete();
        assert_eq!(
            serde::json::to_string(&resumed.report.result),
            serde::json::to_string(&full.report.result)
        );
        assert_eq!(resumed.report.events, full.report.events);
        assert_eq!(
            resumed.report.phases.merged.deterministic_view(),
            full.report.phases.merged.deterministic_view()
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
