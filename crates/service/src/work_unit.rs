//! Serializable work-units: one campaign shard, ready to cross a
//! process boundary.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use nnsmith_compilers::BackendSet;
use nnsmith_core::{NnSmithConfig, NnSmithFactory};
use nnsmith_difftest::{
    run_engine_shard, shard_seed, CampaignConfig, FeedbackConfig, ShardCtx, SourceFactory,
};
use nnsmith_gen::GenConfig;
use nnsmith_obs::{LoggedEvent, Profile};
use nnsmith_search::SearchConfig;
use nnsmith_solver::{InternPool, PoolStats};

/// The generous anti-hang deadline (seconds) every executing process
/// reconstructs locally for its case-budgeted campaign slice — the same
/// convention the case-budgeted bench figures use. Never serialized:
/// work-units budget by cases only (see the crate-level wall-clock
/// audit).
pub const WORK_UNIT_DEADLINE_SECS: u64 = 86_400;

/// The deterministic slice of the NNSmith pipeline configuration — the
/// knobs that shape the case stream and therefore must survive a
/// process boundary byte-exactly. Wall-clock knobs (`SearchConfig`'s
/// `budget`) are deliberately unrepresentable: only the deterministic
/// iteration budget serializes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Operator nodes per generated model.
    pub target_ops: usize,
    /// Insertion attempts before generation gives up growing.
    pub max_attempts: usize,
    /// Exponential attribute bins (`k` of Algorithm 2).
    pub bins: u32,
    /// Attribute binning on/off.
    pub binning: bool,
    /// `SearchConfig::max_iters`: the deterministic value-search budget
    /// (iterations, never wall-clock).
    pub search_max_iters: u32,
    /// Attempts to produce one numerically-valid case before giving up.
    pub max_attempts_per_case: usize,
}

impl Default for PipelineSpec {
    fn default() -> Self {
        // Mirror NnSmithConfig::default()'s deterministic fields.
        let cfg = NnSmithConfig::default();
        PipelineSpec {
            target_ops: cfg.gen.target_ops,
            max_attempts: cfg.gen.max_attempts,
            bins: cfg.gen.bins,
            binning: cfg.gen.binning,
            search_max_iters: cfg.search.max_iters.unwrap_or(256),
            max_attempts_per_case: cfg.max_attempts_per_case,
        }
    }
}

impl PipelineSpec {
    /// Reconstructs the pipeline configuration (seed 0 — the factory
    /// installs each shard's derived seed; dtype restriction is applied
    /// by [`NnSmithFactory::for_backends`] from the canonical backend
    /// set).
    pub fn to_config(&self) -> NnSmithConfig {
        NnSmithConfig {
            gen: GenConfig {
                target_ops: self.target_ops,
                max_attempts: self.max_attempts,
                bins: self.bins,
                binning: self.binning,
                ..GenConfig::default()
            },
            search: SearchConfig {
                max_iters: Some(self.search_max_iters),
                ..SearchConfig::default()
            },
            seed: 0,
            max_attempts_per_case: self.max_attempts_per_case,
            feedback: FeedbackConfig::default(),
        }
    }
}

/// The serializable feedback-loop knobs of a work-unit. All decisions
/// the loop makes from these are case-count based (checkpoints fire on
/// observed-case counts), so shipping them across processes preserves
/// the byte-reproducibility contract. Reproducer seed cases are a
/// campaign-launch concern and do not travel in work-units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeedbackSpec {
    /// Master switch (false: the shard generates blind).
    pub enabled: bool,
    /// Corpus capacity.
    pub corpus_cap: usize,
    /// Schedule checkpoint cadence, in observed cases.
    pub checkpoint_every: usize,
    /// Probability of mutating a retained case instead of generating
    /// fresh.
    pub mutation_prob: f64,
    /// Enqueue dtype siblings of coverage-novel findings as probes.
    pub probe_siblings: bool,
}

impl Default for FeedbackSpec {
    fn default() -> Self {
        let cfg = FeedbackConfig::default();
        FeedbackSpec {
            enabled: cfg.enabled,
            corpus_cap: cfg.corpus_cap,
            checkpoint_every: cfg.checkpoint_every,
            mutation_prob: cfg.mutation_prob,
            probe_siblings: cfg.probe_siblings,
        }
    }
}

impl FeedbackSpec {
    /// Reconstructs the feedback configuration (no seed cases).
    pub fn to_config(&self) -> FeedbackConfig {
        FeedbackConfig {
            enabled: self.enabled,
            corpus_cap: self.corpus_cap,
            checkpoint_every: self.checkpoint_every,
            mutation_prob: self.mutation_prob,
            probe_siblings: self.probe_siblings,
            seeds: Vec::new(),
        }
    }
}

/// One shard of a campaign, serialized: everything a worker process
/// needs to run its slice and nothing more. Carries **no wall-clock
/// field** — the executing process reconstructs deadlines locally (see
/// the crate-level audit).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkUnit {
    /// Shard index, `0..shard_count`.
    pub shard_index: usize,
    /// Total shard count of the campaign (part of the reproducibility
    /// key, like the in-process engine's `shards`).
    pub shard_count: usize,
    /// The *campaign* seed; the worker derives the shard's RNG stream
    /// via [`shard_seed`]`(campaign_seed, shard_index)`.
    pub campaign_seed: u64,
    /// This shard's case-budget slice (cut by
    /// [`nnsmith_difftest::shard_case_budget`]).
    pub case_budget: usize,
    /// Backend names in canonical campaign order (the serialized form of
    /// the [`BackendSet`]; `supported_dtypes` canonicalization makes the
    /// reconstructed generation palette identical however this list was
    /// produced).
    pub backends: Vec<String>,
    /// Deterministic pipeline knobs.
    pub pipeline: PipelineSpec,
    /// Feedback-loop knobs.
    pub feedback: FeedbackSpec,
    /// Treat found seeded bugs as fixed for the rest of the shard.
    pub fix_found_bugs: bool,
    /// Emit the structured event log.
    pub log_events: bool,
}

impl WorkUnit {
    /// The backend set this unit runs against.
    ///
    /// # Panics
    ///
    /// Panics when a serialized backend name is unknown — a work-unit
    /// naming a backend this build cannot construct is a configuration
    /// error, not a state to limp through.
    pub fn backend_set(&self) -> BackendSet {
        BackendSet::from_names(&self.backends)
            .unwrap_or_else(|| panic!("work-unit names unknown backends: {:?}", self.backends))
    }
}

/// What one executed work-unit produced: the shard's campaign result,
/// its phase profile (cache counters included), its canonical event
/// stream, and its private pool's final counters. The unit of both the
/// orchestrator's JSONL protocol and a snapshot's `completed` list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkUnitOutcome {
    /// Which shard this outcome belongs to (merge slot, **not** arrival
    /// order).
    pub shard_index: usize,
    /// The shard's campaign result. Its own `timeline` carries
    /// wall-clock `elapsed_ms` *data* (stripped by every deterministic
    /// consumer); all decision-bearing fields are deterministic.
    pub result: nnsmith_difftest::CampaignResult,
    /// The shard's phase profile, including this unit's `pool/*`
    /// counters (each unit interns into its own pool, so the counters
    /// have exact per-shard attribution — unlike the in-process engine's
    /// shared campaign pool).
    pub profile: Profile,
    /// Canonical event stream (`t_ms` = 0: no aggregator clock exists in
    /// a worker process).
    pub events: Vec<LoggedEvent>,
    /// Final counters of the unit's private intern pool.
    pub arena: PoolStats,
}

/// Executes one work-unit on the calling thread: the process-level
/// analogue of the in-process engine's shard-worker body, and a **pure
/// function of the unit** — same unit, same bytes out, whichever
/// process runs it.
pub fn run_work_unit(unit: &WorkUnit) -> WorkUnitOutcome {
    let backends = unit.backend_set();
    // One private pool per unit: no shared arena exists across
    // processes, and per-unit pools are what keep `pool/*` counters a
    // pure function of the shard's own case stream.
    let pool = InternPool::default();
    let factory = NnSmithFactory::for_backends(unit.pipeline.to_config(), &backends)
        .with_feedback(unit.feedback.to_config());
    let ctx = ShardCtx {
        index: unit.shard_index,
        count: unit.shard_count.max(1),
        seed: shard_seed(unit.campaign_seed, unit.shard_index),
    };
    let mut source = factory.make_source_in(&pool, ctx);
    let config = CampaignConfig {
        // Case budget drives termination; the generous deadline only
        // guards against hangs (reconstructed locally, never serialized).
        duration: Duration::from_secs(WORK_UNIT_DEADLINE_SECS),
        max_cases: Some(unit.case_budget),
        backends: backends.iter().cloned().collect(),
        fix_found_bugs: unit.fix_found_bugs,
        log_events: unit.log_events,
        ..CampaignConfig::default()
    };
    let shard = run_engine_shard(&backends, source.as_mut(), &config, unit.shard_index);
    drop(source);
    let arena = pool.stats();
    let mut profile = shard.profile;
    // The unit's pool counters ride in its own profile, so the parent's
    // shard-index-order profile fold (ShardedProfile::from_shards) is
    // the single place every cache counter is merged.
    profile.add("pool/base_hits", arena.base_hits as u64);
    profile.add("pool/base_misses", arena.base_misses as u64);
    profile.add("pool/memo_hits", arena.memo_hits as u64);
    WorkUnitOutcome {
        shard_index: unit.shard_index,
        result: shard.result,
        profile,
        events: shard.events,
        arena,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> WorkUnit {
        WorkUnit {
            shard_index: 2,
            shard_count: 4,
            campaign_seed: 21,
            case_budget: 6,
            backends: vec!["tvmsim".into(), "ortsim".into(), "trtsim".into()],
            pipeline: PipelineSpec {
                target_ops: 5,
                search_max_iters: 128,
                ..PipelineSpec::default()
            },
            feedback: FeedbackSpec {
                enabled: true,
                checkpoint_every: 4,
                mutation_prob: 0.1,
                ..FeedbackSpec::default()
            },
            fix_found_bugs: false,
            log_events: true,
        }
    }

    #[test]
    fn work_unit_serde_roundtrip_is_pinned() {
        let u = unit();
        let js = serde::json::to_string(&u);
        // Schema pin: the serialized form is the cross-process protocol.
        for field in [
            "\"shard_index\":2",
            "\"shard_count\":4",
            "\"campaign_seed\":21",
            "\"case_budget\":6",
            "\"backends\":[\"tvmsim\",\"ortsim\",\"trtsim\"]",
            "\"search_max_iters\":128",
            "\"mutation_prob\":0.1",
            "\"fix_found_bugs\":false",
            "\"log_events\":true",
        ] {
            assert!(js.contains(field), "missing {field} in {js}");
        }
        // No wall-clock field may ever leak into the serialized unit
        // (the only "budget" is the case budget).
        for banned in [
            "duration",
            "sample_every",
            "deadline",
            "secs",
            "wall",
            "elapsed",
        ] {
            assert!(!js.contains(banned), "wall-clock leak {banned:?} in {js}");
        }
        let back: WorkUnit = serde::json::from_str(&js).expect("roundtrip");
        assert_eq!(back, u);
        // And the roundtrip re-serializes byte-identically (the protocol
        // is self-canonical).
        assert_eq!(serde::json::to_string(&back), js);
    }

    #[test]
    fn outcome_roundtrips_through_the_jsonl_protocol() {
        let mut u = unit();
        u.case_budget = 3;
        let outcome = run_work_unit(&u);
        assert_eq!(outcome.shard_index, 2);
        assert_eq!(outcome.result.cases, 3);
        assert!(!outcome.events.is_empty());
        let js = serde::json::to_string(&outcome);
        let back: WorkUnitOutcome = serde::json::from_str(&js).expect("roundtrip");
        assert_eq!(back.result.cases, outcome.result.cases);
        assert_eq!(back.result.bugs_found, outcome.result.bugs_found);
        assert_eq!(back.profile, outcome.profile);
        assert_eq!(back.events, outcome.events);
        assert_eq!(back.arena, outcome.arena);
    }

    #[test]
    fn run_work_unit_is_a_pure_function_of_the_unit() {
        let mut u = unit();
        u.case_budget = 4;
        let a = run_work_unit(&u);
        let b = run_work_unit(&u);
        // The shard timeline's elapsed_ms is wall-clock *data* (stripped
        // by every deterministic consumer; the merge rebuilds a logical
        // timeline) — everything else must serialize byte-identically.
        let strip = |r: &nnsmith_difftest::CampaignResult| {
            let mut r = r.clone();
            r.timeline.clear();
            serde::json::to_string(&r)
        };
        assert_eq!(strip(&a.result), strip(&b.result));
        // Profiles carry nondeterministic wall_ns; the deterministic
        // projection (phase counts + counters, pool/* included) must
        // match exactly.
        assert_eq!(
            a.profile.deterministic_view(),
            b.profile.deterministic_view()
        );
        assert_eq!(a.events, b.events);
        assert_eq!(a.arena, b.arena);
    }
}
