//! # nnsmith-service
//!
//! Distributed, resumable campaigns: the process-level scale axis on top
//! of the in-process engine's thread-level one.
//!
//! The engine ([`nnsmith_difftest::run_matrix_engine`]) shards a campaign
//! across worker *threads* inside one process. This crate lifts the same
//! shard decomposition across worker *processes*:
//!
//! * A [`WorkUnit`] is one shard of a campaign made serializable — the
//!   campaign seed, the shard's index/count, its **case-budget slice**
//!   (cut by [`nnsmith_difftest::shard_case_budget`], exactly the slice
//!   the in-process engine would hand a shard worker), the backend set
//!   by name, and the deterministic pipeline/feedback knobs
//!   ([`PipelineSpec`] / [`FeedbackSpec`]).
//! * [`run_service`] is the multi-process orchestrator: the parent
//!   re-execs `--processes M` child workers (the current binary with a
//!   `work-unit` subcommand, speaking JSONL over stdin/stdout), hands
//!   out work-units from a queue with work-stealing (the next queued
//!   unit goes to whichever child finishes first), and folds the child
//!   outcomes **in shard-index order** — through the very same
//!   [`nnsmith_difftest::merge_shard_results`] /
//!   [`nnsmith_obs::ShardedProfile::from_shards`] folds the in-process
//!   aggregator uses — so `processes=1 ≡ processes=M` byte-equality
//!   holds for every deterministic view.
//! * A [`CampaignSnapshot`] persists completed shard outcomes plus the
//!   remaining work-units after every completed unit, so a killed run
//!   resumes ([`resume_service`]) to a byte-identical final artifact.
//!
//! ## Determinism contract
//!
//! [`run_work_unit`] is a pure function of its [`WorkUnit`]: each unit
//! runs from its own [`InternPool`](nnsmith_solver::InternPool) (so no
//! cross-process state exists to diverge), its source derives all
//! randomness from `shard_seed(campaign_seed, shard_index)`, and its
//! budget is a case count. It therefore does not matter which child
//! executes a unit, in what order units complete, or whether a unit ran
//! before or after a kill/resume cycle — the merge folds identical
//! bundles in shard-index order either way. `tests/service_determinism.rs`
//! pins `processes=1 ≡ processes=3` and kill→resume byte-equality; the
//! CI `service-smoke` job `cmp`s the emitted `BENCH_fig13.json`.
//!
//! Per-unit cache counters (the arena's `pool/base_hits`,
//! `pool/base_misses`, `pool/memo_hits`, and the campaign-layer
//! `import/*` / `localize/*` counters) are recorded into **each shard's
//! own profile** by the child and folded at the parent in shard-index
//! order — never child-arrival order, which is scheduling truth and
//! would reintroduce exactly the arrival-order nondeterminism class the
//! in-process engine's slot-indexed aggregation fixed.
//!
//! ## Wall-clock discipline audit (service layer)
//!
//! Extending the `run_tzer_campaign`-style audit to serialized state:
//! **nothing that crosses a process or snapshot boundary carries a
//! wall-clock field.**
//!
//! * [`WorkUnit`] and [`CampaignSnapshot`] contain no `Duration`:
//!   budgets serialize as *case counts* only (`WorkUnit::case_budget`,
//!   the remaining units of a snapshot). `CampaignConfig::duration` and
//!   `sample_every` are reconstructed by the *executing* process as
//!   fixed local constants (the generous anti-hang deadline
//!   [`WORK_UNIT_DEADLINE_SECS`]; the default sampling cadence) and are
//!   never shipped — a slow machine resumes exactly like a fast one.
//! * [`PipelineSpec`] serializes `SearchConfig`'s deterministic
//!   `max_iters` budget only; the wall-clock `budget` opt-in is
//!   deliberately unrepresentable in a work-unit.
//! * Snapshots are cut at **work-unit completion** — a case-count
//!   boundary, since unit budgets are case slices — never on a timer.
//! * Wall-clock *data* that rides along inside results (a shard
//!   timeline's `elapsed_ms`, an event's `t_ms`) is measurement, not
//!   decision: no control flow reads it, and deterministic consumers
//!   strip it (`deterministic_view`, `deterministic_event_lines`)
//!   exactly as they do for the in-process engine.

#![warn(missing_docs)]

mod orchestrator;
mod snapshot;
mod work_unit;

pub use orchestrator::{
    child_loop, maybe_work_unit_child, plan_work_units, resume_service, run_service, ServiceConfig,
    ServiceReport, ServiceRun,
};
pub use snapshot::CampaignSnapshot;
pub use work_unit::{
    run_work_unit, FeedbackSpec, PipelineSpec, WorkUnit, WorkUnitOutcome, WORK_UNIT_DEADLINE_SECS,
};
