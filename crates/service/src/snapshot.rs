//! Campaign snapshots: kill a run, resume it, get the identical
//! artifact.

use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::work_unit::{FeedbackSpec, PipelineSpec, WorkUnit, WorkUnitOutcome};

/// The persistent state of an interrupted campaign: the campaign's
/// identity (everything [`crate::plan_work_units`] planned from), the
/// outcomes of every completed work-unit, and the units still owed.
///
/// Snapshots are cut at **work-unit completion** — a case-count
/// boundary, since unit budgets are case slices — so no shard is ever
/// split mid-stream. That granularity is also what keeps feedback state
/// trivially resumable: a shard's `FeedbackCorpus` / `YieldLedger`
/// evolution is interior to its work-unit, its end-of-shard
/// [`FeedbackSummary`](nnsmith_difftest::FeedbackSummary) travels inside
/// the completed outcome, and a resumed shard replays from its seed
/// identically. (Finer-than-shard checkpoints would serialize the corpus
/// and ledger themselves; their serde roundtrips are pinned in
/// `nnsmith-difftest` for exactly that extension.)
///
/// Contains **no wall-clock field**: a snapshot taken on a fast machine
/// resumes byte-identically on a slow one (see the crate-level audit).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignSnapshot {
    /// Campaign seed.
    pub seed: u64,
    /// Total shard count (the reproducibility key's other half).
    pub shards: usize,
    /// Total case budget across all shards.
    pub cases: usize,
    /// Backend names in canonical campaign order.
    pub backends: Vec<String>,
    /// Deterministic pipeline knobs every unit ran / will run with.
    pub pipeline: PipelineSpec,
    /// Feedback-loop knobs every unit ran / will run with.
    pub feedback: FeedbackSpec,
    /// Treat found seeded bugs as fixed.
    pub fix_found_bugs: bool,
    /// Emit the structured event log.
    pub log_events: bool,
    /// Outcomes of completed work-units (any order; the merge slots them
    /// by `shard_index`).
    pub completed: Vec<WorkUnitOutcome>,
    /// Work-units not yet completed, in shard-index order.
    pub remaining: Vec<WorkUnit>,
}

impl CampaignSnapshot {
    /// Serializes and writes the snapshot to `path`, atomically: the
    /// bytes land in a sibling temp file first and are renamed into
    /// place, so a kill mid-write leaves the previous snapshot intact
    /// (resume never sees a torn file).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let bytes = serde::json::to_string(self);
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes.as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads a snapshot previously written by [`CampaignSnapshot::save`].
    pub fn load(path: &Path) -> std::io::Result<CampaignSnapshot> {
        let bytes = std::fs::read_to_string(path)?;
        serde::json::from_str(bytes.trim()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("corrupt campaign snapshot {}: {e:?}", path.display()),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrips_through_disk() {
        let unit = WorkUnit {
            shard_index: 1,
            shard_count: 2,
            campaign_seed: 9,
            case_budget: 4,
            backends: vec!["tvmsim".into(), "ortsim".into()],
            pipeline: PipelineSpec::default(),
            feedback: FeedbackSpec::default(),
            fix_found_bugs: true,
            log_events: true,
        };
        let mut done = unit.clone();
        done.shard_index = 0;
        done.case_budget = 2;
        let outcome = crate::run_work_unit(&done);
        let snap = CampaignSnapshot {
            seed: 9,
            shards: 2,
            cases: 6,
            backends: unit.backends.clone(),
            pipeline: unit.pipeline.clone(),
            feedback: unit.feedback.clone(),
            fix_found_bugs: true,
            log_events: true,
            completed: vec![outcome],
            remaining: vec![unit],
        };
        let dir = std::env::temp_dir().join(format!("nnsmith-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.snap.json");
        snap.save(&path).unwrap();
        let back = CampaignSnapshot::load(&path).unwrap();
        assert_eq!(back.seed, snap.seed);
        assert_eq!(back.remaining, snap.remaining);
        assert_eq!(back.completed.len(), 1);
        assert_eq!(back.completed[0].result.cases, 2);
        assert_eq!(back.completed[0].events, snap.completed[0].events);
        // Saving the loaded snapshot re-emits identical bytes (the format
        // is self-canonical, so resumed runs can keep checkpointing into
        // the same file).
        assert_eq!(serde::json::to_string(&back), serde::json::to_string(&snap));
        // No wall-clock field may leak into the persisted form.
        let js = serde::json::to_string(&snap);
        for banned in ["duration", "sample_every", "deadline", "wall_ms", "secs"] {
            assert!(!js.contains(banned), "wall-clock leak {banned:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
