//! Incremental graph generation — Algorithm 1 of the paper.
//!
//! The generator grows a symbolic graph from a single placeholder by
//! repeatedly sampling an operator template and attempting *forward
//! insertion* (consume existing values) or *backward insertion* (replace a
//! placeholder with the operator, creating fresh placeholder inputs). Each
//! attempt is committed only if the accumulated constraint system stays
//! satisfiable; the solver's incremental `try_add_constraints` keeps this
//! cheap.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

use nnsmith_graph::{Graph, NodeId, NodeKind, TensorType, ValueRef};
use nnsmith_ops::{all_templates, BuiltOp, Op, OpMemo, OpTemplate, Slot};
use nnsmith_solver::{BinOp, BoolExpr, BoolId, CmpOp, IntExpr, InternPool, Model, Solver};
use nnsmith_tensor::DType;

use crate::binning::apply_binning;
use crate::config::{GenConfig, GenStats};

/// Errors from model generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// The final constraint system had no model (should not happen: every
    /// insertion is checked incrementally).
    NoModel,
    /// Generation could not reach a single operator within the attempt
    /// budget.
    Stuck,
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::NoModel => write!(f, "no satisfying model for generated graph"),
            GenError::Stuck => write!(f, "no operator could be inserted"),
        }
    }
}

impl std::error::Error for GenError {}

/// A fully-generated, concrete model.
#[derive(Debug, Clone)]
pub struct GeneratedModel {
    /// Concrete computation graph.
    pub graph: Graph<Op>,
    /// Generation statistics.
    pub stats: GenStats,
}

/// The model generator (Algorithm 1 + Algorithm 2).
///
/// # Examples
///
/// ```
/// use nnsmith_gen::{GenConfig, Generator};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let model = Generator::new(GenConfig { target_ops: 5, ..GenConfig::default() })
///     .generate(&mut rng)
///     .expect("generation succeeds");
/// assert!(model.graph.operators().len() >= 1);
/// assert!(model.graph.is_concrete());
/// ```
#[derive(Debug, Clone)]
pub struct Generator {
    config: GenConfig,
    /// Shared, immutable template registry: cloning a generator (one per
    /// campaign shard) bumps a refcount instead of copying the registry.
    templates: std::sync::Arc<[OpTemplate]>,
    /// Per-template weights aligned with `templates`, cached from
    /// `config.schedule` — `None` while the schedule is empty, keeping
    /// template selection on the historical uniform `choose` path.
    tmpl_weights: Option<Vec<u64>>,
}

impl Default for Generator {
    fn default() -> Self {
        Generator::new(GenConfig::default())
    }
}

impl Generator {
    /// Creates a generator with the full operator registry.
    pub fn new(config: GenConfig) -> Self {
        Generator::with_templates_arc(config, all_templates().into())
    }

    /// Creates a generator restricted to the given templates (used by the
    /// baseline reimplementations and focused experiments).
    pub fn with_templates(config: GenConfig, templates: Vec<OpTemplate>) -> Self {
        Generator::with_templates_arc(config, templates.into())
    }

    fn with_templates_arc(config: GenConfig, templates: std::sync::Arc<[OpTemplate]>) -> Self {
        let mut g = Generator {
            config,
            templates,
            tmpl_weights: None,
        };
        g.rebuild_schedule_cache();
        g
    }

    /// The active configuration.
    pub fn config(&self) -> &GenConfig {
        &self.config
    }

    /// Installs a new feedback schedule (the checkpoint hook). An empty
    /// schedule restores the exact uniform RNG stream.
    pub fn set_schedule(&mut self, schedule: crate::GenSchedule) {
        self.config.schedule = schedule;
        self.rebuild_schedule_cache();
    }

    fn rebuild_schedule_cache(&mut self) {
        self.tmpl_weights = if self.config.schedule.op_weights.is_empty() {
            None
        } else {
            Some(
                self.templates
                    .iter()
                    .map(|t| self.config.schedule.op_weight(t.name()))
                    .collect(),
            )
        };
    }

    /// Generates one concrete model in a fresh private intern pool.
    ///
    /// # Errors
    ///
    /// Returns [`GenError::Stuck`] when not a single operator could be
    /// inserted within the attempt budget and [`GenError::NoModel`] if the
    /// final satisfiability check fails unexpectedly.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<GeneratedModel, GenError> {
        self.generate_in(&InternPool::default(), rng)
    }

    /// Generates one concrete model whose constraints and tensor types are
    /// interned into `pool` — the campaign pool, so structurally equal
    /// subterms (the `d >= 1` caps every dimension contributes) are stored
    /// once per campaign, and reclaimed when the campaign drops it.
    ///
    /// # Errors
    ///
    /// Same as [`Generator::generate`].
    pub fn generate_in<R: Rng + ?Sized>(
        &self,
        pool: &InternPool,
        rng: &mut R,
    ) -> Result<GeneratedModel, GenError> {
        self.generate_with(pool, &OpMemo::new(pool.clone()), rng)
    }

    /// [`Generator::generate_in`] with a caller-provided type-transfer
    /// memo. A source that generates many cases into one pool (a campaign
    /// shard) keeps the memo across cases, so recurring `(op, input
    /// signature)` instantiations skip the symbolic shape derivation
    /// entirely. Memoization is semantically invisible — the case stream
    /// is byte-identical with or without a warm memo.
    ///
    /// # Errors
    ///
    /// Same as [`Generator::generate`].
    pub fn generate_with<R: Rng + ?Sized>(
        &self,
        pool: &InternPool,
        memo: &OpMemo,
        rng: &mut R,
    ) -> Result<GeneratedModel, GenError> {
        debug_assert!(
            memo.pool().same_pool(pool),
            "memo must be scoped to the generation pool"
        );
        let mut state = SymbolicState::new(&self.config, pool, memo, rng);
        let mut stats = GenStats::default();

        let mut attempts = 0u64;
        while state.op_count < self.config.target_ops && attempts < self.config.max_attempts as u64
        {
            attempts += 1;
            let tmpl = match &self.tmpl_weights {
                None => *self.templates.choose(rng).expect("registry non-empty"),
                Some(weights) => self.templates[weighted_pick(weights, rng)],
            };
            let ok = if rng.gen_bool(self.config.forward_prob) {
                state.forward_insert(tmpl, rng, &mut stats)
            } else {
                state.backward_insert(tmpl, rng, &mut stats)
            };
            if !ok {
                stats.rejected += 1;
            }
        }
        stats.attempts = attempts;
        if state.op_count == 0 {
            return Err(GenError::Stuck);
        }

        if self.config.binning {
            apply_binning(
                &mut state.graph,
                &mut state.solver,
                &self.config,
                rng,
                &mut stats,
            );
        }

        let model = match state.solver.check() {
            nnsmith_solver::SatResult::Sat(m) => m,
            _ => return Err(GenError::NoModel),
        };
        let graph = state.concretize(&model, rng);
        Ok(GeneratedModel { graph, stats })
    }
}

/// Growing symbolic graph plus its constraint state.
struct SymbolicState<'m> {
    graph: Graph<Op>,
    solver: Solver,
    /// Memoized `requires`/`type_transfer` over interned input signatures
    /// (shared across the cases of one source when the caller keeps it).
    memo: &'m OpMemo,
    /// Placeholders created as operator parameters (become weights).
    param_placeholders: HashSet<NodeId>,
    op_count: usize,
    dim_hi: i64,
    max_out_dim: i64,
    max_numel: i64,
    type_filter: bool,
    fresh_input_prob: f64,
    /// Cross-backend dtype restriction (`None` = all allowed).
    allowed_dtypes: Option<Vec<DType>>,
}

impl<'m> SymbolicState<'m> {
    fn new<R: Rng + ?Sized>(
        config: &GenConfig,
        pool: &InternPool,
        memo: &'m OpMemo,
        rng: &mut R,
    ) -> Self {
        let mut solver = Solver::new_in(pool.clone());
        let mut graph = Graph::new();
        // Seed: a single placeholder (§3.2), float-biased dtype, any rank.
        // A cross-backend dtype restriction filters the palette (keeping
        // the float bias); with no restriction the draw is identical to
        // the unrestricted stream.
        let biased = [
            DType::F32,
            DType::F32,
            DType::F32,
            DType::F64,
            DType::I32,
            DType::I64,
        ];
        let palette: Vec<DType> = match &config.allowed_dtypes {
            None => biased.to_vec(),
            Some(allowed) => {
                let filtered: Vec<DType> = biased
                    .iter()
                    .copied()
                    .filter(|d| allowed.contains(d))
                    .collect();
                if filtered.is_empty() {
                    biased.to_vec()
                } else {
                    filtered
                }
            }
        };
        // Feedback schedule: dtype/rank draws go weighted only when the
        // schedule carries weights for them — otherwise the draw (and the
        // RNG stream) is byte-identical to the unscheduled generator.
        let dtype = if config.schedule.dtype_weights.is_empty() {
            *palette.choose(rng).expect("nonempty")
        } else {
            let weights: Vec<u64> = palette
                .iter()
                .map(|d| config.schedule.dtype_weight(d.name()))
                .collect();
            palette[weighted_pick(&weights, rng)]
        };
        let rank = if config.schedule.rank_weights.is_empty() {
            rng.gen_range(1..=nnsmith_ops::MAX_RANK)
        } else {
            let weights: Vec<u64> = (1..=nnsmith_ops::MAX_RANK)
                .map(|r| config.schedule.rank_weight(r))
                .collect();
            1 + weighted_pick(&weights, rng)
        };
        let ttype = fresh_placeholder_type(dtype, rank, &mut solver, config.dim_hi);
        // The seed placeholder is only otherwise capped transitively through
        // operator outputs; a shape-shrinking consumer (slice, reduce) would
        // let it exceed the tensor-size budget.
        let mut caps = Vec::new();
        Self::push_size_caps(&mut caps, &ttype, config.max_out_dim, config.max_numel);
        solver.assert_all(caps);
        graph.add_placeholder(ttype);
        SymbolicState {
            graph,
            solver,
            memo,
            param_placeholders: HashSet::new(),
            op_count: 0,
            dim_hi: config.dim_hi,
            max_out_dim: config.max_out_dim,
            max_numel: config.max_numel,
            type_filter: config.type_filter,
            fresh_input_prob: config.fresh_input_prob,
            allowed_dtypes: config.allowed_dtypes.clone(),
        }
    }

    /// True when the cross-backend restriction (if any) allows `dtype`.
    fn dtype_ok(&self, dtype: DType) -> bool {
        self.allowed_dtypes
            .as_ref()
            .is_none_or(|set| set.contains(&dtype))
    }

    /// Forward insertion: wire the operator's data inputs to existing
    /// values (or fresh placeholders), append the operator.
    fn forward_insert<R: Rng + ?Sized>(
        &mut self,
        tmpl: OpTemplate,
        rng: &mut R,
        stats: &mut GenStats,
    ) -> bool {
        let slots = tmpl.sample_slots(rng);
        // Cross-backend restriction: every input slot dtype must be legal
        // on every backend of the set (RNG already consumed, so the
        // unrestricted stream is unchanged).
        if slots.iter().any(|s| !self.dtype_ok(s.dtype)) {
            return false;
        }
        // Pick a source for every data slot.
        enum Source {
            Existing(ValueRef),
            Fresh(TensorType),
        }
        let values = self.graph.all_values();
        let mut sources: Vec<Option<Source>> = Vec::with_capacity(slots.len());
        for slot in &slots {
            if !slot.from_graph {
                sources.push(None);
                continue;
            }
            let candidates: Vec<ValueRef> = values
                .iter()
                .copied()
                .filter(|v| {
                    if !self.type_filter {
                        return true;
                    }
                    let t = self.graph.value_type(*v);
                    t.dtype == slot.dtype && t.rank() == slot.rank
                })
                .collect();
            let use_fresh = candidates.is_empty() || rng.gen_bool(self.fresh_input_prob);
            if use_fresh {
                let t =
                    fresh_placeholder_type(slot.dtype, slot.rank, &mut self.solver, self.dim_hi);
                sources.push(Some(Source::Fresh(t)));
            } else {
                sources.push(Some(Source::Existing(
                    *candidates.choose(rng).expect("non-empty"),
                )));
            }
        }

        // Assemble input types (params filled after build).
        let mut input_types: Vec<TensorType> = Vec::with_capacity(slots.len());
        for (slot, src) in slots.iter().zip(&sources) {
            match src {
                Some(Source::Existing(v)) => input_types.push(self.graph.value_type(*v).clone()),
                Some(Source::Fresh(t)) => input_types.push(t.clone()),
                None => input_types.push(TensorType::new_in(
                    self.solver.pool(),
                    slot.dtype,
                    Vec::new(),
                )), // placeholder slot, replaced below
            }
        }
        let Some(built) = tmpl.build(&slots, &input_types, &mut self.solver, rng) else {
            return false;
        };
        let full_types = self.merge_param_types(&built, input_types);

        let Some((mut constraints, outputs)) = self.insertion_constraints(&built.op, &full_types)
        else {
            return false;
        };
        // Output dtypes can differ from every input's (Cast): enforce the
        // cross-backend restriction on them too, before any constraint is
        // committed to the solver. The memoized outputs are exactly what
        // `type_transfer` would re-derive.
        if self.allowed_dtypes.is_some() && outputs.iter().any(|t| !self.dtype_ok(t.dtype)) {
            return false;
        }
        // Freshly-created placeholders (data or parameters) must respect
        // the tensor-size budget too.
        for (i, slot) in slots.iter().enumerate() {
            let is_fresh = !slot.from_graph || matches!(sources[i], Some(Source::Fresh(_)));
            if is_fresh {
                self.push_size_cap_ids(&mut constraints, &full_types[i]);
            }
        }
        if self.solver.try_add_constraint_ids(constraints).is_none() {
            return false;
        }

        // Commit: create fresh placeholders, then the operator node.
        let mut input_refs: Vec<ValueRef> = Vec::with_capacity(slots.len());
        let mut param_idx = 0usize;
        for (i, slot) in slots.iter().enumerate() {
            if !slot.from_graph {
                let id = self
                    .graph
                    .add_placeholder(built.param_types[param_idx].clone());
                self.param_placeholders.insert(id);
                param_idx += 1;
                input_refs.push(ValueRef::output0(id));
            } else {
                match &sources[i] {
                    Some(Source::Existing(v)) => input_refs.push(*v),
                    Some(Source::Fresh(t)) => {
                        let id = self.graph.add_placeholder(t.clone());
                        input_refs.push(ValueRef::output0(id));
                    }
                    None => unreachable!("data slot has a source"),
                }
            }
        }
        self.graph
            .add_node(NodeKind::Operator(built.op), input_refs, outputs);
        self.op_count += 1;
        stats.forward_ok += 1;
        true
    }

    /// Backward insertion: replace a placeholder with the operator, whose
    /// inputs become fresh placeholders.
    fn backward_insert<R: Rng + ?Sized>(
        &mut self,
        tmpl: OpTemplate,
        rng: &mut R,
        stats: &mut GenStats,
    ) -> bool {
        // Candidate placeholders whose type this operator can produce.
        let placeholders = self.graph.placeholders();
        let mut candidates: Vec<(NodeId, Vec<Slot>)> = Vec::new();
        for ph in placeholders {
            // Parameter placeholders keep their role (their shapes are tied
            // to operator attributes).
            if self.param_placeholders.contains(&ph) {
                continue;
            }
            let out_type = self.graph.node(ph).outputs[0].clone();
            if let Some(slots) = tmpl.infer_input_slots(&out_type, rng) {
                // Cross-backend restriction: the operator's fresh inputs
                // must be legal on every backend (the output dtype is the
                // placeholder's, allowed by induction).
                if slots.iter().all(|s| self.dtype_ok(s.dtype)) {
                    candidates.push((ph, slots));
                }
            }
        }
        let Some((ph, slots)) = candidates.choose(rng).cloned() else {
            return false;
        };
        let out_type = self.graph.node(ph).outputs[0].clone();

        // Fresh placeholder types for all data inputs.
        let mut input_types: Vec<TensorType> = Vec::with_capacity(slots.len());
        for slot in &slots {
            if slot.from_graph {
                input_types.push(fresh_placeholder_type(
                    slot.dtype,
                    slot.rank,
                    &mut self.solver,
                    self.dim_hi,
                ));
            } else {
                input_types.push(TensorType::new_in(
                    self.solver.pool(),
                    slot.dtype,
                    Vec::new(),
                ));
            }
        }
        let Some(built) =
            tmpl.build_backward(&out_type, &slots, &input_types, &mut self.solver, rng)
        else {
            return false;
        };
        let full_types = self.merge_param_types(&built, input_types);

        let Some((mut constraints, outputs)) = self.insertion_constraints(&built.op, &full_types)
        else {
            return false;
        };
        // Every input is a fresh placeholder here: cap their sizes.
        for t in &full_types {
            self.push_size_cap_ids(&mut constraints, t);
        }
        // The operator's output must equal the placeholder it replaces
        // (Algorithm 1 line 17).
        if outputs.len() != 1
            || outputs[0].rank() != out_type.rank()
            || outputs[0].dtype != out_type.dtype
        {
            return false;
        }
        {
            let pool = self.solver.pool().clone();
            for (&a, &b) in outputs[0].dim_ids().iter().zip(out_type.dim_ids()) {
                constraints.push(pool.cmp(CmpOp::Eq, a, b));
            }
        }
        if self.solver.try_add_constraint_ids(constraints).is_none() {
            return false;
        }

        // Commit: new placeholders, then rewrite the node in place.
        let mut input_refs: Vec<ValueRef> = Vec::with_capacity(slots.len());
        for (i, slot) in slots.iter().enumerate() {
            let id = self.graph.add_placeholder(full_types[i].clone());
            if !slot.from_graph {
                self.param_placeholders.insert(id);
            }
            input_refs.push(ValueRef::output0(id));
        }
        let node = self.graph.node_mut(ph);
        node.kind = NodeKind::Operator(built.op);
        node.inputs = input_refs;
        self.op_count += 1;
        stats.backward_ok += 1;
        true
    }

    /// Replaces parameter-slot input types with the built parameter types.
    fn merge_param_types(&self, built: &BuiltOp, mut types: Vec<TensorType>) -> Vec<TensorType> {
        let mut pi = 0usize;
        for (i, slot) in built.slots.iter().enumerate() {
            if !slot.from_graph {
                types[i] = built.param_types[pi].clone();
                pi += 1;
            }
        }
        types
    }

    /// `requires` plus output-positivity and size-bound constraints — the
    /// `Solve` helper of Algorithm 1 — served from the type-transfer memo
    /// as interned constraint handles. Also returns the (memoized) output
    /// types so callers never re-derive them.
    fn insertion_constraints(
        &self,
        op: &Op,
        input_types: &[TensorType],
    ) -> Option<(Vec<BoolId>, Vec<TensorType>)> {
        let mut cs = self.memo.requires_ids(op, input_types).ok()?;
        let outputs = self.memo.type_transfer(op, input_types).ok()?;
        for out in &outputs {
            self.push_size_cap_ids(&mut cs, out);
        }
        Some((cs, outputs))
    }

    /// Size-bound constraints for a tensor type: every dim in
    /// `[1, max_out_dim]` and the element count within budget.
    fn push_size_caps(cs: &mut Vec<BoolExpr>, t: &TensorType, max_out_dim: i64, max_numel: i64) {
        let mut numel = IntExpr::Const(1);
        for d in t.dims() {
            cs.push(d.clone().ge(1.into()));
            cs.push(d.clone().le(max_out_dim.into()));
            numel = numel * d;
        }
        cs.push(numel.le(max_numel.into()));
    }

    /// [`SymbolicState::push_size_caps`] over interned handles — no tree
    /// reconstruction: the `d >= 1` caps land directly on the shared
    /// base-segment forms, and the smart constructors fold exactly like
    /// the tree builders, so the asserted constraints are identical.
    fn push_size_cap_ids(&self, cs: &mut Vec<BoolId>, t: &TensorType) {
        let pool = self.solver.pool().clone();
        let one = pool.constant(1);
        let max_dim = pool.constant(self.max_out_dim);
        let mut numel = one;
        for &d in t.dim_ids() {
            cs.push(pool.cmp(CmpOp::Ge, d, one));
            cs.push(pool.cmp(CmpOp::Le, d, max_dim));
            numel = pool.bin(BinOp::Mul, numel, d);
        }
        cs.push(pool.cmp(CmpOp::Le, numel, pool.constant(self.max_numel)));
    }

    /// Substitutes the model into every type and attribute, finalizes
    /// placeholders into inputs and weights.
    fn concretize<R: Rng + ?Sized>(&self, model: &Model, rng: &mut R) -> Graph<Op> {
        let mut graph = self.graph.clone();
        for (id, _) in self.graph.iter() {
            let node = graph.node_mut(id);
            for t in &mut node.outputs {
                *t = t.concretize(model);
            }
            if let NodeKind::Operator(op) = &node.kind {
                node.kind = NodeKind::Operator(op.concretize(model));
            }
        }
        // Placeholders: parameters become weights; data placeholders are
        // split randomly with at least one input (multi-input/multi-output
        // models, §3.2).
        let data_placeholders: Vec<NodeId> = graph
            .placeholders()
            .into_iter()
            .filter(|id| !self.param_placeholders.contains(id))
            .collect();
        let forced_input = data_placeholders.choose(rng).copied();
        let params = self.param_placeholders.clone();
        graph.finalize_placeholders(|id| {
            if params.contains(&id) {
                NodeKind::Weight
            } else if Some(id) == forced_input || rng.gen_bool(0.6) {
                NodeKind::Input
            } else {
                NodeKind::Weight
            }
        });
        graph
    }
}

/// One weighted draw over integer weights: a single `gen_range` over the
/// cumulative sum, so the choice is byte-deterministic for a given RNG
/// state (no float accumulation).
fn weighted_pick<R: Rng + ?Sized>(weights: &[u64], rng: &mut R) -> usize {
    let total: u64 = weights.iter().sum();
    debug_assert!(total > 0, "weighted_pick needs a positive total");
    let mut x = rng.gen_range(0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= *w;
    }
    weights.len() - 1
}

fn fresh_placeholder_type(
    dtype: DType,
    rank: usize,
    solver: &mut Solver,
    dim_hi: i64,
) -> TensorType {
    let shape = (0..rank)
        .map(|i| IntExpr::var(solver.new_var(format!("ph_d{i}"), 1, dim_hi)))
        .collect();
    TensorType::new_in(solver.pool(), dtype, shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen_with_seed(seed: u64, cfg: GenConfig) -> GeneratedModel {
        let mut rng = StdRng::seed_from_u64(seed);
        Generator::new(cfg).generate(&mut rng).expect("generation")
    }

    #[test]
    fn generates_target_size() {
        let m = gen_with_seed(42, GenConfig::default());
        assert!(
            m.graph.operators().len() >= 5,
            "only {} ops",
            m.graph.operators().len()
        );
        assert!(m.graph.validate().is_ok());
        assert!(m.graph.is_concrete());
    }

    #[test]
    fn no_placeholders_remain() {
        let m = gen_with_seed(7, GenConfig::default());
        assert!(m.graph.placeholders().is_empty());
        // At least one input.
        let has_input = m
            .graph
            .iter()
            .any(|(_, n)| matches!(n.kind, NodeKind::Input));
        assert!(has_input);
    }

    #[test]
    fn shapes_satisfy_specs() {
        // Every operator's concrete input/output types must re-typecheck.
        for seed in 0..20 {
            let m = gen_with_seed(seed, GenConfig::default());
            for id in m.graph.operators() {
                let node = m.graph.node(id);
                let op = node.kind.as_operator().expect("operator");
                let in_types: Vec<TensorType> = node
                    .inputs
                    .iter()
                    .map(|v| m.graph.value_type(*v).clone())
                    .collect();
                let cs = op.requires(&in_types).expect("spec applies");
                for c in cs {
                    assert_eq!(
                        c,
                        BoolExpr::Lit(true),
                        "seed {seed}: {} constraint unsatisfied: {c}",
                        op.name()
                    );
                }
                let out = op.type_transfer(&in_types).expect("transfer");
                assert_eq!(out.len(), node.outputs.len());
                for (computed, stored) in out.iter().zip(&node.outputs) {
                    assert_eq!(
                        computed.concrete_shape(),
                        stored.concrete_shape(),
                        "seed {seed}: {} output shape mismatch",
                        op.name()
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = gen_with_seed(5, GenConfig::default());
        let b = gen_with_seed(5, GenConfig::default());
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn different_seeds_differ() {
        let a = gen_with_seed(1, GenConfig::default());
        let b = gen_with_seed(2, GenConfig::default());
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn respects_size_bounds() {
        let cfg = GenConfig::default();
        for seed in 0..10 {
            let m = gen_with_seed(seed, cfg.clone());
            for v in m.graph.all_values() {
                let t = m.graph.value_type(v);
                let dims = t.concrete_dims().expect("concrete");
                let numel: usize = dims.iter().product();
                assert!(numel as i64 <= cfg.max_numel, "numel {numel} too big");
                for d in dims {
                    assert!(d as i64 <= cfg.max_out_dim);
                    assert!(d >= 1);
                }
            }
        }
    }

    #[test]
    fn binning_off_still_generates() {
        let m = gen_with_seed(
            3,
            GenConfig {
                binning: false,
                ..GenConfig::default()
            },
        );
        assert!(m.graph.operators().len() >= 3);
        assert_eq!(m.stats.binning_kept + m.stats.binning_dropped, 0);
    }

    #[test]
    fn larger_models_generate() {
        let m = gen_with_seed(
            11,
            GenConfig {
                target_ops: 20,
                max_attempts: 1200,
                ..GenConfig::default()
            },
        );
        assert!(
            m.graph.operators().len() >= 12,
            "got {}",
            m.graph.operators().len()
        );
    }

    #[test]
    fn uses_both_insertion_modes() {
        // Over several seeds both forward and backward insertions happen.
        let mut fwd = 0;
        let mut bwd = 0;
        for seed in 0..10 {
            let m = gen_with_seed(seed, GenConfig::default());
            fwd += m.stats.forward_ok;
            bwd += m.stats.backward_ok;
        }
        assert!(fwd > 0);
        assert!(bwd > 0);
    }
}
