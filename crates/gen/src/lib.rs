//! # nnsmith-gen
//!
//! Constraint-guided model generation — Algorithms 1 and 2 of the NNSmith
//! paper.
//!
//! Starting from a single placeholder, the generator repeatedly samples an
//! operator template and attempts *forward insertion* (the new operator
//! consumes existing values) or *backward insertion* (the operator replaces
//! a placeholder and fresh placeholders become its inputs), keeping only
//! insertions whose type-matching constraints stay satisfiable. After the
//! graph reaches its target size, *attribute binning* adds exponential
//! range constraints to spread attributes away from the solver's boundary
//! models, retrying with half the constraints on unsatisfiability.
//!
//! ## Example
//!
//! ```
//! use nnsmith_gen::{GenConfig, Generator};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let model = Generator::new(GenConfig::default()).generate(&mut rng)?;
//! println!("{}", model.graph.to_text());
//! # Ok::<(), nnsmith_gen::GenError>(())
//! ```

#![warn(missing_docs)]

mod binning;
mod config;
mod generate;
mod mutate;

pub use binning::{apply_binning, sample_from_bin};
pub use config::{GenConfig, GenSchedule, GenStats};
pub use generate::{GenError, GeneratedModel, Generator};
pub use mutate::{dtype_siblings, mutate_graph, mutate_graph_with, MutationOutcome};
