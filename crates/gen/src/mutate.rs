//! Graph mutation — the feedback loop's alternative to generating fresh.
//!
//! A retained coverage-novel graph is perturbed instead of regrown:
//!
//! * **op swap** — replace one operator with a type-compatible sibling
//!   (same structural family: another unary/binary/compare/logical kind,
//!   the other pooling, the other arg-extreme, another reduce or pad
//!   kind), accepted only when the candidate's `requires` constraints
//!   all fold to `true` on the concrete input types and `type_transfer`
//!   reproduces the stored output types exactly — so downstream types
//!   never change and the graph stays valid by construction;
//! * **dtype rotate** — retype every leaf of one dtype to a different
//!   palette dtype and re-solve forward, producing the graph's dtype
//!   sibling (an f32 graph's f64 twin) — the cheapest route to
//!   dtype-specialized variants of a bug the base graph triggered;
//! * **dim perturb** — nudge one dimension of one leaf (input/weight)
//!   tensor by ±1 and re-solve shapes forward through the graph via
//!   `requires`/`type_transfer` in topological order, rejecting the
//!   mutation if any operator's constraints stop holding;
//! * **re-search** — keep the graph and only re-draw the input search
//!   (the caller re-runs `search_values` with a fresh seed either way,
//!   so this arm returns the graph unchanged).
//!
//! Mutations never touch the RNG beyond their own draws and are pure
//! functions of `(graph, rng)` — byte-deterministic per the campaign
//! determinism contract.

use rand::seq::SliceRandom;
use rand::Rng;

use nnsmith_graph::{Graph, NodeKind, TensorType};
use nnsmith_ops::{BinaryKind, CompareKind, LogicalKind, Op, PadKind, UnaryKind};
use nnsmith_solver::BoolExpr;
use nnsmith_tensor::{DType, ReduceKind};

/// A successful mutation: the perturbed graph plus which arm produced it
/// (for counters).
#[derive(Debug, Clone)]
pub struct MutationOutcome {
    /// The mutated (still concrete and valid) graph.
    pub graph: Graph<Op>,
    /// Which mutation arm ran: `"op_swap"`, `"dtype_rotate"`,
    /// `"dim_perturb"` or `"re_search"`.
    pub kind: &'static str,
}

/// Attempts one mutation of a concrete graph with the full numeric dtype
/// palette. Returns `None` when the drawn arm found no valid
/// perturbation — the caller falls back to fresh generation (consuming
/// its own RNG stream, not this one).
pub fn mutate_graph<R: Rng + ?Sized>(graph: &Graph<Op>, rng: &mut R) -> Option<MutationOutcome> {
    mutate_graph_with(graph, &DType::NUMERIC, rng)
}

/// [`mutate_graph`] restricted to a dtype palette (cross-backend
/// campaigns pass the backend set's support intersection, so a rotated
/// mutant stays legal on every backend).
pub fn mutate_graph_with<R: Rng + ?Sized>(
    graph: &Graph<Op>,
    palette: &[DType],
    rng: &mut R,
) -> Option<MutationOutcome> {
    match rng.gen_range(0..6u32) {
        0 | 1 => op_swap(graph, rng),
        2 | 3 => dtype_rotate(graph, palette, rng),
        4 => dim_perturb(graph, rng),
        _ => Some(MutationOutcome {
            graph: graph.clone(),
            kind: "re_search",
        }),
    }
}

/// Type-compatible sibling operators within the same structural family.
fn alternates(op: &Op) -> Vec<Op> {
    match op {
        Op::Unary(k) => UnaryKind::ALL
            .iter()
            .filter(|a| *a != k)
            .map(|a| Op::Unary(*a))
            .collect(),
        Op::Binary(k) => BinaryKind::ALL
            .iter()
            .filter(|a| *a != k)
            .map(|a| Op::Binary(*a))
            .collect(),
        Op::Compare(k) => CompareKind::ALL
            .iter()
            .filter(|a| *a != k)
            .map(|a| Op::Compare(*a))
            .collect(),
        Op::Logical(k) => LogicalKind::ALL
            .iter()
            .filter(|a| *a != k)
            .map(|a| Op::Logical(*a))
            .collect(),
        Op::Reduce {
            kind,
            axes,
            keepdims,
        } => [
            ReduceKind::Sum,
            ReduceKind::Mean,
            ReduceKind::Prod,
            ReduceKind::Max,
            ReduceKind::Min,
        ]
        .iter()
        .filter(|a| *a != kind)
        .map(|a| Op::Reduce {
            kind: *a,
            axes: axes.clone(),
            keepdims: *keepdims,
        })
        .collect(),
        Op::ArgExtreme {
            largest,
            axis,
            keepdims,
        } => vec![Op::ArgExtreme {
            largest: !largest,
            axis: *axis,
            keepdims: *keepdims,
        }],
        Op::MaxPool2d {
            kh,
            kw,
            stride,
            padding,
        } => vec![Op::AvgPool2d {
            kh: kh.clone(),
            kw: kw.clone(),
            stride: stride.clone(),
            padding: padding.clone(),
        }],
        Op::AvgPool2d {
            kh,
            kw,
            stride,
            padding,
        } => vec![Op::MaxPool2d {
            kh: kh.clone(),
            kw: kw.clone(),
            stride: stride.clone(),
            padding: padding.clone(),
        }],
        Op::Pad { pads, kind } => [PadKind::Constant, PadKind::Reflect, PadKind::Replicate]
            .iter()
            .filter(|a| *a != kind)
            .map(|a| Op::Pad {
                pads: pads.clone(),
                kind: *a,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// True when `candidate` is a drop-in replacement at this site: its
/// concrete `requires` all hold and its `type_transfer` reproduces the
/// stored outputs bit-for-bit (dtype and shape).
fn valid_swap(candidate: &Op, in_types: &[TensorType], outputs: &[TensorType]) -> bool {
    let Ok(cs) = candidate.requires(in_types) else {
        return false;
    };
    if cs.iter().any(|c| *c != BoolExpr::Lit(true)) {
        return false;
    }
    let Ok(derived) = candidate.type_transfer(in_types) else {
        return false;
    };
    derived.len() == outputs.len()
        && derived
            .iter()
            .zip(outputs)
            .all(|(d, s)| d.dtype == s.dtype && d.concrete_shape() == s.concrete_shape())
}

fn op_swap<R: Rng + ?Sized>(graph: &Graph<Op>, rng: &mut R) -> Option<MutationOutcome> {
    // Candidate collection follows graph iteration order (a Vec), so the
    // candidate list — and therefore the draw — is deterministic.
    let mut candidates = Vec::new();
    for (id, node) in graph.iter() {
        let NodeKind::Operator(op) = &node.kind else {
            continue;
        };
        let in_types: Vec<TensorType> = node
            .inputs
            .iter()
            .map(|v| graph.value_type(*v).clone())
            .collect();
        for alt in alternates(op) {
            if valid_swap(&alt, &in_types, &node.outputs) {
                candidates.push((id, alt));
            }
        }
    }
    let (id, alt) = candidates.choose(rng)?.clone();
    let mut mutated = graph.clone();
    mutated.node_mut(id).kind = NodeKind::Operator(alt);
    debug_assert!(mutated.validate().is_ok());
    Some(MutationOutcome {
        graph: mutated,
        kind: "op_swap",
    })
}

/// Re-solves every operator's output types in topological order after a
/// leaf perturbation, bailing out the moment any `requires` constraint
/// stops folding to `true`. `allow_dtype_change` distinguishes the
/// shape-only arm (dim perturb: dtypes must stay fixed) from the dtype
/// arm (rotate: dtypes flow forward through `type_transfer`).
fn repropagate(mutated: &mut Graph<Op>, allow_dtype_change: bool) -> Option<()> {
    for id in mutated.topo_order().ok()? {
        let node = mutated.node(id);
        let NodeKind::Operator(op) = &node.kind else {
            continue;
        };
        let op = op.clone();
        let in_types: Vec<TensorType> = node
            .inputs
            .iter()
            .map(|v| mutated.value_type(*v).clone())
            .collect();
        let cs = op.requires(&in_types).ok()?;
        if cs.iter().any(|c| *c != BoolExpr::Lit(true)) {
            return None;
        }
        let outs = op.type_transfer(&in_types).ok()?;
        let node = mutated.node_mut(id);
        if outs.len() != node.outputs.len() {
            return None;
        }
        if !allow_dtype_change
            && outs
                .iter()
                .zip(&node.outputs)
                .any(|(d, s)| d.dtype != s.dtype)
        {
            return None;
        }
        node.outputs = outs;
    }
    Some(())
}

/// Concrete input/weight leaves, in graph iteration order.
fn concrete_leaves(graph: &Graph<Op>) -> Vec<nnsmith_graph::NodeId> {
    graph
        .iter()
        .filter(|(_, n)| {
            matches!(n.kind, NodeKind::Input | NodeKind::Weight) && n.outputs[0].is_concrete()
        })
        .map(|(id, _)| id)
        .collect()
}

/// Distinct dtypes of the concrete leaves, in iteration order (so draws
/// over them are deterministic).
fn leaf_dtype_classes(graph: &Graph<Op>) -> Vec<DType> {
    let mut classes: Vec<DType> = Vec::new();
    for id in concrete_leaves(graph) {
        let d = graph.node(id).outputs[0].dtype;
        if !classes.contains(&d) {
            classes.push(d);
        }
    }
    classes
}

/// Retypes every leaf of dtype `from` to `to` and re-solves forward.
/// Whole-class rotation (rather than one leaf) keeps dtype-matching
/// constraints between siblings satisfied, so e.g. an entire f32 graph
/// becomes its f64 twin. `None` when any operator's constraints break.
fn rotate_class(graph: &Graph<Op>, from: DType, to: DType) -> Option<Graph<Op>> {
    let mut mutated = graph.clone();
    for id in concrete_leaves(graph) {
        let old = mutated.node(id).outputs[0].clone();
        if old.dtype != from {
            continue;
        }
        let dims = old.concrete_shape()?;
        let pool = old.pool().clone();
        mutated.node_mut(id).outputs[0] = TensorType::concrete_in(&pool, to, &dims);
    }
    repropagate(&mut mutated, true)?;
    mutated.validate().ok()?;
    Some(mutated)
}

/// Rotates one (randomly drawn) leaf-dtype class to a different palette
/// dtype — the cheapest route to the dtype-specialized sibling of a bug
/// the base graph triggered.
fn dtype_rotate<R: Rng + ?Sized>(
    graph: &Graph<Op>,
    palette: &[DType],
    rng: &mut R,
) -> Option<MutationOutcome> {
    let classes = leaf_dtype_classes(graph);
    let &from = classes.choose(rng)?;
    let choices: Vec<DType> = palette
        .iter()
        .copied()
        .filter(|d| *d != from && *d != DType::Bool)
        .collect();
    let &to = choices.choose(rng)?;
    Some(MutationOutcome {
        graph: rotate_class(graph, from, to)?,
        kind: "dtype_rotate",
    })
}

/// Every valid dtype sibling of `graph`: each leaf-dtype class rotated
/// to each other palette dtype, in deterministic enumeration order. This
/// is the feedback loop's *systematic* finding-exploitation arm — a
/// bug-triggering graph's structure is held fixed while its dtypes sweep
/// the palette, directly probing the dtype-specialized variants that
/// dominate real compiler bug trackers (and the seeded registry). Pure
/// function of `(graph, palette)`: no RNG.
pub fn dtype_siblings(graph: &Graph<Op>, palette: &[DType]) -> Vec<Graph<Op>> {
    let mut out = Vec::new();
    for from in leaf_dtype_classes(graph) {
        for &to in palette {
            if to == from || to == DType::Bool {
                continue;
            }
            if let Some(sibling) = rotate_class(graph, from, to) {
                out.push(sibling);
            }
        }
    }
    out
}

fn dim_perturb<R: Rng + ?Sized>(graph: &Graph<Op>, rng: &mut R) -> Option<MutationOutcome> {
    let leaves: Vec<_> = graph
        .iter()
        .filter(|(_, n)| {
            matches!(n.kind, NodeKind::Input | NodeKind::Weight)
                && n.outputs[0].rank() > 0
                && n.outputs[0].is_concrete()
        })
        .map(|(id, _)| id)
        .collect();
    let &leaf = leaves.choose(rng)?;
    let old = graph.node(leaf).outputs[0].clone();
    let mut dims = old.concrete_shape()?;
    let di = rng.gen_range(0..dims.len());
    let delta: i64 = if rng.gen_bool(0.5) { 1 } else { -1 };
    let nudged = (dims[di] + delta).max(1);
    if nudged == dims[di] {
        return None;
    }
    dims[di] = nudged;

    let mut mutated = graph.clone();
    let pool = old.pool().clone();
    mutated.node_mut(leaf).outputs[0] = TensorType::concrete_in(&pool, old.dtype, &dims);

    repropagate(&mut mutated, false)?;
    mutated.validate().ok()?;
    Some(MutationOutcome {
        graph: mutated,
        kind: "dim_perturb",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GenConfig, Generator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Graph<Op> {
        let mut rng = StdRng::seed_from_u64(seed);
        Generator::new(GenConfig::default())
            .generate(&mut rng)
            .expect("generation")
            .graph
    }

    #[test]
    fn mutations_preserve_validity() {
        let mut hits = 0;
        for seed in 0..12u64 {
            let g = model(seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
            for _ in 0..8 {
                if let Some(m) = mutate_graph(&g, &mut rng) {
                    m.graph.validate().expect("mutated graph stays valid");
                    hits += 1;
                    // Re-typecheck every operator like shapes_satisfy_specs.
                    for id in m.graph.operators() {
                        let node = m.graph.node(id);
                        let op = node.kind.as_operator().expect("operator");
                        let in_types: Vec<TensorType> = node
                            .inputs
                            .iter()
                            .map(|v| m.graph.value_type(*v).clone())
                            .collect();
                        for c in op.requires(&in_types).expect("spec applies") {
                            assert_eq!(c, BoolExpr::Lit(true), "{} violated", op.name());
                        }
                    }
                }
            }
        }
        assert!(hits > 0, "at least some mutations must succeed");
    }

    #[test]
    fn op_swap_changes_an_operator() {
        let mut changed = 0;
        for seed in 0..20u64 {
            let g = model(seed);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Some(m) = op_swap(&g, &mut rng) {
                assert_ne!(m.graph, g, "swap must change the graph");
                assert_eq!(m.kind, "op_swap");
                changed += 1;
            }
        }
        assert!(changed > 0, "op swap should find candidates somewhere");
    }

    #[test]
    fn dim_perturb_changes_a_shape_or_fails_cleanly() {
        let mut changed = 0;
        for seed in 0..20u64 {
            let g = model(seed);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Some(m) = dim_perturb(&g, &mut rng) {
                assert_ne!(m.graph, g);
                m.graph.validate().expect("valid after perturb");
                changed += 1;
            }
        }
        assert!(changed > 0, "dim perturb should succeed somewhere");
    }

    #[test]
    fn dtype_rotate_produces_a_valid_dtype_sibling() {
        let mut rotated = 0;
        for seed in 0..20u64 {
            let g = model(seed);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Some(m) = dtype_rotate(&g, &DType::NUMERIC, &mut rng) {
                assert_ne!(m.graph, g, "rotation must change the graph");
                assert_eq!(m.kind, "dtype_rotate");
                m.graph.validate().expect("valid after rotate");
                rotated += 1;
            }
        }
        assert!(rotated > 0, "dtype rotate should succeed somewhere");
    }

    #[test]
    fn dtype_rotate_respects_the_palette() {
        use std::collections::BTreeSet;
        let palette = [DType::F32, DType::I32];
        for seed in 0..20u64 {
            let g = model(seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let Some(m) = dtype_rotate(&g, &palette, &mut rng) else {
                continue;
            };
            let before: BTreeSet<DType> = g
                .iter()
                .filter(|(_, n)| matches!(n.kind, NodeKind::Input | NodeKind::Weight))
                .map(|(_, n)| n.outputs[0].dtype)
                .collect();
            for (_, n) in m.graph.iter() {
                if matches!(n.kind, NodeKind::Input | NodeKind::Weight) {
                    let d = n.outputs[0].dtype;
                    assert!(
                        before.contains(&d) || palette.contains(&d),
                        "leaf dtype {d:?} came from outside the palette"
                    );
                }
            }
        }
    }

    #[test]
    fn mutation_is_deterministic() {
        let g = model(3);
        let a = {
            let mut rng = StdRng::seed_from_u64(9);
            mutate_graph(&g, &mut rng).map(|m| m.graph)
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(9);
            mutate_graph(&g, &mut rng).map(|m| m.graph)
        };
        assert_eq!(a, b);
    }
}
