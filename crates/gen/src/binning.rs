//! Attribute binning — Algorithm 2 of the paper.
//!
//! Solver models are boundary-biased (dimensions constrained only by
//! `d ≥ 1` come back as 1). Binning adds random range constraints drawn
//! from exponential bins (`[2^{i-1}, 2^i)`), so attributes and placeholder
//! shapes spread over the whole range. If the extra constraints make the
//! system unsatisfiable, half of them are dropped at random and the check
//! retried (Algorithm 2 line 17).

use rand::seq::SliceRandom;
use rand::Rng;

use nnsmith_graph::{Graph, NodeKind};
use nnsmith_ops::Op;
use nnsmith_solver::{BoolExpr, IntExpr, Solver};

use crate::config::{GenConfig, GenStats};

/// Samples `(l, r)` from bin `i` of `k` (1-based), following
/// `SampleFromBin` of Algorithm 2: real exponents `b < t` uniform in
/// `[i-1, i]`, returning `(⌊2^b⌋, ⌊2^t⌋)`; the last bin is `[2^{k-1}, ∞)`.
pub fn sample_from_bin<R: Rng + ?Sized>(i: u32, k: u32, rng: &mut R) -> (i64, i64) {
    if i != k {
        let mut b: f64 = rng.gen_range((i - 1) as f64..i as f64);
        let mut t: f64 = rng.gen_range((i - 1) as f64..i as f64);
        if b > t {
            std::mem::swap(&mut b, &mut t);
        }
        (b.exp2().floor() as i64, t.exp2().floor() as i64)
    } else {
        (1i64 << (k - 1), i64::MAX / 4)
    }
}

/// One binning constraint: `l ≤ α ≤ r` for attribute expression `α`.
fn bin_constraint<R: Rng + ?Sized>(alpha: &IntExpr, k: u32, rng: &mut R) -> BoolExpr {
    let i = rng.gen_range(1..=k);
    let (l, r) = sample_from_bin(i, k, rng);
    BoolExpr::and([alpha.clone().ge(l.into()), alpha.clone().le(r.into())])
}

/// The specialized bins of §4 (`C*` in Algorithm 2): padding attributes get
/// an extra zero bin (and, for `ConstPad`, negative bins); `Slice` bounds
/// are left to their validity constraints.
fn specialized_constraint<R: Rng + ?Sized>(
    op: &Op,
    attr_name: &str,
    alpha: &IntExpr,
    k: u32,
    rng: &mut R,
) -> Option<BoolExpr> {
    match (op, attr_name) {
        // Conv2d/pool padding: one extra bin containing just 0.
        (Op::Conv2d { .. } | Op::MaxPool2d { .. } | Op::AvgPool2d { .. }, "padding") => {
            // k regular bins plus the zero bin.
            let choice = rng.gen_range(0..=k);
            if choice == 0 {
                Some(alpha.clone().eq_expr(0.into()))
            } else {
                let (l, r) = sample_from_bin(choice, k, rng);
                Some(BoolExpr::and([
                    alpha.clone().ge(l.into()),
                    alpha.clone().le(r.into()),
                ]))
            }
        }
        // ConstPad/ReflectPad/ReplicatePad padding: zero bin and (for the
        // constant mode) negative bins.
        (Op::Pad { kind, .. }, "padding") => {
            let allow_negative = matches!(kind, nnsmith_ops::PadKind::Constant);
            let choice = rng.gen_range(0..=(k + u32::from(allow_negative)));
            if choice == 0 {
                Some(alpha.clone().eq_expr(0.into()))
            } else if allow_negative && choice == k + 1 {
                Some(BoolExpr::and([
                    alpha.clone().ge((-3).into()),
                    alpha.clone().le((-1).into()),
                ]))
            } else {
                let (l, r) = sample_from_bin(choice, k, rng);
                Some(BoolExpr::and([
                    alpha.clone().ge(l.into()),
                    alpha.clone().le(r.into()),
                ]))
            }
        }
        // Slice indexing ranges: validity is already enforced by
        // `requires`; no extra binning (the §4 special handling).
        (Op::Slice { .. }, "start" | "end") => None,
        _ => None,
    }
}

/// Applies attribute binning to every operator attribute and placeholder
/// dimension of the graph (Algorithm 2's `AttrBinning`).
pub fn apply_binning<R: Rng + ?Sized>(
    graph: &mut Graph<Op>,
    solver: &mut Solver,
    config: &GenConfig,
    rng: &mut R,
    stats: &mut GenStats,
) {
    let k = config.bins;
    let mut cb: Vec<BoolExpr> = Vec::new();
    for (_, node) in graph.iter() {
        match &node.kind {
            // Placeholders count as operators whose attributes are their
            // shape dimensions (Algorithm 2, "also considers placeholders").
            NodeKind::Placeholder | NodeKind::Input | NodeKind::Weight => {
                for t in &node.outputs {
                    for d in &t.dims() {
                        if !d.is_const() {
                            cb.push(bin_constraint(d, k, rng));
                        }
                    }
                }
            }
            NodeKind::Operator(op) => {
                for (name, alpha) in op.attr_exprs() {
                    if alpha.is_const() {
                        continue;
                    }
                    match specialized_constraint(op, name, &alpha, k, rng) {
                        Some(c) => cb.push(c),
                        None if matches!(op, Op::Slice { .. }) => {}
                        None => cb.push(bin_constraint(&alpha, k, rng)),
                    }
                }
            }
        }
    }

    let total = cb.len() as u64;
    // Algorithm 2 line 17 drops half the constraints on failure and
    // retries. Under this reproduction's tensor-size caps the batch
    // conflicts are *systematic* (four dims binned high violate the element
    // budget), so halving degenerates to dropping almost everything. We
    // keep the one-shot batch attempt, then fall back to a greedy
    // per-constraint pass that retains every individually-compatible range
    // (documented in DESIGN.md).
    let mut kept = 0u64;
    if !cb.is_empty() {
        // Small sets keep Algorithm 2's one-shot batch attempt; for larger
        // sets the batch is near-certainly unsatisfiable under the tensor
        // size caps and a failed batch check burns the whole search budget,
        // so we go straight to the greedy pass (each incremental add is a
        // cheap warm-model repair).
        let batch_ok = cb.len() <= 8 && solver.try_add_constraints(cb.iter().cloned()).is_some();
        if batch_ok {
            kept = cb.len() as u64;
        } else {
            cb.shuffle(rng);
            for c in cb {
                if solver.try_add_constraints([c]).is_some() {
                    kept += 1;
                }
            }
        }
    }
    stats.binning_kept = kept;
    stats.binning_dropped = total - kept;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bins_are_exponential() {
        let mut rng = StdRng::seed_from_u64(0);
        for i in 1..7u32 {
            for _ in 0..50 {
                let (l, r) = sample_from_bin(i, 7, &mut rng);
                assert!(l <= r);
                let lo = 1i64 << (i - 1);
                let hi = 1i64 << i;
                assert!(l >= lo - 1 && r <= hi, "bin {i} gave ({l}, {r})");
            }
        }
        let (l, r) = sample_from_bin(7, 7, &mut rng);
        assert_eq!(l, 64);
        assert!(r > 1 << 19);
    }

    #[test]
    fn binning_diversifies_dimensions() {
        // Without binning the solver returns minimal (1) dims for a simple
        // `d >= 1` system; with binning most dims move off the boundary.
        let mut ones = 0usize;
        let mut total = 0usize;
        for seed in 0..8u64 {
            let mut rng_local = StdRng::seed_from_u64(seed);
            let m = crate::Generator::default()
                .generate(&mut rng_local)
                .expect("gen");
            for v in m.graph.all_values() {
                for d in m.graph.value_type(v).concrete_dims().expect("concrete") {
                    total += 1;
                    if d == 1 {
                        ones += 1;
                    }
                }
            }
        }
        // With k=7 exponential bins, boundary value 1 should be well under
        // half of all dims.
        assert!(
            (ones as f64) < 0.5 * total as f64,
            "{ones}/{total} dims are 1"
        );
    }
}
