//! Generator configuration.

use nnsmith_tensor::DType;

/// Integer schedule weights biasing the generator's random draws —
/// plain data so `gen` stays free of campaign-layer dependencies (the
/// feedback loop computes these from marginal per-backend branch yield
/// and feeds them in at deterministic case-count checkpoints).
///
/// An option absent from a list draws at `default_weight`; weights are
/// integers so weighted draws are byte-deterministic. An empty schedule
/// is exactly uniform — and the generator then keeps the *unweighted*
/// code path, preserving the RNG stream of feedback-unaware versions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenSchedule {
    /// Weight per operator-template name (see `OpTemplate::name`).
    pub op_weights: Vec<(String, u64)>,
    /// Weight per dtype name (see `DType::name`).
    pub dtype_weights: Vec<(String, u64)>,
    /// Weight per placeholder rank.
    pub rank_weights: Vec<(usize, u64)>,
    /// Weight for options not listed above.
    pub default_weight: u64,
}

impl GenSchedule {
    /// True when every draw would be uniform anyway.
    pub fn is_empty(&self) -> bool {
        self.op_weights.is_empty() && self.dtype_weights.is_empty() && self.rank_weights.is_empty()
    }

    /// The floor weight (at least 1, so no option is ever starved).
    fn floor(&self) -> u64 {
        self.default_weight.max(1)
    }

    /// Weight for an operator template by name.
    pub fn op_weight(&self, name: &str) -> u64 {
        self.op_weights
            .iter()
            .find(|(n, _)| n == name)
            .map_or(self.floor(), |(_, w)| (*w).max(1))
    }

    /// Weight for a dtype by name.
    pub fn dtype_weight(&self, name: &str) -> u64 {
        self.dtype_weights
            .iter()
            .find(|(n, _)| n == name)
            .map_or(self.floor(), |(_, w)| (*w).max(1))
    }

    /// Weight for a placeholder rank.
    pub fn rank_weight(&self, rank: usize) -> u64 {
        self.rank_weights
            .iter()
            .find(|(r, _)| *r == rank)
            .map_or(self.floor(), |(_, w)| (*w).max(1))
    }
}

/// Tuning knobs for the model generator (defaults follow §5.1 of the
/// paper: 10-node graphs, equal forward/backward probability, `k = 7`
/// attribute bins).
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of operator nodes to generate.
    pub target_ops: usize,
    /// Insertion attempts before giving up on growing further.
    pub max_attempts: usize,
    /// Probability of trying forward insertion (vs. backward) per attempt.
    pub forward_prob: f64,
    /// Probability that a data input uses a fresh placeholder even when
    /// matching values exist (creates multi-input models).
    pub fresh_input_prob: f64,
    /// Number of exponential attribute bins (`k` of Algorithm 2).
    pub bins: u32,
    /// Enable attribute binning (ablation switch, Figures 9–10).
    pub binning: bool,
    /// Enable the dtype/rank type-matching pre-filter of Algorithm 1
    /// (ablation switch; disabling routes obviously-infeasible candidates
    /// to the solver).
    pub type_filter: bool,
    /// Upper bound for placeholder dimensions.
    pub dim_hi: i64,
    /// Upper bound for any single output dimension.
    pub max_out_dim: i64,
    /// Upper bound on the element count of any generated tensor.
    pub max_numel: i64,
    /// Element types generation may use; `None` means all. Cross-backend
    /// campaigns set this to the intersection of every backend's support
    /// matrix (§4: probe supported dtypes "so as to avoid
    /// 'Not-Implemented' errors" — extended across the whole backend set,
    /// so every generated case is legal on every backend). `None` leaves
    /// the RNG stream byte-identical to older versions.
    pub allowed_dtypes: Option<Vec<DType>>,
    /// Feedback-schedule weights for operator/dtype/rank draws. The
    /// default (empty) keeps every draw on the exact historical uniform
    /// RNG stream; a non-empty schedule switches the affected draws to
    /// weighted selection.
    pub schedule: GenSchedule,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            target_ops: 10,
            max_attempts: 400,
            forward_prob: 0.5,
            fresh_input_prob: 0.15,
            bins: 7,
            binning: true,
            type_filter: true,
            dim_hi: 48,
            max_out_dim: 2048,
            max_numel: 16_384,
            allowed_dtypes: None,
            schedule: GenSchedule::default(),
        }
    }
}

/// Counters describing one generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Total insertion attempts.
    pub attempts: u64,
    /// Successful forward insertions.
    pub forward_ok: u64,
    /// Successful backward insertions.
    pub backward_ok: u64,
    /// Attempts rejected by the solver (or by spec errors when the type
    /// filter is disabled).
    pub rejected: u64,
    /// Binning constraints kept after the retry-halving loop.
    pub binning_kept: u64,
    /// Binning constraints dropped by the retry-halving loop.
    pub binning_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GenConfig::default();
        assert_eq!(c.target_ops, 10);
        assert_eq!(c.bins, 7);
        assert!((c.forward_prob - 0.5).abs() < f64::EPSILON);
        assert!(c.binning);
    }
}
