//! Generator configuration.

use nnsmith_tensor::DType;

/// Tuning knobs for the model generator (defaults follow §5.1 of the
/// paper: 10-node graphs, equal forward/backward probability, `k = 7`
/// attribute bins).
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of operator nodes to generate.
    pub target_ops: usize,
    /// Insertion attempts before giving up on growing further.
    pub max_attempts: usize,
    /// Probability of trying forward insertion (vs. backward) per attempt.
    pub forward_prob: f64,
    /// Probability that a data input uses a fresh placeholder even when
    /// matching values exist (creates multi-input models).
    pub fresh_input_prob: f64,
    /// Number of exponential attribute bins (`k` of Algorithm 2).
    pub bins: u32,
    /// Enable attribute binning (ablation switch, Figures 9–10).
    pub binning: bool,
    /// Enable the dtype/rank type-matching pre-filter of Algorithm 1
    /// (ablation switch; disabling routes obviously-infeasible candidates
    /// to the solver).
    pub type_filter: bool,
    /// Upper bound for placeholder dimensions.
    pub dim_hi: i64,
    /// Upper bound for any single output dimension.
    pub max_out_dim: i64,
    /// Upper bound on the element count of any generated tensor.
    pub max_numel: i64,
    /// Element types generation may use; `None` means all. Cross-backend
    /// campaigns set this to the intersection of every backend's support
    /// matrix (§4: probe supported dtypes "so as to avoid
    /// 'Not-Implemented' errors" — extended across the whole backend set,
    /// so every generated case is legal on every backend). `None` leaves
    /// the RNG stream byte-identical to older versions.
    pub allowed_dtypes: Option<Vec<DType>>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            target_ops: 10,
            max_attempts: 400,
            forward_prob: 0.5,
            fresh_input_prob: 0.15,
            bins: 7,
            binning: true,
            type_filter: true,
            dim_hi: 48,
            max_out_dim: 2048,
            max_numel: 16_384,
            allowed_dtypes: None,
        }
    }
}

/// Counters describing one generation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GenStats {
    /// Total insertion attempts.
    pub attempts: u64,
    /// Successful forward insertions.
    pub forward_ok: u64,
    /// Successful backward insertions.
    pub backward_ok: u64,
    /// Attempts rejected by the solver (or by spec errors when the type
    /// filter is disabled).
    pub rejected: u64,
    /// Binning constraints kept after the retry-halving loop.
    pub binning_kept: u64,
    /// Binning constraints dropped by the retry-halving loop.
    pub binning_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = GenConfig::default();
        assert_eq!(c.target_ops, 10);
        assert_eq!(c.bins, 7);
        assert!((c.forward_prob - 0.5).abs() < f64::EPSILON);
        assert!(c.binning);
    }
}
