//! Generator ablation tests: the design choices DESIGN.md calls out.

use std::collections::HashSet;

use nnsmith_gen::{sample_from_bin, GenConfig, Generator};
use nnsmith_graph::NodeKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The type-matching pre-filter (Algorithm 1 line 7) is an efficiency
/// device, not a correctness one: generation still succeeds without it,
/// but wastes more attempts on solver/spec rejections.
#[test]
fn type_filter_ablation_still_generates_but_wastes_attempts() {
    let run = |type_filter: bool| {
        let generator = Generator::new(GenConfig {
            type_filter,
            max_attempts: 900,
            ..GenConfig::default()
        });
        let mut ops = 0u64;
        let mut rejected = 0u64;
        let mut attempts = 0u64;
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            if let Ok(m) = generator.generate(&mut rng) {
                ops += m.graph.operators().len() as u64;
                rejected += m.stats.rejected;
                attempts += m.stats.attempts;
            }
        }
        (ops, rejected, attempts)
    };
    let (ops_on, rej_on, att_on) = run(true);
    let (ops_off, rej_off, att_off) = run(false);
    assert!(ops_on > 0 && ops_off > 0);
    // Without the filter, the rejection *rate* goes up.
    let rate_on = rej_on as f64 / att_on.max(1) as f64;
    let rate_off = rej_off as f64 / att_off.max(1) as f64;
    assert!(
        rate_off > rate_on,
        "rejection rate without filter ({rate_off:.2}) should exceed with ({rate_on:.2})"
    );
}

/// Without binning, solver boundary bias dominates: far more dimensions
/// equal 1 than with binning (the Algorithm 2 motivation).
#[test]
fn binning_ablation_boundary_bias() {
    let ones_fraction = |binning: bool| {
        let generator = Generator::new(GenConfig {
            binning,
            ..GenConfig::default()
        });
        let mut ones = 0usize;
        let mut total = 0usize;
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = generator.generate(&mut rng).expect("gen");
            for v in m.graph.all_values() {
                for d in m.graph.value_type(v).concrete_dims().expect("concrete") {
                    total += 1;
                    ones += usize::from(d == 1);
                }
            }
        }
        ones as f64 / total.max(1) as f64
    };
    let with = ones_fraction(true);
    let without = ones_fraction(false);
    assert!(
        without > with + 0.15,
        "boundary-dim fraction: binning {with:.2} vs base {without:.2}"
    );
}

/// SampleFromBin is faithful to Algorithm 2: bin i of k yields
/// `(⌊2^b⌋, ⌊2^t⌋)` with exponents in `[i-1, i]`, and the last bin is
/// `[2^(k-1), ∞)`.
#[test]
fn sample_from_bin_matches_algorithm_2() {
    let mut rng = StdRng::seed_from_u64(0);
    for k in 2..=8u32 {
        for i in 1..k {
            for _ in 0..100 {
                let (l, r) = sample_from_bin(i, k, &mut rng);
                assert!(l <= r, "bin ({i},{k})");
                assert!(l >= (1i64 << (i - 1)) - 1);
                assert!(r <= 1i64 << i);
            }
        }
        let (l, r) = sample_from_bin(k, k, &mut rng);
        assert_eq!(l, 1i64 << (k - 1));
        assert!(r > 1 << 30);
    }
}

/// Forward-probability extremes still generate valid graphs.
#[test]
fn forward_probability_extremes() {
    for p in [0.0, 1.0] {
        let generator = Generator::new(GenConfig {
            forward_prob: p,
            ..GenConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let m = generator.generate(&mut rng).expect("gen");
        assert!(m.graph.validate().is_ok());
        assert!(!m.graph.operators().is_empty());
        if p == 1.0 {
            assert_eq!(m.stats.backward_ok, 0);
        } else {
            assert_eq!(m.stats.forward_ok, 0);
        }
    }
}

/// Restricting templates restricts the generated operator vocabulary
/// (the mechanism behind compiler-specific operator support, §4).
#[test]
fn template_restriction_respected() {
    use nnsmith_ops::{OpTemplate, UnaryKind};
    let templates = vec![
        OpTemplate::Unary(UnaryKind::Relu),
        OpTemplate::Unary(UnaryKind::Tanh),
        OpTemplate::Binary(nnsmith_ops::BinaryKind::Add),
    ];
    let generator = Generator::with_templates(GenConfig::default(), templates);
    let mut seen: HashSet<&'static str> = HashSet::new();
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = generator.generate(&mut rng).expect("gen");
        for id in m.graph.operators() {
            seen.insert(m.graph.node(id).kind.as_operator().unwrap().name());
        }
    }
    for name in &seen {
        assert!(
            ["Relu", "Tanh", "Add"].contains(name),
            "unexpected op {name}"
        );
    }
}

/// Graph-size scaling: larger targets give larger graphs, and every size
/// stays valid.
#[test]
fn size_scaling() {
    let mut last = 0usize;
    for target in [4usize, 10, 18] {
        let generator = Generator::new(GenConfig {
            target_ops: target,
            max_attempts: target * 80,
            ..GenConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let m = generator.generate(&mut rng).expect("gen");
        assert!(m.graph.validate().is_ok());
        let n = m.graph.operators().len();
        assert!(n >= last, "sizes should not shrink: {n} after {last}");
        last = n;
    }
    // Placeholders finalized even at scale.
    let generator = Generator::new(GenConfig {
        target_ops: 18,
        max_attempts: 1500,
        ..GenConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(4);
    let m = generator.generate(&mut rng).expect("gen");
    assert!(m.graph.placeholders().is_empty());
    let weights = m
        .graph
        .iter()
        .filter(|(_, n)| matches!(n.kind, NodeKind::Weight))
        .count();
    assert!(weights > 0);
}
