//! The phase profiler: spans, counters, per-shard profiles and their
//! deterministic projection.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Canonical phase keys. Free-form strings are allowed everywhere, but
/// the pipeline sticks to these so dashboards can rely on the names.
pub mod phase {
    /// Test-case generation (one span per `next_case` call; includes the
    /// solver time spent inside generation — `solve` spans nest within).
    pub const GEN: &str = "gen";
    /// One satisfiability check ([`Solver::check`]-level granularity).
    pub const SOLVE: &str = "solve";
    /// Reference (interpreter) execution of a case.
    pub const REF_EXEC: &str = "ref_exec";
    /// Graph export (the PyTorch→ONNX role).
    pub const EXPORT: &str = "export";
    /// Triage ingest (signature binning + reduction of one failure).
    pub const TRIAGE: &str = "triage";

    /// Per-backend compile phase key (`compile/<backend>`).
    pub fn compile(backend: &str) -> String {
        format!("compile/{backend}")
    }

    /// Per-backend execution phase key (`exec/<backend>`).
    pub fn exec(backend: &str) -> String {
        format!("exec/{backend}")
    }

    /// Per-backend O0 fault-localization phase key
    /// (`localize/<backend>`).
    pub fn localize(backend: &str) -> String {
        format!("localize/{backend}")
    }
}

/// One phase's accumulated statistics.
///
/// `count` is deterministic for a case-budgeted engine run (it counts
/// *work*, which the shard layout fixes); `wall_ns` is wall-clock truth
/// and scheduling-dependent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStat {
    /// Times the phase ran.
    pub count: u64,
    /// Total nanoseconds spent in the phase. **Nondeterministic.**
    pub wall_ns: u64,
}

/// Accumulated phase timings and named counters for one unit of work
/// (typically: one shard of an engine run).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Per-phase statistics, keyed by phase name (see [`phase`]).
    pub phases: BTreeMap<String, PhaseStat>,
    /// Named event counters (cache hits/misses, pool statistics).
    /// Deterministic for case-budgeted runs.
    pub counters: BTreeMap<String, u64>,
}

impl Profile {
    /// Records one completed span of `key` lasting `wall_ns`.
    pub fn record_span(&mut self, key: &str, wall_ns: u64) {
        let stat = self.phases.entry(key.to_string()).or_default();
        stat.count += 1;
        stat.wall_ns += wall_ns;
    }

    /// Adds `n` to counter `key` (creating it at zero first).
    pub fn add(&mut self, key: &str, n: u64) {
        *self.counters.entry(key.to_string()).or_insert(0) += n;
    }

    /// Folds `other` into `self` (summing matching phases and counters).
    /// Order-insensitive, so merging shard profiles in index order is
    /// deterministic.
    pub fn merge(&mut self, other: &Profile) {
        for (key, stat) in &other.phases {
            let mine = self.phases.entry(key.clone()).or_default();
            mine.count += stat.count;
            mine.wall_ns += stat.wall_ns;
        }
        for (key, n) in &other.counters {
            *self.counters.entry(key.clone()).or_insert(0) += n;
        }
    }

    /// Zeroes every `wall_ns` in place, keeping the schema: the form a
    /// byte-reproducible artifact serializes (counts survive, wall-clock
    /// does not).
    #[must_use]
    pub fn strip_wall(mut self) -> Profile {
        for stat in self.phases.values_mut() {
            stat.wall_ns = 0;
        }
        self
    }

    /// The deterministic projection: phase counts and counters only.
    pub fn deterministic_view(&self) -> DeterministicView {
        DeterministicView {
            phase_counts: self
                .phases
                .iter()
                .map(|(k, s)| (k.clone(), s.count))
                .collect(),
            counters: self.counters.clone(),
        }
    }

    /// Total wall nanoseconds across all phases (diagnostics).
    pub fn total_wall_ns(&self) -> u64 {
        self.phases.values().map(|s| s.wall_ns).sum()
    }
}

/// The deterministic slice of a [`Profile`]: for a case-budgeted engine
/// run this serializes byte-identically for `workers=1` and `workers=N`
/// — the contract `tests/obs_determinism.rs` pins and the CI trajectory
/// gate diffs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct DeterministicView {
    /// How often each phase ran.
    pub phase_counts: BTreeMap<String, u64>,
    /// Named counters.
    pub counters: BTreeMap<String, u64>,
}

/// An engine run's profiles: one per shard (in shard-index order) plus
/// the merged fold. The merged profile additionally carries run-level
/// counters that have no per-shard attribution (the campaign pool's
/// `pool/*` counters, the triage consumer's phase).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardedProfile {
    /// Per-shard profiles, indexed by shard.
    pub per_shard: Vec<Profile>,
    /// The shard profiles folded in index order, plus run-level
    /// counters.
    pub merged: Profile,
}

impl ShardedProfile {
    /// Builds the sharded view from per-shard profiles (folding them in
    /// index order).
    pub fn from_shards(per_shard: Vec<Profile>) -> ShardedProfile {
        let mut merged = Profile::default();
        for p in &per_shard {
            merged.merge(p);
        }
        ShardedProfile { per_shard, merged }
    }

    /// Zeroes every wall field in every view (see
    /// [`Profile::strip_wall`]).
    #[must_use]
    pub fn strip_wall(self) -> ShardedProfile {
        ShardedProfile {
            per_shard: self
                .per_shard
                .into_iter()
                .map(Profile::strip_wall)
                .collect(),
            merged: self.merged.strip_wall(),
        }
    }

    /// The merged profile's deterministic projection.
    pub fn deterministic_view(&self) -> DeterministicView {
        self.merged.deterministic_view()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Profile>> = const { RefCell::new(None) };
}

/// Starts profiling on this thread (resetting any profile in progress).
/// Until [`take`] is called, [`span`]/[`count`] on this thread record
/// into the fresh profile.
pub fn enable() {
    CURRENT.with(|c| *c.borrow_mut() = Some(Profile::default()));
}

/// Stops profiling on this thread and returns what was recorded (empty
/// if profiling was never enabled). Subsequent spans are no-ops again.
pub fn take() -> Profile {
    CURRENT.with(|c| c.borrow_mut().take()).unwrap_or_default()
}

/// True when this thread is currently recording.
pub fn is_enabled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Adds `n` to counter `key` on this thread's profile; no-op when
/// profiling is disabled.
pub fn count(key: &str, n: u64) {
    CURRENT.with(|c| {
        if let Some(p) = c.borrow_mut().as_mut() {
            p.add(key, n);
        }
    });
}

/// [`count`] with a lazily-built key: `key()` (typically a `format!`)
/// is only evaluated when profiling is enabled, keeping disabled hot
/// paths allocation-free.
pub fn count_owned(key: impl FnOnce() -> String, n: u64) {
    CURRENT.with(|c| {
        if let Some(p) = c.borrow_mut().as_mut() {
            p.add(&key(), n);
        }
    });
}

/// An in-flight phase span; records its duration into the thread's
/// profile when dropped. Cheap when profiling is disabled: no clock
/// read, no allocation.
#[must_use = "a span records on drop; binding it to _ discards the measurement immediately"]
pub struct Span {
    // `None` when profiling was off at construction time.
    armed: Option<(String, Instant)>,
}

/// Opens a span for phase `key` (no-op if this thread is not
/// profiling). The measurement is recorded when the returned [`Span`]
/// drops.
pub fn span(key: &str) -> Span {
    if is_enabled() {
        Span {
            armed: Some((key.to_string(), Instant::now())),
        }
    } else {
        Span { armed: None }
    }
}

/// [`span`] with a lazily-built key: `key()` (typically a `format!`) is
/// only evaluated when profiling is enabled, keeping disabled hot paths
/// allocation-free.
pub fn span_owned(key: impl FnOnce() -> String) -> Span {
    if is_enabled() {
        Span {
            armed: Some((key(), Instant::now())),
        }
    } else {
        Span { armed: None }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((key, start)) = self.armed.take() {
            let ns = start.elapsed().as_nanos() as u64;
            CURRENT.with(|c| {
                if let Some(p) = c.borrow_mut().as_mut() {
                    p.record_span(&key, ns);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_thread_records_nothing() {
        assert!(!is_enabled());
        {
            let _s = span("gen");
            count("x", 3);
        }
        assert_eq!(take(), Profile::default());
    }

    #[test]
    fn spans_and_counters_accumulate() {
        enable();
        {
            let _s = span(phase::GEN);
        }
        {
            let _s = span(phase::GEN);
        }
        {
            let _s = span_owned(|| phase::compile("tvmsim"));
        }
        count("localize/cache_hit/tvmsim", 2);
        let p = take();
        assert_eq!(p.phases[phase::GEN].count, 2);
        assert_eq!(p.phases["compile/tvmsim"].count, 1);
        assert_eq!(p.counters["localize/cache_hit/tvmsim"], 2);
        // Taking again yields nothing: profiling is off.
        assert_eq!(take(), Profile::default());
    }

    #[test]
    fn deterministic_view_drops_wall_only() {
        let mut a = Profile::default();
        a.record_span("gen", 100);
        a.record_span("gen", 50);
        a.add("hits", 4);
        let mut b = Profile::default();
        b.record_span("gen", 999_999);
        b.record_span("gen", 1);
        b.add("hits", 4);
        assert_ne!(a, b);
        assert_eq!(a.deterministic_view(), b.deterministic_view());
        assert_eq!(a.strip_wall(), b.strip_wall());
    }

    #[test]
    fn merge_is_order_insensitive() {
        let mut a = Profile::default();
        a.record_span("gen", 10);
        a.add("hits", 1);
        let mut b = Profile::default();
        b.record_span("solve", 20);
        b.add("hits", 2);
        let mut ab = Profile::default();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Profile::default();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.phases["gen"].count, 1);
        assert_eq!(ab.counters["hits"], 3);
    }

    #[test]
    fn sharded_profile_folds_in_order() {
        let mut s0 = Profile::default();
        s0.record_span("gen", 5);
        let mut s1 = Profile::default();
        s1.record_span("gen", 7);
        let sharded = ShardedProfile::from_shards(vec![s0, s1]);
        assert_eq!(sharded.merged.phases["gen"].count, 2);
        assert_eq!(sharded.merged.phases["gen"].wall_ns, 12);
        assert_eq!(sharded.per_shard.len(), 2);
    }
}
