//! # nnsmith-obs
//!
//! First-class observability for the fuzzing pipeline: a lightweight
//! phase profiler (spans + named counters, accumulated in a thread-local
//! [`Profile`] so the hot path never takes a lock), and a structured
//! campaign event log ([`LoggedEvent`], serialized as JSONL).
//!
//! ## The determinism contract
//!
//! The engine's reproducibility guarantee (`workers=1 ≡ workers=N` for
//! case-budgeted runs) extends to observability, but only to *part* of
//! it — wall-clock time is inherently scheduling-dependent. The split is
//! made explicit in the types:
//!
//! * **Deterministic:** phase *counts*, named counters, and the event
//!   log minus its wall fields. [`Profile::deterministic_view`] projects
//!   a profile onto exactly this slice, and
//!   [`deterministic_event_lines`] does the same for an event stream.
//!   These are byte-identical across worker counts and across repeated
//!   runs, and are what the `bench report` trajectory gate diffs.
//! * **Nondeterministic:** every `wall_ns`/`t_ms` field. They are real
//!   measurements (where a campaign's time goes), kept clearly
//!   segregated so no consumer accidentally gates on them.
//!   [`Profile::strip_wall`] zeroes them in place for artifacts that
//!   must serialize byte-identically (the generalization of the
//!   wall-field stripping `fig8` used to do by hand).
//!
//! ## Usage shape
//!
//! Profiling is **opt-in per thread**: a shard worker calls
//! [`enable`] before running its campaign slice and [`take`] after;
//! instrumented code calls [`span`]/[`count`], which are no-ops (one
//! thread-local read, no allocation, no clock read) on threads that
//! never enabled profiling — so library users who don't care about
//! observability pay nothing.

#![warn(missing_docs)]

mod events;
mod profile;

pub use events::{deterministic_event_lines, sort_events, write_jsonl, LoggedEvent, SEQ_TRIAGE};
pub use profile::{
    count, count_owned, enable, is_enabled, phase, span, span_owned, take, DeterministicView,
    PhaseStat, Profile, ShardedProfile, Span,
};
