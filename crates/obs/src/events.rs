//! The structured campaign event log.
//!
//! Engine workers emit one [`LoggedEvent`] per noteworthy moment of a
//! campaign (case started/finished, one verdict per backend, each seeded
//! bug sighting, each triage bin update); the engine's aggregator
//! collects them and sorts the stream into its **canonical order** —
//! `(shard, case_index, seq, kind, backend, detail)` — which depends
//! only on the work done, never on worker scheduling. The canonical
//! stream is therefore replayable and diffable: two runs of the same
//! case-budgeted campaign produce identical logs minus the `t_ms` wall
//! field ([`deterministic_event_lines`] strips it for comparisons; the
//! `tests/obs_determinism.rs` contract).

use std::io::Write;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// The `seq` assigned to events whose emission point is outside the
/// case's own worker (the triage consumer's bin updates): sorts after
/// every in-case event of the same `(shard, case_index)`.
pub const SEQ_TRIAGE: u64 = u64::MAX;

/// One structured campaign event.
///
/// `shard`/`case_index`/`seq` locate the event deterministically;
/// `t_ms` is the wall-clock arrival time at the aggregator
/// (**nondeterministic** — the one field excluded from log diffing).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoggedEvent {
    /// Shard that produced the event.
    pub shard: u64,
    /// 1-based case index within the shard's campaign slice.
    pub case_index: u64,
    /// Emission order within the case (0 = `case_started`).
    pub seq: u64,
    /// Event kind: `case_started`, `verdict`, `bug`, `case_finished`,
    /// or `bin_update`.
    pub kind: String,
    /// Backend the event concerns (empty for case-level events).
    pub backend: String,
    /// Kind-specific payload: the verdict's outcome kind, the seeded
    /// bug id, the triage bin key, or the finding count.
    pub detail: String,
    /// Milliseconds since engine start at aggregator arrival.
    /// **Nondeterministic.**
    pub t_ms: u64,
}

impl LoggedEvent {
    /// Builds an event with `t_ms = 0`; the aggregator stamps arrival
    /// time.
    pub fn new(
        shard: u64,
        case_index: u64,
        seq: u64,
        kind: &str,
        backend: &str,
        detail: impl Into<String>,
    ) -> LoggedEvent {
        LoggedEvent {
            shard,
            case_index,
            seq,
            kind: kind.to_string(),
            backend: backend.to_string(),
            detail: detail.into(),
            t_ms: 0,
        }
    }

    /// The canonical (scheduling-independent) sort key.
    fn canonical_key(&self) -> (u64, u64, u64, &str, &str, &str) {
        (
            self.shard,
            self.case_index,
            self.seq,
            &self.kind,
            &self.backend,
            &self.detail,
        )
    }
}

/// Sorts an event stream into canonical order. Stable for identical
/// keys, so two runs producing the same multiset of events produce the
/// same sequence regardless of arrival order.
pub fn sort_events(events: &mut [LoggedEvent]) {
    events.sort_by(|a, b| a.canonical_key().cmp(&b.canonical_key()));
}

/// Serializes each event minus its wall field: the deterministic lines
/// two runs of the same campaign must agree on byte-for-byte.
pub fn deterministic_event_lines(events: &[LoggedEvent]) -> Vec<String> {
    events
        .iter()
        .map(|e| {
            let mut stripped = e.clone();
            stripped.t_ms = 0;
            serde::json::to_string(&stripped)
        })
        .collect()
}

/// Writes the event stream as JSONL (one event object per line).
///
/// # Errors
///
/// Propagates the underlying file-system errors.
pub fn write_jsonl(path: impl AsRef<Path>, events: &[LoggedEvent]) -> std::io::Result<()> {
    let mut out = std::fs::File::create(path)?;
    for e in events {
        writeln!(out, "{}", serde::json::to_string(e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_ignores_arrival_order() {
        let a = LoggedEvent::new(0, 1, 0, "case_started", "", "");
        let b = LoggedEvent::new(0, 1, 1, "verdict", "tvmsim", "pass");
        let c = LoggedEvent::new(1, 1, 0, "case_started", "", "");
        let mut one = vec![c.clone(), b.clone(), a.clone()];
        let mut two = vec![b.clone(), a.clone(), c.clone()];
        sort_events(&mut one);
        sort_events(&mut two);
        assert_eq!(one, two);
        assert_eq!(one, vec![a, b, c]);
    }

    #[test]
    fn deterministic_lines_strip_wall_only() {
        let mut a = LoggedEvent::new(0, 1, 1, "verdict", "tvmsim", "pass");
        let mut b = a.clone();
        a.t_ms = 11;
        b.t_ms = 99;
        assert_eq!(
            deterministic_event_lines(&[a]),
            deterministic_event_lines(&[b])
        );
    }

    #[test]
    fn jsonl_round_trips_shape() {
        let e = LoggedEvent::new(2, 7, 3, "bug", "ortsim", "ort-t02");
        let line = serde::json::to_string(&e);
        assert!(line.contains("\"kind\":\"bug\""));
        assert!(line.contains("\"detail\":\"ort-t02\""));
    }
}
