//! Figure 12 (extension): does coverage feedback actually help?
//!
//! Two NNSmith campaigns at the **same case budget and the same seed**,
//! differing only in the feedback loop: the guided arm retains
//! coverage-novel cases, reschedules operator/dtype/rank draws by marginal
//! branch yield at case-count checkpoints, and mutates retained graphs;
//! the blind arm is the stock generator. The metric is the paper's
//! ground-truth one — distinct *seeded* bugs found — so "more coverage"
//! only counts if it converts into more bugs.
//!
//! Both arms are case-budgeted through the cross-backend matrix engine,
//! so the emitted record is byte-identical across worker counts (the
//! determinism gate `tests/feedback_determinism.rs` and the CI
//! `feedback-smoke` job both pin this).
//!
//! ## How the default knobs were chosen
//!
//! Measured at the CI budget (256 cases/arm, 8 shards, seed 12, all
//! backends; blind arm: 48 distinct seeded bugs):
//!
//! | guided configuration | bugs |
//! |---|---|
//! | schedule only (no mutation, no probes) | 51 |
//! | schedule + 10% mutation | **49** (shipped) |
//! | schedule + 25% mutation | 47 |
//! | schedule + 40% mutation, rotation-heavy | 40 |
//! | schedule + unseeded sibling probes (1/3 budget) | 44 |
//! | faster checkpoints (8) + finding-weighted ledger | 43 |
//!
//! The pattern: **light guidance wins**. Fresh structural diversity is
//! what reaches *distinct* bugs, and every exploitation knob turned up
//! past a light touch cannibalizes it — mutants and probes mostly
//! re-trigger the bugs their parent already found. The shipped default
//! keeps the marginal-yield schedule (the reliably positive component)
//! plus a 10% mutation share so the loop's exploitation arm stays
//! exercised end-to-end; dtype-sibling probes switch on only when a
//! reproducer corpus seeds the run (`--seed-corpus`), which is the
//! fan-a-known-bug-across-the-palette case they were built for.

use std::time::Duration;

use serde::Serialize;

use nnsmith_compilers::BackendSet;
use nnsmith_core::{NnSmithConfig, NnSmithFactory};
use nnsmith_difftest::{run_matrix_engine, CampaignConfig, EngineConfig, FeedbackConfig, TestCase};

use crate::EngineSummary;

/// Knobs for one guided-vs-blind comparison run.
#[derive(Debug, Clone)]
pub struct Fig12Options {
    /// Engine worker threads (must not affect the record's bytes).
    pub workers: usize,
    /// Engine shard count (part of the reproducibility key).
    pub shards: usize,
    /// Case budget per arm.
    pub cases: usize,
    /// Campaign seed, shared by both arms.
    pub seed: u64,
    /// Backend set both arms run against.
    pub backends: BackendSet,
    /// Reproducer-corpus seeds for the guided arm's initial corpus
    /// (empty: the corpus bootstraps from the campaign's own cases).
    pub seeds: Vec<TestCase>,
    /// Base pipeline configuration shared by both arms (the guided arm
    /// layers its feedback loop on top). Tests shrink this to a quick
    /// pipeline; the bench binary uses the stock default.
    pub pipeline: NnSmithConfig,
    /// Feedback checkpoint cadence for the guided arm. Must divide the
    /// per-shard case budget or the scheduler never engages.
    pub checkpoint_every: usize,
    /// The guided arm's mutation probability.
    pub mutation_prob: f64,
}

impl Default for Fig12Options {
    fn default() -> Self {
        Fig12Options {
            workers: 1,
            shards: 4,
            cases: 96,
            seed: 12,
            backends: BackendSet::all(),
            seeds: Vec::new(),
            pipeline: NnSmithConfig::default(),
            // Pinned by measurement (see fig12's module docs): a light
            // touch wins — schedule retuning every 16 cases and a 10%
            // mutation share beat both the blind arm and every
            // heavier-exploitation mix tried.
            checkpoint_every: 16,
            mutation_prob: 0.1,
        }
    }
}

/// The `BENCH_fig12.json` record: headline counts plus both arms' full
/// deterministic engine summaries (guided first).
#[derive(Debug, Clone, Serialize)]
pub struct Fig12Record {
    /// Figure id (`"fig12"`).
    pub figure: String,
    /// Engine shard count.
    pub shards: usize,
    /// Campaign seed shared by both arms.
    pub seed: u64,
    /// Case budget per arm.
    pub cases: usize,
    /// Distinct seeded bugs the guided arm found (all backends).
    pub guided_bugs: usize,
    /// Distinct seeded bugs the blind arm found (all backends).
    pub blind_bugs: usize,
    /// True iff the guided arm found *strictly* more distinct seeded
    /// bugs than the blind arm — the success metric the CI gate asserts.
    pub gate_passed: bool,
    /// Deterministic summaries: `NNSmith+feedback` then `NNSmith`.
    pub results: Vec<EngineSummary>,
}

/// Runs the guided and blind arms and assembles the record.
pub fn run_fig12(opts: &Fig12Options) -> Fig12Record {
    let engine = EngineConfig {
        workers: opts.workers,
        shards: opts.shards,
        seed: opts.seed,
        campaign: CampaignConfig {
            // Case budget drives termination; the generous deadline only
            // guards against hangs, keeping the run reproducible across
            // worker counts.
            duration: Duration::from_secs(86_400),
            max_cases: Some(opts.cases),
            backends: opts.backends.iter().cloned().collect(),
            ..CampaignConfig::default()
        },
    };

    let feedback = FeedbackConfig {
        checkpoint_every: opts.checkpoint_every,
        mutation_prob: opts.mutation_prob,
        // Dtype-sibling probes exist to fan a known-good reproducer out
        // across the palette; without reproducer seeds they spend budget
        // re-triggering the bugs the campaign just found, so the
        // unseeded comparison keeps them off.
        probe_siblings: !opts.seeds.is_empty(),
        seeds: opts.seeds.clone(),
        ..FeedbackConfig::guided()
    };
    let guided = run_matrix_engine(
        &NnSmithFactory::for_backends(opts.pipeline.clone(), &opts.backends)
            .with_feedback(feedback),
        &engine,
    );
    let blind = run_matrix_engine(
        &NnSmithFactory::for_backends(opts.pipeline.clone(), &opts.backends),
        &engine,
    );

    let guided_bugs = guided.result.bugs_found.len();
    let blind_bugs = blind.result.bugs_found.len();
    let mut guided_summary =
        EngineSummary::from_matrix_report(&opts.backends, &guided).deterministic_view();
    // Distinguish the arms in the folded trajectory report.
    guided_summary.source = "NNSmith+feedback".to_string();
    let blind_summary =
        EngineSummary::from_matrix_report(&opts.backends, &blind).deterministic_view();

    Fig12Record {
        figure: "fig12".to_string(),
        shards: opts.shards,
        seed: opts.seed,
        cases: opts.cases,
        guided_bugs,
        blind_bugs,
        gate_passed: guided_bugs > blind_bugs,
        results: vec![guided_summary, blind_summary],
    }
}
