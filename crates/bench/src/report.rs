//! The trajectory dashboard behind `cargo run -p nnsmith-bench --bin
//! report`: fold every `BENCH_*.json` artifact in a directory into one
//! markdown report (`reports/trajectory.md`).
//!
//! The block between the `<!-- deterministic:begin -->` /
//! `<!-- deterministic:end -->` markers is a pure function of the
//! artifacts' deterministic fields — for case-budgeted runs (fig8,
//! tab5) it is byte-identical across worker counts and repeated runs,
//! which is what the CI `report-gate` job diffs against the committed
//! baseline. Wall-clock fields (`wall_ms`, `wall_timeline`, phase
//! `wall_ns`) are rendered *outside* the markers, in the throughput
//! section, so real timing stays visible without poisoning the gate.

use std::fmt::Write as _;
use std::path::Path;

use serde::json::Value;

/// The marker opening the CI-diffed block.
pub const DET_BEGIN: &str = "<!-- deterministic:begin -->";
/// The marker closing the CI-diffed block.
pub const DET_END: &str = "<!-- deterministic:end -->";

/// Extracts the deterministic block of a rendered trajectory report
/// (markers included), or `None` when the markers are missing/misordered
/// — the slice the CI gate byte-compares.
pub fn deterministic_block(report: &str) -> Option<&str> {
    let begin = report.find(DET_BEGIN)?;
    let end = report[begin..].find(DET_END)? + begin + DET_END.len();
    Some(&report[begin..end])
}

/// One parsed `BENCH_*.json` artifact.
struct Artifact {
    file: String,
    value: Value,
}

/// Reads every `BENCH_*.json` in `dir`, sorted by file name so the
/// report layout never depends on directory iteration order.
///
/// # Errors
///
/// Propagates directory-reading failures; unparseable artifacts are
/// reported inside the document instead (a broken file should show up in
/// the dashboard, not kill it).
fn read_artifacts(dir: &Path) -> std::io::Result<Vec<Artifact>> {
    let mut names: Vec<String> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    let mut out = Vec::new();
    for file in names {
        let text = std::fs::read_to_string(dir.join(&file))?;
        let value = match serde::json::parse(&text) {
            Ok(v) => v,
            Err(e) => Value::Str(format!("unparseable: {e}")),
        };
        out.push(Artifact { file, value });
    }
    Ok(out)
}

/// Renders one scalar for a markdown cell.
fn scalar(v: &Value) -> Option<String> {
    match v {
        Value::Bool(b) => Some(b.to_string()),
        Value::Int(i) => Some(i.to_string()),
        Value::UInt(u) => Some(u.to_string()),
        Value::Str(s) => Some(s.clone()),
        _ => None,
    }
}

fn as_usize(v: Option<&Value>) -> Option<u64> {
    v.and_then(Value::as_u64)
}

/// Renders one engine summary's deterministic row. `label` is the
/// summary's source name when present.
fn summary_row(out: &mut String, s: &Value) {
    let source = s
        .get("source")
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_string();
    let cell = |key: &str| {
        as_usize(s.get(key))
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".into())
    };
    let bugs = s
        .get("bugs_found")
        .and_then(Value::as_array)
        .map(|a| a.len().to_string())
        .unwrap_or_else(|| "-".into());
    let _ = writeln!(
        out,
        "| {source} | {} | {} | {} | {bugs} | {} |",
        cell("cases"),
        cell("total_coverage"),
        cell("pass_coverage"),
        cell("op_instances"),
    );
}

/// Renders the `phases` block of an engine summary: deterministic phase
/// counts and named counters (wall times live in the throughput section).
fn phases_section(out: &mut String, source: &str, phases: &Value) {
    let counts: Vec<(String, u64)> = phases
        .get("phases")
        .and_then(Value::as_object)
        .map(|entries| {
            entries
                .iter()
                .filter_map(|(k, v)| Some((k.clone(), as_usize(v.get("count"))?)))
                .collect()
        })
        .unwrap_or_default();
    let counters: Vec<(String, u64)> = phases
        .get("counters")
        .and_then(Value::as_object)
        .map(|entries| {
            entries
                .iter()
                .filter_map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                .collect()
        })
        .unwrap_or_default();
    if counts.is_empty() && counters.is_empty() {
        return;
    }
    let _ = writeln!(out, "\nPhase counts ({source}):\n");
    let _ = writeln!(out, "| phase | count |");
    let _ = writeln!(out, "|---|---|");
    for (k, n) in counts {
        let _ = writeln!(out, "| {k} | {n} |");
    }
    if !counters.is_empty() {
        let _ = writeln!(out, "\nCounters ({source}):\n");
        let _ = writeln!(out, "| counter | value |");
        let _ = writeln!(out, "|---|---|");
        for (k, n) in counters {
            let _ = writeln!(out, "| {k} | {n} |");
        }
    }
}

/// Renders the `solver` block of an engine summary: the compiled-tape
/// hot-path counters (all counter-derived, hence deterministic).
fn solver_line(out: &mut String, source: &str, solver: &Value) {
    let field = |key: &str| as_usize(solver.get(key)).unwrap_or(0);
    let _ = writeln!(
        out,
        "\nSolver ({source}): {} checks, {} tape compiles, {} tape evals, {} constraints skipped",
        field("checks"),
        field("tape_compiles"),
        field("tape_evals"),
        field("constraints_skipped"),
    );
}

/// All engine summaries in an artifact: a `results` array (BenchRecord,
/// fig8) and/or a single `result` object (tab5).
fn summaries(value: &Value) -> Vec<&Value> {
    let mut out = Vec::new();
    if let Some(results) = value.get("results").and_then(Value::as_array) {
        out.extend(results.iter());
    }
    if let Some(result) = value.get("result") {
        if result.get("source").is_some() {
            out.push(result);
        }
    }
    out
}

/// Renders the triage section of an artifact, when present.
fn triage_section(out: &mut String, value: &Value) {
    let Some(triage) = value.get("triage") else {
        return;
    };
    let bins = triage.get("bins").and_then(Value::as_object);
    let unreduced = triage.get("unreduced").and_then(Value::as_object);
    let failures = as_usize(triage.get("failures_seen")).unwrap_or(0);
    let _ = writeln!(
        out,
        "\nTriage: {failures} failures -> {} bins ({} unreduced)\n",
        bins.map_or(0, <[_]>::len),
        unreduced.map_or(0, <[_]>::len),
    );
    if let Some(bins) = bins {
        for (key, bin) in bins {
            let count = as_usize(bin.get("count")).unwrap_or(0);
            let _ = writeln!(out, "- `{key}` x{count}");
        }
    }
    if let Some(unreduced) = unreduced {
        for (key, bin) in unreduced {
            let count = as_usize(bin.get("count")).unwrap_or(0);
            let _ = writeln!(out, "- `{key}` x{count} (unreduced)");
        }
    }
}

/// Builds the full trajectory report from every `BENCH_*.json` in `dir`.
///
/// # Errors
///
/// Propagates directory-reading failures.
pub fn build_trajectory(dir: &Path) -> std::io::Result<String> {
    let artifacts = read_artifacts(dir)?;
    let mut out = String::new();
    let _ = writeln!(out, "# Campaign trajectory\n");
    let _ = writeln!(
        out,
        "Generated by `bench report` from {} `BENCH_*.json` artifact(s).",
        artifacts.len()
    );
    let _ = writeln!(
        out,
        "The block between the deterministic markers is a pure function of"
    );
    let _ = writeln!(
        out,
        "the artifacts' deterministic fields; for case-budgeted runs CI"
    );
    let _ = writeln!(out, "diffs it against the committed baseline.\n");
    let _ = writeln!(out, "{DET_BEGIN}");

    for artifact in &artifacts {
        let _ = writeln!(out, "\n## {}\n", artifact.file);
        if let Some(s) = artifact.value.as_str() {
            let _ = writeln!(out, "{s}");
            continue;
        }
        // Top-level scalar fields, in document order (the producers are
        // deterministic, so so is this).
        if let Some(entries) = artifact.value.as_object() {
            let scalars: Vec<String> = entries
                .iter()
                .filter(|(k, _)| k != "secs" && k != "workers")
                .filter_map(|(k, v)| Some(format!("{k}={}", scalar(v)?)))
                .collect();
            if !scalars.is_empty() {
                let _ = writeln!(out, "{}\n", scalars.join(" | "));
            }
        }
        let sums = summaries(&artifact.value);
        if !sums.is_empty() {
            let _ = writeln!(out, "| source | cases | coverage | pass | bugs | op inst |");
            let _ = writeln!(out, "|---|---|---|---|---|---|");
            for s in &sums {
                summary_row(&mut out, s);
            }
            for s in &sums {
                let source = s.get("source").and_then(Value::as_str).unwrap_or("?");
                if let Some(solver) = s.get("solver") {
                    solver_line(&mut out, source, solver);
                }
                if let Some(phases) = s.get("phases") {
                    phases_section(&mut out, source, phases);
                }
            }
        }
        triage_section(&mut out, &artifact.value);
    }
    let _ = writeln!(out, "\n{DET_END}");

    // Wall-clock truth lives outside the gated block.
    let _ = writeln!(out, "\n## Throughput (nondeterministic)\n");
    let _ = writeln!(out, "| file | source | wall_ms |");
    let _ = writeln!(out, "|---|---|---|");
    for artifact in &artifacts {
        for s in summaries(&artifact.value) {
            let source = s.get("source").and_then(Value::as_str).unwrap_or("?");
            let wall = as_usize(s.get("wall_ms")).unwrap_or(0);
            let _ = writeln!(out, "| {} | {source} | {wall} |", artifact.file);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_block_extraction() {
        let report = format!("head\n{DET_BEGIN}\nbody\n{DET_END}\ntail\n");
        let block = deterministic_block(&report).unwrap();
        assert!(block.starts_with(DET_BEGIN));
        assert!(block.ends_with(DET_END));
        assert!(block.contains("body"));
        assert!(!block.contains("tail"));
        assert_eq!(deterministic_block("no markers"), None);
    }

    #[test]
    fn trajectory_is_stable_and_strips_wall_fields_from_gate_block() {
        let dir = std::env::temp_dir().join(format!(
            "nnsmith_report_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let record = r#"{"figure":"figx","compiler":"tvmsim","secs":0,"workers":3,"shards":8,
            "results":[{"source":"NNSmith","cases":12,"total_coverage":100,"pass_coverage":40,
            "bugs_found":["a-1"],"per_backend":{},"op_instances":9,"wall_ms":777,
            "cases_per_sec":1.5,"merged_timeline":[],"wall_timeline":[],
            "arena":{"int_nodes":1,"bool_nodes":2,"bytes":3,"base_hits":4,"base_misses":5,"memo_hits":6},
            "phases":{"phases":{"gen":{"count":12,"wall_ns":999}},"counters":{"pool/base_hits":4}}}]}"#;
        std::fs::write(dir.join("BENCH_figx.json"), record).unwrap();
        let one = build_trajectory(&dir).unwrap();
        let two = build_trajectory(&dir).unwrap();
        assert_eq!(one, two, "identical artifacts must render identically");
        let block = deterministic_block(&one).unwrap();
        assert!(block.contains("| NNSmith | 12 | 100 | 40 | 1 | 9 |"));
        assert!(block.contains("| gen | 12 |"));
        assert!(block.contains("| pool/base_hits | 4 |"));
        // Wall fields appear only outside the gated block.
        assert!(!block.contains("777"));
        assert!(!block.contains("999"));
        assert!(!block.contains("workers=3"));
        assert!(one.contains("| BENCH_figx.json | NNSmith | 777 |"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
