//! Figure 13 (extension): the distributed campaign service is
//! byte-deterministic across process counts and kill/resume cycles.
//!
//! One guided NNSmith campaign through `nnsmith-service`'s multi-process
//! orchestrator. The record holds only the deterministic engine summary
//! — deliberately **no process count and no resumed-from marker** — so
//! the acceptance check is a plain `cmp`: `--processes 1` and
//! `--processes M` must emit byte-identical `BENCH_fig13.json`, and a
//! run killed after K work-units then resumed from its snapshot must
//! emit the same bytes again. The CI `service-smoke` job runs exactly
//! those comparisons.

use std::path::PathBuf;

use serde::Serialize;

use nnsmith_compilers::BackendSet;
use nnsmith_service::{resume_service, run_service, FeedbackSpec, ServiceConfig, ServiceRun};

use crate::EngineSummary;

/// Knobs for one service campaign run.
#[derive(Debug, Clone)]
pub struct Fig13Options {
    /// Worker processes (must not affect the record's bytes).
    pub processes: usize,
    /// Shard count (part of the reproducibility key).
    pub shards: usize,
    /// Total case budget.
    pub cases: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Backend set the campaign runs against.
    pub backends: BackendSet,
    /// Worker executable override (`None`: re-exec `current_exe()`,
    /// which is correct for the `fig13_service` binary itself).
    pub worker: Option<PathBuf>,
    /// Snapshot path (enables checkpointing after every work-unit).
    pub snapshot: Option<PathBuf>,
    /// Pause after this many completed work-units — the deterministic
    /// `kill -9` stand-in for resume smoke-tests. Requires `snapshot`.
    pub stop_after_units: Option<usize>,
}

impl Default for Fig13Options {
    fn default() -> Self {
        Fig13Options {
            processes: 1,
            shards: 8,
            cases: 96,
            seed: 13,
            backends: BackendSet::all(),
            worker: None,
            snapshot: None,
            stop_after_units: None,
        }
    }
}

impl Fig13Options {
    /// The service configuration this run drives (guided feedback with
    /// the fig12-tuned light-touch knobs, so the campaign exercises the
    /// full checkpointed loop across the process boundary).
    pub fn service_config(&self) -> ServiceConfig {
        ServiceConfig {
            processes: self.processes,
            shards: self.shards,
            seed: self.seed,
            cases: self.cases,
            backends: self.backends.names(),
            feedback: FeedbackSpec {
                enabled: true,
                checkpoint_every: 16,
                mutation_prob: 0.1,
                ..FeedbackSpec::default()
            },
            worker: self.worker.clone(),
            snapshot: self.snapshot.clone(),
            stop_after_units: self.stop_after_units,
            ..ServiceConfig::default()
        }
    }
}

/// The `BENCH_fig13.json` record. Every field is deterministic — the
/// execution-shape knobs (process count, whether the run was resumed)
/// are exactly what the record must *not* depend on, so they are not in
/// it.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13Record {
    /// Figure id (`"fig13"`).
    pub figure: String,
    /// Shard count.
    pub shards: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Total case budget.
    pub cases: usize,
    /// The campaign's deterministic engine summary.
    pub results: Vec<EngineSummary>,
}

/// What one `fig13` invocation produced: a record, or a pause (the
/// snapshot now holds the campaign for a later `--resume`).
#[derive(Debug)]
pub enum Fig13Outcome {
    /// The campaign completed.
    Complete(Fig13Record),
    /// `stop_after_units` tripped after this many completed units.
    Paused(usize),
}

fn record_from(
    opts_shards: usize,
    seed: u64,
    cases: usize,
    run: ServiceRun,
    backends: &BackendSet,
) -> Fig13Outcome {
    match run {
        ServiceRun::Paused { completed_units } => Fig13Outcome::Paused(completed_units),
        ServiceRun::Complete(report) => {
            let summary =
                EngineSummary::from_matrix_report(backends, &report.report).deterministic_view();
            Fig13Outcome::Complete(Fig13Record {
                figure: "fig13".to_string(),
                shards: opts_shards,
                seed,
                cases,
                results: vec![summary],
            })
        }
    }
}

/// Runs the service campaign.
pub fn run_fig13(opts: &Fig13Options) -> Fig13Outcome {
    let run = run_service(&opts.service_config());
    record_from(opts.shards, opts.seed, opts.cases, run, &opts.backends)
}

/// Resumes a paused/killed campaign from its snapshot and (when it
/// completes) assembles the identical record an uninterrupted run
/// emits.
pub fn resume_fig13(
    snapshot: &std::path::Path,
    processes: usize,
    worker: Option<PathBuf>,
) -> std::io::Result<Fig13Outcome> {
    let snap = nnsmith_service::CampaignSnapshot::load(snapshot)?;
    let backends = BackendSet::from_names(&snap.backends)
        .unwrap_or_else(|| panic!("snapshot names unknown backends: {:?}", snap.backends));
    let (shards, seed, cases) = (snap.shards, snap.seed, snap.cases);
    let run = resume_service(snapshot, processes, worker)?;
    Ok(record_from(shards, seed, cases, run, &backends))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Fig13Options {
        Fig13Options {
            shards: 3,
            cases: 9,
            seed: 5,
            ..Fig13Options::default()
        }
    }

    #[test]
    fn record_is_deterministic_and_shape_free() {
        let a = match run_fig13(&quick()) {
            Fig13Outcome::Complete(r) => r,
            Fig13Outcome::Paused(_) => panic!("no stop configured"),
        };
        assert_eq!(a.figure, "fig13");
        assert_eq!(a.results.len(), 1);
        assert_eq!(a.results[0].cases, 9);
        let js = serde::json::to_string(&a);
        // The record must not encode the execution shape.
        for banned in ["processes", "resumed", "wall_timeline\":[{", "worker"] {
            assert!(!js.contains(banned), "execution-shape leak {banned:?}");
        }
        // Same options, fresh run: identical bytes (single-process here;
        // the cross-process comparison is tests/service_determinism.rs
        // and the CI smoke's cmp).
        let b = match run_fig13(&quick()) {
            Fig13Outcome::Complete(r) => r,
            Fig13Outcome::Paused(_) => unreachable!(),
        };
        assert_eq!(js, serde::json::to_string(&b));
    }
}
