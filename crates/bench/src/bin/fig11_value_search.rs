//! Figure 11: effectiveness of gradient-based value search — success rate
//! vs average search time for Sampling / Gradient / Gradient+Proxy on
//! models of 10, 20 and 30 nodes (each containing at least one vulnerable
//! operator), plus the §3.3 NaN-rate statistic.
//!
//! `cargo run -p nnsmith-bench --release --bin fig11_value_search [models-per-group]`

use std::time::Duration;

use nnsmith_bench::write_json;
use nnsmith_gen::{GenConfig, Generator};
use nnsmith_graph::Graph;
use nnsmith_ops::Op;
use nnsmith_search::{nan_rate, search_values, SearchConfig, SearchMethod};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Fig11Point {
    budget_ms: u64,
    avg_ms: f64,
    success_rate: f64,
}

#[derive(Serialize)]
struct Fig11Series {
    size: usize,
    method: String,
    points: Vec<Fig11Point>,
}

#[derive(Serialize)]
struct Fig11Record {
    models_per_group: usize,
    nan_rate_20_node_pct: Option<f64>,
    series: Vec<Fig11Series>,
}

/// Generates `n` models of the given size containing >= 1 vulnerable op.
fn vulnerable_models(size: usize, n: usize, seed: u64) -> Vec<Graph<Op>> {
    let generator = Generator::new(GenConfig {
        target_ops: size,
        max_attempts: size * 80,
        ..GenConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    while out.len() < n {
        let s: u64 = rng.gen();
        let mut grng = StdRng::seed_from_u64(s);
        let Ok(model) = generator.generate(&mut grng) else {
            continue;
        };
        let vulnerable = model.graph.operators().iter().any(|&id| {
            model
                .graph
                .node(id)
                .kind
                .as_operator()
                .is_some_and(Op::is_vulnerable)
        });
        if vulnerable && model.graph.operators().len() >= size * 7 / 10 {
            out.push(model.graph);
        }
    }
    out
}

fn main() {
    let per_group: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(48); // paper: 512 per group

    println!("== Figure 11 — value-search success rate vs time ({per_group} models/group) ==");
    let mut record = Fig11Record {
        models_per_group: per_group,
        nan_rate_20_node_pct: None,
        series: Vec::new(),
    };
    for &size in &[10usize, 20, 30] {
        let models = vulnerable_models(size, per_group, size as u64);
        // §3.3 statistic on the 20-node group.
        if size == 20 {
            let mut rng = StdRng::seed_from_u64(99);
            let mut rates = 0.0;
            for g in &models {
                rates += if nan_rate(g, 4, -5.0, 5.0, &mut rng) > 0.0 {
                    1.0
                } else {
                    0.0
                };
            }
            let pct = 100.0 * rates / models.len() as f64;
            println!(
                "[§3.3] {pct:.1}% of {size}-node models hit NaN/Inf under random values (paper: 56.8%)"
            );
            record.nan_rate_20_node_pct = Some(pct);
        }
        for (label, method) in [
            ("Sampling", SearchMethod::Sampling),
            ("Gradient", SearchMethod::Gradient),
            ("Gradient+Proxy", SearchMethod::GradientProxy),
        ] {
            print!("size {size:>2} {label:>15}: ");
            let mut points = Vec::new();
            for i in 1..=8u64 {
                let budget = Duration::from_millis(i * 8);
                let mut success = 0usize;
                let mut total_time = Duration::ZERO;
                for (k, g) in models.iter().enumerate() {
                    let mut rng = StdRng::seed_from_u64(1000 + k as u64);
                    let out = search_values(
                        g,
                        &SearchConfig {
                            method,
                            budget,
                            // Fig. 11 measures success *per wall-clock
                            // budget*: opt out of the deterministic
                            // iteration default and pin the time budget.
                            max_iters: None,
                            // The paper's empirically-best init range [1, 9]
                            // shared by all methods (§5.3).
                            init_lo: 1.0,
                            init_hi: 9.0,
                            ..SearchConfig::default()
                        },
                        &mut rng,
                    );
                    total_time += out.elapsed;
                    if out.succeeded() {
                        success += 1;
                    }
                }
                let avg_ms = total_time.as_secs_f64() * 1000.0 / models.len() as f64;
                let rate = success as f64 / models.len() as f64;
                print!("{avg_ms:.1}ms:{rate:.2} ");
                points.push(Fig11Point {
                    budget_ms: i * 8,
                    avg_ms,
                    success_rate: rate,
                });
            }
            println!();
            record.series.push(Fig11Series {
                size,
                method: label.to_string(),
                points,
            });
        }
    }
    write_json("fig11", &record);
}
