//! Figure 7: Venn diagram of branch-coverage sets (LEMON, GraphFuzzer,
//! NNSmith) — unique coverage is the paper's headline (32.7x / 10.8x vs
//! 2nd best).
//!
//! Rewritten on the real cross-backend matrix: each fuzzer runs **one**
//! campaign fanned out over the whole backend set (tvmsim + ortsim +
//! trtsim by default; generation restricted to the set's dtype
//! intersection so every backend runs every case), and the three-fuzzer
//! venn is computed per backend from its own coverage set — coverage ids
//! only mean something within one compiler's manifest, so there is one
//! venn per backend, not one union venn.
//!
//! `cargo run -p nnsmith-bench --release --bin fig7_venn -- \
//!     [secs] [--workers N] [--shards N] [--backends tvm,ort,trt]`
//!
//! Emits `BENCH_fig7.json` with the seven regions per backend.

use serde::Serialize;

use nnsmith_bench::{bench_args, three_way_matrix_engine, write_json};
use nnsmith_compilers::BackendSet;
use nnsmith_difftest::Venn3;

#[derive(Serialize)]
struct Fig7Record {
    compiler: String,
    secs: u64,
    /// Region sizes with A=LEMON, B=GraphFuzzer, C=NNSmith.
    venn: Venn3,
    lemon_total: usize,
    graphfuzzer_total: usize,
    nnsmith_total: usize,
    nnsmith_unique_ratio: f64,
}

fn main() {
    let args = bench_args(20);
    let backends = args.backend_set(BackendSet::all());
    let secs = args.secs;
    println!(
        "== Figure 7 — coverage Venn over the {} matrix, {secs}s per fuzzer ==",
        backends.names().join("+")
    );
    // One matrix campaign per fuzzer (NNSmith, GraphFuzzer, LEMON): the
    // reference phase runs once per case and every backend accumulates
    // its own coverage.
    let reports = three_way_matrix_engine(&backends, secs, args.workers, args.shards, None);

    let mut records = Vec::new();
    for compiler in backends.iter() {
        let name = compiler.system().name();
        let cov = |i: usize| {
            &reports[i]
                .result
                .backend(name)
                .expect("backend in result")
                .coverage
        };
        let (nnsmith, graphfuzzer, lemon) = (cov(0), cov(1), cov(2));
        let v = Venn3::of(lemon, graphfuzzer, nnsmith);
        println!("-- {name} --");
        println!("LEMON        total {}", v.total_a());
        println!("GraphFuzzer  total {}", v.total_b());
        println!("NNSmith      total {}", v.total_c());
        println!(
            "regions: LEMON-only {}, GraphFuzzer-only {}, NNSmith-only {}",
            v.a, v.b, v.c
        );
        println!(
            "         L∩G {}, L∩N {}, G∩N {}, all {}",
            v.ab, v.ac, v.bc, v.abc
        );
        let best_other_unique = v.a.max(v.b).max(1);
        let ratio = v.c as f64 / best_other_unique as f64;
        println!(
            "NNSmith unique vs best-other unique: {} / {} = {ratio:.1}x\n",
            v.c, best_other_unique
        );
        records.push(Fig7Record {
            compiler: name.to_string(),
            secs,
            venn: v,
            lemon_total: v.total_a(),
            graphfuzzer_total: v.total_b(),
            nnsmith_total: v.total_c(),
            nnsmith_unique_ratio: ratio,
        });
    }
    write_json("fig7", &records);
}
