//! Figure 7: Venn diagram of branch-coverage sets (LEMON, GraphFuzzer,
//! NNSmith) on ortsim and tvmsim — unique coverage is the paper's
//! headline (32.7x / 10.8x vs 2nd best).
//!
//! `cargo run -p nnsmith-bench --release --bin fig7_venn [secs]`
//!
//! Emits `BENCH_fig7.json` with the seven regions per compiler.

use serde::Serialize;

use nnsmith_bench::{arg_secs, three_way_campaigns, write_json};
use nnsmith_compilers::{ortsim, tvmsim};
use nnsmith_difftest::Venn3;

#[derive(Serialize)]
struct Fig7Record {
    compiler: String,
    secs: u64,
    /// Region sizes with A=LEMON, B=GraphFuzzer, C=NNSmith.
    venn: Venn3,
    lemon_total: usize,
    graphfuzzer_total: usize,
    nnsmith_total: usize,
    nnsmith_unique_ratio: f64,
}

fn main() {
    let secs = arg_secs(20);
    let mut records = Vec::new();
    for compiler in [ortsim(), tvmsim()] {
        let name = compiler.system().name();
        println!("== Figure 7 ({name}) — coverage Venn, {secs}s per fuzzer ==");
        let results = three_way_campaigns(&compiler, secs);
        let nnsmith = &results[0].coverage;
        let graphfuzzer = &results[1].coverage;
        let lemon = &results[2].coverage;
        let v = Venn3::of(lemon, graphfuzzer, nnsmith);
        println!("LEMON        total {}", v.total_a());
        println!("GraphFuzzer  total {}", v.total_b());
        println!("NNSmith      total {}", v.total_c());
        println!(
            "regions: LEMON-only {}, GraphFuzzer-only {}, NNSmith-only {}",
            v.a, v.b, v.c
        );
        println!(
            "         L∩G {}, L∩N {}, G∩N {}, all {}",
            v.ab, v.ac, v.bc, v.abc
        );
        let best_other_unique = v.a.max(v.b).max(1);
        let ratio = v.c as f64 / best_other_unique as f64;
        println!(
            "NNSmith unique vs best-other unique: {} / {} = {ratio:.1}x\n",
            v.c, best_other_unique
        );
        records.push(Fig7Record {
            compiler: name.to_string(),
            secs,
            venn: v,
            lemon_total: v.total_a(),
            graphfuzzer_total: v.total_b(),
            nnsmith_total: v.total_c(),
            nnsmith_unique_ratio: ratio,
        });
    }
    write_json("fig7", &records);
}
