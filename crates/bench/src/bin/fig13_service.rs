//! Figure 13 (extension): the distributed campaign service — one guided
//! NNSmith campaign through the multi-process orchestrator, emitted as
//! `BENCH_fig13.json`. See [`nnsmith_bench::fig13`] for the design.
//!
//! The record is byte-identical across `--processes` counts and across
//! kill/resume cycles — the CI `service-smoke` job `cmp`s all three.
//!
//! `cargo run -p nnsmith-bench --release --bin fig13_service -- \
//!     [--processes N] [--shards N] [--cases N] [--seed N] \
//!     [--backends tvm,ort,trt] [--snapshot PATH] \
//!     [--stop-after-units K] [--resume PATH]`
//!
//! `--snapshot PATH` checkpoints after every completed work-unit;
//! `--stop-after-units K` pauses there (the deterministic `kill -9`
//! stand-in); `--resume PATH` continues a paused/killed campaign.
//!
//! This binary is its own worker: the orchestrator re-execs it with the
//! `work-unit` subcommand, which `maybe_work_unit_child` intercepts
//! below. (The shared `bench_args` parser is positional-based and would
//! misread `--flag value` pairs, so flags are parsed manually here.)

use std::path::PathBuf;

use nnsmith_bench::fig13::{resume_fig13, run_fig13, Fig13Options};
use nnsmith_bench::write_json;
use nnsmith_compilers::BackendSet;

fn flag_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1).cloned())
}

fn parse<T: std::str::FromStr>(argv: &[String], flag: &str) -> Option<T> {
    flag_value(argv, flag).and_then(|v| v.parse().ok())
}

fn main() {
    // Worker re-entry must run before anything else.
    nnsmith_service::maybe_work_unit_child();

    let argv: Vec<String> = std::env::args().collect();
    let mut opts = Fig13Options::default();
    if let Some(n) = parse::<usize>(&argv, "--processes") {
        opts.processes = n.max(1);
    }
    if let Some(n) = parse::<usize>(&argv, "--shards") {
        opts.shards = n.max(1);
    }
    if let Some(n) = parse::<usize>(&argv, "--cases") {
        opts.cases = n;
    }
    if let Some(n) = parse::<u64>(&argv, "--seed") {
        opts.seed = n;
    }
    if let Some(names) = flag_value(&argv, "--backends") {
        let names: Vec<&str> = names.split(',').filter(|s| !s.is_empty()).collect();
        match BackendSet::from_names(&names) {
            Some(set) => opts.backends = set,
            None => {
                eprintln!("unknown backend in --backends {names:?}");
                std::process::exit(2);
            }
        }
    }
    opts.snapshot = flag_value(&argv, "--snapshot").map(PathBuf::from);
    opts.stop_after_units = parse::<usize>(&argv, "--stop-after-units");
    let resume = flag_value(&argv, "--resume").map(PathBuf::from);

    let outcome = if let Some(snapshot) = &resume {
        println!(
            "== Figure 13 — resuming service campaign from {} with {} process(es) ==",
            snapshot.display(),
            opts.processes
        );
        match resume_fig13(snapshot, opts.processes, None) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("cannot resume from {}: {e}", snapshot.display());
                std::process::exit(2);
            }
        }
    } else {
        println!(
            "== Figure 13 — service campaign: {} process(es) x {} shards, seed {}, {} cases ==",
            opts.processes, opts.shards, opts.seed, opts.cases
        );
        run_fig13(&opts)
    };

    match outcome {
        nnsmith_bench::fig13::Fig13Outcome::Paused(units) => {
            println!("paused after {units} completed work-unit(s); snapshot holds the campaign");
        }
        nnsmith_bench::fig13::Fig13Outcome::Complete(record) => {
            let summary = &record.results[0];
            println!(
                "[{}] cases {} | coverage {} | distinct seeded bugs {}",
                summary.source,
                summary.cases,
                summary.total_coverage,
                summary.bugs_found.len()
            );
            write_json("fig13", &record);
        }
    }
}
