//! Figure 9: unique operator instances (operator kind x input types x
//! attributes) tested with and without attribute binning. The paper
//! measures 2.07x more unique instances with binning.
//!
//! `cargo run -p nnsmith-bench --release --bin fig9_op_instances [models]`

use std::collections::{HashMap, HashSet};

use nnsmith_bench::write_json;
use nnsmith_core::{NnSmith, NnSmithConfig};
use nnsmith_difftest::{op_instance_keys, TestCaseSource};
use nnsmith_gen::GenConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Row {
    operator: String,
    with_binning: usize,
    without_binning: usize,
    ratio: f64,
}

#[derive(Serialize)]
struct Fig9Record {
    models: usize,
    rows: Vec<Fig9Row>,
    total_with_binning: usize,
    total_without_binning: usize,
    ratio: f64,
}

fn collect(binning: bool, models: usize, seed: u64) -> HashMap<String, HashSet<String>> {
    let mut fuzzer = NnSmith::new(NnSmithConfig {
        gen: GenConfig {
            binning,
            ..GenConfig::default()
        },
        seed,
        ..NnSmithConfig::default()
    });
    let mut per_op: HashMap<String, HashSet<String>> = HashMap::new();
    for _ in 0..models {
        let Some(case) = fuzzer.next_case() else {
            continue;
        };
        for key in op_instance_keys(&case) {
            let op = key.split('(').next().unwrap_or("?").to_string();
            per_op.entry(op).or_default().insert(key);
        }
    }
    per_op
}

fn main() {
    let models: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    println!("== Figure 9 — unique operator instances, binning vs base ({models} models each) ==");
    let with = collect(true, models, 1);
    let without = collect(false, models, 1);

    let mut ops: Vec<&String> = with.keys().chain(without.keys()).collect();
    ops.sort();
    ops.dedup();
    let mut rows: Vec<(String, usize, usize, f64)> = Vec::new();
    for op in ops {
        let w = with.get(op).map_or(0, HashSet::len);
        let b = without.get(op).map_or(0, HashSet::len);
        if w + b == 0 {
            continue;
        }
        rows.push((op.clone(), w, b, w as f64 / b.max(1) as f64));
    }
    rows.sort_by(|x, y| y.3.partial_cmp(&x.3).unwrap_or(std::cmp::Ordering::Equal));
    println!(
        "{:<14} {:>9} {:>7} {:>7}",
        "operator", "binning", "base", "ratio"
    );
    for (op, w, b, r) in &rows {
        println!("{op:<14} {w:>9} {b:>7} {r:>6.1}x");
    }
    let total_w: usize = with.values().map(HashSet::len).sum();
    let total_b: usize = without.values().map(HashSet::len).sum();
    println!(
        "\nTOTAL: binning {total_w} vs base {total_b} = {:.2}x (paper: 2.07x)",
        total_w as f64 / total_b.max(1) as f64
    );
    write_json(
        "fig9",
        &Fig9Record {
            models,
            rows: rows
                .iter()
                .map(|(op, w, b, r)| Fig9Row {
                    operator: op.clone(),
                    with_binning: *w,
                    without_binning: *b,
                    ratio: *r,
                })
                .collect(),
            total_with_binning: total_w,
            total_without_binning: total_b,
            ratio: total_w as f64 / total_b.max(1) as f64,
        },
    );
}
