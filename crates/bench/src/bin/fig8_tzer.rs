//! Figure 8: NNSmith vs Tzer on tvmsim, all files and pass-only files.
//! Tzer mutates low-level IR, so it keeps exclusive low-level branches
//! while missing the graph-level passes.
//!
//! `cargo run -p nnsmith-bench --release --bin fig8_tzer [secs]`

use std::time::Duration;

use nnsmith_baselines::{run_tzer_campaign, Tzer};
use nnsmith_bench::{arg_secs, nnsmith_source, single_campaign, write_json};
use nnsmith_compilers::tvmsim;
use nnsmith_difftest::Venn2;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Record {
    secs: u64,
    /// A=Tzer, B=NNSmith over all instrumented files.
    all_files: Venn2,
    /// A=Tzer, B=NNSmith over pass files only.
    pass_only: Venn2,
    tzer_iterations: usize,
    nnsmith_cases: usize,
}

fn main() {
    let secs = arg_secs(20);
    let compiler = tvmsim();
    println!("== Figure 8 — NNSmith vs Tzer on tvmsim, {secs}s each ==");

    let mut src = nnsmith_source(44);
    let nnsmith = single_campaign(&compiler, &mut src, secs);
    let tzer = Tzer::new(StdRng::seed_from_u64(55));
    let (tzer_cov, tzer_timeline) = run_tzer_campaign(tzer, Duration::from_secs(secs), None);

    // (a) All files.
    let v = Venn2::of(&tzer_cov, &nnsmith.coverage);
    println!(
        "[all files]  Tzer total {} | NNSmith total {}",
        v.total_a(),
        v.total_b()
    );
    println!(
        "[all files]  Tzer-only {} | shared {} | NNSmith-only {}",
        v.only_a, v.both, v.only_b
    );
    println!(
        "[all files]  NNSmith/Tzer = {:.2}x; Tzer exclusive branches: {}",
        v.total_b() as f64 / v.total_a().max(1) as f64,
        v.only_a
    );

    // (b) Pass-only files.
    let manifest = compiler.manifest();
    let filt = |cov: &nnsmith_compilers::CoverageSet| {
        let mut out = nnsmith_compilers::CoverageSet::new();
        for b in cov.iter() {
            if manifest.files()[b.file.0 as usize].kind == nnsmith_compilers::FileKind::Pass {
                out.insert(b);
            }
        }
        out
    };
    let vp = Venn2::of(&filt(&tzer_cov), &filt(&nnsmith.coverage));
    println!(
        "[pass-only]  Tzer total {} | NNSmith total {}",
        vp.total_a(),
        vp.total_b()
    );
    println!(
        "[pass-only]  Tzer-only {} | shared {} | NNSmith-only {}",
        vp.only_a, vp.both, vp.only_b
    );
    let tzer_iterations = tzer_timeline.last().map(|p| p.iterations).unwrap_or(0);
    println!(
        "Tzer executed {tzer_iterations} IR mutants; NNSmith executed {} models",
        nnsmith.cases
    );
    write_json(
        "fig8",
        &Fig8Record {
            secs,
            all_files: v,
            pass_only: vp,
            tzer_iterations,
            nnsmith_cases: nnsmith.cases,
        },
    );
}
