//! Figure 8: NNSmith vs Tzer on tvmsim, all files and pass-only files.
//! Tzer mutates low-level IR, so it keeps exclusive low-level branches
//! while missing the graph-level passes.
//!
//! Both fuzzers run through the sharded engine, and Tzer's findings are
//! routed through the triage pipeline (reduced, binned, persisted to the
//! reproducer corpus) like every graph-level fuzzer's. Campaigns are
//! **case-budgeted**, so for a fixed `--seed`/`--shards` the emitted
//! `BENCH_fig8.json` and `fig8_tzer_corpus.json` are byte-identical
//! across worker counts (wall-clock-dependent fields are stripped).
//!
//! Tzer runs with its (fixed) coverage-guided retention by default:
//! mutants join the corpus iff they covered a new branch.
//! `--blind-retention` restores the historical probability-0.3 retention
//! stream for before/after comparisons.
//!
//! `cargo run -p nnsmith-bench --release --bin fig8_tzer -- \
//!     [--workers N] [--shards N] [--cases N] [--seed N] \
//!     [--blind-retention]`

use std::time::Duration;

use nnsmith_baselines::TzerFactory;
use nnsmith_bench::{bench_args, write_json, EngineSummary};
use nnsmith_compilers::tvmsim;
use nnsmith_core::{NnSmithConfig, NnSmithFactory};
use nnsmith_difftest::{run_engine, CampaignConfig, EngineConfig, Venn2};
use nnsmith_triage::{run_triaged_engine, TriageConfig, TriageReport};
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Record {
    figure: String,
    compiler: String,
    /// The reproducibility key (with `seed`); the worker count is
    /// deliberately absent — it must not change this record.
    shards: usize,
    seed: u64,
    tzer_cases: usize,
    nnsmith_cases: usize,
    /// A=Tzer, B=NNSmith over all instrumented files.
    all_files: Venn2,
    /// A=Tzer, B=NNSmith over pass files only.
    pass_only: Venn2,
    /// Deterministic engine summaries (timeline + arena), NNSmith first.
    results: Vec<EngineSummary>,
    /// Tzer's findings, deduplicated into triage bins.
    triage: TriageReport,
}

fn main() {
    let args = bench_args(0);
    let compiler = tvmsim();
    let seed = args.seed.unwrap_or(8);
    let tzer_cases = args.cases.unwrap_or(512);
    // NNSmith models are ~an order of magnitude more expensive per case
    // than IR mutants; scale its budget down to keep runtimes comparable.
    let nnsmith_cases = (tzer_cases / 8).max(8);
    let tzer_factory = if args.flag("--blind-retention") {
        TzerFactory::blind()
    } else {
        TzerFactory::default()
    };
    println!(
        "== Figure 8 — NNSmith vs Tzer ({:?} retention) on tvmsim, engine: {} worker(s) x {} shards, seed {seed} ==",
        tzer_factory.retention, args.workers, args.shards
    );

    let engine = |seed: u64, cases: usize| EngineConfig {
        workers: args.workers,
        shards: args.shards,
        seed,
        campaign: CampaignConfig {
            // Generous deadline: the case budget drives termination, which
            // is what makes the run reproducible across worker counts.
            duration: Duration::from_secs(86_400),
            max_cases: Some(cases),
            log_events: true,
            ..CampaignConfig::default()
        },
    };

    let nnsmith = run_engine(
        &compiler,
        &NnSmithFactory::new(NnSmithConfig::default()),
        &engine(seed.wrapping_add(1), nnsmith_cases),
    );
    let (tzer, triage) = run_triaged_engine(
        &compiler,
        &tzer_factory,
        &engine(seed, tzer_cases),
        &TriageConfig::default(),
    );

    // (a) All files.
    let v = Venn2::of(&tzer.result.coverage, &nnsmith.result.coverage);
    println!(
        "[all files]  Tzer total {} | NNSmith total {}",
        v.total_a(),
        v.total_b()
    );
    println!(
        "[all files]  Tzer-only {} | shared {} | NNSmith-only {}",
        v.only_a, v.both, v.only_b
    );
    println!(
        "[all files]  NNSmith/Tzer = {:.2}x; Tzer exclusive branches: {}",
        v.total_b() as f64 / v.total_a().max(1) as f64,
        v.only_a
    );

    // (b) Pass-only files.
    let manifest = compiler.manifest();
    let filt = |cov: &nnsmith_compilers::CoverageSet| {
        let mut out = nnsmith_compilers::CoverageSet::new();
        for b in cov.iter() {
            if manifest.files()[b.file.0 as usize].kind == nnsmith_compilers::FileKind::Pass {
                out.insert(b);
            }
        }
        out
    };
    let vp = Venn2::of(
        &filt(&tzer.result.coverage),
        &filt(&nnsmith.result.coverage),
    );
    println!(
        "[pass-only]  Tzer total {} | NNSmith total {}",
        vp.total_a(),
        vp.total_b()
    );
    println!(
        "[pass-only]  Tzer-only {} | shared {} | NNSmith-only {}",
        vp.only_a, vp.both, vp.only_b
    );
    println!(
        "Tzer executed {} IR mutants; NNSmith executed {} models",
        tzer.result.cases, nnsmith.result.cases
    );
    println!(
        "Tzer triage: {} failures captured -> {} bins ({} unreduced)",
        triage.failures_seen,
        triage.bins.len(),
        triage.unreduced.len()
    );
    for (key, bin) in &triage.bins {
        println!("  [bin] {key} x{}", bin.count);
    }

    // Structured event logs (one JSONL per campaign; `t_ms` is the only
    // nondeterministic field).
    for (path, events) in [
        ("fig8_nnsmith_events.jsonl", &nnsmith.events),
        ("fig8_tzer_events.jsonl", &tzer.events),
    ] {
        match nnsmith_obs::write_jsonl(path, events) {
            Ok(()) => println!("wrote {path} ({} events)", events.len()),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    // Persist Tzer's minimized findings like every other fuzzer's.
    let corpus = triage.to_corpus();
    match corpus.save("fig8_tzer_corpus.json") {
        Ok(()) => println!("wrote fig8_tzer_corpus.json ({} reproducers)", corpus.len()),
        Err(e) => eprintln!("could not write fig8_tzer_corpus.json: {e}"),
    }

    write_json(
        "fig8",
        &Fig8Record {
            figure: "fig8".into(),
            compiler: compiler.system().name().to_string(),
            shards: tzer.shards,
            seed,
            tzer_cases,
            nnsmith_cases,
            all_files: v,
            pass_only: vp,
            results: vec![
                EngineSummary::from_report(&compiler, &nnsmith).deterministic_view(),
                EngineSummary::from_report(&compiler, &tzer).deterministic_view(),
            ],
            triage,
        },
    );
}
