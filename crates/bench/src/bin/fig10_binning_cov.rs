//! Figure 10: impact of attribute binning on branch coverage (Venn of
//! with-binning vs no-binning campaigns on ortsim and tvmsim).
//!
//! Budgets are in *test cases*, not wall-clock: the paper's compilers make
//! compilation dominate each iteration, whereas in this reproduction
//! generation dominates, so equal-time budgets would measure generator
//! throughput rather than test-case quality (see EXPERIMENTS.md).
//!
//! `cargo run -p nnsmith-bench --release --bin fig10_binning_cov [cases]`

use std::time::Duration;

use nnsmith_bench::write_json;
use nnsmith_compilers::{ortsim, tvmsim};
use nnsmith_core::{NnSmith, NnSmithConfig};
use nnsmith_difftest::Venn2;
use nnsmith_difftest::{run_campaign, CampaignConfig};
use nnsmith_gen::GenConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Fig10Record {
    compiler: String,
    cases: usize,
    /// A=no-binning, B=with-binning.
    venn: Venn2,
    unique_ratio: f64,
    total_improvement_pct: f64,
}

fn source(binning: bool, seed: u64) -> NnSmith {
    NnSmith::new(NnSmithConfig {
        gen: GenConfig {
            binning,
            ..GenConfig::default()
        },
        seed,
        ..NnSmithConfig::default()
    })
}

fn main() {
    let cases: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120);
    let mut records = Vec::new();
    for compiler in [ortsim(), tvmsim()] {
        let name = compiler.system().name();
        println!("== Figure 10 ({name}) — binning coverage impact, {cases} cases each ==");
        let cfg = CampaignConfig {
            duration: Duration::from_secs(3600),
            max_cases: Some(cases),
            ..CampaignConfig::default()
        };
        let mut with_src = source(true, 7);
        let with = run_campaign(&compiler, &mut with_src, &cfg);
        let mut without_src = source(false, 7);
        let without = run_campaign(&compiler, &mut without_src, &cfg);
        let v = Venn2::of(&without.coverage, &with.coverage);
        println!(
            "no-binning total {} | w/-binning total {}",
            v.total_a(),
            v.total_b()
        );
        println!(
            "no-binning-only {} | shared {} | binning-only {}",
            v.only_a, v.both, v.only_b
        );
        let unique_ratio = v.only_b as f64 / v.only_a.max(1) as f64;
        let improvement =
            100.0 * (v.total_b() as f64 - v.total_a() as f64) / v.total_a().max(1) as f64;
        println!(
            "unique-coverage ratio (binning/base): {unique_ratio:.1}x; total improvement {improvement:+.1}%\n"
        );
        records.push(Fig10Record {
            compiler: name.to_string(),
            cases,
            venn: v,
            unique_ratio,
            total_improvement_pct: improvement,
        });
    }
    write_json("fig10", &records);
}
