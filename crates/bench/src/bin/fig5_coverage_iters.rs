//! Figure 5: total branch coverage over the number of generated test
//! cases — NNSmith produces fewer but higher-quality cases.
//!
//! `cargo run -p nnsmith-bench --release --bin fig5_coverage_iters -- \
//!     [secs] [--workers N] [--shards N] [--cases N]`

use nnsmith_bench::{bench_args, bench_record, three_way_engine, write_bench_json};
use nnsmith_compilers::{ortsim, tvmsim};

fn main() {
    let args = bench_args(20);
    let mut records = Vec::new();
    for compiler in [ortsim(), tvmsim()] {
        let name = compiler.system().name();
        println!(
            "== Figure 5 ({name}) — coverage over #test cases, {}s, {} workers ==",
            args.secs, args.workers
        );
        let reports = three_way_engine(&compiler, args.secs, args.workers, args.shards, args.cases);
        for report in &reports {
            print!("{:>12}: ", report.result.source);
            for p in &report.wall_timeline {
                print!("{}cases:{} ", p.cases, p.total_branches);
            }
            println!();
        }
        // Throughput comparison (the "LEMON is slowest" observation).
        for report in &reports {
            println!(
                "{:>12}: {} cases in {}s ({:.1} cases/s)",
                report.result.source,
                report.result.cases,
                args.secs,
                report.cases_per_sec(),
            );
        }
        println!();
        records.push(bench_record("fig5", &compiler, &args, &reports));
    }
    write_bench_json("fig5", &records);
}
