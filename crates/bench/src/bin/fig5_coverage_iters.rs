//! Figure 5: total branch coverage over the number of generated test
//! cases — NNSmith produces fewer but higher-quality cases.
//!
//! `cargo run -p nnsmith-bench --release --bin fig5_coverage_iters [secs]`

use nnsmith_bench::{arg_secs, three_way_campaigns};
use nnsmith_compilers::{ortsim, tvmsim};

fn main() {
    let secs = arg_secs(20);
    for compiler in [ortsim(), tvmsim()] {
        let name = compiler.system().name();
        println!("== Figure 5 ({name}) — coverage over #test cases, {secs}s ==");
        let results = three_way_campaigns(&compiler, secs);
        for r in &results {
            print!("{:>12}: ", r.source);
            for p in &r.timeline {
                print!("{}cases:{} ", p.cases, p.total_branches);
            }
            println!();
        }
        // Throughput comparison (the "LEMON is slowest" observation).
        for r in &results {
            println!(
                "{:>12}: {} cases in {secs}s ({:.1} cases/s)",
                r.source,
                r.cases,
                r.cases as f64 / secs as f64
            );
        }
        println!();
    }
}
