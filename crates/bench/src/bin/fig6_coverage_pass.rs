//! Figure 6: pass-only branch coverage over time (the optimizer /
//! transforms directories only).
//!
//! `cargo run -p nnsmith-bench --release --bin fig6_coverage_pass -- \
//!     [secs] [--workers N] [--shards N] [--cases N]`

use nnsmith_bench::{
    bench_args, bench_record, print_ratio_summary, three_way_engine, write_bench_json,
};
use nnsmith_compilers::{ortsim, tvmsim};

fn main() {
    let args = bench_args(20);
    let mut records = Vec::new();
    for compiler in [ortsim(), tvmsim()] {
        let name = compiler.system().name();
        println!(
            "== Figure 6 ({name}) — pass-only coverage over time, {}s, {} workers ==",
            args.secs, args.workers
        );
        let reports = three_way_engine(&compiler, args.secs, args.workers, args.shards, args.cases);
        for report in &reports {
            print!("{:>12}: ", report.result.source);
            for p in &report.wall_timeline {
                print!("{}ms:{} ", p.elapsed_ms, p.pass_branches);
            }
            println!();
        }
        let results: Vec<_> = reports.iter().map(|r| r.result.clone()).collect();
        for r in &results {
            println!(
                "{:>12}: pass-only {:>4} / {} declared ({:.1}%)",
                r.source,
                r.pass_coverage(&compiler),
                compiler.manifest().pass_branches(),
                100.0 * r.pass_coverage(&compiler) as f64
                    / compiler.manifest().pass_branches() as f64,
            );
        }
        print_ratio_summary(&results, |r| r.pass_coverage(&compiler));
        println!();
        records.push(bench_record("fig6", &compiler, &args, &reports));
    }
    write_bench_json("fig6", &records);
}
