//! Figure 6: pass-only branch coverage over time (the optimizer /
//! transforms directories only).
//!
//! `cargo run -p nnsmith-bench --release --bin fig6_coverage_pass [secs]`

use nnsmith_bench::{arg_secs, print_ratio_summary, three_way_campaigns};
use nnsmith_compilers::{ortsim, tvmsim};

fn main() {
    let secs = arg_secs(20);
    for compiler in [ortsim(), tvmsim()] {
        let name = compiler.system().name();
        println!("== Figure 6 ({name}) — pass-only coverage over time, {secs}s ==");
        let results = three_way_campaigns(&compiler, secs);
        for r in &results {
            print!("{:>12}: ", r.source);
            for p in &r.timeline {
                print!("{}ms:{} ", p.elapsed_ms, p.pass_branches);
            }
            println!();
        }
        for r in &results {
            println!(
                "{:>12}: pass-only {:>4} / {} declared ({:.1}%)",
                r.source,
                r.pass_coverage(&compiler),
                compiler.manifest().pass_branches(),
                100.0 * r.pass_coverage(&compiler) as f64
                    / compiler.manifest().pass_branches() as f64,
            );
        }
        print_ratio_summary(&results, |r| r.pass_coverage(&compiler));
        println!();
    }
}
