//! §5.4 baseline analysis: how many of the 72 seeded bugs each fuzzer's
//! generator can *reach* (trigger pattern appears in a generated model).
//! The paper's theoretical analysis: 49/72 bugs are unreachable by LEMON
//! and GraphFuzzer; LEMON reaches at most 17, GraphFuzzer at most 23.
//!
//! `cargo run -p nnsmith-bench --release --bin tab4_baseline_reachability [models]`

use std::collections::BTreeSet;

use nnsmith_bench::{graphfuzzer_source, lemon_source, nnsmith_source, write_json};
use nnsmith_compilers::registry;
use nnsmith_difftest::TestCaseSource;
use serde::Serialize;

#[derive(Serialize)]
struct Tab4Record {
    models: usize,
    nnsmith_reachable: Vec<String>,
    graphfuzzer_reachable: Vec<String>,
    lemon_reachable: Vec<String>,
    nnsmith_only: Vec<String>,
}

fn reachable(source: &mut dyn TestCaseSource, models: usize) -> BTreeSet<&'static str> {
    let bugs = registry();
    let mut hit = BTreeSet::new();
    for _ in 0..models {
        let Some(case) = source.next_case() else {
            break;
        };
        for b in &bugs {
            if !hit.contains(b.id) && b.triggers(&case.graph) {
                hit.insert(b.id);
            }
        }
    }
    hit
}

fn main() {
    let models: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    println!("== §5.4 — seeded bugs reachable per generator ({models} models each) ==");
    let mut nn = nnsmith_source(5);
    let nn_hit = reachable(&mut nn, models);
    let mut gf = graphfuzzer_source(6);
    let gf_hit = reachable(&mut gf, models);
    let mut lm = lemon_source(7);
    let lm_hit = reachable(&mut lm, models);

    println!("NNSmith     reaches {:>2} / 72", nn_hit.len());
    println!(
        "GraphFuzzer reaches {:>2} / 72 (paper bound: <= 23)",
        gf_hit.len()
    );
    println!(
        "LEMON       reaches {:>2} / 72 (paper bound: <= 17)",
        lm_hit.len()
    );
    let nn_only: Vec<&&str> = nn_hit
        .iter()
        .filter(|id| !gf_hit.contains(**id) && !lm_hit.contains(**id))
        .collect();
    println!(
        "bugs only NNSmith reaches here: {} (paper: 49 unreachable by both baselines)",
        nn_only.len()
    );
    println!(
        "GraphFuzzer-reachable: {}",
        gf_hit.iter().copied().collect::<Vec<_>>().join(", ")
    );
    println!(
        "LEMON-reachable: {}",
        lm_hit.iter().copied().collect::<Vec<_>>().join(", ")
    );
    let ids = |set: &BTreeSet<&'static str>| set.iter().map(|s| s.to_string()).collect::<Vec<_>>();
    write_json(
        "tab4",
        &Tab4Record {
            models,
            nnsmith_reachable: ids(&nn_hit),
            graphfuzzer_reachable: ids(&gf_hit),
            lemon_reachable: ids(&lm_hit),
            nnsmith_only: nn_only.iter().map(|s| s.to_string()).collect(),
        },
    );
}
