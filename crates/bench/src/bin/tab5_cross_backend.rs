//! Table 5 (this reproduction's extension of the paper's deployment
//! story, §5.4): one NNSmith campaign fanned out across **every**
//! backend at once — the per-backend bug matrix and the 3-set venn over
//! per-backend bug ids. The reference phase (interpreter + export) runs
//! once per case and is amortized over all backends; each backend gets
//! its own coverage set and bug attribution, and triage bins findings
//! per backend (`tvmsim::…` vs `trtsim::…`).
//!
//! Case-budgeted, so for a fixed `--seed`/`--shards` the emitted
//! `BENCH_tab5.json` is **byte-identical across worker counts**
//! (wall-clock-dependent fields are stripped) — the acceptance gate CI
//! enforces with `cmp`.
//!
//! `cargo run -p nnsmith-bench --release --bin tab5_cross_backend -- \
//!     [--workers N] [--shards N] [--cases N] [--seed N] \
//!     [--backends tvm,ort,trt]`

use std::time::Duration;

use nnsmith_bench::{bench_args, write_json, EngineSummary};
use nnsmith_compilers::BackendSet;
use nnsmith_core::{NnSmithConfig, NnSmithFactory};
use nnsmith_difftest::{CampaignConfig, EngineConfig, Venn3};
use nnsmith_triage::{run_matrix_triaged_engine, TriageConfig, TriageReport};
use serde::Serialize;

#[derive(Serialize)]
struct Tab5Record {
    figure: String,
    /// Backend names, set order.
    backends: Vec<String>,
    /// The reproducibility key (with `seed`); the worker count is
    /// deliberately absent — it must not change this record.
    shards: usize,
    seed: u64,
    cases: usize,
    /// 3-set venn over per-backend bug-id sets (A/B/C in set order).
    /// The `abc` core is the shared exporter surface; the exclusive
    /// regions are each backend's own seeded bugs.
    bug_venn: Option<Venn3>,
    /// Deterministic engine summary of the matrix campaign; the
    /// per-backend bug matrix is its `per_backend` block.
    result: EngineSummary,
    /// Findings binned per backend (`<backend>::<signature>` keys).
    triage: TriageReport,
}

fn main() {
    let args = bench_args(0);
    let backends = args.backend_set(BackendSet::all());
    let seed = args.seed.unwrap_or(5);
    let cases = args.cases.unwrap_or(96);
    println!(
        "== Table 5 — cross-backend matrix [{}], engine: {} worker(s) x {} shards, seed {seed}, {cases} cases ==",
        backends.names().join("+"),
        args.workers,
        args.shards
    );

    let config = EngineConfig {
        workers: args.workers,
        shards: args.shards,
        seed,
        campaign: CampaignConfig {
            // Generous deadline: the case budget drives termination,
            // which is what makes the run reproducible across worker
            // counts.
            duration: Duration::from_secs(86_400),
            max_cases: Some(cases),
            backends: backends.iter().cloned().collect(),
            log_events: true,
            ..CampaignConfig::default()
        },
    };
    let factory = NnSmithFactory::for_backends(NnSmithConfig::default(), &backends);
    let (report, triage) = run_matrix_triaged_engine(&factory, &config, &TriageConfig::default());

    let summary = EngineSummary::from_matrix_report(&backends, &report).deterministic_view();
    match nnsmith_obs::write_jsonl("tab5_events.jsonl", &report.events) {
        Ok(()) => println!("wrote tab5_events.jsonl ({} events)", report.events.len()),
        Err(e) => eprintln!("could not write tab5_events.jsonl: {e}"),
    }
    println!(
        "{} cases; one reference execution each, {} backend verdicts total",
        report.result.cases,
        report.result.cases * backends.len()
    );
    for name in backends.names() {
        let b = &summary.per_backend[&name];
        println!(
            "  [{name:>7}] coverage {:>5} (pass {:>4}) | bugs {:>2} | crashes {:>2} | mismatches {:>3} | not-impl {:>3}",
            b.total_coverage,
            b.pass_coverage,
            b.bugs_found.len(),
            b.unique_crashes,
            b.mismatches,
            b.not_implemented,
        );
    }

    // 3-set venn over per-backend bug ids (only meaningful with three
    // backends; smaller sets still get the matrix + triage).
    let names = backends.names();
    let bug_venn = (names.len() == 3).then(|| {
        let set = |n: &str| {
            report
                .result
                .backend(n)
                .expect("backend")
                .bugs_found
                .clone()
        };
        let v = Venn3::of_ids(&set(&names[0]), &set(&names[1]), &set(&names[2]));
        println!(
            "bug venn ({}|{}|{}): exclusive {}/{}/{}, shared-by-all {} (exporter surface)",
            names[0], names[1], names[2], v.a, v.b, v.c, v.abc
        );
        v
    });
    println!(
        "triage: {} failures -> {} bins ({} unreduced), backend-keyed",
        triage.failures_seen,
        triage.bins.len(),
        triage.unreduced.len()
    );
    for (key, bin) in &triage.bins {
        println!("  [bin] {key} x{}", bin.count);
    }

    write_json(
        "tab5",
        &Tab5Record {
            figure: "tab5".into(),
            backends: names,
            shards: report.shards,
            seed,
            cases,
            bug_venn,
            result: summary,
            triage,
        },
    );
}
