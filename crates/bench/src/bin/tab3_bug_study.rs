//! Table 3: the seeded-bug study, driven by the triage subsystem. Runs
//! NNSmith campaigns against all three simulated compilers (exporter in
//! the loop), streams every oracle finding through triage — reduction,
//! signature binning, reproducer extraction — and reports *deduplicated*
//! bugs in the paper's system x phase and symptom breakdown. Raw finding
//! counts vs. bins shows how much duplicate volume triage absorbs.
//!
//! `cargo run -p nnsmith-bench --release --bin tab3_bug_study -- [secs] [--workers N] [--shards N]`
//!
//! Emits `BENCH_tab3.json` (per-compiler bins + reproducers) and writes
//! the minimized reproducer corpus to `tab3_corpus.json`.

use std::collections::BTreeSet;
use std::time::Duration;

use serde::Serialize;

use nnsmith_bench::{bench_args, write_json};
use nnsmith_compilers::{bug_by_id, ortsim, registry, trtsim, tvmsim, Phase, Symptom, System};
use nnsmith_core::{NnSmithConfig, NnSmithFactory};
use nnsmith_difftest::{CampaignConfig, EngineConfig};
use nnsmith_triage::{run_triaged_engine, Corpus, TriageConfig, TriageReport};

#[derive(Serialize)]
struct Tab3Record {
    compiler: String,
    secs: u64,
    workers: usize,
    shards: usize,
    cases: usize,
    findings: usize,
    triage: TriageReport,
}

fn main() {
    let args = bench_args(25);
    println!(
        "== Table 3 — seeded-bug study via triage ({}s per compiler, {} workers) ==",
        args.secs, args.workers
    );
    let mut found: BTreeSet<String> = BTreeSet::new();
    let mut records = Vec::new();
    let mut corpus = Corpus::new();
    for (compiler, seed) in [(tvmsim(), 101u64), (ortsim(), 202), (trtsim(), 303)] {
        let factory = NnSmithFactory::new(NnSmithConfig::default());
        let config = EngineConfig {
            workers: args.workers,
            shards: args.shards,
            seed,
            campaign: CampaignConfig {
                duration: Duration::from_secs(args.secs),
                ..CampaignConfig::default()
            },
        };
        let (report, triage) =
            run_triaged_engine(&compiler, &factory, &config, &TriageConfig::default());
        println!(
            "{:>8}: {} cases, {} findings -> {} bins ({} reductions, {} oracle runs)",
            report.result.compiler,
            report.result.cases,
            triage.failures_seen,
            triage.bins.len(),
            triage.reductions,
            triage.oracle_runs,
        );
        for (key, bin) in &triage.bins {
            println!(
                "          {key}: x{} -> {} ops",
                bin.count,
                bin.reproducer.graph.operators().len()
            );
        }
        for (key, bin) in &triage.unreduced {
            println!("          {key}: x{} (not reducible)", bin.count);
        }
        found.extend(triage.seeded_bug_ids());
        corpus.merge(triage.to_corpus());
        records.push(Tab3Record {
            compiler: report.result.compiler.clone(),
            secs: args.secs,
            workers: args.workers,
            shards: args.shards,
            cases: report.result.cases,
            findings: triage.failures_seen,
            triage,
        });
    }

    let bugs = registry();
    let seeded = |sys: System, phase: Phase| -> (usize, usize) {
        let total = bugs
            .iter()
            .filter(|b| b.system == sys && b.phase == phase)
            .count();
        let hit = bugs
            .iter()
            .filter(|b| b.system == sys && b.phase == phase && found.contains(b.id))
            .count();
        (hit, total)
    };
    println!(
        "\n{:<14} {:>16} {:>13} {:>14}",
        "", "Transformation", "Conversion", "Unclassified"
    );
    for (label, sys) in [
        ("ONNXRuntime~", System::OrtSim),
        ("TVM~", System::TvmSim),
        ("TensorRT~", System::TrtSim),
        ("PyT exporter~", System::Exporter),
    ] {
        let t = seeded(sys, Phase::Transformation);
        let c = seeded(sys, Phase::Conversion);
        let u = seeded(sys, Phase::Unclassified);
        println!(
            "{label:<14} {:>11}/{:<3} {:>9}/{:<3} {:>10}/{:<3}",
            t.0, t.1, c.0, c.1, u.0, u.1
        );
    }
    let crash = bugs
        .iter()
        .filter(|b| b.symptom == Symptom::Crash && found.contains(b.id))
        .count();
    let sem = bugs
        .iter()
        .filter(|b| b.symptom == Symptom::Semantic && found.contains(b.id))
        .count();
    println!(
        "\nTOTAL found: {} / 72 seeded (crash {crash}/55, semantic {sem}/17)",
        found.len()
    );
    // Sanity: every identified id must exist in the registry.
    for id in &found {
        assert!(bug_by_id(id).is_some(), "unknown seeded id {id}");
    }
    let missing: Vec<&str> = bugs
        .iter()
        .filter(|b| !found.contains(b.id))
        .map(|b| b.id)
        .collect();
    if !missing.is_empty() {
        println!("not yet triggered: {}", missing.join(", "));
    }

    match corpus.save("tab3_corpus.json") {
        Ok(()) => println!("wrote tab3_corpus.json ({} reproducers)", corpus.len()),
        Err(e) => eprintln!("could not write tab3_corpus.json: {e}"),
    }
    write_json("tab3", &records);
}
