//! Table 3: the seeded-bug study. Runs NNSmith campaigns against all
//! three simulated compilers (with the exporter in the loop) and reports
//! found bugs in the paper's system x phase and symptom breakdown.
//!
//! `cargo run -p nnsmith-bench --release --bin tab3_bug_study [secs-per-compiler]`

use std::collections::BTreeSet;

use nnsmith_bench::{arg_secs, nnsmith_source, single_campaign};
use nnsmith_compilers::{ortsim, registry, trtsim, tvmsim, Phase, Symptom, System};

fn main() {
    let secs = arg_secs(25);
    println!("== Table 3 — seeded-bug study ({secs}s per compiler) ==");
    let mut found: BTreeSet<String> = BTreeSet::new();
    for (compiler, seed) in [(tvmsim(), 101u64), (ortsim(), 202), (trtsim(), 303)] {
        let mut src = nnsmith_source(seed);
        let r = single_campaign(&compiler, &mut src, secs);
        println!(
            "{:>8}: {} cases, {} unique crashes, {} mismatches, {} seeded bugs",
            r.compiler,
            r.cases,
            r.unique_crashes.len(),
            r.mismatches,
            r.bugs_found.len()
        );
        found.extend(r.bugs_found);
    }

    let bugs = registry();
    let seeded = |sys: System, phase: Phase| -> (usize, usize) {
        let total = bugs
            .iter()
            .filter(|b| b.system == sys && b.phase == phase)
            .count();
        let hit = bugs
            .iter()
            .filter(|b| b.system == sys && b.phase == phase && found.contains(b.id))
            .count();
        (hit, total)
    };
    println!(
        "\n{:<14} {:>16} {:>13} {:>14}",
        "", "Transformation", "Conversion", "Unclassified"
    );
    for (label, sys) in [
        ("ONNXRuntime~", System::OrtSim),
        ("TVM~", System::TvmSim),
        ("TensorRT~", System::TrtSim),
        ("PyT exporter~", System::Exporter),
    ] {
        let t = seeded(sys, Phase::Transformation);
        let c = seeded(sys, Phase::Conversion);
        let u = seeded(sys, Phase::Unclassified);
        println!(
            "{label:<14} {:>11}/{:<3} {:>9}/{:<3} {:>10}/{:<3}",
            t.0, t.1, c.0, c.1, u.0, u.1
        );
    }
    let crash = bugs
        .iter()
        .filter(|b| b.symptom == Symptom::Crash && found.contains(b.id))
        .count();
    let sem = bugs
        .iter()
        .filter(|b| b.symptom == Symptom::Semantic && found.contains(b.id))
        .count();
    println!(
        "\nTOTAL found: {} / 72 seeded (crash {crash}/55, semantic {sem}/17)",
        found.len()
    );
    let missing: Vec<&str> = bugs
        .iter()
        .filter(|b| !found.contains(b.id))
        .map(|b| b.id)
        .collect();
    if !missing.is_empty() {
        println!("not yet triggered: {}", missing.join(", "));
    }
}
