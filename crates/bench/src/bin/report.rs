//! `bench report` — fold every `BENCH_*.json` artifact into the
//! trajectory dashboard (see [`nnsmith_bench::report`]).
//!
//! `cargo run -p nnsmith-bench --release --bin report -- \
//!     [artifact-dir] [-o reports/trajectory.md]`
//!
//! Defaults: artifacts from the working directory, output to
//! `reports/trajectory.md` under it. The block between the deterministic
//! markers is what the CI `report-gate` diffs against the committed
//! baseline.

use std::path::PathBuf;

use nnsmith_bench::report::build_trajectory;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = PathBuf::from(".");
    let mut out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" | "--out" => {
                if let Some(path) = args.get(i + 1) {
                    out = Some(PathBuf::from(path));
                    i += 2;
                } else {
                    eprintln!("warning: {} needs a path, using default", args[i]);
                    i += 1;
                }
            }
            other => {
                dir = PathBuf::from(other);
                i += 1;
            }
        }
    }
    let out = out.unwrap_or_else(|| dir.join("reports/trajectory.md"));

    let report = match build_trajectory(&dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("could not read artifacts from {}: {e}", dir.display());
            std::process::exit(1);
        }
    };
    if let Some(parent) = out.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("could not create {}: {e}", parent.display());
            std::process::exit(1);
        }
    }
    match std::fs::write(&out, &report) {
        Ok(()) => println!("wrote {} ({} bytes)", out.display(), report.len()),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            std::process::exit(1);
        }
    }
}
