//! Figure 4: total branch coverage over time (all files) on ortsim and
//! tvmsim, for NNSmith vs GraphFuzzer vs LEMON.
//!
//! `cargo run -p nnsmith-bench --release --bin fig4_coverage_time [secs]`

use nnsmith_bench::{arg_secs, print_ratio_summary, three_way_campaigns};
use nnsmith_compilers::{ortsim, tvmsim};

fn main() {
    let secs = arg_secs(20);
    for compiler in [ortsim(), tvmsim()] {
        let name = compiler.system().name();
        println!("== Figure 4 ({name}) — total branch coverage over time, {secs}s ==");
        let results = three_way_campaigns(&compiler, secs);
        for r in &results {
            print!("{:>12}: ", r.source);
            for p in &r.timeline {
                print!("{}ms:{} ", p.elapsed_ms, p.total_branches);
            }
            println!();
        }
        for r in &results {
            println!(
                "{:>12}: total {:>5} / {} declared ({:.1}%), {} cases",
                r.source,
                r.total_coverage(),
                compiler.manifest().total_branches(),
                100.0 * r.total_coverage() as f64
                    / compiler.manifest().total_branches() as f64,
                r.cases
            );
        }
        print_ratio_summary(&results, |r| r.total_coverage());
        println!();
    }
}
