//! Figure 4: total branch coverage over time (all files) on ortsim and
//! tvmsim, for NNSmith vs GraphFuzzer vs LEMON.
//!
//! `cargo run -p nnsmith-bench --release --bin fig4_coverage_time -- [secs] [--workers N] [--shards N]`
//!
//! With `--workers N` each fuzzer's campaign is sharded across N threads
//! by the parallel engine; the time axis comes from the engine's
//! real-time aggregated coverage timeline.

use nnsmith_bench::{
    bench_args, bench_record, print_ratio_summary, three_way_engine, write_bench_json,
};
use nnsmith_compilers::{ortsim, tvmsim};

fn main() {
    let args = bench_args(20);
    let mut records = Vec::new();
    for compiler in [ortsim(), tvmsim()] {
        let name = compiler.system().name();
        println!(
            "== Figure 4 ({name}) — total branch coverage over time, {}s, {} workers ==",
            args.secs, args.workers
        );
        let reports = three_way_engine(&compiler, args.secs, args.workers, args.shards);
        for report in &reports {
            print!("{:>12}: ", report.result.source);
            for p in &report.wall_timeline {
                print!("{}ms:{} ", p.elapsed_ms, p.total_branches);
            }
            println!();
        }
        let results: Vec<_> = reports.iter().map(|r| r.result.clone()).collect();
        for (report, r) in reports.iter().zip(&results) {
            println!(
                "{:>12}: total {:>5} / {} declared ({:.1}%), {} cases, {:.1} cases/s",
                r.source,
                r.total_coverage(),
                compiler.manifest().total_branches(),
                100.0 * r.total_coverage() as f64 / compiler.manifest().total_branches() as f64,
                r.cases,
                report.cases_per_sec(),
            );
        }
        print_ratio_summary(&results, |r| r.total_coverage());
        println!();
        records.push(bench_record("fig4", &compiler, &args, &reports));
    }
    write_bench_json("fig4", &records);
}
