//! Figure 4: total branch coverage over time (all files) on ortsim and
//! tvmsim, for NNSmith vs GraphFuzzer vs LEMON.
//!
//! `cargo run -p nnsmith-bench --release --bin fig4_coverage_time -- \
//!     [secs] [--workers N] [--shards N] [--cases N]`
//!
//! With `--workers N` each fuzzer's campaign is sharded across N threads
//! by the parallel engine; the time axis comes from the engine's
//! real-time aggregated coverage timeline.
//!
//! With `--cases N` the run is **case-budgeted**: termination is driven
//! by the case count (the wall-clock deadline becomes a generous
//! anti-hang bound) and `BENCH_fig4.json` is emitted in deterministic
//! form — byte-identical across worker counts for a fixed shard count,
//! which the CI perf-smoke job enforces with `cmp` (and which pins the
//! solver's compiled-tape path: `workers=1 ≡ workers=N` including the
//! `"solver"` stats block).

use nnsmith_bench::{
    bench_args, bench_record, print_ratio_summary, three_way_engine, write_bench_json,
};
use nnsmith_compilers::{ortsim, tvmsim};

fn main() {
    let args = bench_args(20);
    // Case-budgeted runs terminate on the case count; the deadline is
    // only an anti-hang bound (the tab5 pattern).
    let secs = if args.cases.is_some() {
        86_400
    } else {
        args.secs
    };
    let mut records = Vec::new();
    for compiler in [ortsim(), tvmsim()] {
        let name = compiler.system().name();
        match args.cases {
            Some(cases) => println!(
                "== Figure 4 ({name}) — total branch coverage, {cases} cases, {} workers x {} shards ==",
                args.workers, args.shards
            ),
            None => println!(
                "== Figure 4 ({name}) — total branch coverage over time, {}s, {} workers ==",
                args.secs, args.workers
            ),
        }
        let reports = three_way_engine(&compiler, secs, args.workers, args.shards, args.cases);
        for report in &reports {
            print!("{:>12}: ", report.result.source);
            for p in &report.wall_timeline {
                print!("{}ms:{} ", p.elapsed_ms, p.total_branches);
            }
            println!();
        }
        let results: Vec<_> = reports.iter().map(|r| r.result.clone()).collect();
        for (report, r) in reports.iter().zip(&results) {
            println!(
                "{:>12}: total {:>5} / {} declared ({:.1}%), {} cases, {:.1} cases/s",
                r.source,
                r.total_coverage(),
                compiler.manifest().total_branches(),
                100.0 * r.total_coverage() as f64 / compiler.manifest().total_branches() as f64,
                r.cases,
                report.cases_per_sec(),
            );
        }
        for report in &reports {
            let s = &report.solver;
            if s.checks > 0 {
                println!(
                    "{:>12}: solver {} checks, {} tape compiles, {} tape evals, {} constraints skipped",
                    report.result.source, s.checks, s.tape_compiles, s.tape_evals,
                    s.constraints_skipped,
                );
            }
        }
        print_ratio_summary(&results, |r| r.total_coverage());
        println!();
        let record = bench_record("fig4", &compiler, &args, &reports);
        records.push(if args.cases.is_some() {
            record.deterministic_view()
        } else {
            record
        });
    }
    write_bench_json("fig4", &records);
}
