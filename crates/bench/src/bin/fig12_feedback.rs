//! Figure 12 (extension): coverage-feedback-guided NNSmith vs the blind
//! generator, same seed and same case budget, scored on distinct seeded
//! bugs. See [`nnsmith_bench::fig12`] for the experimental design.
//!
//! Campaigns are **case-budgeted**, so for fixed `--seed`/`--shards` the
//! emitted `BENCH_fig12.json` is byte-identical across worker counts.
//!
//! `cargo run -p nnsmith-bench --release --bin fig12_feedback -- \
//!     [--workers N] [--shards N] [--cases N] [--seed N] \
//!     [--backends tvm,ort,trt] [--seed-corpus PATH] [--gate]`
//!
//! `--seed-corpus PATH` preloads the guided arm's corpus with the graph
//! reproducers of a triage corpus (e.g. `fig8_tzer_corpus.json`).
//! `--gate` exits nonzero unless the guided arm found strictly more
//! distinct seeded bugs — the CI acceptance check.

use nnsmith_bench::fig12::{run_fig12, Fig12Options};
use nnsmith_bench::{bench_args, write_json};
use nnsmith_compilers::BackendSet;
use nnsmith_triage::Corpus;

fn main() {
    let args = bench_args(0);
    let mut opts = Fig12Options {
        workers: args.workers,
        shards: args.shards,
        backends: args.backend_set(BackendSet::all()),
        ..Fig12Options::default()
    };
    if let Some(cases) = args.cases {
        opts.cases = cases;
    }
    if let Some(seed) = args.seed {
        opts.seed = seed;
    }
    // `--seed-corpus` takes a value, so it reaches us via the shared
    // parser's flag bucket followed by a positional; re-scan argv for it.
    let argv: Vec<String> = std::env::args().collect();
    if let Some(i) = argv.iter().position(|a| a == "--seed-corpus") {
        match argv.get(i + 1).map(|p| Corpus::load(p)) {
            Some(Ok(corpus)) => {
                opts.seeds = corpus.seed_cases();
                println!(
                    "seed corpus: {} graph reproducer(s) preloaded",
                    opts.seeds.len()
                );
            }
            Some(Err(e)) => eprintln!("warning: could not load seed corpus: {e}"),
            None => eprintln!("warning: --seed-corpus needs a path"),
        }
    }

    println!(
        "== Figure 12 — guided vs blind NNSmith, engine: {} worker(s) x {} shards, seed {}, {} cases/arm ==",
        opts.workers, opts.shards, opts.seed, opts.cases
    );
    let record = run_fig12(&opts);
    for summary in &record.results {
        println!(
            "[{}] cases {} | coverage {} | distinct seeded bugs {}",
            summary.source,
            summary.cases,
            summary.total_coverage,
            summary.bugs_found.len()
        );
    }
    if let Some(fb) = record.results[0].feedback.as_ref() {
        println!(
            "[feedback] corpus {} (digest {:016x}) | retained {} | seeded {} | mutated {} | probes {} | fresh {} | checkpoints {}",
            fb.corpus, fb.corpus_digest, fb.retained, fb.seeded, fb.mutated, fb.probes, fb.fresh, fb.checkpoints
        );
    }
    println!(
        "guided {} vs blind {} distinct seeded bugs -> gate {}",
        record.guided_bugs,
        record.blind_bugs,
        if record.gate_passed { "PASS" } else { "FAIL" }
    );
    write_json("fig12", &record);
    if args.flag("--gate") && !record.gate_passed {
        eprintln!("gate: guided arm must find strictly more distinct seeded bugs");
        std::process::exit(1);
    }
}
