//! # nnsmith-bench
//!
//! Experiment drivers regenerating every table and figure of the NNSmith
//! paper's evaluation (§5), plus Criterion micro-benchmarks.
//!
//! Each `--bin` target prints the rows/series of one paper figure or
//! table, scaled from the paper's 4-hour runs down to seconds (pass a
//! duration argument to scale up):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig4_coverage_time` | Fig. 4 — total branch coverage over time |
//! | `fig5_coverage_iters` | Fig. 5 — coverage over #test cases |
//! | `fig6_coverage_pass` | Fig. 6 — pass-only coverage over time |
//! | `fig7_venn` | Fig. 7 — coverage Venn diagrams |
//! | `fig8_tzer` | Fig. 8 — NNSmith vs Tzer on tvmsim |
//! | `fig9_op_instances` | Fig. 9 — unique operator instances, binning ablation |
//! | `fig10_binning_cov` | Fig. 10 — binning impact on coverage |
//! | `fig11_value_search` | Fig. 11 + §3.3 NaN-rate stat |
//! | `tab3_bug_study` | Table 3 — seeded-bug study |
//! | `tab4_baseline_reachability` | §5.4 — bugs reachable per fuzzer |

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use nnsmith_baselines::{GraphFuzzer, GraphFuzzerConfig, Lemon};
use nnsmith_compilers::Compiler;
use nnsmith_core::{NnSmith, NnSmithConfig};
use nnsmith_difftest::{run_campaign, CampaignConfig, CampaignResult, TestCaseSource};

/// Parses the first CLI argument as seconds, with a default.
pub fn arg_secs(default: u64) -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The NNSmith pipeline source with paper-default settings (10-node
/// models, k = 7 bins, gradient+proxy search).
pub fn nnsmith_source(seed: u64) -> NnSmith {
    NnSmith::new(NnSmithConfig {
        seed,
        ..NnSmithConfig::default()
    })
}

/// The LEMON baseline source.
pub fn lemon_source(seed: u64) -> Lemon<StdRng> {
    Lemon::new(StdRng::seed_from_u64(seed))
}

/// The GraphFuzzer baseline source.
pub fn graphfuzzer_source(seed: u64) -> GraphFuzzer<StdRng> {
    GraphFuzzer::new(StdRng::seed_from_u64(seed), GraphFuzzerConfig::default())
}

/// Runs the standard three-fuzzer comparison (NNSmith, GraphFuzzer,
/// LEMON) against one compiler for `secs` seconds each.
pub fn three_way_campaigns(compiler: &Compiler, secs: u64) -> Vec<CampaignResult> {
    let cfg = CampaignConfig {
        duration: Duration::from_secs(secs),
        ..CampaignConfig::default()
    };
    let mut results = Vec::new();
    {
        let mut src = nnsmith_source(11);
        results.push(run_campaign(compiler, &mut src, &cfg));
    }
    {
        let mut src = graphfuzzer_source(22);
        results.push(run_campaign(compiler, &mut src, &cfg));
    }
    {
        let mut src = lemon_source(33);
        results.push(run_campaign(compiler, &mut src, &cfg));
    }
    results
}

/// Prints a campaign comparison footer: totals and the NNSmith-vs-2nd-best
/// ratio the paper reports.
pub fn print_ratio_summary(results: &[CampaignResult], metric: impl Fn(&CampaignResult) -> usize) {
    let mut best_other = 0usize;
    let mut nnsmith = 0usize;
    for r in results {
        let v = metric(r);
        if r.source == "NNSmith" {
            nnsmith = v;
        } else {
            best_other = best_other.max(v);
        }
    }
    if best_other > 0 {
        println!(
            "NNSmith vs 2nd-best: {nnsmith} / {best_other} = {:.2}x",
            nnsmith as f64 / best_other as f64
        );
    }
}

/// Runs one source against one compiler (convenience for single-cell
/// experiments).
pub fn single_campaign(
    compiler: &Compiler,
    source: &mut dyn TestCaseSource,
    secs: u64,
) -> CampaignResult {
    run_campaign(
        compiler,
        source,
        &CampaignConfig {
            duration: Duration::from_secs(secs),
            ..CampaignConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_compilers::ortsim;

    #[test]
    fn three_way_runs_quickly() {
        let compiler = ortsim();
        let results = three_way_campaigns(&compiler, 2);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].source, "NNSmith");
        for r in &results {
            assert!(r.cases > 0, "{} produced no cases", r.source);
            assert!(r.total_coverage() > 0);
        }
    }
}
