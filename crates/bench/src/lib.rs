//! # nnsmith-bench
//!
//! Experiment drivers regenerating every table and figure of the NNSmith
//! paper's evaluation (§5), plus Criterion micro-benchmarks.
//!
//! Each `--bin` target prints the rows/series of one paper figure or
//! table, scaled from the paper's 4-hour runs down to seconds (pass a
//! duration argument to scale up):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig4_coverage_time` | Fig. 4 — total branch coverage over time |
//! | `fig5_coverage_iters` | Fig. 5 — coverage over #test cases |
//! | `fig6_coverage_pass` | Fig. 6 — pass-only coverage over time |
//! | `fig7_venn` | Fig. 7 — coverage Venn diagrams |
//! | `fig8_tzer` | Fig. 8 — NNSmith vs Tzer on tvmsim |
//! | `fig9_op_instances` | Fig. 9 — unique operator instances, binning ablation |
//! | `fig10_binning_cov` | Fig. 10 — binning impact on coverage |
//! | `fig11_value_search` | Fig. 11 + §3.3 NaN-rate stat |
//! | `tab3_bug_study` | Table 3 — seeded-bug study |
//! | `tab4_baseline_reachability` | §5.4 — bugs reachable per fuzzer |
//! | `fig12_feedback` | extension — guided vs blind NNSmith at equal case budget |

pub mod fig12;
pub mod fig13;
pub mod report;

use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use nnsmith_baselines::{GraphFuzzer, GraphFuzzerConfig, GraphFuzzerFactory, Lemon, LemonFactory};
use nnsmith_compilers::{BackendSet, Compiler};
use nnsmith_core::{NnSmith, NnSmithConfig, NnSmithFactory};
use nnsmith_difftest::{
    run_campaign, run_engine, run_matrix_engine, CampaignConfig, CampaignResult, EngineConfig,
    EngineReport, TestCaseSource, TimelinePoint,
};

/// Parses the first CLI argument as seconds, with a default.
pub fn arg_secs(default: u64) -> u64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// CLI arguments shared by the engine-driven figure binaries:
/// `[secs] [--workers N] [--shards N] [--cases N] [--seed N]
/// [--backends tvm,ort,trt]`.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Wall-clock budget per campaign, seconds.
    pub secs: u64,
    /// Engine worker threads.
    pub workers: usize,
    /// Engine shard count (the reproducibility key; defaults to 8).
    pub shards: usize,
    /// Case budget for deterministic (case-budgeted) figures; `None`
    /// keeps each binary's default.
    pub cases: Option<usize>,
    /// Campaign seed override.
    pub seed: Option<u64>,
    /// Backend set override (`--backends tvm,ort,trt`); `None` keeps
    /// each binary's default.
    pub backends: Option<BackendSet>,
    /// Valueless `--flag` switches the shared parser didn't recognize,
    /// for binary-specific toggles (`--blind-retention`, `--gate`).
    pub flags: Vec<String>,
}

impl BenchArgs {
    /// The backend set to run against: the `--backends` flag when given,
    /// `default` otherwise.
    pub fn backend_set(&self, default: BackendSet) -> BackendSet {
        self.backends.clone().unwrap_or(default)
    }

    /// True when the valueless switch `name` (including the `--`) was
    /// passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }
}

/// Parses `[secs] [--workers N] [--shards N] [--cases N] [--seed N]
/// [--backends tvm,ort,trt]` with defaults.
pub fn bench_args(default_secs: u64) -> BenchArgs {
    let mut out = BenchArgs {
        secs: default_secs,
        workers: 1,
        shards: 8,
        cases: None,
        seed: None,
        backends: None,
        flags: Vec::new(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            flag @ ("--workers" | "--shards" | "--cases" | "--seed") => {
                // Consume the value only if it parses, so a missing value
                // doesn't swallow the next flag.
                match args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) {
                    Some(v) => {
                        match flag {
                            "--workers" => out.workers = v as usize,
                            "--shards" => out.shards = v as usize,
                            "--cases" => out.cases = Some(v as usize),
                            _ => out.seed = Some(v),
                        }
                        i += 2;
                    }
                    None => {
                        eprintln!("warning: {flag} needs a number, using default");
                        i += 1;
                    }
                }
            }
            "--backends" => {
                let names: Vec<String> = args
                    .get(i + 1)
                    .map(|s| s.split(',').map(str::to_string).collect())
                    .unwrap_or_default();
                match BackendSet::from_names(&names) {
                    Some(set) => {
                        out.backends = Some(set);
                        i += 2;
                    }
                    None => {
                        eprintln!(
                            "warning: --backends needs a comma list of tvm/ort/trt, using default"
                        );
                        // Consume the bad value too, so it is not
                        // re-parsed as the positional secs argument.
                        i += if args.len() > i + 1 { 2 } else { 1 };
                    }
                }
            }
            other => {
                if other.starts_with("--") {
                    out.flags.push(other.to_string());
                } else if let Ok(v) = other.parse() {
                    out.secs = v;
                }
                i += 1;
            }
        }
    }
    out
}

/// Assembles the `BENCH_*.json` record for one compiler's engine runs.
pub fn bench_record(
    figure: &str,
    compiler: &Compiler,
    args: &BenchArgs,
    reports: &[EngineReport],
) -> BenchRecord {
    BenchRecord {
        figure: figure.to_string(),
        compiler: compiler.system().name().to_string(),
        secs: args.secs,
        workers: args.workers,
        shards: args.shards,
        results: reports
            .iter()
            .map(|r| EngineSummary::from_report(compiler, r))
            .collect(),
    }
}

/// The NNSmith pipeline source with paper-default settings (10-node
/// models, k = 7 bins, gradient+proxy search).
pub fn nnsmith_source(seed: u64) -> NnSmith {
    NnSmith::new(NnSmithConfig {
        seed,
        ..NnSmithConfig::default()
    })
}

/// The LEMON baseline source.
pub fn lemon_source(seed: u64) -> Lemon<StdRng> {
    Lemon::new(StdRng::seed_from_u64(seed))
}

/// The GraphFuzzer baseline source.
pub fn graphfuzzer_source(seed: u64) -> GraphFuzzer<StdRng> {
    GraphFuzzer::new(StdRng::seed_from_u64(seed), GraphFuzzerConfig::default())
}

/// Runs the standard three-fuzzer comparison (NNSmith, GraphFuzzer,
/// LEMON) against one compiler for `secs` seconds each.
pub fn three_way_campaigns(compiler: &Compiler, secs: u64) -> Vec<CampaignResult> {
    let cfg = CampaignConfig {
        duration: Duration::from_secs(secs),
        ..CampaignConfig::default()
    };
    let mut results = Vec::new();
    {
        let mut src = nnsmith_source(11);
        results.push(run_campaign(compiler, &mut src, &cfg));
    }
    {
        let mut src = graphfuzzer_source(22);
        results.push(run_campaign(compiler, &mut src, &cfg));
    }
    {
        let mut src = lemon_source(33);
        results.push(run_campaign(compiler, &mut src, &cfg));
    }
    results
}

/// Runs the standard three-fuzzer comparison through the parallel engine:
/// each fuzzer's campaign is sharded over `workers` threads with the same
/// seeds as [`three_way_campaigns`] (11/22/33).
pub fn three_way_engine(
    compiler: &Compiler,
    secs: u64,
    workers: usize,
    shards: usize,
    cases: Option<usize>,
) -> Vec<EngineReport> {
    let engine = |seed: u64| EngineConfig {
        workers,
        shards,
        seed,
        campaign: CampaignConfig {
            duration: Duration::from_secs(secs),
            max_cases: cases,
            ..CampaignConfig::default()
        },
    };
    vec![
        run_engine(
            compiler,
            &NnSmithFactory::new(NnSmithConfig::default()),
            &engine(11),
        ),
        run_engine(compiler, &GraphFuzzerFactory::default(), &engine(22)),
        run_engine(compiler, &LemonFactory, &engine(33)),
    ]
}

/// Runs the standard three-fuzzer comparison through the cross-backend
/// matrix engine: each fuzzer's campaign fans every case out over the
/// whole backend set (generation restricted to the set's dtype
/// intersection), with the same seeds as [`three_way_campaigns`]
/// (11/22/33).
pub fn three_way_matrix_engine(
    backends: &BackendSet,
    secs: u64,
    workers: usize,
    shards: usize,
    cases: Option<usize>,
) -> Vec<EngineReport> {
    let engine = |seed: u64| EngineConfig {
        workers,
        shards,
        seed,
        campaign: CampaignConfig {
            duration: Duration::from_secs(secs),
            max_cases: cases,
            backends: backends.iter().cloned().collect(),
            ..CampaignConfig::default()
        },
    };
    vec![
        run_matrix_engine(
            &NnSmithFactory::for_backends(NnSmithConfig::default(), backends),
            &engine(11),
        ),
        run_matrix_engine(
            &GraphFuzzerFactory::for_backends(GraphFuzzerConfig::default(), backends),
            &engine(22),
        ),
        run_matrix_engine(&LemonFactory, &engine(33)),
    ]
}

/// One machine-readable figure record written to `BENCH_<figure>.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchRecord {
    /// Figure id (e.g. `"fig4"`).
    pub figure: String,
    /// Compiler under test.
    pub compiler: String,
    /// Wall-clock budget per campaign, seconds.
    pub secs: u64,
    /// Engine worker threads.
    pub workers: usize,
    /// Engine shard count.
    pub shards: usize,
    /// Per-fuzzer outcomes.
    pub results: Vec<EngineSummary>,
}

/// One backend's slice of an [`EngineSummary`]: its own coverage counts
/// and the bugs it exhibited (Table 5's per-backend bug matrix rows).
#[derive(Debug, Clone, Serialize)]
pub struct BackendSummary {
    /// Distinct branches covered on this backend.
    pub total_coverage: usize,
    /// Distinct pass-file branches covered on this backend.
    pub pass_coverage: usize,
    /// Seeded bugs this backend exhibited, by id.
    pub bugs_found: Vec<String>,
    /// Distinct crash messages on this backend.
    pub unique_crashes: usize,
    /// Result mismatches on this backend.
    pub mismatches: usize,
    /// Cases this backend answered `NotImplemented` to.
    pub not_implemented: usize,
}

/// Per-fuzzer summary inside a [`BenchRecord`].
#[derive(Debug, Clone, Serialize)]
pub struct EngineSummary {
    /// Source (fuzzer) name.
    pub source: String,
    /// Cases executed (merged across shards).
    pub cases: usize,
    /// Distinct branches covered (primary backend).
    pub total_coverage: usize,
    /// Distinct pass-file branches covered (primary backend).
    pub pass_coverage: usize,
    /// Seeded bugs found, by id (all backends).
    pub bugs_found: Vec<String>,
    /// Per-backend coverage and findings, keyed by backend name (one
    /// entry for single-backend runs).
    pub per_backend: std::collections::BTreeMap<String, BackendSummary>,
    /// Distinct operator instances tested.
    pub op_instances: usize,
    /// Wall-clock milliseconds of the engine run.
    pub wall_ms: u64,
    /// Throughput.
    pub cases_per_sec: f64,
    /// Deterministic logical timeline (one point per folded shard).
    pub merged_timeline: Vec<TimelinePoint>,
    /// Real-time union-coverage timeline from the engine aggregator.
    pub wall_timeline: Vec<TimelinePoint>,
    /// Final counters of the campaign's intern pool (node/byte growth one
    /// campaign's worth of interning costs — and reclaims on drop).
    pub arena: nnsmith_solver::PoolStats,
    /// The engine's merged phase profile (per-phase counts + wall time,
    /// named counters). Counts and counters are deterministic for
    /// case-budgeted runs; `wall_ns` fields are zeroed by
    /// [`EngineSummary::deterministic_view`].
    pub phases: nnsmith_obs::Profile,
    /// Solver hot-path counters (checks, tape compiles/evals,
    /// constraints skipped by watch-indexed propagation), folded across
    /// shards. Counter-derived hence fully deterministic — survives
    /// [`EngineSummary::deterministic_view`] untouched.
    pub solver: nnsmith_difftest::SolveStats,
    /// Coverage-feedback counters (corpus size/digest, retention and
    /// mutation tallies, schedule weights), folded across shards; `None`
    /// for blind sources. Fully deterministic — survives
    /// [`EngineSummary::deterministic_view`] untouched.
    pub feedback: Option<nnsmith_difftest::FeedbackSummary>,
}

impl EngineSummary {
    /// The single place wall-clock-dependent fields are stripped
    /// (`wall_ms`, `cases_per_sec`, `wall_timeline`, and every phase
    /// `wall_ns`), leaving only the engine's deterministic merge.
    /// Case-budgeted figures whose `BENCH_*.json` must be byte-identical
    /// across worker counts (fig8, tab5) serialize this form, and the
    /// trajectory report's CI gate diffs it.
    pub fn deterministic_view(mut self) -> Self {
        self.wall_ms = 0;
        self.cases_per_sec = 0.0;
        self.wall_timeline = Vec::new();
        self.phases = self.phases.strip_wall();
        self
    }

    /// Summarizes one single-backend engine report.
    pub fn from_report(compiler: &Compiler, report: &EngineReport) -> Self {
        Self::from_matrix_report(&BackendSet::single(compiler.clone()), report)
    }

    /// Summarizes one engine report across its backend set (per-backend
    /// pass coverage needs each backend's own manifest).
    pub fn from_matrix_report(backends: &BackendSet, report: &EngineReport) -> Self {
        let per_backend = backends
            .iter()
            .map(|compiler| {
                let name = compiler.system().name().to_string();
                let b = report
                    .result
                    .backend(&name)
                    .expect("backend present in result");
                let summary = BackendSummary {
                    total_coverage: b.coverage.len(),
                    pass_coverage: b.coverage.pass_len(compiler.manifest()),
                    bugs_found: b.bugs_found.iter().cloned().collect(),
                    unique_crashes: b.unique_crashes.len(),
                    mismatches: b.mismatches,
                    not_implemented: b.not_implemented,
                };
                (name, summary)
            })
            .collect();
        EngineSummary {
            source: report.result.source.clone(),
            cases: report.result.cases,
            total_coverage: report.result.total_coverage(),
            pass_coverage: report.result.pass_coverage(backends.primary()),
            bugs_found: report.result.bugs_found.iter().cloned().collect(),
            per_backend,
            op_instances: report.result.op_instances.len(),
            wall_ms: report.wall.as_millis() as u64,
            cases_per_sec: report.cases_per_sec(),
            merged_timeline: report.result.timeline.clone(),
            wall_timeline: report.wall_timeline.clone(),
            arena: report.arena,
            phases: report.phases.merged.clone(),
            solver: report.solver,
            feedback: report.result.feedback.clone(),
        }
    }
}

impl BenchRecord {
    /// [`EngineSummary::deterministic_view`] applied to every result,
    /// plus the record-level `workers` field zeroed — the
    /// byte-reproducible form of a whole record. Case-budgeted figures
    /// serialize this so `workers=1` and `workers=N` emit identical
    /// `BENCH_*.json` bytes (the CI gate `cmp`s them).
    pub fn deterministic_view(mut self) -> Self {
        self.workers = 0;
        self.results = self
            .results
            .into_iter()
            .map(EngineSummary::deterministic_view)
            .collect();
        self
    }
}

/// Writes `records` to `BENCH_<figure>.json` in the working directory so
/// the perf trajectory is machine-readable run over run.
pub fn write_bench_json(figure: &str, records: &[BenchRecord]) {
    write_json(figure, &records)
}

/// Writes any serializable record to `BENCH_<figure>.json` — the generic
/// form used by the figure/table binaries whose records are not engine
/// summaries (Venn regions, bug bins, search series).
pub fn write_json<T: Serialize + ?Sized>(figure: &str, value: &T) {
    let path = format!("BENCH_{figure}.json");
    let json = serde::json::to_string(value);
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path} ({} bytes)", json.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Prints a campaign comparison footer: totals and the NNSmith-vs-2nd-best
/// ratio the paper reports.
pub fn print_ratio_summary(results: &[CampaignResult], metric: impl Fn(&CampaignResult) -> usize) {
    let mut best_other = 0usize;
    let mut nnsmith = 0usize;
    for r in results {
        let v = metric(r);
        if r.source == "NNSmith" {
            nnsmith = v;
        } else {
            best_other = best_other.max(v);
        }
    }
    if best_other > 0 {
        println!(
            "NNSmith vs 2nd-best: {nnsmith} / {best_other} = {:.2}x",
            nnsmith as f64 / best_other as f64
        );
    }
}

/// Runs one source against one compiler (convenience for single-cell
/// experiments).
pub fn single_campaign(
    compiler: &Compiler,
    source: &mut dyn TestCaseSource,
    secs: u64,
) -> CampaignResult {
    run_campaign(
        compiler,
        source,
        &CampaignConfig {
            duration: Duration::from_secs(secs),
            ..CampaignConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_compilers::ortsim;

    #[test]
    fn three_way_runs_quickly() {
        let compiler = ortsim();
        let results = three_way_campaigns(&compiler, 2);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].source, "NNSmith");
        for r in &results {
            assert!(r.cases > 0, "{} produced no cases", r.source);
            assert!(r.total_coverage() > 0);
        }
    }
}
