//! End-to-end latencies: one full fuzzing iteration (generate + search +
//! compile + compare) and compiler pass-pipeline costs per system.

use criterion::{criterion_group, criterion_main, Criterion};
use nnsmith_bench::nnsmith_source;
use nnsmith_compilers::{ortsim, trtsim, tvmsim, CompileOptions, CoverageSet};
use nnsmith_difftest::{run_case, TestCaseSource, Tolerance};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    // Pre-build a case pool so the compile benches isolate compilation.
    let mut src = nnsmith_source(123);
    let cases: Vec<_> = (0..6).filter_map(|_| src.next_case()).collect();
    assert!(!cases.is_empty());

    for compiler in [tvmsim(), ortsim(), trtsim()] {
        let name = compiler.system().name();
        group.bench_function(format!("difftest_one_case/{name}"), |b| {
            let mut k = 0usize;
            b.iter(|| {
                k += 1;
                let case = &cases[k % cases.len()];
                let mut cov = CoverageSet::new();
                run_case(
                    &compiler,
                    case,
                    &CompileOptions::default(),
                    Tolerance::default(),
                    &mut cov,
                )
            });
        });
    }

    group.bench_function("full_iteration_generate_to_verdict", |b| {
        let compiler = tvmsim();
        let mut fuzzer = nnsmith_source(321);
        b.iter(|| {
            let case = fuzzer.next_case().expect("case");
            let mut cov = CoverageSet::new();
            run_case(
                &compiler,
                &case,
                &CompileOptions::default(),
                Tolerance::default(),
                &mut cov,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
