//! End-to-end latencies: one full fuzzing iteration (generate + search +
//! compile + compare) and compiler pass-pipeline costs per system.

use criterion::{criterion_group, criterion_main, Criterion};
use nnsmith_bench::nnsmith_source;
use nnsmith_compilers::{
    ortsim, trtsim, tvmsim, BackendSet, BugConfig, CompileOptions, CoverageSet,
};
use nnsmith_difftest::{run_case, run_case_matrix, TestCase, TestCaseSource, Tolerance};
use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
use nnsmith_ops::{Bindings, Op, UnaryKind};
use nnsmith_tensor::{DType, ReduceKind, Tensor};

/// A case that diverges on every backend: exp-1 mis-exports Log2-of-scalar
/// with a spurious Unsqueeze, so all three compilers faithfully compile a
/// wrong graph and mismatch the reference — the worst case for the O0
/// localization path, which the shared verdict cache pays exactly once.
fn diverging_case() -> (TestCase, CompileOptions) {
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(
        NodeKind::Input,
        vec![],
        vec![TensorType::concrete(DType::F32, &[4])],
    );
    let sum = g.add_node(
        NodeKind::Operator(Op::Reduce {
            kind: ReduceKind::Sum,
            axes: vec![0],
            keepdims: false,
        }),
        vec![ValueRef::output0(x)],
        vec![TensorType::concrete(DType::F32, &[])],
    );
    g.add_node(
        NodeKind::Operator(Op::Unary(UnaryKind::Log2)),
        vec![ValueRef::output0(sum)],
        vec![TensorType::concrete(DType::F32, &[])],
    );
    let mut bindings = Bindings::new();
    bindings.insert(x, Tensor::from_f32(&[4], vec![1.0, 2.0, 4.0, 8.0]).unwrap());
    // Reduce-to-scalar also trips seeded crash bugs; disable those so the
    // matrix reaches the compare (and the localization) on every backend.
    let mut bugs = BugConfig::all_on();
    bugs.disable("tvm-conv-1");
    bugs.disable("ort-t09");
    (
        TestCase::from_bindings(g, bindings),
        CompileOptions {
            bugs,
            ..CompileOptions::default()
        },
    )
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    // Pre-build a case pool so the compile benches isolate compilation.
    let mut src = nnsmith_source(123);
    let cases: Vec<_> = (0..6).filter_map(|_| src.next_case()).collect();
    assert!(!cases.is_empty());

    for compiler in [tvmsim(), ortsim(), trtsim()] {
        let name = compiler.system().name();
        group.bench_function(format!("difftest_one_case/{name}"), |b| {
            let mut k = 0usize;
            b.iter(|| {
                k += 1;
                let case = &cases[k % cases.len()];
                let mut cov = CoverageSet::new();
                run_case(
                    &compiler,
                    case,
                    &CompileOptions::default(),
                    Tolerance::default(),
                    &mut cov,
                )
            });
        });
    }

    // Fanning a clean case and an everywhere-diverging case across the
    // whole backend set: the diverging variant exercises the shared
    // import slot and the once-only O0 localization cache (one O0 run for
    // three diverging backends).
    let backends = BackendSet::all();
    group.bench_function("matrix_clean_case", |b| {
        let mut k = 0usize;
        b.iter(|| {
            k += 1;
            run_case_matrix(
                &backends,
                &cases[k % cases.len()],
                &CompileOptions::default(),
                Tolerance::default(),
            )
        });
    });
    let (div_case, div_options) = diverging_case();
    group.bench_function("matrix_with_divergence", |b| {
        b.iter(|| run_case_matrix(&backends, &div_case, &div_options, Tolerance::default()));
    });

    group.bench_function("full_iteration_generate_to_verdict", |b| {
        let compiler = tvmsim();
        let mut fuzzer = nnsmith_source(321);
        b.iter(|| {
            let case = fuzzer.next_case().expect("case");
            let mut cov = CoverageSet::new();
            run_case(
                &compiler,
                &case,
                &CompileOptions::default(),
                Tolerance::default(),
                &mut cov,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
