//! Gradient-guided value-search latency (the paper reports ~3.5 ms to
//! reach 98% success on 10-node models — §5.3).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use nnsmith_gen::{GenConfig, Generator};
use nnsmith_search::{search_values, SearchConfig, SearchMethod};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_search(c: &mut Criterion) {
    // A fixed pool of generated models.
    let generator = Generator::new(GenConfig::default());
    let models: Vec<_> = (0..8u64)
        .filter_map(|s| {
            let mut rng = StdRng::seed_from_u64(s);
            generator.generate(&mut rng).ok().map(|m| m.graph)
        })
        .collect();
    assert!(!models.is_empty());

    let mut group = c.benchmark_group("value_search");
    group.sample_size(10);
    for (label, method) in [
        ("sampling", SearchMethod::Sampling),
        ("gradient", SearchMethod::Gradient),
        ("gradient_proxy", SearchMethod::GradientProxy),
    ] {
        group.bench_function(label, |b| {
            let mut k = 0usize;
            b.iter(|| {
                k += 1;
                let g = &models[k % models.len()];
                let mut rng = StdRng::seed_from_u64(k as u64);
                search_values(
                    g,
                    &SearchConfig {
                        method,
                        budget: Duration::from_millis(32),
                        // Benchmark the wall-clock-budgeted search, not
                        // the deterministic iteration default.
                        max_iters: None,
                        init_lo: -5.0,
                        init_hi: 5.0,
                        ..SearchConfig::default()
                    },
                    &mut rng,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
