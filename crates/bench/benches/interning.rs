//! Micro-benchmarks for the hash-consing expression arena: the intern +
//! constant-fold hot path that every solver assertion goes through, against
//! the owned-tree construction it replaced — plus the sharded pool's
//! campaign-lifecycle costs (pool setup, contended vs private interning).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nnsmith_solver::{BoolExpr, IntExpr, InternPool, VarId};

/// A conv-arithmetic constraint over `base`-offset variables — the shape
/// every insertion asserts a handful of.
fn conv_constraint(base: u32) -> BoolExpr {
    let v = |i: u32| IntExpr::Var(VarId(base + i));
    let out = (v(0) + IntExpr::from(2) * v(2) - v(1)) / v(3) + 1.into();
    BoolExpr::and([
        v(1).le(v(0) + IntExpr::from(2) * v(2)),
        out.clone().ge(1.into()),
        out.le(64.into()),
    ])
}

/// Fully-concrete arithmetic: must fold to a literal without allocating
/// arena nodes.
fn concrete_tree() -> IntExpr {
    (IntExpr::from(4) * 3.into() + 2.into()) * (IntExpr::from(62) * 62.into()) - IntExpr::from(7688)
}

fn bench_interning(c: &mut Criterion) {
    let mut group = c.benchmark_group("interning");
    group.sample_size(20);

    let pool = InternPool::default();

    // Interning fresh constraint systems: distinct variables cycle through
    // a small window, so after warmup most nodes hit the hash-cons table.
    let mut round = 0u32;
    group.bench_function("intern_conv_constraint", |b| {
        b.iter(|| {
            round = (round + 1) % 64;
            pool.intern_bool(black_box(&conv_constraint(round * 4)))
        })
    });

    // The steady-state hit path: identical structure, every node already
    // interned.
    group.bench_function("intern_conv_constraint_hot", |b| {
        b.iter(|| pool.intern_bool(black_box(&conv_constraint(0))))
    });

    // The lock-free read path: resolving and evaluating interned handles,
    // what Solver::check spends its time on.
    let hot = pool.intern_bool(&conv_constraint(0));
    group.bench_function("eval_interned_hot", |b| {
        b.iter(|| pool.eval_bool(black_box(hot), &|_| Some(3)))
    });

    // Constant folding at intern time vs tree build time.
    group.bench_function("fold_concrete_tree", |b| {
        b.iter(|| black_box(concrete_tree()))
    });
    group.bench_function("fold_concrete_interned", |b| {
        b.iter(|| {
            let e = concrete_tree();
            pool.intern_int(black_box(&e))
        })
    });

    // Campaign lifecycle: what creating (and dropping) a per-campaign pool
    // costs — the price of reclaiming arena memory per campaign.
    group.bench_function("pool_create_drop", |b| {
        b.iter(|| black_box(InternPool::default()))
    });

    // Tree clone vs handle copy: what sharing a 100-constraint system
    // across shards costs in each representation.
    let system: Vec<BoolExpr> = (0..100).map(|i| conv_constraint(i * 4)).collect();
    let ids: Vec<_> = system.iter().map(|e| pool.intern_bool(e)).collect();
    group.bench_function("clone_system_trees", |b| {
        b.iter(|| black_box(system.clone()))
    });
    group.bench_function("clone_system_handles", |b| {
        b.iter(|| black_box(ids.clone()))
    });

    group.finish();
}

criterion_group!(benches, bench_interning);
criterion_main!(benches);
