//! Micro-benchmarks for the hash-consing expression arena: the intern +
//! constant-fold hot path that every solver assertion goes through, against
//! the owned-tree construction it replaced.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nnsmith_solver::intern::with_pool;
use nnsmith_solver::{intern_bool, BoolExpr, IntExpr, VarId};

/// A conv-arithmetic constraint over `base`-offset variables — the shape
/// every insertion asserts a handful of.
fn conv_constraint(base: u32) -> BoolExpr {
    let v = |i: u32| IntExpr::Var(VarId(base + i));
    let out = (v(0) + IntExpr::from(2) * v(2) - v(1)) / v(3) + 1.into();
    BoolExpr::and([
        v(1).le(v(0) + IntExpr::from(2) * v(2)),
        out.clone().ge(1.into()),
        out.le(64.into()),
    ])
}

/// Fully-concrete arithmetic: must fold to a literal without allocating
/// arena nodes.
fn concrete_tree() -> IntExpr {
    (IntExpr::from(4) * 3.into() + 2.into()) * (IntExpr::from(62) * 62.into()) - IntExpr::from(7688)
}

fn bench_interning(c: &mut Criterion) {
    let mut group = c.benchmark_group("interning");
    group.sample_size(20);

    // Interning fresh constraint systems: distinct variables cycle through
    // a small window, so after warmup most nodes hit the hash-cons table.
    let mut round = 0u32;
    group.bench_function("intern_conv_constraint", |b| {
        b.iter(|| {
            round = (round + 1) % 64;
            intern_bool(black_box(&conv_constraint(round * 4)))
        })
    });

    // The steady-state hit path: identical structure, every node already
    // interned.
    group.bench_function("intern_conv_constraint_hot", |b| {
        b.iter(|| intern_bool(black_box(&conv_constraint(0))))
    });

    // Constant folding at intern time vs tree build time.
    group.bench_function("fold_concrete_tree", |b| {
        b.iter(|| black_box(concrete_tree()))
    });
    group.bench_function("fold_concrete_interned", |b| {
        b.iter(|| {
            with_pool(|p| {
                let e = concrete_tree();
                p.intern_int(black_box(&e))
            })
        })
    });

    // Tree clone vs handle copy: what sharing a 100-constraint system
    // across shards costs in each representation.
    let system: Vec<BoolExpr> = (0..100).map(|i| conv_constraint(i * 4)).collect();
    let ids: Vec<_> = system.iter().map(intern_bool).collect();
    group.bench_function("clone_system_trees", |b| {
        b.iter(|| black_box(system.clone()))
    });
    group.bench_function("clone_system_handles", |b| {
        b.iter(|| black_box(ids.clone()))
    });

    group.finish();
}

criterion_group!(benches, bench_interning);
criterion_main!(benches);
