//! Constraint-solver micro-benchmarks: the incremental-solving speedup
//! (Algorithm 1's `try_add_constraints`) and representative NNSmith
//! constraint shapes (conv arithmetic, reshape products).

use criterion::{criterion_group, criterion_main, Criterion};
use nnsmith_solver::{IntExpr, Solver, SolverConfig};

fn conv_system(incremental: bool) {
    let mut s = Solver::with_config(SolverConfig {
        incremental,
        ..SolverConfig::default()
    });
    // Ten chained conv-like constraints, added incrementally.
    let mut h = IntExpr::var(s.new_var("h0", 1, 64));
    for i in 0..10 {
        let k = IntExpr::var(s.new_var(format!("k{i}"), 1, 7));
        let p = IntExpr::var(s.new_var(format!("p{i}"), 0, 3));
        let st = IntExpr::var(s.new_var(format!("s{i}"), 1, 4));
        let out = (h.clone() + IntExpr::from(2) * p.clone() - k.clone()) / st + 1.into();
        let added = s.try_add_constraints([
            k.le(h.clone() + IntExpr::from(2) * p),
            out.clone().ge(1.into()),
            out.clone().le(64.into()),
        ]);
        assert!(added.is_some());
        h = out;
    }
}

fn reshape_system() {
    let mut s = Solver::default();
    let dims: Vec<IntExpr> = (0..4)
        .map(|i| IntExpr::var(s.new_var(format!("d{i}"), 1, 1 << 20)))
        .collect();
    let prod = dims.iter().cloned().reduce(|a, b| a * b).unwrap();
    s.assert(prod.eq_expr(IntExpr::from(2 * 3 * 62 * 62)));
    assert!(s.check().is_sat());
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);
    group.bench_function("conv_chain_incremental", |b| b.iter(|| conv_system(true)));
    group.bench_function("conv_chain_ablation_non_incremental", |b| {
        b.iter(|| conv_system(false))
    });
    group.bench_function("reshape_product", |b| b.iter(reshape_system));
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
