//! Raw-speed benches for the shared read-only base segment and the
//! op-memo table: cold (private, sharded) vs warm (base-resident)
//! campaign interning, and memoized vs re-derived `type_transfer` /
//! `requires` over interned ids.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nnsmith_graph::TensorType;
use nnsmith_ops::{BinaryKind, Op, OpMemo};
use nnsmith_solver::{IntExpr, InternPool, VarId};
use nnsmith_tensor::DType;

fn bench_base_segment(c: &mut Criterion) {
    let mut group = c.benchmark_group("base_segment");
    group.sample_size(20);

    // A fresh campaign pool interning the canonical node set (small
    // constants, dimension variables): every one is base-resident, so the
    // whole warmup resolves in the shared read-only segment without
    // taking a shard lock or allocating.
    group.bench_function("warm_campaign_intern_base_resident", |b| {
        b.iter(|| {
            let pool = InternPool::small();
            for c in -8..=256 {
                black_box(pool.constant(c));
            }
            for v in 0..64 {
                black_box(pool.intern_int(&IntExpr::var(VarId(v))));
            }
            pool
        })
    });

    // The same node count through the private path: constants offset past
    // the base range, so every intern is a real sharded hash-cons insert
    // — what a cold campaign paid for *every* node before the segment.
    group.bench_function("cold_campaign_intern_private", |b| {
        b.iter(|| {
            let pool = InternPool::small();
            for c in -8..=256 {
                black_box(pool.constant(3000 + c));
            }
            for v in 64..128 {
                black_box(pool.intern_int(&IntExpr::var(VarId(v))));
            }
            pool
        })
    });

    // Memoized type transfer over interned ids vs re-deriving the
    // symbolic outputs: rank-4 broadcast is the expensive derivation the
    // LUT replaces.
    let pool = InternPool::default();
    let memo = OpMemo::new(pool.clone());
    let a = TensorType::new_in(
        &pool,
        DType::F32,
        (0..4).map(|v| IntExpr::var(VarId(v))).collect(),
    );
    let b_t = TensorType::new_in(
        &pool,
        DType::F32,
        (4..8).map(|v| IntExpr::var(VarId(v))).collect(),
    );
    let inputs = vec![a, b_t];
    let op = Op::Binary(BinaryKind::Add);
    memo.type_transfer(&op, &inputs).expect("spec ok");
    memo.requires_ids(&op, &inputs).expect("spec ok");

    group.bench_function("type_transfer_memoized", |b| {
        b.iter(|| memo.type_transfer(black_box(&op), black_box(&inputs)))
    });
    group.bench_function("type_transfer_uncached", |b| {
        b.iter(|| op.type_transfer(black_box(&inputs)))
    });
    group.bench_function("requires_memoized", |b| {
        b.iter(|| memo.requires_ids(black_box(&op), black_box(&inputs)))
    });
    group.bench_function("requires_uncached_interned", |b| {
        b.iter(|| {
            op.requires(black_box(&inputs))
                .map(|cs| cs.iter().map(|c| pool.intern_bool(c)).collect::<Vec<_>>())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_base_segment);
criterion_main!(benches);
