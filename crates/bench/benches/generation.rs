//! Model-generation throughput (backs the §5.3 claim: generating a
//! 10-node model costs ~83 ms in the paper's Python implementation), plus
//! the incremental-solving ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nnsmith_gen::{GenConfig, Generator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generation");
    group.sample_size(10);
    for &size in &[5usize, 10, 20] {
        group.bench_with_input(BenchmarkId::new("nodes", size), &size, |b, &size| {
            let generator = Generator::new(GenConfig {
                target_ops: size,
                max_attempts: size * 60,
                ..GenConfig::default()
            });
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                generator.generate(&mut rng).expect("generation")
            });
        });
    }
    // Ablations: binning off, type filter off.
    group.bench_function("nodes/10/no-binning", |b| {
        let generator = Generator::new(GenConfig {
            binning: false,
            ..GenConfig::default()
        });
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            generator.generate(&mut rng).expect("generation")
        });
    });
    group.bench_function("nodes/10/no-type-filter", |b| {
        let generator = Generator::new(GenConfig {
            type_filter: false,
            max_attempts: 1200,
            ..GenConfig::default()
        });
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let _ = generator.generate(&mut rng); // may fail more often
        });
    });
    group.finish();
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
