//! Compiled-tape vs recursive-walk solver hot path.
//!
//! The workload mirrors what a generated graph actually asserts: a chain
//! of conv-style layers (`h_{i+1} = (h_i - k_i + 2*p_i)/st_i + 1` with
//! kernel-fits and output-range side constraints), a reshape
//! element-count equality, and per-attribute binning probes through the
//! generator's `push`/`assert`/`check`/`pop` pattern. Both configurations
//! run the *identical* constraint sequence; the only difference is
//! `SolverConfig::compiled_tape` — flat bytecode + watch-indexed
//! propagation vs recursive DAG walks with full-sweep fixpoint rounds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nnsmith_solver::{IntExpr, Solver, SolverConfig};

const LAYERS: usize = 64;
const BIN_PROBES: i64 = 4;

/// Runs one campaign-shaped solving session; returns the number of Sat
/// verdicts (kept observable so the work cannot be optimized away).
fn campaign(compiled_tape: bool) -> u64 {
    let mut s = Solver::with_config(SolverConfig {
        compiled_tape,
        ..SolverConfig::default()
    });
    let mut sat = 0u64;
    let mut h = IntExpr::var(s.new_var("h0", 8, 224));
    for i in 0..LAYERS {
        let k = IntExpr::var(s.new_var(format!("k{i}"), 1, 7));
        let p = IntExpr::var(s.new_var(format!("p{i}"), 0, 3));
        let st = IntExpr::var(s.new_var(format!("st{i}"), 1, 3));
        let out = IntExpr::var(s.new_var(format!("h{}", i + 1), 1, 1 << 20));
        let out_expr =
            (h.clone() - k.clone() + IntExpr::from(2) * p.clone()) / st.clone() + IntExpr::from(1);
        // A rejected candidate first: the generator probes operator
        // variants that don't fit and rolls them back.
        s.push();
        s.assert(out_expr.clone().ge(512.into()));
        s.assert(out_expr.clone().le(4.into()));
        black_box(s.check());
        s.pop();
        // The accepted insertion.
        s.assert(k.clone().le(h.clone() + IntExpr::from(2) * p.clone()));
        s.assert(out.clone().eq_expr(out_expr));
        s.assert(out.clone().ge(1.into()));
        s.assert(out.clone().le(256.into()));
        sat += u64::from(s.check().is_sat());
        // Attribute binning: range probes over the kernel size.
        for bin in 0..BIN_PROBES {
            let lo = 1 + bin * 2;
            s.push();
            s.assert(k.clone().ge(lo.into()));
            s.assert(k.clone().le((lo + 1).into()));
            sat += u64::from(s.check().is_sat());
            s.pop();
        }
        h = out;
    }
    // Reshape at the end of the chain: element count preserved across a
    // rank change, solved via equality-implied values.
    let a = IntExpr::var(s.new_var("ra", 1, 1 << 16));
    let b = IntExpr::var(s.new_var("rb", 1, 1 << 16));
    s.assert((a.clone() * b.clone()).eq_expr(h * IntExpr::from(4)));
    sat += u64::from(s.check().is_sat());
    sat
}

fn bench_solver_tape(c: &mut Criterion) {
    // Same constraint sequence, same verdicts: the tape changes how fast
    // the answer arrives, never what it is.
    assert_eq!(campaign(true), campaign(false), "modes must agree");

    let mut group = c.benchmark_group("solver_tape");
    group.sample_size(20);
    group.bench_function("campaign_checks/tape", |b| {
        b.iter(|| black_box(campaign(true)))
    });
    group.bench_function("campaign_checks/recursive", |b| {
        b.iter(|| black_box(campaign(false)))
    });
    group.finish();
}

criterion_group!(benches, bench_solver_tape);
criterion_main!(benches);
