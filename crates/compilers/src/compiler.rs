//! The three simulated compilers: tvmsim, ortsim and trtsim.
//!
//! Each compiler is an import step (with conversion-bug checks), a pass
//! pipeline (with transformation-bug checks, run only at `O2` — the `O0`
//! mode backs the paper's fault-localization recompilation, §4), and an
//! instrumented-source manifest sized so that coverage numbers land at
//! roughly 1/10 the scale of the paper's real systems.

use std::collections::HashMap;
use std::sync::OnceLock;

use nnsmith_graph::{Graph, NodeId, NodeKind};
use nnsmith_ops::{Bindings, Op};
use nnsmith_tensor::{DType, Tensor, TensorError};

use crate::bugs::{registry, BugConfig, Phase, SeededBug, Symptom, System};
use crate::cgraph::{CGraph, CompileError};
use crate::coverage::{Cov, CoverageSet, FileDecl, FileKind, SourceManifest};
use crate::lowlevel::run_lowlevel;
use crate::passes::{op_code, PassCtx, PassFn};

/// Optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// No transformation passes (conversion only) — the fault-localization
    /// mode.
    O0,
    /// Full pipeline.
    O2,
}

/// Compilation options.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Optimization level.
    pub opt_level: OptLevel,
    /// Seeded-bug switchboard.
    pub bugs: BugConfig,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            opt_level: OptLevel::O2,
            bugs: BugConfig::all_on(),
        }
    }
}

/// Seeded semantic bugs that are *honestly implemented* inside passes
/// (their wrong results emerge from the actual transformation); all other
/// matched semantic bugs are applied as an output perturbation at run time.
const HONEST_SEMANTIC: [&str; 2] = ["ort-t02", "tvm-simpl-1"];

/// A compiled model ready to run.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    /// The optimized compiler graph.
    pub cgraph: CGraph,
    /// Matched semantic bugs to apply at run time (id only).
    pub perturbations: Vec<&'static str>,
    /// Which system produced this.
    pub system: System,
}

impl CompiledModel {
    /// Executes the compiled model.
    ///
    /// # Errors
    ///
    /// Fails on input-signature mismatches or kernel faults.
    pub fn run(&self, inputs: &HashMap<NodeId, Tensor>) -> Result<Vec<Tensor>, TensorError> {
        let mut outputs = self.cgraph.run(inputs)?;
        // Matched (non-honest) semantic bugs corrupt the first output.
        if !self.perturbations.is_empty() {
            perturb_outputs(&mut outputs);
        }
        Ok(outputs)
    }
}

/// The deterministic corruption every matched (non-honest) semantic bug
/// applies to a model's first output at run time. Public so the harness
/// can reconstruct a perturbed variant of shared O0 outputs without
/// re-running the model per backend.
pub fn perturb_outputs(outputs: &mut [Tensor]) {
    if let Some(first) = outputs.first_mut() {
        for i in 0..first.numel() {
            let v = first.lin_f64(i);
            first.set_lin_f64(i, if v == 0.0 { 1.0 } else { v * 1.5 + 1.0 });
        }
    }
}

/// A once-per-case import slot shared across the backends of a matrix run
/// (see [`Compiler::compile_shared`]): [`CGraph::import`] is a pure
/// function of `(graph, weights)` — backend- and opt-level-independent —
/// so one conversion serves every `(backend, options)` compilation of the
/// same exported case.
pub type SharedImport = OnceLock<Result<CGraph, CompileError>>;

/// A simulated DL compiler.
#[derive(Debug, Clone)]
pub struct Compiler {
    system: System,
    manifest: SourceManifest,
    passes: Vec<(&'static str, PassFn)>,
    lowlevel: bool,
    /// Branches always hit by loading the framework (the paper's
    /// "`import tvm` alone hits 4015 branches").
    base_hits: (&'static str, u32),
    /// Reject f64 models with NotImplemented (TensorRT-style support gap).
    reject_f64: bool,
    bugs: Vec<SeededBug>,
}

impl Compiler {
    /// The system identity.
    pub fn system(&self) -> System {
        self.system
    }

    /// The instrumented-source manifest.
    pub fn manifest(&self) -> &SourceManifest {
        &self.manifest
    }

    /// Probes operator/dtype support the way NNSmith does (§4): compiles a
    /// single-operator model and reports whether it is accepted.
    pub fn supports_dtype(&self, dtype: DType) -> bool {
        !(self.reject_f64 && dtype == DType::F64)
    }

    /// True when this compiler lowers to the loop-level IR pipeline — the
    /// prerequisite for running IR-payload test cases (the Tzer baseline).
    pub fn has_lowlevel(&self) -> bool {
        self.lowlevel
    }

    /// Records the framework-load baseline coverage (what importing the
    /// framework alone hits). [`Compiler::compile`] does this per
    /// compilation; IR-level harnesses call it directly since they bypass
    /// the graph frontend.
    pub fn record_base_coverage(&self, cov: &mut CoverageSet) {
        let mut c = Cov::new(cov, &self.manifest, self.base_hits.0);
        for s in 0..self.base_hits.1 {
            c.hit(s);
        }
    }

    /// Compiles a model, accumulating branch coverage into `cov`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::UnsupportedDtype`] for element types
    /// outside the support matrix, [`CompileError::Crash`] when a seeded
    /// (or structural) crash fires, and [`CompileError::Import`] for
    /// malformed models.
    pub fn compile(
        &self,
        graph: &Graph<Op>,
        weights: &Bindings,
        options: &CompileOptions,
        cov: &mut CoverageSet,
    ) -> Result<CompiledModel, CompileError> {
        self.compile_impl(graph, weights, options, cov, None)
    }

    /// [`Compiler::compile`] with the frontend conversion routed through a
    /// shared [`SharedImport`] slot: the first compilation of a case fills
    /// the slot, and every later `(backend, options)` compilation of the
    /// same exported graph clones the converted [`CGraph`] instead of
    /// re-importing. Coverage recording, the dtype support gate and
    /// seeded conversion-crash checks still run per backend *before* the
    /// slot is consulted, so error ordering and coverage are byte-for-byte
    /// those of the unshared path.
    pub fn compile_shared(
        &self,
        graph: &Graph<Op>,
        weights: &Bindings,
        options: &CompileOptions,
        cov: &mut CoverageSet,
        import: &SharedImport,
    ) -> Result<CompiledModel, CompileError> {
        self.compile_impl(graph, weights, options, cov, Some(import))
    }

    fn compile_impl(
        &self,
        graph: &Graph<Op>,
        weights: &Bindings,
        options: &CompileOptions,
        cov: &mut CoverageSet,
        shared: Option<&SharedImport>,
    ) -> Result<CompiledModel, CompileError> {
        // Framework-load baseline coverage.
        self.record_base_coverage(cov);
        // Support matrix: one gate, shared with the probe the generator
        // uses ([`Compiler::supports_dtype`]), so the two can never drift.
        if let Some(unsupported) = graph
            .iter()
            .flat_map(|(_, n)| n.outputs.iter())
            .map(|t| t.dtype)
            .find(|&d| !self.supports_dtype(d))
        {
            return Err(CompileError::UnsupportedDtype(unsupported));
        }

        // Frontend conversion with per-pattern coverage.
        {
            let mut c = Cov::new(cov, &self.manifest, "frontend.cc");
            c.hit(0);
            for (_, node) in graph.iter() {
                match &node.kind {
                    NodeKind::Operator(op) => {
                        let t = &node.outputs[0];
                        c.hit_idx(16, op_code(op) * 5 + dtype_idx(t.dtype));
                        c.hit_idx(400, op_code(op) * 5 + t.rank() as u32);
                        for (name, attr) in op.attr_exprs() {
                            let _ = name;
                            // Attribute-specialized conversion branches:
                            // one site per (operator, value bucket) pair —
                            // the branches attribute binning exists to reach.
                            let bucket = crate::coverage::log_bucket(attr.as_const().unwrap_or(0));
                            c.hit_idx(760, op_code(op) * 8 + bucket);
                        }
                    }
                    NodeKind::Input | NodeKind::Weight => c.hit(1),
                    NodeKind::Placeholder => {}
                }
            }
        }

        // Conversion-phase seeded crashes.
        self.check_crashes(graph, options, Phase::Conversion)?;

        let mut cgraph = match shared {
            Some(slot) => slot
                .get_or_init(|| CGraph::import(graph, weights))
                .clone()?,
            None => CGraph::import(graph, weights)?,
        };

        let mut perturbations: Vec<&'static str> = Vec::new();
        // Conversion-phase semantic bugs apply at every opt level.
        perturbations.extend(self.matched_semantic(graph, options, Phase::Conversion));

        if options.opt_level == OptLevel::O2 {
            let mut ctx = PassCtx {
                cov,
                manifest: &self.manifest,
                bugs: &options.bugs,
                system: self.system,
            };
            for (name, pass) in &self.passes {
                let _ = name;
                pass(&mut cgraph, &mut ctx)?;
            }
            // Transformation/unclassified crashes fire only when the
            // optimizer runs.
            self.check_crashes(graph, options, Phase::Transformation)?;
            self.check_crashes(graph, options, Phase::Unclassified)?;
            perturbations.extend(self.matched_semantic(graph, options, Phase::Transformation));
            perturbations.extend(self.matched_semantic(graph, options, Phase::Unclassified));
            if self.lowlevel {
                let _funcs = run_lowlevel(&cgraph, cov, &self.manifest);
            }
        }

        Ok(CompiledModel {
            cgraph,
            perturbations,
            system: self.system,
        })
    }

    /// Seeded bugs of this system whose pattern `graph` contains
    /// (regardless of phase/symptom) — used by the bug-study experiments.
    pub fn matched_bugs(&self, graph: &Graph<Op>) -> Vec<&'static str> {
        self.bugs
            .iter()
            .filter(|b| b.triggers(graph))
            .map(|b| b.id)
            .collect()
    }

    fn check_crashes(
        &self,
        graph: &Graph<Op>,
        options: &CompileOptions,
        phase: Phase,
    ) -> Result<(), CompileError> {
        for bug in &self.bugs {
            if bug.phase == phase
                && bug.symptom == Symptom::Crash
                && options.bugs.enabled(bug.id)
                && bug.triggers(graph)
            {
                return Err(CompileError::Crash {
                    component: match phase {
                        Phase::Conversion => "frontend",
                        Phase::Transformation => "optimizer",
                        Phase::Unclassified => "backend",
                    },
                    message: format!("seeded bug {}: {}", bug.id, bug.description),
                });
            }
        }
        Ok(())
    }

    /// The run-time perturbations an `O0` compilation of `graph` would
    /// carry: exactly the conversion-phase matched (non-honest) semantic
    /// bugs, since `O0` runs no passes. This is what makes a shared O0
    /// localization run sound — the tensor-level O0 execution is
    /// backend-independent, and this probe recovers the only per-backend
    /// difference (whether the first output is perturbed) without
    /// recompiling.
    pub fn o0_perturbations(
        &self,
        graph: &Graph<Op>,
        options: &CompileOptions,
    ) -> Vec<&'static str> {
        self.matched_semantic(graph, options, Phase::Conversion)
    }

    fn matched_semantic(
        &self,
        graph: &Graph<Op>,
        options: &CompileOptions,
        phase: Phase,
    ) -> Vec<&'static str> {
        self.bugs
            .iter()
            .filter(|b| {
                b.phase == phase
                    && b.symptom == Symptom::Semantic
                    && options.bugs.enabled(b.id)
                    && !HONEST_SEMANTIC.contains(&b.id)
                    && b.triggers(graph)
            })
            .map(|b| b.id)
            .collect()
    }
}

fn dtype_idx(d: DType) -> u32 {
    match d {
        DType::F32 => 0,
        DType::F64 => 1,
        DType::I32 => 2,
        DType::I64 => 3,
        DType::Bool => 4,
    }
}

/// Builds the TVM-like compiler: end-to-end, with graph passes, layout
/// rewriting, index typing and a low-level loop pipeline. Its fusion is
/// property-based, so graph-pattern diversity moves its coverage less than
/// ortsim's (§5.2).
pub fn tvmsim() -> Compiler {
    let manifest = SourceManifest::new(vec![
        FileDecl {
            name: "core_init.cc",
            kind: FileKind::Runtime,
            branches: 4000,
        },
        FileDecl {
            name: "frontend.cc",
            kind: FileKind::Frontend,
            branches: 1400,
        },
        FileDecl {
            name: "const_fold.cc",
            kind: FileKind::Pass,
            branches: 160,
        },
        FileDecl {
            name: "dce.cc",
            kind: FileKind::Pass,
            branches: 90,
        },
        FileDecl {
            name: "simplify.cc",
            kind: FileKind::Pass,
            branches: 90,
        },
        FileDecl {
            name: "fuse_ops.cc",
            kind: FileKind::Pass,
            branches: 20,
        },
        FileDecl {
            name: "layout_rewrite.cc",
            kind: FileKind::Pass,
            branches: 90,
        },
        FileDecl {
            name: "type_infer.cc",
            kind: FileKind::Pass,
            branches: 100,
        },
        FileDecl {
            name: "lower.cc",
            kind: FileKind::Pass,
            branches: 110,
        },
        FileDecl {
            name: "tir_simplify.cc",
            kind: FileKind::Pass,
            branches: 40,
        },
        FileDecl {
            name: "tir_schedule.cc",
            kind: FileKind::Pass,
            branches: 32,
        },
        FileDecl {
            name: "relay_analysis.cc",
            kind: FileKind::Pass,
            branches: 600,
        },
        FileDecl {
            name: "codegen.cc",
            kind: FileKind::Runtime,
            branches: 700,
        },
        // Auto-tuning and debugging machinery a fuzzer never reaches
        // (why perfect coverage is impossible, §5.2 footnote).
        FileDecl {
            name: "autotune.cc",
            kind: FileKind::Runtime,
            branches: 3100,
        },
    ]);
    Compiler {
        system: System::TvmSim,
        manifest,
        passes: vec![
            ("const_fold", crate::passes::constant_folding as PassFn),
            ("simplify", crate::passes::algebraic_simplify as PassFn),
            ("fuse_ops", crate::passes::property_fusion as PassFn),
            ("layout_rewrite", crate::passes::layout_rewrite as PassFn),
            ("type_infer", crate::passes::index_typing as PassFn),
            ("dce", crate::passes::dead_code_elim as PassFn),
        ],
        lowlevel: true,
        base_hits: ("core_init.cc", 400),
        reject_f64: false,
        bugs: registry()
            .into_iter()
            .filter(|b| b.system == System::TvmSim)
            .collect(),
    }
}

/// Builds the ONNXRuntime-like runtime: pattern-heavy graph optimizer plus
/// pre-compiled kernel dispatch (no code generation).
pub fn ortsim() -> Compiler {
    let manifest = SourceManifest::new(vec![
        FileDecl {
            name: "session_init.cc",
            kind: FileKind::Runtime,
            branches: 1500,
        },
        FileDecl {
            name: "frontend.cc",
            kind: FileKind::Frontend,
            branches: 1400,
        },
        FileDecl {
            name: "onnx_proto.cc",
            kind: FileKind::Frontend,
            branches: 400,
        },
        FileDecl {
            name: "const_fold.cc",
            kind: FileKind::Pass,
            branches: 160,
        },
        FileDecl {
            name: "dce.cc",
            kind: FileKind::Pass,
            branches: 90,
        },
        FileDecl {
            name: "simplify.cc",
            kind: FileKind::Pass,
            branches: 90,
        },
        FileDecl {
            name: "fuse_patterns.cc",
            kind: FileKind::Pass,
            branches: 140,
        },
        FileDecl {
            name: "kernels.cc",
            kind: FileKind::Runtime,
            branches: 1400,
        },
        FileDecl {
            name: "provider_cpu.cc",
            kind: FileKind::Runtime,
            branches: 1300,
        },
        // Execution providers that are never exercised on CPU-only fuzzing.
        FileDecl {
            name: "provider_gpu.cc",
            kind: FileKind::Runtime,
            branches: 900,
        },
    ]);
    Compiler {
        system: System::OrtSim,
        manifest,
        passes: vec![
            ("const_fold", crate::passes::constant_folding as PassFn),
            ("simplify", crate::passes::algebraic_simplify as PassFn),
            ("fuse_patterns", crate::passes::pattern_fusion as PassFn),
            ("dce", crate::passes::dead_code_elim as PassFn),
            ("kernels", crate::passes::kernel_select as PassFn),
        ],
        lowlevel: false,
        base_hits: ("session_init.cc", 260),
        reject_f64: false,
        bugs: registry()
            .into_iter()
            .filter(|b| b.system == System::OrtSim)
            .collect(),
    }
}

/// Builds the TensorRT-like compiler: closed source (coverage manifests
/// exist but are excluded from coverage experiments, like the paper), no
/// f64 support.
pub fn trtsim() -> Compiler {
    let manifest = SourceManifest::new(vec![
        FileDecl {
            name: "builder_init.cc",
            kind: FileKind::Runtime,
            branches: 1200,
        },
        FileDecl {
            name: "frontend.cc",
            kind: FileKind::Frontend,
            branches: 1400,
        },
        FileDecl {
            name: "const_fold.cc",
            kind: FileKind::Pass,
            branches: 160,
        },
        FileDecl {
            name: "dce.cc",
            kind: FileKind::Pass,
            branches: 90,
        },
        FileDecl {
            name: "fuse_ops.cc",
            kind: FileKind::Pass,
            branches: 20,
        },
        FileDecl {
            name: "kernels.cc",
            kind: FileKind::Runtime,
            branches: 1400,
        },
    ]);
    Compiler {
        system: System::TrtSim,
        manifest,
        passes: vec![
            ("const_fold", crate::passes::constant_folding as PassFn),
            ("fuse_ops", crate::passes::property_fusion as PassFn),
            ("dce", crate::passes::dead_code_elim as PassFn),
            ("kernels", crate::passes::kernel_select as PassFn),
        ],
        lowlevel: false,
        base_hits: ("builder_init.cc", 180),
        reject_f64: true,
        bugs: registry()
            .into_iter()
            .filter(|b| b.system == System::TrtSim)
            .collect(),
    }
}

/// Builds a simulated compiler from its [`System::name`] — the lookup a
/// serialized triage reproducer uses to replay against the system it was
/// found on. The exporter is part of every differential run, not a
/// standalone compiler, so it has no entry.
pub fn compiler_by_name(name: &str) -> Option<Compiler> {
    match name {
        "tvmsim" => Some(tvmsim()),
        "ortsim" => Some(ortsim()),
        "trtsim" => Some(trtsim()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_graph::{TensorType, ValueRef};
    use nnsmith_ops::{BinaryKind, UnaryKind};

    #[test]
    fn compiler_by_name_roundtrips() {
        for c in [tvmsim(), ortsim(), trtsim()] {
            let name = c.system().name();
            let again = compiler_by_name(name).expect("known system");
            assert_eq!(again.system().name(), name);
        }
        assert!(compiler_by_name("exporter").is_none());
        assert!(compiler_by_name("gcc").is_none());
    }

    fn toy() -> (Graph<Op>, Bindings, NodeId) {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let add = g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Add)),
            vec![ValueRef::output0(x), ValueRef::output0(w)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(add)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let mut weights = Bindings::new();
        weights.insert(
            w,
            Tensor::from_f32(&[4], vec![0.5, -0.5, 1.0, 0.0]).unwrap(),
        );
        (g, weights, x)
    }

    #[test]
    fn all_three_compile_and_run_clean_models() {
        let (g, weights, x) = toy();
        let mut inputs = HashMap::new();
        inputs.insert(x, Tensor::from_f32(&[4], vec![1., 2., 3., 4.]).unwrap());
        for compiler in [tvmsim(), ortsim(), trtsim()] {
            let mut cov = CoverageSet::new();
            let compiled = compiler
                .compile(&g, &weights, &CompileOptions::default(), &mut cov)
                .unwrap_or_else(|e| panic!("{}: {e}", compiler.system().name()));
            let out = compiled.run(&inputs).unwrap();
            assert_eq!(out.len(), 1);
            assert!(!cov.is_empty());
        }
    }

    #[test]
    fn o2_matches_o0_and_reference_on_clean_model() {
        let (g, weights, x) = toy();
        let mut inputs = HashMap::new();
        inputs.insert(x, Tensor::from_f32(&[4], vec![1., 2., 3., 4.]).unwrap());
        let compiler = ortsim();
        let mut cov = CoverageSet::new();
        let o2 = compiler
            .compile(&g, &weights, &CompileOptions::default(), &mut cov)
            .unwrap();
        let o0 = compiler
            .compile(
                &g,
                &weights,
                &CompileOptions {
                    opt_level: OptLevel::O0,
                    ..CompileOptions::default()
                },
                &mut cov,
            )
            .unwrap();
        let r2 = o2.run(&inputs).unwrap();
        let r0 = o0.run(&inputs).unwrap();
        assert!(r2[0].max_abs_diff(&r0[0]).unwrap() < 1e-6);
        // And against the reference executor.
        let mut bindings = weights.clone();
        bindings.insert(x, inputs[&x].clone());
        let reference = nnsmith_ops::execute(&g, &bindings).unwrap();
        assert!(r2[0].max_abs_diff(&reference.outputs[0].1).unwrap() < 1e-6);
    }

    #[test]
    fn trtsim_rejects_f64() {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F64, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F64, &[2])],
        );
        let mut cov = CoverageSet::new();
        let err = trtsim().compile(&g, &Bindings::new(), &CompileOptions::default(), &mut cov);
        assert!(matches!(
            err,
            Err(CompileError::UnsupportedDtype(DType::F64))
        ));
        assert!(tvmsim()
            .compile(&g, &Bindings::new(), &CompileOptions::default(), &mut cov)
            .is_ok());
    }

    #[test]
    fn seeded_conversion_crash_fires_even_at_o0() {
        // tvm-conv-5: ArgMax collapsing to a scalar.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::ArgExtreme {
                largest: true,
                axis: 0,
                keepdims: false,
            }),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::I64, &[])],
        );
        let mut cov = CoverageSet::new();
        for opt in [OptLevel::O0, OptLevel::O2] {
            let err = tvmsim().compile(
                &g,
                &Bindings::new(),
                &CompileOptions {
                    opt_level: opt,
                    ..CompileOptions::default()
                },
                &mut cov,
            );
            match err {
                Err(CompileError::Crash { message, .. }) => {
                    assert!(message.contains("tvm-conv-5"), "{message}");
                }
                other => panic!("expected crash, got {other:?}"),
            }
        }
        // With bugs disabled it compiles fine.
        assert!(tvmsim()
            .compile(
                &g,
                &Bindings::new(),
                &CompileOptions {
                    opt_level: OptLevel::O2,
                    bugs: BugConfig::none(),
                },
                &mut cov,
            )
            .is_ok());
    }

    #[test]
    fn transformation_crash_skipped_at_o0() {
        // tvm-pass-4: reflect pad.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::Pad {
                pads: vec![(
                    nnsmith_solver::IntExpr::Const(1),
                    nnsmith_solver::IntExpr::Const(1),
                )],
                kind: nnsmith_ops::PadKind::Reflect,
            }),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[6])],
        );
        let mut cov = CoverageSet::new();
        let o2 = tvmsim().compile(&g, &Bindings::new(), &CompileOptions::default(), &mut cov);
        assert!(matches!(o2, Err(CompileError::Crash { .. })));
        let o0 = tvmsim().compile(
            &g,
            &Bindings::new(),
            &CompileOptions {
                opt_level: OptLevel::O0,
                ..CompileOptions::default()
            },
            &mut cov,
        );
        assert!(o0.is_ok());
    }

    #[test]
    fn semantic_bug_perturbs_outputs() {
        // trt-u4: ReduceMean over two axes.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[2, 3, 4])],
        );
        g.add_node(
            NodeKind::Operator(Op::Reduce {
                kind: nnsmith_tensor::ReduceKind::Mean,
                axes: vec![0, 2],
                keepdims: false,
            }),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[3])],
        );
        let mut cov = CoverageSet::new();
        let compiled = trtsim()
            .compile(&g, &Bindings::new(), &CompileOptions::default(), &mut cov)
            .unwrap();
        assert!(compiled.perturbations.contains(&"trt-u4"));
        let mut inputs = HashMap::new();
        inputs.insert(x, Tensor::ones(&[2, 3, 4], DType::F32));
        let out = compiled.run(&inputs).unwrap();
        let mut bindings = Bindings::new();
        bindings.insert(x, Tensor::ones(&[2, 3, 4], DType::F32));
        let reference = nnsmith_ops::execute(&g, &bindings).unwrap();
        assert!(out[0].max_abs_diff(&reference.outputs[0].1).unwrap() > 0.1);
    }

    #[test]
    fn coverage_grows_with_model_diversity() {
        let compiler = ortsim();
        let (g, weights, _) = toy();
        let mut cum = CoverageSet::new();
        compiler
            .compile(&g, &weights, &CompileOptions::default(), &mut cum)
            .unwrap();
        let after_one = cum.len();
        // A different graph (int ops, different shapes) adds branches.
        let mut g2: Graph<Op> = Graph::new();
        let x = g2.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::I32, &[2, 5])],
        );
        g2.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Mul)),
            vec![ValueRef::output0(x), ValueRef::output0(x)],
            vec![TensorType::concrete(DType::I32, &[2, 5])],
        );
        compiler
            .compile(&g2, &Bindings::new(), &CompileOptions::default(), &mut cum)
            .unwrap();
        assert!(cum.len() > after_one);
    }
}
