//! # nnsmith-compilers
//!
//! Simulated deep-learning compilers — the systems-under-test of the
//! NNSmith reproduction.
//!
//! The paper fuzzes TVM, ONNXRuntime and TensorRT. Those systems are not
//! available offline, so this crate builds the closest synthetic
//! equivalents that exercise the same code paths:
//!
//! * a shared compiler IR ([`CGraph`]) with real optimization passes
//!   (constant folding, DCE, algebraic simplification, pattern/property
//!   fusion, layout rewriting, index typing, a low-level loop pipeline);
//! * **branch-coverage instrumentation** over declared source manifests,
//!   with parametric branch sites so input diversity is measurable
//!   (Figures 4–8);
//! * **72 seeded bugs** matching Table 3's distribution, each triggered by
//!   the structural pattern the paper attributes to the corresponding real
//!   bug (§5.4);
//! * three assembled systems — [`tvmsim`] (end-to-end, property-based
//!   fusion, low-level passes), [`ortsim`] (pattern-heavy optimizer +
//!   kernel dispatch) and [`trtsim`] (closed-source stand-in, no f64) —
//!   plus the PyTorch-exporter stand-in ([`export`]).

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // pass pipeline favours explicit index loops and concrete signatures
#![allow(clippy::ptr_arg)] // pass pipeline favours explicit index loops and concrete signatures
#![allow(clippy::type_complexity)] // pass pipeline favours explicit index loops and concrete signatures

mod backend;
mod bugs;
mod cgraph;
mod compiler;
mod coverage;
mod exporter;
mod irbugs;
mod lowlevel;
mod passes;

pub use backend::BackendSet;
pub use bugs::{bug_by_id, bugs_for, registry, BugConfig, Phase, SeededBug, Symptom, System};
pub use cgraph::{CGraph, CNode, COp, CValue, CompileError, IndexWidth, Layout};
pub use compiler::{
    compiler_by_name, ortsim, perturb_outputs, trtsim, tvmsim, CompileOptions, CompiledModel,
    Compiler, OptLevel, SharedImport,
};
pub use coverage::{
    log_bucket, Branch, Cov, CoverageSet, FileDecl, FileId, FileKind, SourceManifest,
};
pub use exporter::{export, ExportResult};
pub use irbugs::{canonical_bug_id, ir_bug_by_id, ir_registry, matched_ir_bugs, IrBug};
pub use lowlevel::{
    codegen_coverage, loop_count, lower_graph, run_lowlevel, tir_schedule, tir_simplify, LExpr,
    LStmt, LoweredFunc,
};
