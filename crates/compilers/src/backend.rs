//! Backend sets: the collection of compilers one differential campaign
//! fans each test case out to.
//!
//! The paper's deployment fuzzes several compilers at once and attributes
//! every bug to the backend that exhibits it. A [`BackendSet`] is the
//! campaign-side representation of that: an ordered, deduplicated list of
//! [`Compiler`]s with helpers for name-based construction (CLI flags,
//! serialized configs) and for intersecting the dtype support matrix —
//! the restriction the generator applies so every backend can legally run
//! every generated case (§4's "avoid Not-Implemented errors", extended
//! across the whole set).

use nnsmith_tensor::DType;

use crate::bugs::System;
use crate::compiler::{compiler_by_name, tvmsim, Compiler};

/// An ordered, deduplicated set of compilers a campaign tests against.
///
/// The first member is the **primary** backend: single-backend summary
/// fields (a campaign result's top-level coverage, say) refer to it, and
/// backend-independent findings (exporter crashes, which fire before any
/// compiler runs) are attributed to it.
#[derive(Debug, Clone)]
pub struct BackendSet {
    backends: Vec<Compiler>,
}

impl Default for BackendSet {
    /// The single-backend default: `[tvmsim]` — existing single-compiler
    /// callers keep their exact campaign behaviour.
    fn default() -> Self {
        BackendSet::single(tvmsim())
    }
}

impl BackendSet {
    /// Builds a set from compilers, keeping the first occurrence of each
    /// [`System`] (order defines the primary backend and all per-backend
    /// iteration order).
    ///
    /// # Panics
    ///
    /// Panics on an empty list: a campaign with nothing to test against
    /// is a configuration error, not a state to propagate.
    pub fn new(backends: Vec<Compiler>) -> Self {
        assert!(!backends.is_empty(), "a backend set cannot be empty");
        let mut out: Vec<Compiler> = Vec::with_capacity(backends.len());
        for b in backends {
            if !out.iter().any(|e| e.system() == b.system()) {
                out.push(b);
            }
        }
        BackendSet { backends: out }
    }

    /// A one-compiler set.
    pub fn single(compiler: Compiler) -> Self {
        BackendSet {
            backends: vec![compiler],
        }
    }

    /// All three simulated compilers, in the paper's order
    /// (tvmsim, ortsim, trtsim).
    pub fn all() -> Self {
        BackendSet::new(vec![
            tvmsim(),
            crate::compiler::ortsim(),
            crate::compiler::trtsim(),
        ])
    }

    /// Builds a set from [`System::name`]s (the CLI / serialized form).
    /// Accepts the full names (`tvmsim`) and the short forms the bench
    /// flags use (`tvm`, `ort`, `trt`). Returns `None` when any name is
    /// unknown or the list is empty.
    pub fn from_names<S: AsRef<str>>(names: &[S]) -> Option<Self> {
        if names.is_empty() {
            return None;
        }
        let mut backends = Vec::with_capacity(names.len());
        for name in names {
            let name = name.as_ref().trim();
            let full = match name {
                "tvm" => "tvmsim",
                "ort" => "ortsim",
                "trt" => "trtsim",
                other => other,
            };
            backends.push(compiler_by_name(full)?);
        }
        Some(BackendSet::new(backends))
    }

    /// The primary backend (first member).
    pub fn primary(&self) -> &Compiler {
        &self.backends[0]
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Always false (the constructor rejects empty sets), provided for
    /// clippy-idiomatic pairing with [`BackendSet::len`].
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// Iterates the backends in set order.
    pub fn iter(&self) -> impl Iterator<Item = &Compiler> {
        self.backends.iter()
    }

    /// The member testing `system`, if present.
    pub fn get(&self, system: System) -> Option<&Compiler> {
        self.backends.iter().find(|b| b.system() == system)
    }

    /// The member named `name` (full [`System::name`] form), if present.
    pub fn get_by_name(&self, name: &str) -> Option<&Compiler> {
        self.backends.iter().find(|b| b.system().name() == name)
    }

    /// Backend names in set order.
    pub fn names(&self) -> Vec<String> {
        self.backends
            .iter()
            .map(|b| b.system().name().to_string())
            .collect()
    }

    /// Element types every member supports — the intersection of
    /// [`Compiler::supports_dtype`] across the set, **canonically
    /// ordered** (sorted and deduplicated by the fixed [`DType`] order,
    /// which is [`DType::ALL`]'s order). The generator restricts itself
    /// to this set so no backend ever answers `NotImplemented` to a
    /// generated case.
    ///
    /// Canonical ordering is a determinism requirement, not cosmetics:
    /// this vector becomes the generator's `allowed_dtypes` palette, and
    /// dtype *draws index into it* — so two processes reconstructing the
    /// same backend set from a serialized work-unit (possibly naming
    /// members in a different order) must get byte-identical palettes or
    /// their RNG-driven case streams diverge.
    pub fn supported_dtypes(&self) -> Vec<DType> {
        let mut dtypes: Vec<DType> = DType::ALL
            .into_iter()
            .filter(|&d| self.backends.iter().all(|b| b.supports_dtype(d)))
            .collect();
        // `DType`'s derived `Ord` follows the declaration order, which is
        // `DType::ALL`'s order — the explicit sort+dedupe makes the
        // canonical form independent of how the intersection above is
        // ever rewritten (set-member order, iteration source, duplicates).
        dtypes.sort();
        dtypes.dedup();
        dtypes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{ortsim, trtsim};

    #[test]
    fn default_is_single_tvmsim() {
        let set = BackendSet::default();
        assert_eq!(set.len(), 1);
        assert_eq!(set.primary().system(), System::TvmSim);
    }

    #[test]
    fn dedup_keeps_first_occurrence_order() {
        let set = BackendSet::new(vec![ortsim(), tvmsim(), ortsim(), trtsim()]);
        assert_eq!(set.names(), vec!["ortsim", "tvmsim", "trtsim"]);
        assert_eq!(set.primary().system(), System::OrtSim);
        assert!(set.get(System::TrtSim).is_some());
        assert!(set.get_by_name("tvmsim").is_some());
        assert!(set.get_by_name("exporter").is_none());
    }

    #[test]
    fn from_names_accepts_short_and_full_forms() {
        let set = BackendSet::from_names(&["tvm", "ortsim", "trt"]).expect("known");
        assert_eq!(set.names(), vec!["tvmsim", "ortsim", "trtsim"]);
        assert!(BackendSet::from_names(&["gcc"]).is_none());
        assert!(BackendSet::from_names::<&str>(&[]).is_none());
    }

    #[test]
    fn supported_dtypes_intersect_across_members() {
        // tvm+ort support everything; adding trt removes f64.
        let no_trt = BackendSet::new(vec![tvmsim(), ortsim()]);
        assert_eq!(no_trt.supported_dtypes().len(), DType::ALL.len());
        let all = BackendSet::all();
        let dtypes = all.supported_dtypes();
        assert!(!dtypes.contains(&DType::F64));
        assert!(dtypes.contains(&DType::F32));
        assert!(dtypes.contains(&DType::Bool));
    }

    #[test]
    fn supported_dtypes_are_canonical_under_member_permutation() {
        // The palette contract: every permutation of the same members —
        // the ways a resumed process might reconstruct a backend set from
        // a serialized work-unit — yields the identical dtype vector, in
        // DType::ALL order. (Dtype draws index into this vector, so any
        // ordering difference would fork the generator's RNG stream.)
        let perms: [[fn() -> Compiler; 3]; 6] = [
            [tvmsim, ortsim, trtsim],
            [tvmsim, trtsim, ortsim],
            [ortsim, tvmsim, trtsim],
            [ortsim, trtsim, tvmsim],
            [trtsim, tvmsim, ortsim],
            [trtsim, ortsim, tvmsim],
        ];
        let canonical = BackendSet::all().supported_dtypes();
        assert!(!canonical.is_empty());
        assert!(
            canonical.windows(2).all(|w| w[0] < w[1]),
            "sorted + deduped"
        );
        for perm in perms {
            let set = BackendSet::new(perm.iter().map(|f| f()).collect());
            assert_eq!(set.supported_dtypes(), canonical);
            // The serialized-name path (what a work-unit actually stores)
            // agrees too.
            let names: Vec<String> = set.names();
            let rebuilt = BackendSet::from_names(&names).expect("known names");
            assert_eq!(rebuilt.supported_dtypes(), canonical);
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_set_panics() {
        BackendSet::new(Vec::new());
    }
}
