//! Seeded low-level-IR bugs: the defects the Tzer baseline (§5.2, Fig. 8)
//! can reach and graph-level fuzzing cannot.
//!
//! Mirrors the graph-level registry in [`crate::bugs`], but the triggering
//! patterns are structural properties of [`LoweredFunc`] IR that
//! [`crate::lowlevel::lower_graph`] **never produces** — variable
//! divisors, negative index constants, very deep nests, wild trip counts.
//! Graph-lowered kernels therefore cannot fire them (tvmsim's `O2`
//! pipeline stays clean for every graph campaign), while an IR mutator
//! hits them readily: exactly the reachability split Figure 8 measures.
//!
//! Detection is pattern-based like the graph bugs' `detect` closures; the
//! differential harness maps matches to outcomes (crash bugs abort the
//! low-level pipeline with a `seeded bug <id>` message, semantic bugs
//! surface as attributed result mismatches).

use crate::bugs::{BugConfig, Symptom};
use crate::lowlevel::{LExpr, LStmt, LoweredFunc};

/// One seeded low-level-IR bug.
#[derive(Debug, Clone, Copy)]
pub struct IrBug {
    /// Stable identifier, e.g. `"tir-simpl-div"`.
    pub id: &'static str,
    /// Observable symptom (crash aborts the pipeline; semantic bugs
    /// corrupt results and are attributed on mismatch).
    pub symptom: Symptom,
    /// One-line description of the pattern.
    pub description: &'static str,
    detect: fn(&LoweredFunc) -> bool,
}

impl IrBug {
    /// True if `func` contains this bug's triggering pattern.
    pub fn triggers(&self, func: &LoweredFunc) -> bool {
        (self.detect)(func)
    }
}

fn any_expr(func: &LoweredFunc, pred: &dyn Fn(&LExpr) -> bool) -> bool {
    fn expr_any(e: &LExpr, pred: &dyn Fn(&LExpr) -> bool) -> bool {
        if pred(e) {
            return true;
        }
        match e {
            LExpr::Const(_) | LExpr::Var(_) => false,
            LExpr::Add(a, b) | LExpr::Mul(a, b) | LExpr::Div(a, b) | LExpr::Mod(a, b) => {
                expr_any(a, pred) || expr_any(b, pred)
            }
        }
    }
    fn stmt_any(stmts: &[LStmt], pred: &dyn Fn(&LExpr) -> bool) -> bool {
        stmts.iter().any(|s| match s {
            LStmt::Store { index } => expr_any(index, pred),
            LStmt::For { body, .. } => stmt_any(body, pred),
        })
    }
    stmt_any(&func.body, pred)
}

fn max_depth(stmts: &[LStmt]) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            LStmt::For { body, .. } => 1 + max_depth(body),
            LStmt::Store { .. } => 0,
        })
        .max()
        .unwrap_or(0)
}

fn any_extent(stmts: &[LStmt], pred: &dyn Fn(i64) -> bool) -> bool {
    stmts.iter().any(|s| match s {
        LStmt::For { extent, body, .. } => pred(*extent) || any_extent(body, pred),
        LStmt::Store { .. } => false,
    })
}

/// The registry of seeded TIR bugs (all live in tvmsim's low-level
/// pipeline — the system Tzer targets).
pub fn ir_registry() -> &'static [IrBug] {
    const REGISTRY: &[IrBug] = &[
        IrBug {
            id: "tir-simpl-div",
            symptom: Symptom::Crash,
            description: "simplifier divides by a loop variable without a zero guard",
            detect: |f| {
                any_expr(
                    f,
                    &|e| matches!(e, LExpr::Div(_, rhs) if !matches!(**rhs, LExpr::Const(_))),
                )
            },
        },
        IrBug {
            id: "tir-simpl-mod",
            symptom: Symptom::Crash,
            description: "canonicalizer recurses forever on Mod by a non-constant divisor",
            detect: |f| {
                any_expr(
                    f,
                    &|e| matches!(e, LExpr::Mod(_, rhs) if !matches!(**rhs, LExpr::Const(_))),
                )
            },
        },
        IrBug {
            id: "tir-sched-nest",
            symptom: Symptom::Crash,
            description: "scheduler blows its recursion budget on loop nests deeper than six",
            detect: |f| max_depth(&f.body) >= 7,
        },
        IrBug {
            id: "tir-vec-extent",
            symptom: Symptom::Crash,
            description: "vectorizer asserts sizing the unroll buffer for trip counts >= 1000",
            detect: |f| any_extent(&f.body, &|e| e >= 1000),
        },
        IrBug {
            id: "tir-simpl-neg",
            symptom: Symptom::Semantic,
            description: "simplifier folds negative index offsets with round-toward-zero division",
            detect: |f| any_expr(f, &|e| matches!(e, LExpr::Const(c) if *c < 0)),
        },
    ];
    REGISTRY
}

/// Every enabled IR bug whose pattern appears in any of `funcs`.
pub fn matched_ir_bugs(funcs: &[LoweredFunc], bugs: &BugConfig) -> Vec<&'static IrBug> {
    ir_registry()
        .iter()
        .filter(|b| bugs.enabled(b.id) && funcs.iter().any(|f| b.triggers(f)))
        .collect()
}

/// Looks up one seeded IR bug by id.
pub fn ir_bug_by_id(id: &str) -> Option<&'static IrBug> {
    ir_registry().iter().find(|b| b.id == id)
}

/// Resolves any seeded-bug id — graph-level or IR-level — to its canonical
/// `&'static str` form (what [`BugConfig::disable`] needs). `None` for
/// unknown ids. Called per found-bug event on campaign hot paths, so the
/// graph registry's id list is cached (building the registry allocates
/// its detector closures each call).
pub fn canonical_bug_id(id: &str) -> Option<&'static str> {
    static GRAPH_IDS: std::sync::OnceLock<Vec<&'static str>> = std::sync::OnceLock::new();
    let graph_ids =
        GRAPH_IDS.get_or_init(|| crate::bugs::registry().iter().map(|b| b.id).collect());
    graph_ids
        .iter()
        .copied()
        .find(|&b| b == id)
        .or_else(|| ir_bug_by_id(id).map(|b| b.id))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(index: LExpr) -> LoweredFunc {
        LoweredFunc {
            name: "t".into(),
            body: vec![LStmt::Store { index }],
        }
    }

    #[test]
    fn div_by_variable_triggers() {
        let bug = ir_bug_by_id("tir-simpl-div").unwrap();
        let f = store(LExpr::Div(Box::new(LExpr::Var(0)), Box::new(LExpr::Var(1))));
        assert!(bug.triggers(&f));
        // Division by a constant — what graph lowering emits — is clean.
        let g = store(LExpr::Div(
            Box::new(LExpr::Var(0)),
            Box::new(LExpr::Const(4)),
        ));
        assert!(!bug.triggers(&g));
    }

    #[test]
    fn graph_lowered_ir_never_triggers() {
        use crate::cgraph::CGraph;
        use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
        use nnsmith_ops::{Bindings, UnaryKind};
        use nnsmith_tensor::DType;

        let mut g: Graph<nnsmith_ops::Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[1, 4, 8, 8])],
        );
        g.add_node(
            NodeKind::Operator(nnsmith_ops::Op::Unary(UnaryKind::Relu)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[1, 4, 8, 8])],
        );
        let cg = CGraph::import(&g, &Bindings::new()).unwrap();
        let funcs = crate::lowlevel::lower_graph(&cg);
        assert!(matched_ir_bugs(&funcs, &BugConfig::all_on()).is_empty());
    }

    #[test]
    fn deep_nest_and_huge_extent_trigger() {
        let mut body = vec![LStmt::Store {
            index: LExpr::Var(0),
        }];
        for v in 0..7 {
            body = vec![LStmt::For {
                var: v,
                extent: 2,
                body,
                vectorized: false,
                unrolled: false,
            }];
        }
        let deep = LoweredFunc {
            name: "deep".into(),
            body,
        };
        assert!(ir_bug_by_id("tir-sched-nest").unwrap().triggers(&deep));
        let huge = LoweredFunc {
            name: "huge".into(),
            body: vec![LStmt::For {
                var: 0,
                extent: 1000,
                body: vec![LStmt::Store {
                    index: LExpr::Var(0),
                }],
                vectorized: false,
                unrolled: false,
            }],
        };
        assert!(ir_bug_by_id("tir-vec-extent").unwrap().triggers(&huge));
    }

    #[test]
    fn canonical_lookup_spans_both_registries() {
        assert_eq!(canonical_bug_id("tvm-conv-5"), Some("tvm-conv-5"));
        assert_eq!(canonical_bug_id("tir-simpl-div"), Some("tir-simpl-div"));
        assert_eq!(canonical_bug_id("no-such-bug"), None);
    }

    #[test]
    fn ir_bug_ids_unique_and_disjoint_from_graph_bugs() {
        let mut ids: Vec<&str> = ir_registry().iter().map(|b| b.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        for bug in crate::bugs::registry() {
            assert!(!ids.contains(&bug.id));
        }
    }
}
