//! tvmsim's low-level loop IR (the TIR analogue).
//!
//! After graph-level optimization, tvmsim lowers each kernel to a loop
//! nest with explicit index arithmetic, then runs low-level passes
//! (expression simplification, tiling, vectorization, unrolling). This IR
//! also exists to host the Tzer baseline (§5.2, Fig. 8): Tzer mutates
//! low-level IR directly, reaching branches graph-level fuzzing cannot,
//! while missing the graph-level passes entirely.

use nnsmith_ops::Op;
use serde::{Deserialize, Serialize};

use crate::cgraph::{CGraph, COp};
use crate::coverage::{log_bucket, Cov, CoverageSet, SourceManifest};
use crate::passes::op_code;

/// Low-level integer index expression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LExpr {
    /// Integer literal.
    Const(i64),
    /// Loop variable by id.
    Var(u32),
    /// Addition.
    Add(Box<LExpr>, Box<LExpr>),
    /// Multiplication.
    Mul(Box<LExpr>, Box<LExpr>),
    /// Floor division.
    Div(Box<LExpr>, Box<LExpr>),
    /// Euclidean remainder.
    Mod(Box<LExpr>, Box<LExpr>),
}

impl LExpr {
    /// Number of nodes (mutation sizing).
    pub fn size(&self) -> usize {
        match self {
            LExpr::Const(_) | LExpr::Var(_) => 1,
            LExpr::Add(a, b) | LExpr::Mul(a, b) | LExpr::Div(a, b) | LExpr::Mod(a, b) => {
                1 + a.size() + b.size()
            }
        }
    }
}

/// Low-level statement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LStmt {
    /// A counted loop.
    For {
        /// Loop variable id.
        var: u32,
        /// Trip count.
        extent: i64,
        /// Body.
        body: Vec<LStmt>,
        /// Set by the vectorizer.
        vectorized: bool,
        /// Set by the unroller.
        unrolled: bool,
    },
    /// A store with an index expression (the computation payload is
    /// abstracted away — low-level passes only reason about structure).
    Store {
        /// Flattened index expression.
        index: LExpr,
    },
}

/// A lowered kernel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoweredFunc {
    /// Kernel name (derived from the graph node).
    pub name: String,
    /// Body statements.
    pub body: Vec<LStmt>,
}

/// Lowers every node of a compiled graph into a loop nest whose loops run
/// over the output dimensions, with row-major index arithmetic (plus
/// reduction loops for conv/matmul-like nodes).
pub fn lower_graph(g: &CGraph) -> Vec<LoweredFunc> {
    let mut funcs = Vec::new();
    let mut next_var = 0u32;
    for (i, node) in g.nodes.iter().enumerate() {
        let (name, reduction): (String, Option<i64>) = match &node.op {
            COp::Constant(_) => continue,
            COp::Primitive(op) => {
                let red = match op {
                    Op::Conv2d { kh, kw, .. } => {
                        Some(kh.as_const().unwrap_or(1) * kw.as_const().unwrap_or(1))
                    }
                    Op::MatMul | Op::Dense { .. } => Some(8),
                    Op::Reduce { .. } | Op::Softmax { .. } => Some(4),
                    _ => None,
                };
                (format!("{}_{i}", op.name().to_lowercase()), red)
            }
            COp::Fused { kernel, .. } => (format!("{}_{i}", kernel.to_lowercase()), None),
        };
        // Loop nest over output dims (scalars get a single unit loop).
        let dims: Vec<i64> = if node.shape.is_empty() {
            vec![1]
        } else {
            node.shape.iter().map(|&d| d as i64).collect()
        };
        let vars: Vec<u32> = dims
            .iter()
            .map(|_| {
                let v = next_var;
                next_var += 1;
                v
            })
            .collect();
        // Row-major index: ((v0 * d1 + v1) * d2 + v2)…
        let mut index = LExpr::Var(vars[0]);
        for (k, &d) in dims.iter().enumerate().skip(1) {
            index = LExpr::Add(
                Box::new(LExpr::Mul(Box::new(index), Box::new(LExpr::Const(d)))),
                Box::new(LExpr::Var(vars[k])),
            );
        }
        // Simplification fodder mirroring real lowering artifacts:
        // (index * 1 + 0), and a packed-layout mod/div pair.
        let index = LExpr::Add(
            Box::new(LExpr::Mul(Box::new(index), Box::new(LExpr::Const(1)))),
            Box::new(LExpr::Const(0)),
        );
        let index = if dims.len() == 4 && dims[1] % 4 == 0 {
            // c -> (c / 4, c % 4) packing arithmetic.
            LExpr::Add(
                Box::new(LExpr::Mul(
                    Box::new(LExpr::Div(
                        Box::new(index.clone()),
                        Box::new(LExpr::Const(4)),
                    )),
                    Box::new(LExpr::Const(4)),
                )),
                Box::new(LExpr::Mod(Box::new(index), Box::new(LExpr::Const(4)))),
            )
        } else {
            index
        };
        let mut body = vec![LStmt::Store { index }];
        if let Some(red) = reduction {
            let v = next_var;
            next_var += 1;
            body = vec![LStmt::For {
                var: v,
                extent: red.max(1),
                body,
                vectorized: false,
                unrolled: false,
            }];
        }
        for (k, &d) in dims.iter().enumerate().rev() {
            body = vec![LStmt::For {
                var: vars[k],
                extent: d,
                body,
                vectorized: false,
                unrolled: false,
            }];
        }
        funcs.push(LoweredFunc { name, body });
    }
    funcs
}

/// Simplifies an index expression, recording a branch per applied rule.
fn simplify_expr(e: &LExpr, cov: &mut Cov<'_>) -> LExpr {
    match e {
        LExpr::Const(_) | LExpr::Var(_) => e.clone(),
        LExpr::Add(a, b) => {
            let (a, b) = (simplify_expr(a, cov), simplify_expr(b, cov));
            match (&a, &b) {
                (LExpr::Const(x), LExpr::Const(y)) => {
                    cov.hit(1);
                    LExpr::Const(x + y)
                }
                (_, LExpr::Const(0)) => {
                    cov.hit(2);
                    a
                }
                (LExpr::Const(0), _) => {
                    cov.hit(3);
                    b
                }
                _ => LExpr::Add(Box::new(a), Box::new(b)),
            }
        }
        LExpr::Mul(a, b) => {
            let (a, b) = (simplify_expr(a, cov), simplify_expr(b, cov));
            match (&a, &b) {
                (LExpr::Const(x), LExpr::Const(y)) => {
                    cov.hit(4);
                    LExpr::Const(x * y)
                }
                (_, LExpr::Const(1)) => {
                    cov.hit(5);
                    a
                }
                (LExpr::Const(1), _) => {
                    cov.hit(6);
                    b
                }
                (_, LExpr::Const(0)) | (LExpr::Const(0), _) => {
                    cov.hit(7);
                    LExpr::Const(0)
                }
                _ => LExpr::Mul(Box::new(a), Box::new(b)),
            }
        }
        LExpr::Div(a, b) => {
            let (a, b) = (simplify_expr(a, cov), simplify_expr(b, cov));
            match (&a, &b) {
                (LExpr::Const(x), LExpr::Const(y)) if *y != 0 => {
                    cov.hit(8);
                    LExpr::Const(x.div_euclid(*y))
                }
                (_, LExpr::Const(1)) => {
                    cov.hit(9);
                    a
                }
                // (x * c) / c → x (sound for exact multiples).
                (LExpr::Mul(x, c1), LExpr::Const(c2)) if matches!(**c1, LExpr::Const(v) if v == *c2 && v != 0) =>
                {
                    cov.hit(10);
                    (**x).clone()
                }
                _ => LExpr::Div(Box::new(a), Box::new(b)),
            }
        }
        LExpr::Mod(a, b) => {
            let (a, b) = (simplify_expr(a, cov), simplify_expr(b, cov));
            match (&a, &b) {
                (LExpr::Const(x), LExpr::Const(y)) if *y != 0 => {
                    cov.hit(11);
                    LExpr::Const(x.rem_euclid(*y))
                }
                (_, LExpr::Const(1)) => {
                    cov.hit(12);
                    LExpr::Const(0)
                }
                _ => LExpr::Mod(Box::new(a), Box::new(b)),
            }
        }
    }
}

fn walk_stmts(stmts: &mut Vec<LStmt>, cov: &mut Cov<'_>, depth: u32) {
    for s in stmts.iter_mut() {
        match s {
            LStmt::Store { index } => {
                cov.hit_idx(16, depth.min(6));
                *index = simplify_expr(index, cov);
            }
            LStmt::For { body, extent, .. } => {
                cov.hit_idx(24, log_bucket(*extent));
                walk_stmts(body, cov, depth + 1);
            }
        }
    }
}

/// The low-level expression-simplification pass.
pub fn tir_simplify(
    funcs: &mut [LoweredFunc],
    cov_set: &mut CoverageSet,
    manifest: &SourceManifest,
) {
    let mut cov = Cov::new(cov_set, manifest, "tir_simplify.cc");
    cov.hit(0);
    for f in funcs.iter_mut() {
        walk_stmts(&mut f.body, &mut cov, 0);
    }
}

/// The low-level scheduling pass: tiling, vectorization and unrolling
/// decisions keyed on loop extents.
pub fn tir_schedule(
    funcs: &mut [LoweredFunc],
    cov_set: &mut CoverageSet,
    manifest: &SourceManifest,
) {
    let mut cov = Cov::new(cov_set, manifest, "tir_schedule.cc");
    cov.hit(0);
    for f in funcs.iter_mut() {
        schedule_stmts(&mut f.body, &mut cov, true);
    }
}

fn schedule_stmts(stmts: &mut Vec<LStmt>, cov: &mut Cov<'_>, outermost: bool) {
    for s in stmts.iter_mut() {
        if let LStmt::For {
            extent,
            body,
            vectorized,
            unrolled,
            var,
        } = s
        {
            let innermost = !body.iter().any(|b| matches!(b, LStmt::For { .. }));
            if innermost {
                if *extent > 1 && (*extent as u64).is_power_of_two() && *extent <= 64 {
                    cov.hit_idx(4, log_bucket(*extent));
                    *vectorized = true;
                } else if *extent <= 4 {
                    cov.hit(2);
                    *unrolled = true;
                } else {
                    cov.hit(3);
                }
            } else if outermost && *extent % 4 == 0 && *extent >= 8 {
                // Tile: split into outer (extent/4) and inner (4) loops.
                cov.hit(12);
                let inner = LStmt::For {
                    var: *var + 10_000,
                    extent: 4,
                    body: std::mem::take(body),
                    vectorized: false,
                    unrolled: false,
                };
                *extent /= 4;
                *body = vec![inner];
            } else {
                cov.hit_idx(14, log_bucket(*extent));
            }
            schedule_stmts(body, cov, false);
        }
    }
}

/// Code generation coverage: branch sites keyed by loop-nest structure
/// (depth, extents, vectorization) — shared by graph-lowered kernels and
/// Tzer-mutated IR.
pub fn codegen_coverage(
    funcs: &[LoweredFunc],
    cov_set: &mut CoverageSet,
    manifest: &SourceManifest,
) {
    let mut cov = Cov::new(cov_set, manifest, "codegen.cc");
    cov.hit(0);
    fn walk(stmts: &[LStmt], cov: &mut Cov<'_>, depth: u32) {
        for s in stmts {
            match s {
                LStmt::For {
                    extent,
                    body,
                    vectorized,
                    unrolled,
                    ..
                } => {
                    cov.hit_idx(8, depth.min(9) * 8 + log_bucket(*extent));
                    if *vectorized {
                        cov.hit_idx(100, log_bucket(*extent));
                    }
                    if *unrolled {
                        cov.hit_idx(110, log_bucket(*extent));
                    }
                    walk(body, cov, depth + 1);
                }
                LStmt::Store { index } => {
                    cov.hit_idx(120, (index.size() as u32).min(30));
                }
            }
        }
    }
    for f in funcs {
        walk(&f.body, &mut cov, 0);
    }
}

/// Number of loops in a function (test/diagnostic helper).
pub fn loop_count(f: &LoweredFunc) -> usize {
    fn count(stmts: &[LStmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                LStmt::For { body, .. } => 1 + count(body),
                LStmt::Store { .. } => 0,
            })
            .sum()
    }
    count(&f.body)
}

/// Lowers `g` and runs the low-level pipeline with coverage; used by
/// tvmsim's O2 compilation and, with synthetic IR, by the Tzer baseline.
pub fn run_lowlevel(
    g: &CGraph,
    cov: &mut CoverageSet,
    manifest: &SourceManifest,
) -> Vec<LoweredFunc> {
    let mut funcs = lower_graph(g);
    {
        let mut c = Cov::new(cov, manifest, "lower.cc");
        c.hit(0);
        for (i, node) in g.nodes.iter().enumerate() {
            let _ = i;
            match &node.op {
                COp::Primitive(op) => c.hit_idx(4, op_code(op)),
                COp::Fused { ops, .. } => c.hit_idx(80, ops.len() as u32),
                COp::Constant(_) => c.hit(1),
            }
            c.hit_idx(90, node.shape.len() as u32);
        }
    }
    tir_simplify(&mut funcs, cov, manifest);
    tir_schedule(&mut funcs, cov, manifest);
    codegen_coverage(&funcs, cov, manifest);
    funcs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cgraph::CGraph;
    use crate::coverage::{FileDecl, FileKind};
    use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
    use nnsmith_ops::{Bindings, UnaryKind};
    use nnsmith_tensor::DType;

    fn manifest() -> SourceManifest {
        SourceManifest::new(vec![
            FileDecl {
                name: "lower.cc",
                kind: FileKind::Pass,
                branches: 100,
            },
            FileDecl {
                name: "tir_simplify.cc",
                kind: FileKind::Pass,
                branches: 40,
            },
            FileDecl {
                name: "tir_schedule.cc",
                kind: FileKind::Pass,
                branches: 30,
            },
            FileDecl {
                name: "codegen.cc",
                kind: FileKind::Runtime,
                branches: 700,
            },
        ])
    }

    fn toy_cgraph() -> CGraph {
        let mut g: Graph<nnsmith_ops::Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[2, 8])],
        );
        g.add_node(
            NodeKind::Operator(nnsmith_ops::Op::Unary(UnaryKind::Relu)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[2, 8])],
        );
        CGraph::import(&g, &Bindings::new()).unwrap()
    }

    #[test]
    fn lowering_builds_loop_nests() {
        let cg = toy_cgraph();
        let funcs = lower_graph(&cg);
        assert_eq!(funcs.len(), 1);
        assert_eq!(loop_count(&funcs[0]), 2); // 2-D output
        assert!(funcs[0].name.starts_with("relu"));
    }

    #[test]
    fn simplify_removes_identities() {
        let e = LExpr::Add(
            Box::new(LExpr::Mul(
                Box::new(LExpr::Var(0)),
                Box::new(LExpr::Const(1)),
            )),
            Box::new(LExpr::Const(0)),
        );
        let m = manifest();
        let mut set = CoverageSet::new();
        let mut cov = Cov::new(&mut set, &m, "tir_simplify.cc");
        let s = simplify_expr(&e, &mut cov);
        assert_eq!(s, LExpr::Var(0));
    }

    #[test]
    fn mul_div_cancellation() {
        // (v * 4) / 4 → v.
        let e = LExpr::Div(
            Box::new(LExpr::Mul(
                Box::new(LExpr::Var(3)),
                Box::new(LExpr::Const(4)),
            )),
            Box::new(LExpr::Const(4)),
        );
        let m = manifest();
        let mut set = CoverageSet::new();
        let mut cov = Cov::new(&mut set, &m, "tir_simplify.cc");
        assert_eq!(simplify_expr(&e, &mut cov), LExpr::Var(3));
    }

    #[test]
    fn schedule_vectorizes_power_of_two_innermost() {
        let cg = toy_cgraph();
        let m = manifest();
        let mut cov = CoverageSet::new();
        let funcs = run_lowlevel(&cg, &mut cov, &m);
        fn any_vectorized(stmts: &[LStmt]) -> bool {
            stmts.iter().any(|s| match s {
                LStmt::For {
                    vectorized, body, ..
                } => *vectorized || any_vectorized(body),
                _ => false,
            })
        }
        assert!(any_vectorized(&funcs[0].body));
        assert!(!cov.is_empty());
    }

    #[test]
    fn coverage_grows_with_structural_diversity() {
        // A conv-bearing graph reaches more low-level branches than the
        // relu-only toy.
        let cg1 = toy_cgraph();
        let m = manifest();
        let mut cov1 = CoverageSet::new();
        run_lowlevel(&cg1, &mut cov1, &m);

        let mut g: Graph<nnsmith_ops::Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[1, 4, 6, 6])],
        );
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4, 4, 3, 3])],
        );
        let b = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(nnsmith_ops::Op::Conv2d {
                in_channels: nnsmith_solver::IntExpr::Const(4),
                out_channels: nnsmith_solver::IntExpr::Const(4),
                kh: nnsmith_solver::IntExpr::Const(3),
                kw: nnsmith_solver::IntExpr::Const(3),
                stride: nnsmith_solver::IntExpr::Const(1),
                padding: nnsmith_solver::IntExpr::Const(0),
                dilation: nnsmith_solver::IntExpr::Const(1),
            }),
            vec![
                ValueRef::output0(x),
                ValueRef::output0(w),
                ValueRef::output0(b),
            ],
            vec![TensorType::concrete(DType::F32, &[1, 4, 4, 4])],
        );
        let mut weights = Bindings::new();
        weights.insert(w, nnsmith_tensor::Tensor::ones(&[4, 4, 3, 3], DType::F32));
        weights.insert(b, nnsmith_tensor::Tensor::zeros(&[4], DType::F32));
        let cg2 = CGraph::import(&g, &weights).unwrap();
        let mut cov2 = CoverageSet::new();
        run_lowlevel(&cg2, &mut cov2, &m);
        let mut merged = cov1.clone();
        merged.merge(&cov2);
        assert!(merged.len() > cov1.len(), "conv adds low-level branches");
    }
}
