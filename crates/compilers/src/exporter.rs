//! The PyTorch-exporter stand-in.
//!
//! NNSmith materializes generated models via PyTorch and exports them to
//! ONNX; the exporter itself turned out to host 10 of the 72 bugs (§5.4,
//! "conversion bugs … as a by-product"). This module simulates that step:
//! it structurally validates and (bug-for-bug) re-serializes the graph,
//! with the 10 seeded exporter defects — 8 export crashes and 2 silent
//! mis-exports whose effect is applied to the exported graph for real
//! (e.g. the Log2-of-scalar bug exports a rank-1 output).

use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
use nnsmith_ops::{Op, UnaryKind};

use crate::bugs::{registry, BugConfig, Symptom, System};
use crate::cgraph::CompileError;

/// Result of exporting a model.
#[derive(Debug, Clone)]
pub struct ExportResult {
    /// The exported (possibly mis-exported) graph.
    pub graph: Graph<Op>,
    /// Ids of semantic exporter bugs that fired.
    pub semantic_bugs: Vec<&'static str>,
}

/// Exports a model to the interchange format, applying seeded exporter
/// bugs.
///
/// # Errors
///
/// Returns [`CompileError::Crash`] when a seeded exporter crash fires or
/// the graph is structurally invalid.
pub fn export(graph: &Graph<Op>, bugs: &BugConfig) -> Result<ExportResult, CompileError> {
    graph
        .validate()
        .map_err(|e| CompileError::Import(format!("invalid model: {e}")))?;

    let exporter_bugs: Vec<_> = registry()
        .into_iter()
        .filter(|b| b.system == System::Exporter)
        .collect();

    for bug in &exporter_bugs {
        if bug.symptom == Symptom::Crash && bugs.enabled(bug.id) && bug.triggers(graph) {
            return Err(CompileError::Crash {
                component: "exporter",
                message: format!("seeded bug {}: {}", bug.id, bug.description),
            });
        }
    }

    let mut out = graph.clone();
    let mut semantic_bugs = Vec::new();

    // exp-1: Log2 of a scalar exported with a rank-1 output. Realized by
    // inserting a spurious Unsqueeze after the Log2 node, changing the
    // model's observable output shape/values downstream.
    if bugs.enabled("exp-1") {
        let targets: Vec<_> = out
            .iter()
            .filter(|(_, n)| {
                matches!(&n.kind, NodeKind::Operator(Op::Unary(UnaryKind::Log2)))
                    && n.outputs[0].rank() == 0
            })
            .map(|(id, n)| (id, n.outputs[0].dtype))
            .collect();
        if !targets.is_empty() {
            semantic_bugs.push("exp-1");
            for (log2_id, dtype) in targets {
                let unsq = out.add_node(
                    NodeKind::Operator(Op::Unsqueeze { axis: 0 }),
                    vec![ValueRef::output0(log2_id)],
                    vec![TensorType::concrete(dtype, &[1])],
                );
                // Redirect all other consumers of the Log2 value to the
                // unsqueezed value.
                for i in 0..out.len() {
                    let nid = nnsmith_graph::NodeId(i as u32);
                    if nid == unsq {
                        continue;
                    }
                    let node = out.node_mut(nid);
                    for v in &mut node.inputs {
                        if *v == ValueRef::output0(log2_id) {
                            *v = ValueRef::output0(unsq);
                        }
                    }
                }
            }
        }
    }

    // exp-2: integer Clip attributes mangled against an old opset.
    if bugs.enabled("exp-2") {
        let mut fired = false;
        for i in 0..out.len() {
            let nid = nnsmith_graph::NodeId(i as u32);
            let is_int = out.node(nid).outputs[0].dtype.is_int();
            if let NodeKind::Operator(Op::Clip { lo, hi }) = &mut out.node_mut(nid).kind {
                if is_int && *lo < 0 {
                    fired = true;
                    // The exporter "round-trips" the bounds through an
                    // unsigned field: the negative bound flips sign.
                    *lo = (-*lo).min(*hi);
                }
            }
        }
        if fired {
            semantic_bugs.push("exp-2");
        }
    }

    Ok(ExportResult {
        graph: out,
        semantic_bugs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_tensor::DType;

    #[test]
    fn clean_graph_roundtrips() {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let res = export(&g, &BugConfig::all_on()).unwrap();
        assert_eq!(res.graph, g);
        assert!(res.semantic_bugs.is_empty());
    }

    #[test]
    fn log2_scalar_gets_spurious_unsqueeze() {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Log2)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[])],
        );
        let res = export(&g, &BugConfig::all_on()).unwrap();
        assert!(res.semantic_bugs.contains(&"exp-1"));
        assert_eq!(res.graph.len(), g.len() + 1);
        // The model output is now rank-1.
        let outs = res.graph.output_values();
        assert_eq!(res.graph.value_type(outs[0]).rank(), 1);
        // With the bug disabled nothing changes.
        let clean = export(&g, &BugConfig::none()).unwrap();
        assert_eq!(clean.graph, g);
    }

    #[test]
    fn exporter_crash_bug_fires() {
        // exp-4: Squeeze to a scalar.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[1])],
        );
        g.add_node(
            NodeKind::Operator(Op::Squeeze { axis: 0 }),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[])],
        );
        let err = export(&g, &BugConfig::all_on());
        assert!(matches!(err, Err(CompileError::Crash { .. })));
        assert!(export(&g, &BugConfig::none()).is_ok());
    }

    #[test]
    fn int_clip_bounds_mangled() {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::I32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::Clip { lo: -5, hi: 5 }),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::I32, &[4])],
        );
        let res = export(&g, &BugConfig::all_on()).unwrap();
        assert!(res.semantic_bugs.contains(&"exp-2"));
        let op = res
            .graph
            .iter()
            .find_map(|(_, n)| n.kind.as_operator())
            .unwrap();
        assert!(matches!(op, Op::Clip { lo: 5, hi: 5 }));
    }
}
