//! The seeded-bug registry: 72 injected defects reproducing the bug study
//! of §5.4 (Table 3).
//!
//! The paper found 72 real bugs across TVM, ONNXRuntime, TensorRT and the
//! PyTorch ONNX exporter. Since those compilers (and their bugs) are not
//! available offline, this reproduction seeds the simulated compilers with
//! 72 defects whose *triggering conditions mirror the bug patterns the
//! paper describes*: wrong expression simplification, wrong layout
//! analysis, int32/int64 mismatches, scalar mishandling, broadcasting
//! mistakes and dtype mismatches. Each trigger requires the structural
//! pattern the paper attributes to the bug (e.g. a `MatMul` with a `1×1`
//! operand, or a `Conv2d` followed by a strided channel `Slice`), so the
//! detectability of a bug by a fuzzer is governed by the expressiveness of
//! its generator — the property Table 3 and the baseline comparison
//! measure.

use std::collections::HashSet;
use std::sync::Arc;

use nnsmith_graph::{Graph, NodeId, NodeKind};
use nnsmith_ops::{BinaryKind, CompareKind, Op, PadKind, UnaryKind};
use nnsmith_tensor::{DType, ReduceKind};

/// The system a bug is seeded in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// The TVM-like end-to-end compiler.
    TvmSim,
    /// The ONNXRuntime-like graph-optimizing runtime.
    OrtSim,
    /// The TensorRT-like GPU compiler (closed-source stand-in).
    TrtSim,
    /// The PyTorch-exporter-like model serializer.
    Exporter,
}

impl System {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            System::TvmSim => "tvmsim",
            System::OrtSim => "ortsim",
            System::TrtSim => "trtsim",
            System::Exporter => "exporter",
        }
    }
}

/// Which compilation phase the bug lives in (Table 3 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Graph/IR transformation passes.
    Transformation,
    /// Model conversion / import / export.
    Conversion,
    /// Unknown location (closed-source component).
    Unclassified,
}

/// Observable symptom (Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Symptom {
    /// Segfault / exception: compilation (or execution) aborts.
    Crash,
    /// Wrong results: output differs from the reference.
    Semantic,
}

/// One seeded bug.
#[derive(Clone)]
pub struct SeededBug {
    /// Stable identifier, e.g. `"tvm-layout-3"`.
    pub id: &'static str,
    /// System the bug is seeded in.
    pub system: System,
    /// Phase.
    pub phase: Phase,
    /// Symptom.
    pub symptom: Symptom,
    /// One-line description of the pattern, in the style of §5.4.
    pub description: &'static str,
    detect: Arc<dyn Fn(&Graph<Op>) -> bool + Send + Sync>,
}

impl std::fmt::Debug for SeededBug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeededBug")
            .field("id", &self.id)
            .field("system", &self.system)
            .field("phase", &self.phase)
            .field("symptom", &self.symptom)
            .finish()
    }
}

impl SeededBug {
    /// True if `graph` contains this bug's triggering pattern.
    pub fn triggers(&self, graph: &Graph<Op>) -> bool {
        (self.detect)(graph)
    }
}

/// Which seeded bugs are active (all by default; experiments can disable).
#[derive(Debug, Clone, Default)]
pub struct BugConfig {
    disabled: HashSet<&'static str>,
    /// Disable every seeded bug (clean-compiler mode).
    pub all_off: bool,
}

impl BugConfig {
    /// Every bug enabled.
    pub fn all_on() -> Self {
        BugConfig::default()
    }

    /// Every bug disabled.
    pub fn none() -> Self {
        BugConfig {
            disabled: HashSet::new(),
            all_off: true,
        }
    }

    /// Disables one bug.
    pub fn disable(&mut self, id: &'static str) {
        self.disabled.insert(id);
    }

    /// True if the bug is active.
    pub fn enabled(&self, id: &str) -> bool {
        !self.all_off && !self.disabled.contains(id)
    }
}

// ---------------------------------------------------------------------------
// Trigger helpers.
// ---------------------------------------------------------------------------

type Detect = Arc<dyn Fn(&Graph<Op>) -> bool + Send + Sync>;

fn op_nodes(g: &Graph<Op>) -> impl Iterator<Item = (NodeId, &Op)> + '_ {
    g.iter().filter_map(|(id, n)| match &n.kind {
        NodeKind::Operator(op) => Some((id, op)),
        _ => None,
    })
}

/// Any operator satisfying `pred` (with access to its node for shapes).
fn any_op(pred: impl Fn(&Graph<Op>, NodeId, &Op) -> bool + Send + Sync + 'static) -> Detect {
    Arc::new(move |g: &Graph<Op>| op_nodes(g).any(|(id, op)| pred(g, id, op)))
}

/// Producer→consumer edge where both operators satisfy their predicates.
fn pair(
    prod: impl Fn(&Graph<Op>, NodeId, &Op) -> bool + Send + Sync + 'static,
    cons: impl Fn(&Graph<Op>, NodeId, &Op) -> bool + Send + Sync + 'static,
) -> Detect {
    Arc::new(move |g: &Graph<Op>| {
        op_nodes(g).any(|(cid, cop)| {
            cons(g, cid, cop)
                && g.node(cid).inputs.iter().any(|v| {
                    matches!(&g.node(v.node).kind, NodeKind::Operator(pop) if prod(g, v.node, pop))
                })
        })
    })
}

fn input_rank(g: &Graph<Op>, id: NodeId, idx: usize) -> Option<usize> {
    let v = g.node(id).inputs.get(idx)?;
    Some(g.value_type(*v).rank())
}

fn out_rank(g: &Graph<Op>, id: NodeId) -> usize {
    g.node(id).outputs[0].rank()
}

fn out_dtype(g: &Graph<Op>, id: NodeId) -> DType {
    g.node(id).outputs[0].dtype
}

fn attr_val(e: &nnsmith_solver::IntExpr) -> i64 {
    e.as_const().unwrap_or(0)
}

fn is_conv(op: &Op) -> bool {
    matches!(op, Op::Conv2d { .. })
}

// ---------------------------------------------------------------------------
// The registry.
// ---------------------------------------------------------------------------

/// Builds the full registry of 72 seeded bugs with the Table 3
/// distribution: ortsim 12 (10 transformation + 2 unclassified), tvmsim 40
/// (29 transformation + 11 conversion), trtsim 10 (4 + 2 + 4), exporter 10
/// (conversion); 55 crashes and 17 semantic bugs overall.
pub fn registry() -> Vec<SeededBug> {
    use Phase::*;
    use Symptom::*;
    use System::*;

    let mut bugs: Vec<SeededBug> = Vec::new();
    let mut add = |id: &'static str,
                   system: System,
                   phase: Phase,
                   symptom: Symptom,
                   description: &'static str,
                   detect: Detect| {
        bugs.push(SeededBug {
            id,
            system,
            phase,
            symptom,
            description,
            detect,
        });
    };

    // ---------------- ortsim: 10 transformation (8 crash / 2 semantic) ----
    add(
        "ort-t01",
        OrtSim,
        Transformation,
        Crash,
        "FuseMatMulScale mistakes a 1x1 matrix for a scalar and emits an illegal rewrite",
        pair(
            |_, _, p| matches!(p, Op::Binary(BinaryKind::Mul)),
            |g, id, c| {
                *c == Op::MatMul
                    && g.node(id).inputs.iter().any(|v| {
                        let t = g.value_type(*v);
                        t.rank() == 2 && t.concrete_shape().is_some_and(|s| s == vec![1, 1])
                    })
            },
        ),
    );
    add(
        "ort-t02",
        OrtSim,
        Transformation,
        Semantic,
        "ReLU+Clip fusion runs the fused kernel in single precision for f64 tensors",
        pair(
            |g, id, p| matches!(p, Op::Unary(UnaryKind::Relu)) && out_dtype(g, id) == DType::F64,
            |_, _, c| matches!(c, Op::Clip { .. }),
        ),
    );
    add(
        "ort-t03",
        OrtSim,
        Transformation,
        Crash,
        "BiasSoftmax fusion crashes when the Add broadcast expands a middle dimension",
        pair(
            |g, id, p| {
                matches!(p, Op::Binary(BinaryKind::Add))
                    && input_rank(g, id, 0) != input_rank(g, id, 1)
            },
            |_, _, c| matches!(c, Op::Softmax { .. }),
        ),
    );
    add(
        "ort-t04",
        OrtSim,
        Transformation,
        Crash,
        "Gemm fusion assumes rank-2 MatMul and crashes on batched operands",
        pair(
            |g, id, p| *p == Op::MatMul && out_rank(g, id) >= 3,
            |_, _, c| matches!(c, Op::Binary(BinaryKind::Add)),
        ),
    );
    add(
        "ort-t05",
        OrtSim,
        Transformation,
        Crash,
        "constant-folding of Pad with negative padding indexes out of bounds",
        any_op(|_, _, op| {
            matches!(op, Op::Pad { pads, kind: PadKind::Constant }
                if pads.iter().any(|(b, a)| attr_val(b) < 0 || attr_val(a) < 0))
        }),
    );
    add(
        "ort-t06",
        OrtSim,
        Transformation,
        Semantic,
        "Sub(x, x) is simplified to a zero constant, dropping NaN semantics",
        any_op(|g, id, op| {
            matches!(op, Op::Binary(BinaryKind::Sub)) && {
                let ins = &g.node(id).inputs;
                ins.len() == 2 && ins[0] == ins[1]
            }
        }),
    );
    add(
        "ort-t07",
        OrtSim,
        Transformation,
        Crash,
        "transpose-elimination pass mishandles 4-D permutations that swap the batch axis",
        any_op(|_, _, op| matches!(op, Op::Transpose { perm } if perm.len() == 4 && perm[0] != 0)),
    );
    add(
        "ort-t08",
        OrtSim,
        Transformation,
        Crash,
        "Where-condition constant folding crashes when the condition is a broadcast scalar",
        any_op(|g, id, op| *op == Op::Where && input_rank(g, id, 0) == Some(0)),
    );
    add(
        "ort-t09",
        OrtSim,
        Transformation,
        Crash,
        "reduction-to-scalar fusion emits a kernel with zero output dims",
        any_op(|g, id, op| matches!(op, Op::Reduce { .. }) && out_rank(g, id) == 0),
    );
    add(
        "ort-t10",
        OrtSim,
        Transformation,
        Crash,
        "concat-of-three canonicalization drops the middle operand's type check",
        any_op(|_, _, op| matches!(op, Op::Concat { n: 3, .. })),
    );
    // ---------------- ortsim: 2 unclassified (1 crash / 1 semantic) -------
    add(
        "ort-u01",
        OrtSim,
        Unclassified,
        Crash,
        "f64 ArgMin hits an unimplemented kernel specialization",
        any_op(|g, id, op| {
            matches!(op, Op::ArgExtreme { largest: false, .. })
                && g.node(id)
                    .inputs
                    .first()
                    .is_some_and(|v| g.value_type(*v).dtype == DType::F64)
        }),
    );
    add(
        "ort-u02",
        OrtSim,
        Unclassified,
        Semantic,
        "LeakyRelu of a rank-0 tensor silently uses slope 0",
        any_op(|g, id, op| matches!(op, Op::Unary(UnaryKind::LeakyRelu)) && out_rank(g, id) == 0),
    );

    // ---------------- tvmsim: 29 transformation (24 crash / 5 semantic) ---
    // Wrong layout analysis (7 — §5.4's layout-bug family).
    add(
        "tvm-layout-1",
        TvmSim,
        Transformation,
        Crash,
        "NCHW4c rewrite crashes when Conv2d feeds a Slice with channel stride > 1",
        pair(is_conv_pred(), |g, id, c| {
            matches!(c, Op::Slice { steps, .. } if steps.len() > 1 && steps[1] > 1)
                && input_rank(g, id, 0) == Some(4)
        }),
    );
    add(
        "tvm-layout-2",
        TvmSim,
        Transformation,
        Crash,
        "NCHW4c rewrite cannot adapt a channel-axis Reduce consumer",
        pair(
            is_conv_pred(),
            |_, _, c| matches!(c, Op::Reduce { axes, .. } if axes.contains(&1)),
        ),
    );
    add(
        "tvm-layout-3",
        TvmSim,
        Transformation,
        Crash,
        "NCHW4c rewrite mis-sizes the packed buffer for a channel-axis Concat",
        pair(is_conv_pred(), |_, _, c| {
            matches!(c, Op::Concat { axis: 1, .. })
        }),
    );
    add(
        "tvm-layout-4",
        TvmSim,
        Transformation,
        Crash,
        "layout adaptation of Transpose moving the channel axis is wrong",
        pair(
            is_conv_pred(),
            |_, _, c| matches!(c, Op::Transpose { perm } if perm.len() == 4 && perm[1] != 1),
        ),
    );
    add(
        "tvm-layout-5",
        TvmSim,
        Transformation,
        Crash,
        "packed-layout Resize reads the sub-channel dimension as spatial",
        pair(is_conv_pred(), |_, _, c| {
            matches!(c, Op::ResizeNearest { .. })
        }),
    );
    add(
        "tvm-layout-6",
        TvmSim,
        Transformation,
        Semantic,
        "layout-aware BatchNorm folds statistics with the packed channel order",
        pair(is_conv_pred(), |_, _, c| matches!(c, Op::BatchNorm)),
    );
    add(
        "tvm-layout-7",
        TvmSim,
        Transformation,
        Crash,
        "NCHW4c boundary insertion fails when the conv result is broadcast against rank-3",
        pair(is_conv_pred(), |g, id, c| {
            matches!(c, Op::Binary(_))
                && g.node(id)
                    .inputs
                    .iter()
                    .any(|v| g.value_type(*v).rank() == 3)
        }),
    );
    // Integer type mismatch (9 — the int32/int64 family).
    let int_mismatch: [(&'static str, Detect); 9] = [
        (
            "tvm-int-1",
            pair(
                |_, _, p| matches!(p, Op::Reshape { .. }),
                |_, _, c| matches!(c, Op::Concat { .. }),
            ),
        ),
        (
            "tvm-int-2",
            pair(
                |_, _, p| matches!(p, Op::Reshape { .. }),
                |_, _, c| matches!(c, Op::Slice { .. }),
            ),
        ),
        (
            "tvm-int-3",
            pair(
                |_, _, p| matches!(p, Op::BroadcastTo { .. }),
                |_, _, c| matches!(c, Op::Reshape { .. }),
            ),
        ),
        (
            "tvm-int-4",
            any_op(|g, id, op| {
                matches!(op, Op::Reshape { .. })
                    && out_dtype(g, id).is_int()
                    && out_rank(g, id) >= 3
            }),
        ),
        (
            "tvm-int-5",
            pair(
                |_, _, p| matches!(p, Op::Reshape { .. }),
                |_, _, c| matches!(c, Op::Reshape { .. }),
            ),
        ),
        (
            "tvm-int-6",
            any_op(
                |g, id, op| matches!(op, Op::BroadcastTo { dims } if dims.len() > input_rank(g, id, 0).unwrap_or(0)),
            ),
        ),
        (
            "tvm-int-7",
            pair(
                |_, _, p| matches!(p, Op::Flatten { .. }),
                |_, _, c| matches!(c, Op::Reshape { .. }),
            ),
        ),
        (
            "tvm-int-8",
            pair(
                |_, _, p| matches!(p, Op::Unsqueeze { .. }),
                |_, _, c| matches!(c, Op::BroadcastTo { .. }),
            ),
        ),
        (
            "tvm-int-9",
            any_op(|g, id, op| {
                matches!(op, Op::Reshape { dims } if dims.iter().any(|d| attr_val(d) >= 128))
                    && out_dtype(g, id) == DType::I64
            }),
        ),
    ];
    for (id, det) in int_mismatch {
        add(
            id,
            TvmSim,
            Transformation,
            Crash,
            "int32/int64 index-width mismatch introduced by shape-carrying operators",
            det,
        );
    }
    // Wrong expression simplification & misc transformation (13 more:
    // 8 crash / 4 semantic + 1 crash = adjust to reach 24c/5s overall).
    add(
        "tvm-simpl-1",
        TvmSim,
        Transformation,
        Semantic,
        "arithmetic rewrite switches floor-div and mul: (x/c)*c simplified to x for ints",
        pair(
            |g, id, p| matches!(p, Op::Binary(BinaryKind::Div)) && out_dtype(g, id).is_int(),
            |_, _, c| matches!(c, Op::Binary(BinaryKind::Mul)),
        ),
    );
    add(
        "tvm-simpl-2",
        TvmSim,
        Transformation,
        Semantic,
        "Pow(x, 2) strength reduction to x*x ignores negative-zero semantics",
        pair(
            |_, _, p| matches!(p, Op::Binary(BinaryKind::Pow)),
            |_, _, c| matches!(c, Op::Unary(UnaryKind::Sqrt)),
        ),
    );
    add(
        "tvm-simpl-3",
        TvmSim,
        Transformation,
        Crash,
        "fusion of a reduce epilogue into grouped Conv2d with dilation > 1 crashes",
        any_op(|_, _, op| matches!(op, Op::Conv2d { dilation, .. } if attr_val(dilation) > 1)),
    );
    add(
        "tvm-simpl-4",
        TvmSim,
        Transformation,
        Crash,
        "simplifier folds Min(x, x) but leaves a dangling type var for bool outputs",
        any_op(|g, id, op| {
            matches!(op, Op::Compare(CompareKind::LessEqual)) && out_rank(g, id) >= 3
        }),
    );
    add(
        "tvm-simpl-5",
        TvmSim,
        Transformation,
        Semantic,
        "ReduceProd reassociation overflows the accumulator dtype for i32",
        any_op(|g, id, op| {
            matches!(
                op,
                Op::Reduce {
                    kind: ReduceKind::Prod,
                    ..
                }
            ) && out_dtype(g, id) == DType::I32
        }),
    );
    add(
        "tvm-pass-1",
        TvmSim,
        Transformation,
        Crash,
        "loop tiling asserts on pooling windows with padding == kernel-1",
        any_op(
            |_, _, op| matches!(op, Op::MaxPool2d { kh, padding, .. } if attr_val(padding) == attr_val(kh) - 1 && attr_val(padding) > 0),
        ),
    );
    add(
        "tvm-pass-2",
        TvmSim,
        Transformation,
        Crash,
        "vectorizer crashes on AvgPool with stride > kernel",
        any_op(|_, _, op| {
            matches!(op, Op::AvgPool2d { kh, kw, stride, .. }
                if attr_val(stride) > attr_val(kh).min(attr_val(kw)))
        }),
    );
    add(
        "tvm-pass-3",
        TvmSim,
        Transformation,
        Crash,
        "unroller mishandles Slice whose step exceeds the remaining extent",
        any_op(|g, id, op| {
            matches!(op, Op::Slice { steps, .. } if steps.iter().any(|&s| s >= 3))
                && out_rank(g, id) >= 2
        }),
    );
    add(
        "tvm-pass-4",
        TvmSim,
        Transformation,
        Crash,
        "reflect-pad lowering reads one element past the mirror boundary",
        any_op(|_, _, op| {
            matches!(
                op,
                Op::Pad {
                    kind: PadKind::Reflect,
                    ..
                }
            )
        }),
    );
    add(
        "tvm-pass-5",
        TvmSim,
        Transformation,
        Crash,
        "softmax on the outermost axis of a rank-4 tensor breaks the fused schedule",
        any_op(|g, id, op| matches!(op, Op::Softmax { axis: 0 }) && out_rank(g, id) == 4),
    );
    add(
        "tvm-pass-6",
        TvmSim,
        Transformation,
        Crash,
        "dense-to-matmul canonicalization crashes for rank-1 activations",
        any_op(|g, id, op| matches!(op, Op::Dense { .. }) && input_rank(g, id, 0) == Some(1)),
    );
    add(
        "tvm-pass-7",
        TvmSim,
        Transformation,
        Crash,
        "replicate-pad of a padded conv output double-counts the halo",
        pair(
            |_, _, p| matches!(p, Op::Conv2d { padding, .. } if attr_val(padding) > 0),
            |_, _, c| {
                matches!(
                    c,
                    Op::Pad {
                        kind: PadKind::Replicate,
                        ..
                    }
                )
            },
        ),
    );
    add(
        "tvm-pass-8",
        TvmSim,
        Transformation,
        Semantic,
        "fused Sigmoid+Floor kernel clamps instead of flooring near 1.0",
        pair(
            |_, _, p| matches!(p, Op::Unary(UnaryKind::Sigmoid)),
            |_, _, c| matches!(c, Op::Unary(UnaryKind::Floor)),
        ),
    );
    // ---------------- tvmsim: 11 conversion (9 crash / 2 semantic) --------
    // Scalar handling (6 crash — the reduce-with-scalar family).
    let scalar_kinds: [(&'static str, ReduceKind); 4] = [
        ("tvm-conv-1", ReduceKind::Sum),
        ("tvm-conv-2", ReduceKind::Mean),
        ("tvm-conv-3", ReduceKind::Max),
        ("tvm-conv-4", ReduceKind::Min),
    ];
    for (id, kind) in scalar_kinds {
        add(
            id,
            TvmSim,
            Conversion,
            Crash,
            "importer crashes on reduce-like operators producing scalars",
            any_op(move |g, nid, op| {
                matches!(op, Op::Reduce { kind: k, .. } if *k == kind) && out_rank(g, nid) == 0
            }),
        );
    }
    add(
        "tvm-conv-5",
        TvmSim,
        Conversion,
        Crash,
        "importer crashes on ArgMax collapsing a rank-1 tensor to a scalar",
        any_op(|g, id, op| matches!(op, Op::ArgExtreme { .. }) && out_rank(g, id) == 0),
    );
    add(
        "tvm-conv-6",
        TvmSim,
        Conversion,
        Crash,
        "importer crashes on a dot-product MatMul producing a scalar",
        any_op(|g, id, op| *op == Op::MatMul && out_rank(g, id) == 0),
    );
    // Wrong broadcasting (2).
    add(
        "tvm-conv-7",
        TvmSim,
        Conversion,
        Crash,
        "Where shape inference ignores the lowest-ranked operand (3-way broadcast)",
        any_op(|g, id, op| {
            *op == Op::Where && {
                let r0 = input_rank(g, id, 0).unwrap_or(0);
                let r1 = input_rank(g, id, 1).unwrap_or(0);
                let r2 = input_rank(g, id, 2).unwrap_or(0);
                let max = r0.max(r1).max(r2);
                let min = r0.min(r1).min(r2);
                max >= 2 && min + 2 <= max
            }
        }),
    );
    add(
        "tvm-conv-8",
        TvmSim,
        Conversion,
        Crash,
        "MatMul import fails on single-rank broadcasting (vector operand)",
        any_op(|g, id, op| {
            *op == Op::MatMul
                && (input_rank(g, id, 0) == Some(1)) != (input_rank(g, id, 1) == Some(1))
        }),
    );
    add(
        "tvm-conv-9",
        TvmSim,
        Conversion,
        Crash,
        "importer rejects boolean Concat despite advertising support",
        any_op(|g, id, op| matches!(op, Op::Concat { .. }) && out_dtype(g, id) == DType::Bool),
    );
    add(
        "tvm-conv-10",
        TvmSim,
        Conversion,
        Semantic,
        "importer casts Clip bounds through f32, corrupting large i64 limits",
        any_op(|g, id, op| matches!(op, Op::Clip { .. }) && out_dtype(g, id) == DType::I64),
    );
    add(
        "tvm-conv-11",
        TvmSim,
        Conversion,
        Semantic,
        "scalar Ones-like constants imported as rank-1, shifting broadcast results",
        any_op(|g, id, op| {
            matches!(op, Op::Binary(_))
                && input_rank(g, id, 0) == Some(0)
                && input_rank(g, id, 1).is_some_and(|r| r >= 2)
        }),
    );

    // ---------------- trtsim: 4 transformation (2 crash / 2 semantic) -----
    add(
        "trt-t1",
        TrtSim,
        Transformation,
        Crash,
        "kernel autotuner crashes on Conv2d with kernel 1x1 and stride > 2",
        any_op(|_, _, op| {
            matches!(op, Op::Conv2d { kh, kw, stride, .. }
                if attr_val(kh) == 1 && attr_val(kw) == 1 && attr_val(stride) > 2)
        }),
    );
    add(
        "trt-t2",
        TrtSim,
        Transformation,
        Semantic,
        "fp16-path selection silently engages for f32 softmax over > 1024 elements",
        any_op(|g, id, op| {
            matches!(op, Op::Softmax { .. })
                && g.node(id).outputs[0]
                    .concrete_dims()
                    .is_some_and(|d| d.iter().product::<usize>() > 1024)
        }),
    );
    add(
        "trt-t3",
        TrtSim,
        Transformation,
        Crash,
        "tactic selection fails for back-to-back pooling with different paddings",
        pair(
            |_, _, p| matches!(p, Op::MaxPool2d { .. } | Op::AvgPool2d { .. }),
            |_, _, c| matches!(c, Op::MaxPool2d { .. } | Op::AvgPool2d { .. }),
        ),
    );
    add(
        "trt-t4",
        TrtSim,
        Transformation,
        Semantic,
        "horizontal fusion of sibling Mul consumers reorders reductions",
        Arc::new(|g: &Graph<Op>| {
            // A value with two distinct Mul consumers.
            let counts = g.consumer_counts();
            counts.iter().any(|(v, &c)| {
                c >= 2
                    && op_nodes(g)
                        .filter(|(id, op)| {
                            matches!(op, Op::Binary(BinaryKind::Mul))
                                && g.node(*id).inputs.contains(v)
                        })
                        .count()
                        >= 2
            })
        }),
    );
    // ---------------- trtsim: 2 conversion (1 crash / 1 semantic) ---------
    add(
        "trt-c1",
        TrtSim,
        Conversion,
        Crash,
        "parser rejects rank-0 network inputs",
        Arc::new(|g: &Graph<Op>| {
            g.iter()
                .any(|(_, n)| matches!(n.kind, NodeKind::Input) && n.outputs[0].rank() == 0)
        }),
    );
    add(
        "trt-c2",
        TrtSim,
        Conversion,
        Semantic,
        "int32 Clip attributes are reinterpreted as raw bit patterns",
        any_op(|g, id, op| matches!(op, Op::Clip { .. }) && out_dtype(g, id) == DType::I32),
    );
    // ---------------- trtsim: 4 unclassified (2 crash / 2 semantic) -------
    add(
        "trt-u1",
        TrtSim,
        Unclassified,
        Crash,
        "engine building aborts for Where with boolean broadcast over rank 4",
        any_op(|g, id, op| *op == Op::Where && out_rank(g, id) == 4),
    );
    add(
        "trt-u2",
        TrtSim,
        Unclassified,
        Semantic,
        "i64 tensors are silently narrowed to i32 inside fused regions",
        pair(
            |g, id, p| matches!(p, Op::Binary(_)) && out_dtype(g, id) == DType::I64,
            |_, _, c| matches!(c, Op::Binary(_)),
        ),
    );
    add(
        "trt-u3",
        TrtSim,
        Unclassified,
        Crash,
        "builder crashes when a Pad output feeds a Reshape",
        pair(
            |_, _, p| matches!(p, Op::Pad { .. }),
            |_, _, c| matches!(c, Op::Reshape { .. }),
        ),
    );
    add(
        "trt-u4",
        TrtSim,
        Unclassified,
        Semantic,
        "ReduceMean over two axes uses the wrong divisor in the fast path",
        any_op(
            |_, _, op| matches!(op, Op::Reduce { kind: ReduceKind::Mean, axes, .. } if axes.len() >= 2),
        ),
    );

    // ---------------- exporter: 10 conversion (8 crash / 2 semantic) ------
    add(
        "exp-1",
        Exporter,
        Conversion,
        Semantic,
        "Log2 of a scalar is exported with a rank-1 output (the §5.4 Log2 bug)",
        any_op(|g, id, op| matches!(op, Op::Unary(UnaryKind::Log2)) && out_rank(g, id) == 0),
    );
    add(
        "exp-2",
        Exporter,
        Conversion,
        Semantic,
        "int32 Clip is exported against an opset that lacks it, mangling attributes",
        any_op(|g, id, op| {
            matches!(op, Op::Clip { lo, .. } if *lo < 0) && out_dtype(g, id).is_int()
        }),
    );
    let exporter_crashes: [(&'static str, Detect); 8] = [
        (
            "exp-3",
            any_op(|g, id, op| matches!(op, Op::Unary(UnaryKind::Round)) && out_rank(g, id) == 0),
        ),
        (
            "exp-4",
            any_op(|g, id, op| matches!(op, Op::Squeeze { .. }) && out_rank(g, id) == 0),
        ),
        (
            "exp-5",
            any_op(|g, id, op| {
                matches!(op, Op::Unsqueeze { axis } if *axis + 1 == out_rank(g, id))
                    && out_rank(g, id) >= 4
            }),
        ),
        (
            "exp-6",
            pair(
                |_, _, p| matches!(p, Op::Cast { .. }),
                |_, _, c| matches!(c, Op::Cast { .. }),
            ),
        ),
        (
            "exp-7",
            any_op(|_, _, op| {
                matches!(op, Op::Pad { pads, .. } if pads.len() >= 4
                    && pads.iter().all(|(b, a)| attr_val(b) == 0 && attr_val(a) == 0))
            }),
        ),
        (
            "exp-8",
            any_op(|g, id, op| matches!(op, Op::Logical(_)) && out_rank(g, id) == 0),
        ),
        (
            "exp-9",
            any_op(
                |g, id, op| matches!(op, Op::Reduce { axes, keepdims: true, .. } if axes.len() == input_rank(g, id, 0).unwrap_or(0)),
            ),
        ),
        (
            "exp-10",
            any_op(|g, id, op| {
                matches!(op, Op::Flatten { axis: 0 }) && input_rank(g, id, 0).unwrap_or(0) >= 3
            }),
        ),
    ];
    for (id, det) in exporter_crashes {
        add(
            id,
            Exporter,
            Conversion,
            Crash,
            "exporter crash on an edge-case operator configuration",
            det,
        );
    }

    bugs
}

fn is_conv_pred() -> impl Fn(&Graph<Op>, NodeId, &Op) -> bool + Send + Sync + 'static {
    |_, _, op| is_conv(op)
}

/// Bugs seeded in one system.
pub fn bugs_for(system: System) -> Vec<SeededBug> {
    registry()
        .into_iter()
        .filter(|b| b.system == system)
        .collect()
}

/// Looks up one seeded bug by id — the join a triage bin uses to label
/// its `seeded:` signatures with system/phase/symptom for Table 3.
pub fn bug_by_id(id: &str) -> Option<SeededBug> {
    registry().into_iter().find(|b| b.id == id)
}

impl Phase {
    /// Table 3 column label.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Transformation => "transformation",
            Phase::Conversion => "conversion",
            Phase::Unclassified => "unclassified",
        }
    }
}

impl Symptom {
    /// Table 3 row label.
    pub fn name(self) -> &'static str {
        match self {
            Symptom::Crash => "crash",
            Symptom::Semantic => "semantic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_graph::{TensorType, ValueRef};
    use nnsmith_solver::IntExpr;

    #[test]
    fn registry_matches_table3_totals() {
        let bugs = registry();
        assert_eq!(bugs.len(), 72, "total bugs");
        let count = |s: System| bugs.iter().filter(|b| b.system == s).count();
        assert_eq!(count(System::OrtSim), 12);
        assert_eq!(count(System::TvmSim), 40);
        assert_eq!(count(System::TrtSim), 10);
        assert_eq!(count(System::Exporter), 10);
        let crashes = bugs.iter().filter(|b| b.symptom == Symptom::Crash).count();
        let semantic = bugs
            .iter()
            .filter(|b| b.symptom == Symptom::Semantic)
            .count();
        assert_eq!(crashes, 55);
        assert_eq!(semantic, 17);
        let transf = bugs
            .iter()
            .filter(|b| b.phase == Phase::Transformation)
            .count();
        let conv = bugs.iter().filter(|b| b.phase == Phase::Conversion).count();
        let uncl = bugs
            .iter()
            .filter(|b| b.phase == Phase::Unclassified)
            .count();
        assert_eq!(transf, 43);
        assert_eq!(conv, 23);
        assert_eq!(uncl, 6);
    }

    #[test]
    fn bug_ids_unique() {
        let bugs = registry();
        let mut ids: Vec<&str> = bugs.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn matmul_1x1_triggers_fusematmulscale() {
        // Mul -> MatMul(1x1 rhs) — the M0-like ort-t01 pattern.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[3, 1])],
        );
        let s = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[3, 1])],
        );
        let mul = g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Mul)),
            vec![ValueRef::output0(x), ValueRef::output0(s)],
            vec![TensorType::concrete(DType::F32, &[3, 1])],
        );
        let one = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[1, 1])],
        );
        g.add_node(
            NodeKind::Operator(Op::MatMul),
            vec![ValueRef::output0(mul), ValueRef::output0(one)],
            vec![TensorType::concrete(DType::F32, &[3, 1])],
        );
        let bug = registry().into_iter().find(|b| b.id == "ort-t01").unwrap();
        assert!(bug.triggers(&g));
    }

    #[test]
    fn plain_relu_graph_triggers_nothing() {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[2, 2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[2, 2])],
        );
        for bug in registry() {
            assert!(!bug.triggers(&g), "{} fired on a trivial graph", bug.id);
        }
    }

    #[test]
    fn conv_slice_strided_triggers_layout_bug() {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[1, 4, 8, 8])],
        );
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4, 4, 1, 1])],
        );
        let b = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let conv = g.add_node(
            NodeKind::Operator(Op::Conv2d {
                in_channels: IntExpr::Const(4),
                out_channels: IntExpr::Const(4),
                kh: IntExpr::Const(1),
                kw: IntExpr::Const(1),
                stride: IntExpr::Const(1),
                padding: IntExpr::Const(0),
                dilation: IntExpr::Const(1),
            }),
            vec![
                ValueRef::output0(x),
                ValueRef::output0(w),
                ValueRef::output0(b),
            ],
            vec![TensorType::concrete(DType::F32, &[1, 4, 8, 8])],
        );
        g.add_node(
            NodeKind::Operator(Op::Slice {
                starts: vec![IntExpr::Const(0); 4],
                ends: vec![
                    IntExpr::Const(1),
                    IntExpr::Const(4),
                    IntExpr::Const(8),
                    IntExpr::Const(8),
                ],
                steps: vec![1, 2, 1, 1],
            }),
            vec![ValueRef::output0(conv)],
            vec![TensorType::concrete(DType::F32, &[1, 2, 8, 8])],
        );
        let bug = registry()
            .into_iter()
            .find(|b| b.id == "tvm-layout-1")
            .unwrap();
        assert!(bug.triggers(&g));
        // GraphFuzzer-style stride-1 slice must NOT trigger it.
        let mut g2 = g.clone();
        if let NodeKind::Operator(Op::Slice { steps, .. }) = &mut g2.node_mut(NodeId(4)).kind {
            steps[1] = 1;
        }
        assert!(!bug.triggers(&g2));
    }

    #[test]
    fn bug_config_toggles() {
        let mut cfg = BugConfig::all_on();
        assert!(cfg.enabled("tvm-layout-1"));
        cfg.disable("tvm-layout-1");
        assert!(!cfg.enabled("tvm-layout-1"));
        assert!(cfg.enabled("tvm-layout-2"));
        let off = BugConfig::none();
        assert!(!off.enabled("tvm-layout-2"));
    }
}
