//! The simulated compilers' internal IR.
//!
//! Importing a model converts the interchange graph (`Graph<Op>` — the
//! ONNX role) into a [`CGraph`]: weights become embedded constants (so
//! constant folding has something to fold), operators become
//! [`COp::Primitive`] nodes, and passes may rewrite nodes into
//! [`COp::Fused`] kernels or [`COp::Constant`]s. Every node carries layout
//! and index-dtype metadata that the layout and typing passes manipulate.

use std::collections::HashMap;

use nnsmith_graph::{Graph, NodeId, NodeKind, ValueRef};
use nnsmith_ops::{Bindings, Op};
use nnsmith_tensor::{DType, Tensor, TensorError};

/// Memory layout annotation (the TVM-style `NCHW` vs `NCHW4c` rewrite).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Plain row-major NCHW.
    Nchw,
    /// Channel-packed SIMD-friendly layout (`N C/4 H W 4c`).
    Nchw4c,
}

/// Index-arithmetic width chosen by the typing pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexWidth {
    /// 32-bit indexing.
    I32,
    /// 64-bit indexing (introduced by shape-carrying operators).
    I64,
}

/// A compiler-IR operation.
#[derive(Debug, Clone, PartialEq)]
pub enum COp {
    /// A single tensor operator.
    Primitive(Op),
    /// A fused kernel executing the operators in sequence, each consuming
    /// the previous result as its first input (classic elementwise-chain
    /// fusion). The remaining inputs of each fused operator must have been
    /// captured at fusion time.
    Fused {
        /// The fused operator sequence.
        ops: Vec<Op>,
        /// Human-readable kernel name (e.g. `"BiasSoftmax"`).
        kernel: &'static str,
        /// If true, the fused kernel internally computes at `f32` even for
        /// `f64` tensors (the seeded ortsim precision bug).
        narrow_precision: bool,
    },
    /// A folded constant.
    Constant(Tensor),
}

/// A compiler-IR node.
#[derive(Debug, Clone, PartialEq)]
pub struct CNode {
    /// The operation.
    pub op: COp,
    /// Input values.
    pub inputs: Vec<CValue>,
    /// Concrete output shape (single output).
    pub shape: Vec<usize>,
    /// Output dtype.
    pub dtype: DType,
    /// Layout annotation.
    pub layout: Layout,
    /// Index width annotation.
    pub index_width: IndexWidth,
}

/// A reference to a compiler-IR value (node output or model input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CValue {
    /// The output of node `usize`.
    Node(usize),
    /// Model input `usize` (position in [`CGraph::inputs`]).
    Input(usize),
}

/// The compiler-internal graph.
#[derive(Debug, Clone, PartialEq)]
pub struct CGraph {
    /// Nodes in topological order.
    pub nodes: Vec<CNode>,
    /// Model inputs: `(original node id, shape, dtype)`.
    pub inputs: Vec<(NodeId, Vec<usize>, DType)>,
    /// Output values, in a stable order.
    pub outputs: Vec<CValue>,
}

/// Compile-time errors of the simulated compilers.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// The model could not be imported.
    Import(String),
    /// A pass crashed — either a genuine invariant violation or a seeded
    /// bug firing.
    Crash {
        /// Pass or component that crashed.
        component: &'static str,
        /// Message; seeded bugs embed their bug id.
        message: String,
    },
    /// The model uses something this compiler does not support.
    NotImplemented(String),
    /// The model uses an element type outside the compiler's support
    /// matrix ([`crate::Compiler::supports_dtype`]). A structured
    /// `NotImplemented`: callers that only care about "supported or not"
    /// can treat both alike, while support-matrix probing can match the
    /// dtype precisely instead of parsing a message.
    UnsupportedDtype(DType),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Import(m) => write!(f, "import error: {m}"),
            CompileError::Crash { component, message } => {
                write!(f, "crash in {component}: {message}")
            }
            CompileError::NotImplemented(m) => write!(f, "not implemented: {m}"),
            CompileError::UnsupportedDtype(d) => {
                write!(f, "not implemented: {d} tensors are not supported")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl CGraph {
    /// Imports an interchange graph. Weights are embedded as constants;
    /// inputs stay symbolic.
    ///
    /// # Errors
    ///
    /// Fails when the graph is structurally broken, not concrete, or a
    /// weight binding is missing.
    pub fn import(graph: &Graph<Op>, weights: &Bindings) -> Result<CGraph, CompileError> {
        let order = graph
            .topo_order()
            .map_err(|e| CompileError::Import(format!("{e}")))?;
        let mut nodes: Vec<CNode> = Vec::new();
        let mut inputs: Vec<(NodeId, Vec<usize>, DType)> = Vec::new();
        let mut value_map: HashMap<ValueRef, CValue> = HashMap::new();

        for id in order {
            let node = graph.node(id);
            let ttype = &node.outputs[0];
            let shape = ttype
                .concrete_dims()
                .ok_or_else(|| CompileError::Import(format!("node {id} not concrete")))?;
            match &node.kind {
                NodeKind::Placeholder => {
                    return Err(CompileError::Import(format!("placeholder {id} remains")))
                }
                NodeKind::Input => {
                    let idx = inputs.len();
                    inputs.push((id, shape, ttype.dtype));
                    value_map.insert(ValueRef::output0(id), CValue::Input(idx));
                }
                NodeKind::Weight => {
                    let t = weights
                        .get(&id)
                        .ok_or_else(|| CompileError::Import(format!("missing weight for {id}")))?;
                    let cidx = nodes.len();
                    nodes.push(CNode {
                        op: COp::Constant(t.clone()),
                        inputs: vec![],
                        shape,
                        dtype: ttype.dtype,
                        layout: Layout::Nchw,
                        index_width: IndexWidth::I32,
                    });
                    value_map.insert(ValueRef::output0(id), CValue::Node(cidx));
                }
                NodeKind::Operator(op) => {
                    let cinputs: Vec<CValue> = node
                        .inputs
                        .iter()
                        .map(|v| *value_map.get(v).expect("topo order"))
                        .collect();
                    let cidx = nodes.len();
                    nodes.push(CNode {
                        op: COp::Primitive(op.clone()),
                        inputs: cinputs,
                        shape,
                        dtype: ttype.dtype,
                        layout: Layout::Nchw,
                        index_width: IndexWidth::I32,
                    });
                    value_map.insert(ValueRef::output0(id), CValue::Node(cidx));
                }
            }
        }

        // Keep the interchange graph's output order (sorted by original
        // node id, matching the reference executor) — the compiled model
        // must report outputs in the same order the oracle does.
        let mut source_outputs = graph.output_values();
        source_outputs.sort_by_key(|v| (v.node, v.index));
        let outputs: Vec<CValue> = source_outputs
            .into_iter()
            .map(|v| *value_map.get(&v).expect("mapped"))
            .collect();
        Ok(CGraph {
            nodes,
            inputs,
            outputs,
        })
    }

    /// Consumers of each node output (`node index → consumer node
    /// indices`).
    pub fn consumers(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for v in &n.inputs {
                if let CValue::Node(p) = v {
                    out[*p].push(i);
                }
            }
        }
        out
    }

    /// Number of live (reachable from outputs) nodes.
    pub fn live_count(&self) -> usize {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self
            .outputs
            .iter()
            .filter_map(|v| match v {
                CValue::Node(i) => Some(*i),
                CValue::Input(_) => None,
            })
            .collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            for v in &self.nodes[i].inputs {
                if let CValue::Node(p) = v {
                    stack.push(*p);
                }
            }
        }
        live.iter().filter(|&&l| l).count()
    }

    /// Executes the compiled graph.
    ///
    /// # Errors
    ///
    /// Fails when inputs disagree with the import-time signature or a
    /// kernel faults.
    pub fn run(&self, inputs: &HashMap<NodeId, Tensor>) -> Result<Vec<Tensor>, TensorError> {
        let mut values: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        let input_tensors: Vec<&Tensor> = self
            .inputs
            .iter()
            .map(|(id, shape, dtype)| {
                let t = inputs
                    .get(id)
                    .ok_or_else(|| TensorError::shape(format!("missing input for {id}")))?;
                if t.shape() != shape.as_slice() || t.dtype() != *dtype {
                    return Err(TensorError::shape(format!("input {id} signature mismatch")));
                }
                Ok(t)
            })
            .collect::<Result<_, TensorError>>()?;

        let fetch = |values: &Vec<Option<Tensor>>, v: &CValue| -> Tensor {
            match v {
                CValue::Node(i) => values[*i].clone().expect("topological order"),
                CValue::Input(i) => input_tensors[*i].clone(),
            }
        };

        for i in 0..self.nodes.len() {
            let node = &self.nodes[i];
            let result = match &node.op {
                COp::Constant(t) => t.clone(),
                COp::Primitive(op) => {
                    let ins: Vec<Tensor> = node.inputs.iter().map(|v| fetch(&values, v)).collect();
                    let refs: Vec<&Tensor> = ins.iter().collect();
                    op.eval(&refs)?.remove(0)
                }
                COp::Fused {
                    ops,
                    narrow_precision,
                    ..
                } => {
                    let mut ins: Vec<Tensor> =
                        node.inputs.iter().map(|v| fetch(&values, v)).collect();
                    if ops.is_empty() {
                        // Identity forward (simplifier-produced).
                        values[i] = Some(ins.remove(0));
                        continue;
                    }
                    let orig_dtype = ins
                        .first()
                        .map(Tensor::dtype)
                        .unwrap_or(nnsmith_tensor::DType::F32);
                    if *narrow_precision {
                        for t in &mut ins {
                            if t.dtype() == DType::F64 {
                                *t = t.cast(DType::F32);
                            }
                        }
                    }
                    let mut cursor = 0usize;
                    let mut acc: Option<Tensor> = None;
                    for op in ops {
                        let arity = op.arity();
                        let mut call: Vec<Tensor> = Vec::with_capacity(arity);
                        match &acc {
                            None => {
                                call.extend(ins[cursor..cursor + arity].iter().cloned());
                                cursor += arity;
                            }
                            Some(prev) => {
                                call.push(prev.clone());
                                call.extend(ins[cursor..cursor + arity - 1].iter().cloned());
                                cursor += arity - 1;
                            }
                        }
                        let refs: Vec<&Tensor> = call.iter().collect();
                        acc = Some(op.eval(&refs)?.remove(0));
                    }
                    let mut out = acc.expect("fused kernel non-empty");
                    if *narrow_precision && orig_dtype == DType::F64 {
                        out = out.cast(DType::F64);
                    }
                    out
                }
            };
            values[i] = Some(result);
        }

        Ok(self.outputs.iter().map(|v| fetch(&values, v)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_graph::TensorType;
    use nnsmith_ops::{BinaryKind, UnaryKind};

    fn toy() -> (Graph<Op>, Bindings, NodeId) {
        // out = Relu(x + w)
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let add = g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Add)),
            vec![ValueRef::output0(x), ValueRef::output0(w)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
            vec![ValueRef::output0(add)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let mut weights = Bindings::new();
        weights.insert(w, Tensor::from_f32(&[4], vec![-10., 0., 1., 2.]).unwrap());
        (g, weights, x)
    }

    #[test]
    fn import_and_run_match_reference() {
        let (g, weights, x) = toy();
        let cg = CGraph::import(&g, &weights).unwrap();
        assert_eq!(cg.inputs.len(), 1);
        let mut inputs = HashMap::new();
        inputs.insert(x, Tensor::from_f32(&[4], vec![1., 1., 1., 1.]).unwrap());
        let out = cg.run(&inputs).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].as_f32().unwrap(), &[0., 1., 2., 3.]);
    }

    #[test]
    fn missing_weight_is_import_error() {
        let (g, _, _) = toy();
        let err = CGraph::import(&g, &Bindings::new());
        assert!(matches!(err, Err(CompileError::Import(_))));
    }

    #[test]
    fn run_validates_input_signature() {
        let (g, weights, x) = toy();
        let cg = CGraph::import(&g, &weights).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(x, Tensor::zeros(&[5], DType::F32));
        assert!(cg.run(&inputs).is_err());
    }

    #[test]
    fn fused_kernel_runs_chain() {
        // Fused Add→Relu kernel with captured inputs [x, w].
        let (g, weights, x) = toy();
        let mut cg = CGraph::import(&g, &weights).unwrap();
        // Replace the two primitive nodes with one fused node.
        let const_idx = 0usize; // weight constant
        let fused = CNode {
            op: COp::Fused {
                ops: vec![Op::Binary(BinaryKind::Add), Op::Unary(UnaryKind::Relu)],
                kernel: "AddRelu",
                narrow_precision: false,
            },
            inputs: vec![CValue::Input(0), CValue::Node(const_idx)],
            shape: vec![4],
            dtype: DType::F32,
            layout: Layout::Nchw,
            index_width: IndexWidth::I32,
        };
        cg.nodes = vec![cg.nodes[const_idx].clone(), fused];
        cg.outputs = vec![CValue::Node(1)];
        let mut inputs = HashMap::new();
        inputs.insert(x, Tensor::from_f32(&[4], vec![1., 1., 1., 1.]).unwrap());
        let out = cg.run(&inputs).unwrap();
        assert_eq!(out[0].as_f32().unwrap(), &[0., 1., 2., 3.]);
    }

    #[test]
    fn narrow_precision_fusion_changes_f64_results() {
        // f64 values that differ after a roundtrip through f32.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F64, &[1])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F64, &[1])],
        );
        let cg = CGraph::import(&g, &Bindings::new()).unwrap();
        let mut fused = cg.clone();
        fused.nodes[0].op = COp::Fused {
            ops: vec![Op::Unary(UnaryKind::Relu)],
            kernel: "Relu",
            narrow_precision: true,
        };
        let precise = 1.0 + 1e-12; // not representable in f32
        let mut inputs = HashMap::new();
        inputs.insert(x, Tensor::from_f64(&[1], vec![precise]).unwrap());
        let exact = cg.run(&inputs).unwrap();
        let narrowed = fused.run(&inputs).unwrap();
        assert_eq!(exact[0].as_f64().unwrap()[0], precise);
        assert_ne!(narrowed[0].as_f64().unwrap()[0], precise);
    }

    #[test]
    fn live_count_ignores_dead_nodes() {
        let (g, weights, _) = toy();
        let mut cg = CGraph::import(&g, &weights).unwrap();
        // Add an unreachable constant.
        cg.nodes.push(CNode {
            op: COp::Constant(Tensor::zeros(&[1], DType::F32)),
            inputs: vec![],
            shape: vec![1],
            dtype: DType::F32,
            layout: Layout::Nchw,
            index_width: IndexWidth::I32,
        });
        assert_eq!(cg.live_count(), cg.nodes.len() - 1);
    }
}
