//! Source-level branch-coverage instrumentation for the simulated
//! compilers.
//!
//! The paper's coverage experiments (§5.2) trace branch coverage of the
//! real TVM/ONNXRuntime sources. The simulated compilers are instrumented
//! the same way in spirit: every pass and runtime component is a *file*
//! with a declared number of branch sites, and pass code records a hit for
//! each decision it takes (`cov.hit(file, site)`). Many sites are
//! *parametric* — indexed by op kind, dtype, rank or attribute bucket — so
//! structurally-diverse inputs reach more branches, exactly the property
//! the experiments measure.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// What kind of source file a branch belongs to (pass-only coverage of
/// Figure 6 filters on this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileKind {
    /// Graph- or low-level optimization pass (the `transforms`/`optimizer`
    /// directories of the paper).
    Pass,
    /// Frontend / model importer.
    Frontend,
    /// Runtime, kernels and everything else.
    Runtime,
}

/// A declared instrumented file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileDecl {
    /// File name (unique within a compiler).
    pub name: &'static str,
    /// Component kind.
    pub kind: FileKind,
    /// Number of declared branch sites.
    pub branches: u32,
}

/// A compiler's instrumented-source manifest.
#[derive(Debug, Clone)]
pub struct SourceManifest {
    files: Vec<FileDecl>,
}

impl SourceManifest {
    /// Creates a manifest from file declarations.
    ///
    /// # Panics
    ///
    /// Panics if two files share a name.
    pub fn new(files: Vec<FileDecl>) -> Self {
        let mut names: Vec<&str> = files.iter().map(|f| f.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate file names in manifest");
        SourceManifest { files }
    }

    /// Index of a file by name.
    ///
    /// # Panics
    ///
    /// Panics if the file is not declared.
    pub fn file_id(&self, name: &str) -> FileId {
        FileId(
            self.files
                .iter()
                .position(|f| f.name == name)
                .unwrap_or_else(|| panic!("file {name} not in manifest")) as u16,
        )
    }

    /// The declared files.
    pub fn files(&self) -> &[FileDecl] {
        &self.files
    }

    /// Total declared branch count.
    pub fn total_branches(&self) -> u64 {
        self.files.iter().map(|f| f.branches as u64).sum()
    }

    /// Total declared branch count over pass files only.
    pub fn pass_branches(&self) -> u64 {
        self.files
            .iter()
            .filter(|f| f.kind == FileKind::Pass)
            .map(|f| f.branches as u64)
            .sum()
    }
}

/// Identifier of an instrumented file within a manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u16);

/// A single branch: file plus site index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Branch {
    /// Instrumented file.
    pub file: FileId,
    /// Branch site within the file.
    pub site: u32,
}

impl fmt::Display for Branch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}:{}", self.file.0, self.site)
    }
}

/// A set of covered branches. Cheap to merge; used both per-compilation
/// and cumulatively across a fuzzing campaign.
///
/// Serializes as a sorted list of branches, so same-coverage campaigns
/// emit byte-identical JSON regardless of hash-iteration order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageSet {
    hits: HashSet<Branch>,
}

impl CoverageSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        CoverageSet::default()
    }

    /// Records a branch hit. Sites are clamped into the file's declared
    /// range by the caller (see [`Cov::hit`]).
    pub fn insert(&mut self, b: Branch) {
        self.hits.insert(b);
    }

    /// Number of distinct branches covered.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// True if nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Merges another coverage set into this one.
    pub fn merge(&mut self, other: &CoverageSet) {
        self.hits.extend(other.hits.iter().copied());
    }

    /// Merges another coverage set into this one, returning how many of
    /// its branches were *new* — the per-case novelty signal the feedback
    /// loop consumes, without allocating a difference set on the hot path.
    pub fn merge_counting(&mut self, other: &CoverageSet) -> usize {
        let before = self.hits.len();
        self.hits.extend(other.hits.iter().copied());
        self.hits.len() - before
    }

    /// Branches covered here but not in `other`.
    pub fn difference(&self, other: &CoverageSet) -> CoverageSet {
        CoverageSet {
            hits: self.hits.difference(&other.hits).copied().collect(),
        }
    }

    /// Branches covered in both.
    pub fn intersection(&self, other: &CoverageSet) -> CoverageSet {
        CoverageSet {
            hits: self.hits.intersection(&other.hits).copied().collect(),
        }
    }

    /// Iterates over covered branches in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = Branch> + '_ {
        self.hits.iter().copied()
    }

    /// Number of covered branches belonging to pass files.
    pub fn pass_len(&self, manifest: &SourceManifest) -> usize {
        self.hits
            .iter()
            .filter(|b| manifest.files()[b.file.0 as usize].kind == FileKind::Pass)
            .count()
    }
}

/// Recorder handed to passes: scopes hits to one file and clamps sites to
/// the declared branch count (so parametric sites stay in range).
#[derive(Debug)]
pub struct Cov<'a> {
    set: &'a mut CoverageSet,
    file: FileId,
    branches: u32,
}

impl<'a> Cov<'a> {
    /// Creates a recorder for `file`.
    pub fn new(set: &'a mut CoverageSet, manifest: &SourceManifest, name: &str) -> Self {
        let file = manifest.file_id(name);
        let branches = manifest.files()[file.0 as usize].branches;
        Cov {
            set,
            file,
            branches,
        }
    }

    /// Records a hit at `site` (wrapped into the declared range).
    pub fn hit(&mut self, site: u32) {
        self.set.insert(Branch {
            file: self.file,
            site: site % self.branches.max(1),
        });
    }

    /// Records a parametric hit: `base` plus a small index (dtype, rank,
    /// bucketed attribute…), keeping distinct inputs on distinct branches.
    pub fn hit_idx(&mut self, base: u32, index: u32) {
        self.hit(base + index);
    }
}

/// Buckets a value into a small logarithmic index (attribute buckets for
/// parametric branch sites).
pub fn log_bucket(v: i64) -> u32 {
    match v {
        i64::MIN..=-1 => 0,
        0 => 1,
        1 => 2,
        2..=3 => 3,
        4..=7 => 4,
        8..=15 => 5,
        16..=31 => 6,
        _ => 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> SourceManifest {
        SourceManifest::new(vec![
            FileDecl {
                name: "fold.cc",
                kind: FileKind::Pass,
                branches: 50,
            },
            FileDecl {
                name: "runtime.cc",
                kind: FileKind::Runtime,
                branches: 100,
            },
        ])
    }

    #[test]
    fn totals() {
        let m = manifest();
        assert_eq!(m.total_branches(), 150);
        assert_eq!(m.pass_branches(), 50);
    }

    #[test]
    fn hits_are_deduplicated_and_clamped() {
        let m = manifest();
        let mut set = CoverageSet::new();
        {
            let mut cov = Cov::new(&mut set, &m, "fold.cc");
            cov.hit(3);
            cov.hit(3);
            cov.hit(53); // wraps to 3
            cov.hit(4);
        }
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn pass_only_filter() {
        let m = manifest();
        let mut set = CoverageSet::new();
        Cov::new(&mut set, &m, "fold.cc").hit(1);
        Cov::new(&mut set, &m, "runtime.cc").hit(1);
        assert_eq!(set.len(), 2);
        assert_eq!(set.pass_len(&m), 1);
    }

    #[test]
    fn set_algebra() {
        let m = manifest();
        let mut a = CoverageSet::new();
        let mut b = CoverageSet::new();
        Cov::new(&mut a, &m, "fold.cc").hit(1);
        Cov::new(&mut a, &m, "fold.cc").hit(2);
        Cov::new(&mut b, &m, "fold.cc").hit(2);
        Cov::new(&mut b, &m, "fold.cc").hit(3);
        assert_eq!(a.difference(&b).len(), 1);
        assert_eq!(a.intersection(&b).len(), 1);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.len(), 3);
    }

    #[test]
    fn merge_counting_reports_novelty() {
        let m = manifest();
        let mut a = CoverageSet::new();
        let mut b = CoverageSet::new();
        Cov::new(&mut a, &m, "fold.cc").hit(1);
        Cov::new(&mut b, &m, "fold.cc").hit(1);
        Cov::new(&mut b, &m, "fold.cc").hit(2);
        assert_eq!(a.merge_counting(&b), 1);
        assert_eq!(a.len(), 2);
        assert_eq!(a.merge_counting(&b), 0, "second merge finds nothing new");
    }

    #[test]
    fn log_buckets() {
        assert_eq!(log_bucket(-5), 0);
        assert_eq!(log_bucket(0), 1);
        assert_eq!(log_bucket(1), 2);
        assert_eq!(log_bucket(6), 4);
        assert_eq!(log_bucket(100), 7);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_file_panics() {
        SourceManifest::new(vec![
            FileDecl {
                name: "a.cc",
                kind: FileKind::Pass,
                branches: 1,
            },
            FileDecl {
                name: "a.cc",
                kind: FileKind::Pass,
                branches: 2,
            },
        ]);
    }
}
