//! Graph-level optimization passes of the simulated compilers.
//!
//! Passes are real transformations over [`CGraph`] — constant folding, dead
//! code elimination, algebraic simplification, operator fusion, layout
//! rewriting and index typing — each instrumented with branch coverage. The
//! ortsim passes branch on *specific operator patterns* (like
//! ONNXRuntime's 130 pattern-matching optimizer files) while the tvmsim
//! fusion pass branches on *operator properties* (injective/reduction…),
//! reproducing the coverage-sensitivity asymmetry discussed in §5.2.

use std::collections::HashMap;

use nnsmith_ops::{BinaryKind, Op, UnaryKind};
use nnsmith_tensor::{DType, Tensor};

use crate::bugs::{BugConfig, System};
use crate::cgraph::{CGraph, CNode, COp, CValue, CompileError, IndexWidth, Layout};
use crate::coverage::{log_bucket, Cov, CoverageSet, SourceManifest};

/// Context handed to every pass.
pub struct PassCtx<'a> {
    /// Cumulative coverage for this compilation.
    pub cov: &'a mut CoverageSet,
    /// The compiler's instrumented-source manifest.
    pub manifest: &'a SourceManifest,
    /// Seeded-bug switchboard.
    pub bugs: &'a BugConfig,
    /// Which simulated system is compiling.
    pub system: System,
}

/// A pass as a plain function pointer (pipelines are static tables).
pub type PassFn = fn(&mut CGraph, &mut PassCtx<'_>) -> Result<(), CompileError>;

/// Small stable code for an operator kind (parametric coverage sites).
pub fn op_code(op: &Op) -> u32 {
    match op {
        Op::Unary(k) => *k as u32,
        Op::Binary(k) => 20 + *k as u32,
        Op::Compare(k) => 28 + *k as u32,
        Op::Logical(k) => 35 + *k as u32,
        Op::Not => 39,
        Op::Where => 40,
        Op::Cast { .. } => 41,
        Op::Softmax { .. } => 42,
        Op::Clip { .. } => 43,
        Op::MatMul => 44,
        Op::Dense { .. } => 45,
        Op::Conv2d { .. } => 46,
        Op::MaxPool2d { .. } => 47,
        Op::AvgPool2d { .. } => 48,
        Op::BatchNorm => 49,
        Op::Reshape { .. } => 50,
        Op::Transpose { .. } => 51,
        Op::Slice { .. } => 52,
        Op::Pad { kind, .. } => 53 + *kind as u32,
        Op::Concat { .. } => 56,
        Op::Squeeze { .. } => 57,
        Op::Unsqueeze { .. } => 58,
        Op::Flatten { .. } => 59,
        Op::BroadcastTo { .. } => 60,
        Op::Reduce { kind, .. } => 61 + *kind as u32,
        Op::ArgExtreme { largest, .. } => 66 + u32::from(*largest),
        Op::ResizeNearest { .. } => 68,
    }
}

fn dtype_code(d: DType) -> u32 {
    match d {
        DType::F32 => 0,
        DType::F64 => 1,
        DType::I32 => 2,
        DType::I64 => 3,
        DType::Bool => 4,
    }
}

/// Constant folding: primitive nodes whose inputs are all constants are
/// evaluated at compile time.
pub fn constant_folding(g: &mut CGraph, cx: &mut PassCtx<'_>) -> Result<(), CompileError> {
    let mut cov = Cov::new(cx.cov, cx.manifest, "const_fold.cc");
    cov.hit(0); // pass entry
    for i in 0..g.nodes.len() {
        let node = &g.nodes[i];
        let COp::Primitive(op) = &node.op else {
            continue;
        };
        let consts: Option<Vec<Tensor>> = node
            .inputs
            .iter()
            .map(|v| match v {
                CValue::Node(p) => match &g.nodes[*p].op {
                    COp::Constant(t) => Some(t.clone()),
                    _ => None,
                },
                CValue::Input(_) => None,
            })
            .collect();
        let Some(consts) = consts else {
            cov.hit_idx(1, 0); // non-constant operand branch
            continue;
        };
        if node.inputs.is_empty() {
            continue;
        }
        cov.hit_idx(4, op_code(op)); // foldable-op branch, per kind
        cov.hit_idx(80, dtype_code(node.dtype));
        let refs: Vec<&Tensor> = consts.iter().collect();
        match op.eval(&refs) {
            Ok(mut out) => {
                cov.hit(2);
                g.nodes[i].op = COp::Constant(out.remove(0));
                g.nodes[i].inputs.clear();
            }
            Err(_) => {
                // Folding failed at compile time (e.g. division by zero in
                // constants): leave the node for the runtime.
                cov.hit(3);
            }
        }
    }
    Ok(())
}

/// Dead code elimination: nodes not reachable from the outputs are
/// removed.
pub fn dead_code_elim(g: &mut CGraph, cx: &mut PassCtx<'_>) -> Result<(), CompileError> {
    let mut cov = Cov::new(cx.cov, cx.manifest, "dce.cc");
    cov.hit(0);
    let mut live = vec![false; g.nodes.len()];
    let mut stack: Vec<usize> = g
        .outputs
        .iter()
        .filter_map(|v| match v {
            CValue::Node(i) => Some(*i),
            CValue::Input(_) => None,
        })
        .collect();
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut live[i], true) {
            continue;
        }
        for v in &g.nodes[i].inputs {
            if let CValue::Node(p) = v {
                stack.push(*p);
            }
        }
    }
    if live.iter().all(|&l| l) {
        cov.hit(1); // nothing dead
        return Ok(());
    }
    cov.hit(2);
    // Rebuild with a remap.
    let mut remap: HashMap<usize, usize> = HashMap::new();
    let mut nodes = Vec::new();
    for (i, node) in g.nodes.iter().enumerate() {
        if live[i] {
            remap.insert(i, nodes.len());
            nodes.push(node.clone());
        } else if let COp::Primitive(op) = &node.op {
            cov.hit_idx(8, op_code(op)); // dead-op branch per kind
        }
    }
    for node in &mut nodes {
        for v in &mut node.inputs {
            if let CValue::Node(p) = v {
                *p = remap[p];
            }
        }
    }
    for v in &mut g.outputs {
        if let CValue::Node(p) = v {
            *p = remap[p];
        }
    }
    g.nodes = nodes;
    Ok(())
}

fn const_scalar_value(g: &CGraph, v: &CValue) -> Option<f64> {
    match v {
        CValue::Node(p) => match &g.nodes[*p].op {
            COp::Constant(t) if t.numel() == 1 => Some(t.lin_f64(0)),
            _ => None,
        },
        CValue::Input(_) => None,
    }
}

/// Algebraic simplification: identity rewrites plus (for tvmsim with the
/// seeded bug enabled) the *wrong* `(x / c) * c → x` integer rewrite of
/// §5.4's expression-simplification family.
pub fn algebraic_simplify(g: &mut CGraph, cx: &mut PassCtx<'_>) -> Result<(), CompileError> {
    let mut cov = Cov::new(cx.cov, cx.manifest, "simplify.cc");
    cov.hit(0);
    let consumers = g.consumers();
    for i in 0..g.nodes.len() {
        let node = g.nodes[i].clone();
        let COp::Primitive(op) = &node.op else {
            continue;
        };
        match op {
            // x + 0, x - 0 → x
            Op::Binary(BinaryKind::Add | BinaryKind::Sub) => {
                cov.hit_idx(10, dtype_code(node.dtype));
                if const_scalar_value(g, &node.inputs[1]) == Some(0.0)
                    && shapes_equal(g, &node.inputs[0], &node.shape)
                {
                    cov.hit(1);
                    g.nodes[i] = forward_node(&node, node.inputs[0]);
                }
            }
            // x * 1 → x; x * 0 → 0-const
            Op::Binary(BinaryKind::Mul) => {
                cov.hit_idx(15, dtype_code(node.dtype));
                let c = const_scalar_value(g, &node.inputs[1]);
                if c == Some(1.0) && shapes_equal(g, &node.inputs[0], &node.shape) {
                    cov.hit(2);
                    g.nodes[i] = forward_node(&node, node.inputs[0]);
                } else if c == Some(0.0) {
                    cov.hit(3);
                    g.nodes[i].op = COp::Constant(Tensor::zeros(&node.shape, node.dtype));
                    g.nodes[i].inputs.clear();
                }
            }
            // x / 1 → x; seeded tvm-simpl-1: (x / c) * c → x for ints.
            Op::Binary(BinaryKind::Div) => {
                cov.hit_idx(20, dtype_code(node.dtype));
                if const_scalar_value(g, &node.inputs[1]) == Some(1.0)
                    && shapes_equal(g, &node.inputs[0], &node.shape)
                {
                    cov.hit(4);
                    g.nodes[i] = forward_node(&node, node.inputs[0]);
                } else if cx.system == System::TvmSim
                    && cx.bugs.enabled("tvm-simpl-1")
                    && node.dtype.is_int()
                {
                    // Find a Mul consumer multiplying by the same constant:
                    // rewrite the Mul to forward x, which is WRONG when x is
                    // not divisible by c (floor division loses remainder).
                    let c = const_scalar_value(g, &node.inputs[1]);
                    if let Some(c) = c {
                        for &m in &consumers[i] {
                            let mnode = g.nodes[m].clone();
                            if matches!(&mnode.op, COp::Primitive(Op::Binary(BinaryKind::Mul)))
                                && const_scalar_value(g, &mnode.inputs[1]) == Some(c)
                                && mnode.inputs[0] == CValue::Node(i)
                                && shapes_equal(g, &node.inputs[0], &mnode.shape)
                            {
                                cov.hit(5); // the buggy rewrite branch
                                g.nodes[m] = forward_node(&mnode, node.inputs[0]);
                            }
                        }
                    }
                }
            }
            // Neg(Neg(x)) → x
            Op::Unary(UnaryKind::Neg) => {
                cov.hit(6);
                if let CValue::Node(p) = node.inputs[0] {
                    if matches!(&g.nodes[p].op, COp::Primitive(Op::Unary(UnaryKind::Neg))) {
                        cov.hit(7);
                        g.nodes[i] = forward_node(&node, g.nodes[p].inputs[0]);
                    }
                }
            }
            // Relu(Relu(x)) → Relu(x) (idempotence)
            Op::Unary(UnaryKind::Relu) => {
                cov.hit(8);
                if let CValue::Node(p) = node.inputs[0] {
                    if matches!(&g.nodes[p].op, COp::Primitive(Op::Unary(UnaryKind::Relu))) {
                        cov.hit(9);
                        g.nodes[i].inputs = g.nodes[p].inputs.clone();
                    }
                }
            }
            // Cast to the same dtype → forward
            Op::Cast { to } => {
                cov.hit_idx(30, dtype_code(*to));
                let in_dtype = value_dtype(g, &node.inputs[0]);
                if in_dtype == Some(*to) {
                    cov.hit(35);
                    g.nodes[i] = forward_node(&node, node.inputs[0]);
                }
            }
            // Identity transpose → forward
            Op::Transpose { perm } => {
                cov.hit_idx(40, perm.len() as u32);
                if perm.iter().enumerate().all(|(a, &b)| a == b) {
                    cov.hit(45);
                    g.nodes[i] = forward_node(&node, node.inputs[0]);
                }
            }
            // Reshape to the same shape → forward
            Op::Reshape { .. } => {
                cov.hit_idx(50, node.shape.len() as u32);
                if shapes_equal(g, &node.inputs[0], &node.shape) {
                    cov.hit(55);
                    g.nodes[i] = forward_node(&node, node.inputs[0]);
                }
            }
            _ => {
                cov.hit_idx(60, op_code(op) % 16);
            }
        }
    }
    Ok(())
}

fn value_dtype(g: &CGraph, v: &CValue) -> Option<DType> {
    match v {
        CValue::Node(p) => Some(g.nodes[*p].dtype),
        CValue::Input(i) => g.inputs.get(*i).map(|(_, _, d)| *d),
    }
}

fn value_shape<'a>(g: &'a CGraph, v: &CValue) -> Option<&'a [usize]> {
    match v {
        CValue::Node(p) => Some(&g.nodes[*p].shape),
        CValue::Input(i) => g.inputs.get(*i).map(|(_, s, _)| s.as_slice()),
    }
}

fn shapes_equal(g: &CGraph, v: &CValue, shape: &[usize]) -> bool {
    value_shape(g, v) == Some(shape)
}

/// Replaces a node with an identity forward of `src` (keeps shape/dtype).
fn forward_node(node: &CNode, src: CValue) -> CNode {
    CNode {
        op: COp::Fused {
            ops: vec![],
            kernel: "Identity",
            narrow_precision: false,
        },
        inputs: vec![src],
        shape: node.shape.clone(),
        dtype: node.dtype,
        layout: node.layout,
        index_width: node.index_width,
    }
}

/// ortsim pattern fusion: a corpus of producer→consumer kernel fusions,
/// each guarded by specific structural checks (the pattern-heavy design of
/// ONNXRuntime's optimizer directory). Includes the honest seeded
/// `ort-t02` precision bug: ReLU+Clip on f64 fuses into a kernel computing
/// at f32.
pub fn pattern_fusion(g: &mut CGraph, cx: &mut PassCtx<'_>) -> Result<(), CompileError> {
    let mut cov = Cov::new(cx.cov, cx.manifest, "fuse_patterns.cc");
    cov.hit(0);
    let consumers = g.consumers();
    for p in 0..g.nodes.len() {
        if consumers[p].len() != 1 {
            continue;
        }
        let c = consumers[p][0];
        let (pop, cop) = match (&g.nodes[p].op, &g.nodes[c].op) {
            (COp::Primitive(a), COp::Primitive(b)) => (a.clone(), b.clone()),
            _ => continue,
        };
        // The consumer must use the producer as its FIRST input for chain
        // fusion to be semantics-preserving here.
        if g.nodes[c].inputs.first() != Some(&CValue::Node(p)) {
            continue;
        }
        let dtype = g.nodes[c].dtype;
        let fusion: Option<(&'static str, bool)> = match (&pop, &cop) {
            (Op::Binary(BinaryKind::Add), Op::Softmax { .. }) => {
                cov.hit_idx(10, dtype_code(dtype));
                Some(("BiasSoftmax", false))
            }
            (Op::MatMul, Op::Binary(BinaryKind::Add)) => {
                cov.hit_idx(15, dtype_code(dtype));
                Some(("Gemm", false))
            }
            (Op::Conv2d { .. }, Op::Unary(UnaryKind::Relu)) => {
                cov.hit_idx(20, dtype_code(dtype));
                Some(("ConvRelu", false))
            }
            (Op::Unary(UnaryKind::Relu), Op::Clip { .. }) => {
                cov.hit_idx(25, dtype_code(dtype));
                // Seeded ort-t02: the fused kernel computes in f32.
                let narrow = dtype == DType::F64
                    && cx.system == System::OrtSim
                    && cx.bugs.enabled("ort-t02");
                Some(("FusedClipRelu", narrow))
            }
            (Op::Unary(UnaryKind::Sigmoid), Op::Binary(BinaryKind::Mul)) => {
                cov.hit_idx(30, dtype_code(dtype));
                Some(("SiLU", false))
            }
            (Op::Unary(a), Op::Unary(b)) => {
                cov.hit_idx(35, (*a as u32) % 8 + 8 * ((*b as u32) % 4));
                Some(("ElementwiseChain", false))
            }
            _ => {
                cov.hit_idx(70, op_code(&cop) % 24);
                None
            }
        };
        let Some((kernel, narrow_precision)) = fusion else {
            continue;
        };
        // Same-shape guard: chain fusion is only valid when the producer's
        // output shape equals the fused output shape (no broadcast
        // expansion inside the kernel).
        if g.nodes[p].shape != g.nodes[c].shape {
            cov.hit(5);
            continue;
        }
        cov.hit(6);
        // Inputs: producer's inputs, then consumer's remaining inputs.
        let mut inputs = g.nodes[p].inputs.clone();
        inputs.extend(g.nodes[c].inputs.iter().skip(1).copied());
        g.nodes[c] = CNode {
            op: COp::Fused {
                ops: vec![pop, cop],
                kernel,
                narrow_precision,
            },
            inputs,
            shape: g.nodes[c].shape.clone(),
            dtype,
            layout: g.nodes[c].layout,
            index_width: g.nodes[c].index_width,
        };
        // The producer becomes dead; DCE will remove it.
    }
    Ok(())
}

/// tvmsim property-based fusion: operators are classified (injective /
/// reduction / complex) and maximal injective chains are fused, without
/// inspecting concrete operator identities — the reason TVM's coverage is
/// less sensitive to pattern diversity (§5.2).
pub fn property_fusion(g: &mut CGraph, cx: &mut PassCtx<'_>) -> Result<(), CompileError> {
    #[derive(PartialEq, Clone, Copy)]
    enum Class {
        Injective,
        Reduction,
        Complex,
        Opaque,
    }
    fn classify(op: &Op) -> Class {
        match op {
            Op::Unary(_)
            | Op::Binary(_)
            | Op::Compare(_)
            | Op::Logical(_)
            | Op::Not
            | Op::Where
            | Op::Cast { .. }
            | Op::Clip { .. } => Class::Injective,
            Op::Reduce { .. } | Op::ArgExtreme { .. } | Op::Softmax { .. } => Class::Reduction,
            Op::Conv2d { .. } | Op::MatMul | Op::Dense { .. } | Op::BatchNorm => Class::Complex,
            _ => Class::Opaque,
        }
    }
    let mut cov = Cov::new(cx.cov, cx.manifest, "fuse_ops.cc");
    cov.hit(0);
    let consumers = g.consumers();
    for p in 0..g.nodes.len() {
        if consumers[p].len() != 1 {
            cov.hit(1);
            continue;
        }
        let c = consumers[p][0];
        let (pop, cop) = match (&g.nodes[p].op, &g.nodes[c].op) {
            (COp::Primitive(a), COp::Primitive(b)) => (a.clone(), b.clone()),
            _ => continue,
        };
        if g.nodes[c].inputs.first() != Some(&CValue::Node(p)) {
            continue;
        }
        let (pc, cc) = (classify(&pop), classify(&cop));
        // Branch on the *property pair*, not the op pair: few distinct
        // branches regardless of operator diversity.
        let pair_code = match (pc, cc) {
            (Class::Injective, Class::Injective) => 0,
            (Class::Injective, Class::Reduction) => 1,
            (Class::Complex, Class::Injective) => 2,
            _ => 3,
        };
        cov.hit_idx(4, pair_code);
        let fusable = matches!(
            (pc, cc),
            (Class::Injective, Class::Injective)
                | (Class::Injective, Class::Reduction)
                | (Class::Complex, Class::Injective)
        );
        if !fusable || g.nodes[p].shape != g.nodes[c].shape {
            continue;
        }
        cov.hit(8);
        let mut inputs = g.nodes[p].inputs.clone();
        inputs.extend(g.nodes[c].inputs.iter().skip(1).copied());
        g.nodes[c] = CNode {
            op: COp::Fused {
                ops: vec![pop, cop],
                kernel: "FusedCompute",
                narrow_precision: false,
            },
            inputs,
            shape: g.nodes[c].shape.clone(),
            dtype: g.nodes[c].dtype,
            layout: g.nodes[c].layout,
            index_width: g.nodes[c].index_width,
        };
    }
    Ok(())
}

/// tvmsim layout rewriting: convolutions whose channel counts are
/// divisible by 4 are rewritten to the packed `NCHW4c` layout and
/// consumers adapt (§5.4's layout-bug family lives downstream of this).
pub fn layout_rewrite(g: &mut CGraph, cx: &mut PassCtx<'_>) -> Result<(), CompileError> {
    let mut cov = Cov::new(cx.cov, cx.manifest, "layout_rewrite.cc");
    cov.hit(0);
    let consumers = g.consumers();
    for i in 0..g.nodes.len() {
        let is_conv_node = match &g.nodes[i].op {
            COp::Primitive(Op::Conv2d { .. }) => true,
            COp::Fused { ops, .. } => ops.first().is_some_and(|o| matches!(o, Op::Conv2d { .. })),
            _ => false,
        };
        let is_packable =
            is_conv_node && g.nodes[i].shape.len() == 4 && g.nodes[i].shape[1].is_multiple_of(4);
        if !is_packable {
            cov.hit(1);
            continue;
        }
        cov.hit(2);
        g.nodes[i].layout = Layout::Nchw4c;
        // Consumers adapt; branch per consumer op kind.
        for &c in &consumers[i] {
            match &g.nodes[c].op {
                COp::Primitive(op) => cov.hit_idx(8, op_code(op)),
                COp::Fused { .. } => cov.hit(6),
                COp::Constant(_) => {}
            }
            g.nodes[c].layout = Layout::Nchw4c;
        }
    }
    Ok(())
}

/// tvmsim index typing: shape-carrying operators introduce 64-bit index
/// arithmetic, which propagates to consumers — the substrate of the
/// int32/int64 mismatch family.
pub fn index_typing(g: &mut CGraph, cx: &mut PassCtx<'_>) -> Result<(), CompileError> {
    let mut cov = Cov::new(cx.cov, cx.manifest, "type_infer.cc");
    cov.hit(0);
    for i in 0..g.nodes.len() {
        let introduces_i64 = match &g.nodes[i].op {
            COp::Primitive(Op::Reshape { .. } | Op::BroadcastTo { .. } | Op::Flatten { .. }) => {
                true
            }
            COp::Primitive(Op::Slice { .. }) => {
                g.nodes[i].shape.iter().product::<usize>() > 1 << 12
            }
            _ => false,
        };
        let inherited = g.nodes[i].inputs.iter().any(|v| match v {
            CValue::Node(p) => g.nodes[*p].index_width == IndexWidth::I64,
            CValue::Input(_) => false,
        });
        if introduces_i64 {
            cov.hit_idx(4, op_code(primitive_of(&g.nodes[i].op)));
            g.nodes[i].index_width = IndexWidth::I64;
        } else if inherited {
            cov.hit(2);
            g.nodes[i].index_width = IndexWidth::I64;
        } else {
            cov.hit(1);
        }
    }
    Ok(())
}

fn primitive_of(op: &COp) -> &Op {
    match op {
        COp::Primitive(p) => p,
        _ => &Op::MatMul, // only called on primitives; harmless default
    }
}

/// Kernel selection (ortsim/trtsim runtime): hits a branch per
/// `(operator, dtype)` pair for every remaining node — the pre-compiled
/// kernel dispatch of a runtime-based framework.
pub fn kernel_select(g: &mut CGraph, cx: &mut PassCtx<'_>) -> Result<(), CompileError> {
    let mut cov = Cov::new(cx.cov, cx.manifest, "kernels.cc");
    cov.hit(0);
    for node in &g.nodes {
        match &node.op {
            COp::Primitive(op) => {
                cov.hit_idx(16, op_code(op) * 5 + dtype_code(node.dtype));
                // Rank-specialized kernels.
                cov.hit_idx(400, op_code(op) * 5 + node.shape.len() as u32);
            }
            COp::Fused { ops, .. } => {
                cov.hit_idx(800, ops.len() as u32 * 5 + dtype_code(node.dtype));
            }
            COp::Constant(_) => cov.hit(1),
        }
        // Size-bucketed dispatch (small/large kernels).
        let numel: usize = node.shape.iter().product();
        cov.hit_idx(1200, log_bucket(numel as i64));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::{FileDecl, FileKind};
    use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
    use nnsmith_ops::Bindings;

    fn manifest() -> SourceManifest {
        SourceManifest::new(vec![
            FileDecl {
                name: "const_fold.cc",
                kind: FileKind::Pass,
                branches: 160,
            },
            FileDecl {
                name: "dce.cc",
                kind: FileKind::Pass,
                branches: 90,
            },
            FileDecl {
                name: "simplify.cc",
                kind: FileKind::Pass,
                branches: 90,
            },
            FileDecl {
                name: "fuse_patterns.cc",
                kind: FileKind::Pass,
                branches: 120,
            },
            FileDecl {
                name: "fuse_ops.cc",
                kind: FileKind::Pass,
                branches: 20,
            },
            FileDecl {
                name: "layout_rewrite.cc",
                kind: FileKind::Pass,
                branches: 90,
            },
            FileDecl {
                name: "type_infer.cc",
                kind: FileKind::Pass,
                branches: 90,
            },
            FileDecl {
                name: "kernels.cc",
                kind: FileKind::Runtime,
                branches: 1300,
            },
        ])
    }

    fn ctx<'a>(
        cov: &'a mut CoverageSet,
        manifest: &'a SourceManifest,
        bugs: &'a BugConfig,
        system: System,
    ) -> PassCtx<'a> {
        PassCtx {
            cov,
            manifest,
            bugs,
            system,
        }
    }

    /// x (input), w (weight const), Add, Relu.
    fn toy() -> (Graph<Op>, Bindings) {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let add = g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Add)),
            vec![ValueRef::output0(x), ValueRef::output0(w)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
            vec![ValueRef::output0(add)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let mut weights = Bindings::new();
        weights.insert(w, Tensor::ones(&[4], DType::F32));
        (g, weights)
    }

    #[test]
    fn constant_folding_folds_weight_only_subgraphs() {
        // Relu(w) with w constant folds entirely.
        let mut g: Graph<Op> = Graph::new();
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
            vec![ValueRef::output0(w)],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        let mut weights = Bindings::new();
        weights.insert(w, Tensor::from_f32(&[2], vec![-1.0, 2.0]).unwrap());
        let mut cg = CGraph::import(&g, &weights).unwrap();
        let m = manifest();
        let mut cov = CoverageSet::new();
        let bugs = BugConfig::all_on();
        constant_folding(&mut cg, &mut ctx(&mut cov, &m, &bugs, System::OrtSim)).unwrap();
        assert!(matches!(&cg.nodes[1].op, COp::Constant(t) if t.as_f32().unwrap() == [0.0, 2.0]));
        assert!(!cov.is_empty());
    }

    #[test]
    fn fusion_preserves_results() {
        let (g, weights) = toy();
        let mut cg = CGraph::import(&g, &weights).unwrap();
        let m = manifest();
        let mut cov = CoverageSet::new();
        let bugs = BugConfig::none();
        let mut inputs = HashMap::new();
        let x_id = cg.inputs[0].0;
        inputs.insert(x_id, Tensor::from_f32(&[4], vec![-3., 0., 1., 2.]).unwrap());
        let before = cg.run(&inputs).unwrap();
        pattern_fusion(&mut cg, &mut ctx(&mut cov, &m, &bugs, System::OrtSim)).unwrap();
        dead_code_elim(&mut cg, &mut ctx(&mut cov, &m, &bugs, System::OrtSim)).unwrap();
        let after = cg.run(&inputs).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn buggy_div_mul_rewrite_changes_int_results() {
        // y = (x / 3) * 3 for ints: correct result floors, buggy rewrite
        // forwards x.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::I32, &[2])],
        );
        let three = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::I32, &[])],
        );
        let div = g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Div)),
            vec![ValueRef::output0(x), ValueRef::output0(three)],
            vec![TensorType::concrete(DType::I32, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Mul)),
            vec![ValueRef::output0(div), ValueRef::output0(three)],
            vec![TensorType::concrete(DType::I32, &[2])],
        );
        let mut weights = Bindings::new();
        weights.insert(three, Tensor::scalar(DType::I32, 3.0));
        let mut cg = CGraph::import(&g, &weights).unwrap();
        let m = manifest();
        let mut cov = CoverageSet::new();
        let bugs = BugConfig::all_on();
        algebraic_simplify(&mut cg, &mut ctx(&mut cov, &m, &bugs, System::TvmSim)).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert(x, Tensor::from_i32(&[2], vec![7, 9]).unwrap());
        let out = cg.run(&inputs).unwrap();
        // Correct: [(7/3)*3, (9/3)*3] = [6, 9]; buggy forward: [7, 9].
        assert_eq!(out[0].as_i32().unwrap(), &[7, 9]);
        // With the bug disabled, the rewrite must not fire.
        let mut cg2 = CGraph::import(&g, &weights).unwrap();
        let off = BugConfig::none();
        let mut cov2 = CoverageSet::new();
        algebraic_simplify(&mut cg2, &mut ctx(&mut cov2, &m, &off, System::TvmSim)).unwrap();
        let out2 = cg2.run(&inputs).unwrap();
        assert_eq!(out2[0].as_i32().unwrap(), &[6, 9]);
    }

    #[test]
    fn property_fusion_uses_few_branches() {
        // Two very different graphs should hit the same property branches.
        let (g, weights) = toy();
        let m = manifest();
        let bugs = BugConfig::none();
        let mut cg = CGraph::import(&g, &weights).unwrap();
        let mut cov1 = CoverageSet::new();
        property_fusion(&mut cg, &mut ctx(&mut cov1, &m, &bugs, System::TvmSim)).unwrap();
        assert!(
            cov1.len() <= 6,
            "property fusion hit {} branches",
            cov1.len()
        );
    }

    #[test]
    fn layout_rewrite_marks_packed_convs() {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[1, 4, 4, 4])],
        );
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4, 4, 1, 1])],
        );
        let b = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::Conv2d {
                in_channels: nnsmith_solver::IntExpr::Const(4),
                out_channels: nnsmith_solver::IntExpr::Const(4),
                kh: nnsmith_solver::IntExpr::Const(1),
                kw: nnsmith_solver::IntExpr::Const(1),
                stride: nnsmith_solver::IntExpr::Const(1),
                padding: nnsmith_solver::IntExpr::Const(0),
                dilation: nnsmith_solver::IntExpr::Const(1),
            }),
            vec![
                ValueRef::output0(x),
                ValueRef::output0(w),
                ValueRef::output0(b),
            ],
            vec![TensorType::concrete(DType::F32, &[1, 4, 4, 4])],
        );
        let mut weights = Bindings::new();
        weights.insert(w, Tensor::ones(&[4, 4, 1, 1], DType::F32));
        weights.insert(b, Tensor::zeros(&[4], DType::F32));
        let mut cg = CGraph::import(&g, &weights).unwrap();
        let m = manifest();
        let mut cov = CoverageSet::new();
        let bugs = BugConfig::none();
        layout_rewrite(&mut cg, &mut ctx(&mut cov, &m, &bugs, System::TvmSim)).unwrap();
        let conv_node = cg
            .nodes
            .iter()
            .find(|n| matches!(n.op, COp::Primitive(Op::Conv2d { .. })))
            .unwrap();
        assert_eq!(conv_node.layout, Layout::Nchw4c);
    }

    #[test]
    fn index_typing_propagates_i64() {
        // Reshape → Relu chain: Relu inherits I64.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let rs = g.add_node(
            NodeKind::Operator(Op::Reshape {
                dims: vec![
                    nnsmith_solver::IntExpr::Const(2),
                    nnsmith_solver::IntExpr::Const(2),
                ],
            }),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[2, 2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
            vec![ValueRef::output0(rs)],
            vec![TensorType::concrete(DType::F32, &[2, 2])],
        );
        let mut cg = CGraph::import(&g, &Bindings::new()).unwrap();
        let m = manifest();
        let mut cov = CoverageSet::new();
        let bugs = BugConfig::none();
        index_typing(&mut cg, &mut ctx(&mut cov, &m, &bugs, System::TvmSim)).unwrap();
        assert_eq!(cg.nodes[0].index_width, IndexWidth::I64);
        assert_eq!(cg.nodes[1].index_width, IndexWidth::I64);
    }

    #[test]
    fn kernel_select_branches_scale_with_diversity() {
        let (g, weights) = toy();
        let cg = CGraph::import(&g, &weights).unwrap();
        let m = manifest();
        let bugs = BugConfig::none();
        let mut cov = CoverageSet::new();
        let mut cg2 = cg.clone();
        kernel_select(&mut cg2, &mut ctx(&mut cov, &m, &bugs, System::OrtSim)).unwrap();
        let single = cov.len();
        assert!(single >= 4);
    }
}
