//! Differential correctness of the optimization passes themselves: with
//! every seeded bug disabled, the optimized pipeline must agree with both
//! the unoptimized pipeline and the reference interpreter on randomly
//! generated models. This is the "a clean compiler is actually correct"
//! meta-test that gives the seeded-bug study its meaning.

use std::collections::HashMap;

use nnsmith_compilers::{
    export, ortsim, trtsim, tvmsim, BugConfig, CompileOptions, CoverageSet, OptLevel,
};
use nnsmith_gen::{GenConfig, Generator};
use nnsmith_ops::random_bindings;
use nnsmith_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn optimized_pipelines_preserve_semantics_on_random_models() {
    let generator = Generator::new(GenConfig {
        target_ops: 8,
        ..GenConfig::default()
    });
    let clean = CompileOptions {
        bugs: BugConfig::none(),
        ..CompileOptions::default()
    };
    let clean_o0 = CompileOptions {
        opt_level: OptLevel::O0,
        bugs: BugConfig::none(),
    };
    let compilers = [tvmsim(), ortsim(), trtsim()];
    let mut compared = 0usize;

    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = generator.generate(&mut rng).expect("generation");
        let mut vrng = StdRng::seed_from_u64(seed + 10_000);
        let Ok(bindings) = random_bindings(&model.graph, -2.0, 2.0, &mut vrng) else {
            continue;
        };
        let Ok(reference) = nnsmith_ops::execute(&model.graph, &bindings) else {
            continue; // int division by zero under random values
        };
        if reference.has_exceptional() {
            continue; // NaN/Inf executions are excluded from comparison
        }
        // Split bindings like the harness does.
        let mut weights = nnsmith_ops::Bindings::new();
        let mut inputs: HashMap<nnsmith_graph::NodeId, Tensor> = HashMap::new();
        for (id, node) in model.graph.iter() {
            match node.kind {
                nnsmith_graph::NodeKind::Weight => {
                    weights.insert(id, bindings[&id].clone());
                }
                nnsmith_graph::NodeKind::Input => {
                    inputs.insert(id, bindings[&id].clone());
                }
                _ => {}
            }
        }
        let exported = export(&model.graph, &BugConfig::none()).expect("clean export");
        assert_eq!(exported.graph, model.graph);

        for compiler in &compilers {
            let mut cov = CoverageSet::new();
            let Ok(o2) = compiler.compile(&model.graph, &weights, &clean, &mut cov) else {
                continue; // NotImplemented (trtsim f64)
            };
            let o0 = compiler
                .compile(&model.graph, &weights, &clean_o0, &mut cov)
                .expect("O0 compiles whenever O2 does");
            let r2 = o2.run(&inputs).expect("O2 runs");
            let r0 = o0.run(&inputs).expect("O0 runs");
            assert_eq!(r2.len(), reference.outputs.len(), "output arity");
            for (k, (_, ref_t)) in reference.outputs.iter().enumerate() {
                let rel = 1e-3
                    + 1e-3
                        * ref_t
                            .to_f64_vec()
                            .iter()
                            .fold(0.0f64, |a, b| a.max(b.abs()));
                assert!(
                    ref_t.max_abs_diff(&r2[k]).unwrap_or(f64::INFINITY) <= rel,
                    "seed {seed} {}: O2 output {k} diverges\n{}",
                    compiler.system().name(),
                    model.graph.to_text()
                );
                assert!(
                    ref_t.max_abs_diff(&r0[k]).unwrap_or(f64::INFINITY) <= rel,
                    "seed {seed} {}: O0 output {k} diverges",
                    compiler.system().name()
                );
            }
            compared += 1;
        }
    }
    assert!(compared >= 20, "only {compared} comparisons ran");
}

#[test]
fn optimizer_reduces_or_preserves_node_count() {
    // Folding + DCE + fusion should never grow the live graph.
    let generator = Generator::new(GenConfig::default());
    let clean = CompileOptions {
        bugs: BugConfig::none(),
        ..CompileOptions::default()
    };
    let clean_o0 = CompileOptions {
        opt_level: OptLevel::O0,
        bugs: BugConfig::none(),
    };
    let compiler = ortsim();
    let mut shrunk = 0usize;
    for seed in 100..115u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = generator.generate(&mut rng).expect("generation");
        let mut vrng = StdRng::seed_from_u64(seed);
        let Ok(bindings) = random_bindings(&model.graph, -1.0, 1.0, &mut vrng) else {
            continue;
        };
        let mut weights = nnsmith_ops::Bindings::new();
        for (id, node) in model.graph.iter() {
            if matches!(node.kind, nnsmith_graph::NodeKind::Weight) {
                weights.insert(id, bindings[&id].clone());
            }
        }
        let mut cov = CoverageSet::new();
        let o2 = compiler
            .compile(&model.graph, &weights, &clean, &mut cov)
            .expect("compiles");
        let o0 = compiler
            .compile(&model.graph, &weights, &clean_o0, &mut cov)
            .expect("compiles");
        assert!(
            o2.cgraph.live_count() <= o0.cgraph.live_count(),
            "seed {seed}: optimizer grew the graph"
        );
        if o2.cgraph.live_count() < o0.cgraph.live_count() {
            shrunk += 1;
        }
    }
    assert!(shrunk > 0, "optimizer never simplified anything");
}
