//! Engine integration: stream failing cases from campaign workers into a
//! triage consumer, deduplicate them into signature bins, and keep one
//! minimized reproducer per bin.
//!
//! Workers push captured failures into an mpsc channel as they happen, so
//! reduction overlaps fuzzing. Determinism does not depend on arrival
//! order: bins are keyed by **backend × [`BugSignature`]** (the same
//! symptom on two backends is two bugs — `tvmsim::crash/...` and
//! `trtsim::crash/...` bin separately), counts are order-independent
//! sums, and the bin representative is the failure with the smallest
//! `(shard index, case index)` provenance — so for a case-budgeted engine
//! run the merged [`TriageReport`] is identical for workers=1 and
//! workers=N. Cross-backend campaigns route each failure to a per-backend
//! sink whose oracle is the originating compiler, so reduction and replay
//! always run against the backend that exhibited the bug
//! ([`run_matrix_triaged_engine`]).
//!
//! ## Anonymous-mismatch binning
//!
//! Seeded failures bin on the signature captured during the campaign. An
//! *unattributed* mismatch's key is a structural hash of the raw random
//! graph, so two different graphs hitting the same unseeded root cause
//! would land in different bins. Those failures are therefore **reduced
//! first and binned on the post-reduction signature**: 1-minimal
//! reproducers of one root cause collapse to the same neighborhood hash.
//! (This is why every anonymous failure is reduced, not just bin
//! representatives — the cost the ROADMAP accepted for closing the gap.)

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::sync::Mutex;

use serde::Serialize;

use nnsmith_compilers::{BackendSet, CompileOptions, Compiler};
use nnsmith_difftest::{
    run_engine_observed, run_matrix_engine_observed, CapturedFailure, CaseRecord, EngineConfig,
    EngineReport, ShardCtx, SourceFactory,
};
use nnsmith_difftest::{TestCase, Tolerance};
use nnsmith_obs::{LoggedEvent, Profile, SEQ_TRIAGE};

use crate::corpus::{Corpus, Reproducer};
use crate::reduce::{reduce_case_expecting_with, CaseOracle, ReduceConfig};
use crate::signature::{signature_of, BugSignature};

/// Triage pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct TriageConfig {
    /// Reduction knobs applied to every bin representative.
    pub reduce: ReduceConfig,
}

/// One deduplicated bug: every captured failure with the same signature
/// on the same backend.
#[derive(Debug, Clone, Serialize)]
pub struct Bin {
    /// The backend that exhibited this bug (the bin key's first
    /// dimension; the reproducer replays against it).
    pub backend: String,
    /// The shared signature.
    pub signature: BugSignature,
    /// Seeded-bug ids implicated, when identified.
    pub bug_ids: Vec<String>,
    /// How many failing cases collapsed into this bin.
    pub count: usize,
    /// Shard index of the representative failure.
    pub shard: usize,
    /// Campaign-relative case index of the representative failure.
    pub case_index: usize,
    /// The minimized, replayable representative.
    pub reproducer: Reproducer,
}

/// A bin whose representatives could not be reduced (the captured
/// signature did not reproduce outside the campaign). Kept visible so a
/// finding never silently vanishes from reports.
#[derive(Debug, Clone, Serialize)]
pub struct UnreducedBin {
    /// The backend that exhibited this bug.
    pub backend: String,
    /// The captured signature.
    pub signature: BugSignature,
    /// Seeded-bug ids implicated, when identified.
    pub bug_ids: Vec<String>,
    /// How many failing cases collapsed into this bin.
    pub count: usize,
}

/// The deduplicated outcome of a triaged campaign.
///
/// The serialized form covers `bins`, `unreduced` and `failures_seen`:
/// all deterministic for a case-budgeted engine run (workers=1 ≡
/// workers=N). The effort counters depend on channel arrival order (a
/// representative that arrives after a larger-provenance duplicate costs
/// an extra reduction) and are diagnostics, not results.
#[derive(Debug, Clone, Default)]
pub struct TriageReport {
    /// Bins keyed by `<backend>::<`[`BugSignature::as_key`]`>`, sorted
    /// (the same key shape as [`Corpus`] entries) — the backend dimension
    /// keeps one symptom on two backends in two bins.
    pub bins: BTreeMap<String, Bin>,
    /// Bins with no reducible representative, keyed like `bins`.
    pub unreduced: BTreeMap<String, UnreducedBin>,
    /// Total failing cases captured (pre-dedup).
    pub failures_seen: usize,
    /// Reductions executed (representative replacements included).
    /// Scheduling-dependent; excluded from serialization.
    pub reductions: usize,
    /// Oracle executions spent inside reduction. Scheduling-dependent;
    /// excluded from serialization.
    pub oracle_runs: usize,
    /// One `bin_update` event per ingested failure, in canonical order
    /// (the bin key is a pure function of the failure, so the sorted
    /// stream is deterministic even though the created/updated
    /// distinction is not). Excluded from serialization; the triaged
    /// engine folds these into [`EngineReport::events`] when
    /// [`nnsmith_difftest::CampaignConfig::log_events`] is on.
    pub events: Vec<LoggedEvent>,
    /// The triage consumer thread's phase profile. Span *wall* times are
    /// diagnostics; reduction-effort counts are scheduling-dependent like
    /// `reductions`. Excluded from serialization.
    pub profile: Profile,
}

impl Serialize for TriageReport {
    fn serialize_value(&self, out: &mut String) {
        out.push_str("{\"bins\":");
        self.bins.serialize_value(out);
        out.push_str(",\"unreduced\":");
        self.unreduced.serialize_value(out);
        out.push_str(",\"failures_seen\":");
        self.failures_seen.serialize_value(out);
        out.push('}');
    }
}

impl TriageReport {
    /// All minimized reproducers as a persistent corpus.
    pub fn to_corpus(&self) -> Corpus {
        let mut corpus = Corpus::new();
        for bin in self.bins.values() {
            corpus.insert(bin.reproducer.clone());
        }
        corpus
    }

    /// Absorbs another report (disjoint bin keys — per-backend reports
    /// merge cleanly because every key is backend-qualified).
    pub fn merge(&mut self, other: TriageReport) {
        self.bins.extend(other.bins);
        self.unreduced.extend(other.unreduced);
        self.failures_seen += other.failures_seen;
        self.reductions += other.reductions;
        self.oracle_runs += other.oracle_runs;
        self.events.extend(other.events);
        nnsmith_obs::sort_events(&mut self.events);
        self.profile.merge(&other.profile);
    }

    /// All seeded-bug ids identified across bins, reduced or not.
    pub fn seeded_bug_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .bins
            .values()
            .flat_map(|b| b.bug_ids.iter().cloned())
            .chain(
                self.unreduced
                    .values()
                    .flat_map(|b| b.bug_ids.iter().cloned()),
            )
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

struct PendingBin {
    signature: BugSignature,
    count: usize,
    /// Provenance and reduction of the current representative — the
    /// smallest-provenance failure whose reduction succeeded.
    repr: Option<((usize, usize), crate::reduce::Reduction)>,
}

/// Order-independent triage accumulator: feed it captured failures (in any
/// order), then [`TriageSink::finish`] it into a [`TriageReport`].
///
/// This is the consumer behind [`run_triaged_engine`], public so tests and
/// other drivers can triage failure streams against any [`CaseOracle`].
pub struct TriageSink<'a> {
    oracle: &'a dyn CaseOracle,
    /// Name recorded in reproducers (resolvable by
    /// [`nnsmith_compilers::compiler_by_name`] for real compilers).
    compiler_name: String,
    options: CompileOptions,
    tolerance: Tolerance,
    cfg: TriageConfig,
    bins: BTreeMap<String, PendingBin>,
    failures_seen: usize,
    reductions: usize,
    oracle_runs: usize,
    events: Vec<LoggedEvent>,
}

impl<'a> TriageSink<'a> {
    /// Creates a sink that replays candidates through `oracle` under
    /// `options`/`tolerance` and labels reproducers with `compiler_name`.
    pub fn new(
        oracle: &'a dyn CaseOracle,
        compiler_name: impl Into<String>,
        options: CompileOptions,
        tolerance: Tolerance,
        cfg: TriageConfig,
    ) -> Self {
        TriageSink {
            oracle,
            compiler_name: compiler_name.into(),
            options,
            tolerance,
            cfg,
            bins: BTreeMap::new(),
            failures_seen: 0,
            reductions: 0,
            oracle_runs: 0,
            events: Vec::new(),
        }
    }

    /// Ingests one captured failure with its `(shard, case_index)`
    /// provenance. Order-independent: the final report only depends on
    /// the set of failures, never on arrival order.
    pub fn ingest(&mut self, shard: usize, case_index: usize, failure: &CapturedFailure) {
        let _span = nnsmith_obs::span(nnsmith_obs::phase::TRIAGE);
        self.failures_seen += 1;
        let Some(captured) = signature_of(&failure.case, &failure.outcome) else {
            return;
        };
        let provenance = (shard, case_index);
        if crate::signature::is_anonymous_key(&captured.key) {
            // Unattributed root cause: the captured key hashes the raw
            // random case (graph neighborhood or Tzer IR loop nest), so
            // distinct cases with one root cause would split into distinct
            // bins. Reduce first and bin on the post-reduction signature
            // (recomputed on the minimal case by the reducer) so they
            // dedupe.
            match self.reduce(&failure.case, &captured) {
                Some(reduction) => {
                    let sig = reduction.signature.clone();
                    let key = self.touch_bin(&sig);
                    self.note_bin(shard, case_index, &key);
                    self.offer_repr(&key, provenance, reduction);
                }
                // Irreproducible: keep the finding visible under its
                // captured key (becomes an unreduced bin).
                None => {
                    let key = self.touch_bin(&captured);
                    self.note_bin(shard, case_index, &key);
                }
            }
            return;
        }
        // Seeded/crash keys are graph-independent: bin on the captured
        // signature directly — no re-execution needed, deterministic
        // regardless of scheduling.
        //
        // A failure is only worth reducing while it could become (or
        // improve) the representative; a failed re-reduction never
        // discards an existing one.
        let key = self.touch_bin(&captured);
        self.note_bin(shard, case_index, &key);
        let attempt = match &self.bins[&key].repr {
            Some((p, _)) => provenance < *p,
            None => true,
        };
        if attempt {
            if let Some(reduction) = self.reduce(&failure.case, &captured) {
                self.offer_repr(&key, provenance, reduction);
            }
        }
    }

    /// Bumps (creating on first sight) the bin for `sig`, returning its
    /// key. Keys are backend-qualified (`<backend>::<signature>`) so
    /// merged cross-backend reports keep one symptom per backend in its
    /// own bin.
    fn touch_bin(&mut self, sig: &BugSignature) -> String {
        let key = format!("{}::{}", self.compiler_name, sig.as_key());
        self.bins
            .entry(key.clone())
            .or_insert_with(|| PendingBin {
                signature: sig.clone(),
                count: 0,
                repr: None,
            })
            .count += 1;
        key
    }

    /// Records the canonical `bin_update` event for one ingested failure.
    /// A single uniform kind — whether the touch *created* the bin
    /// depends on arrival order, so the log does not claim it; in the
    /// sorted stream the first `bin_update` per key is the creation.
    fn note_bin(&mut self, shard: usize, case_index: usize, key: &str) {
        self.events.push(LoggedEvent::new(
            shard as u64,
            case_index as u64,
            SEQ_TRIAGE,
            "bin_update",
            &self.compiler_name,
            key,
        ));
    }

    /// Installs `reduction` as bin `key`'s representative iff its
    /// provenance is smaller than the current one — the order-independent
    /// selection rule shared by the seeded and anonymous paths.
    fn offer_repr(
        &mut self,
        key: &str,
        provenance: (usize, usize),
        reduction: crate::reduce::Reduction,
    ) {
        let bin = self.bins.get_mut(key).expect("bin just touched");
        let better = match &bin.repr {
            Some((p, _)) => provenance < *p,
            None => true,
        };
        if better {
            bin.repr = Some((provenance, reduction));
        }
    }

    fn reduce(
        &mut self,
        case: &TestCase,
        expected: &BugSignature,
    ) -> Option<crate::reduce::Reduction> {
        self.reductions += 1;
        // Pin the reduction to the signature captured during the campaign:
        // under the base options an earlier-firing seeded bug (which the
        // campaign had already "fixed") can mask this one, and the
        // reducer then disables the maskers rather than silently reducing
        // a different bug into this bin.
        let red = reduce_case_expecting_with(
            self.oracle,
            case,
            &self.options,
            self.tolerance,
            &self.cfg.reduce,
            Some(expected),
        )?;
        self.oracle_runs += red.oracle_runs;
        Some(red)
    }

    /// Finalizes the accumulated bins into a report.
    pub fn finish(self) -> TriageReport {
        let compiler_name = &self.compiler_name;
        let mut bins = BTreeMap::new();
        let mut unreduced = BTreeMap::new();
        for (key, pending) in self.bins {
            match pending.repr {
                Some((provenance, reduction)) => {
                    bins.insert(
                        key,
                        Bin {
                            backend: compiler_name.clone(),
                            bug_ids: pending.signature.seeded_ids(),
                            signature: pending.signature,
                            count: pending.count,
                            shard: provenance.0,
                            case_index: provenance.1,
                            reproducer: Reproducer::from_reduction(
                                &reduction,
                                compiler_name,
                                self.tolerance,
                            ),
                        },
                    );
                }
                // No representative reproduced the captured signature:
                // keep the bin visible rather than dropping the finding.
                None => {
                    unreduced.insert(
                        key,
                        UnreducedBin {
                            backend: compiler_name.clone(),
                            bug_ids: pending.signature.seeded_ids(),
                            signature: pending.signature,
                            count: pending.count,
                        },
                    );
                }
            }
        }
        let mut events = self.events;
        nnsmith_obs::sort_events(&mut events);
        TriageReport {
            bins,
            unreduced,
            failures_seen: self.failures_seen,
            reductions: self.reductions,
            oracle_runs: self.oracle_runs,
            events,
            profile: Profile::default(),
        }
    }
}

/// Runs a sharded campaign with the triage pipeline attached: workers
/// stream failing cases into a consumer that reduces, deduplicates and
/// collects reproducers while the campaign is still running.
///
/// Reduction re-runs cases under the engine's *base* compile options
/// (`config.campaign.options`), not the campaign's progressively-"fixed"
/// state, so a reproducer stands alone.
pub fn run_triaged_engine(
    compiler: &Compiler,
    factory: &dyn SourceFactory,
    config: &EngineConfig,
    cfg: &TriageConfig,
) -> (EngineReport, TriageReport) {
    let backends = BackendSet::single(compiler.clone());
    run_triaged_engine_inner(&backends, config, cfg, |engine_cfg, on_case| {
        run_engine_observed(compiler, factory, engine_cfg, on_case)
    })
}

/// [`run_triaged_engine`] across the configured backend set
/// ([`nnsmith_difftest::CampaignConfig::backends`]): failures stream to a
/// per-backend triage consumer whose oracle is the compiler that
/// exhibited them, so every reproducer is reduced against — and replays
/// on — its originating backend. Bin keys are backend-qualified, keeping
/// `tvmsim::crash/...` and `trtsim::crash/...` separate even for
/// identical symptoms.
pub fn run_matrix_triaged_engine(
    factory: &dyn SourceFactory,
    config: &EngineConfig,
    cfg: &TriageConfig,
) -> (EngineReport, TriageReport) {
    let backends = config.campaign.backend_set();
    run_triaged_engine_inner(&backends, config, cfg, |engine_cfg, on_case| {
        run_matrix_engine_observed(factory, engine_cfg, on_case)
    })
}

fn run_triaged_engine_inner(
    backends: &BackendSet,
    config: &EngineConfig,
    cfg: &TriageConfig,
    run: impl FnOnce(&EngineConfig, &(dyn Fn(ShardCtx, &CaseRecord) + Sync)) -> EngineReport,
) -> (EngineReport, TriageReport) {
    let mut engine_cfg = config.clone();
    engine_cfg.campaign.capture_failures = true;

    let (tx, rx) = mpsc::channel::<(usize, usize, CapturedFailure)>();
    std::thread::scope(|scope| {
        let consumer = scope.spawn(move || {
            // The consumer thread records its own profile: ingest spans
            // (signature binning + reduction) accumulate under `triage`.
            nnsmith_obs::enable();
            // One sink per backend: reduction replays each failure
            // through the compiler that exhibited it.
            let mut sinks: BTreeMap<String, TriageSink<'_>> = backends
                .iter()
                .map(|compiler| {
                    let name = compiler.system().name().to_string();
                    let sink = TriageSink::new(
                        compiler,
                        name.clone(),
                        config.campaign.options.clone(),
                        config.campaign.tolerance,
                        cfg.clone(),
                    );
                    (name, sink)
                })
                .collect();
            while let Ok((shard, case_index, failure)) = rx.recv() {
                let sink = sinks
                    .get_mut(&failure.backend)
                    .expect("failure from a backend outside the set");
                sink.ingest(shard, case_index, &failure);
            }
            let mut report = TriageReport::default();
            for (_, sink) in sinks {
                report.merge(sink.finish());
            }
            report.profile = nnsmith_obs::take();
            report
        });
        // Sender is !Sync; the observer hook is shared across workers.
        let tx = Mutex::new(tx);
        let report = run(&engine_cfg, &|ctx, record| {
            for failure in &record.failures {
                // Deep-clone before locking: the clone copies the full
                // test case and would otherwise serialize every worker on
                // the sender mutex during failure-heavy campaigns.
                let payload = (ctx.index, record.case_index, failure.clone());
                let _ = tx.lock().expect("triage sender").send(payload);
            }
        });
        drop(tx);
        let triage = consumer.join().expect("triage consumer");
        let mut report = report;
        // Fold the triage phase into the engine profile. The span *count*
        // is forced to `failures_seen`: ingest wall time (which includes
        // reduction effort) is arrival-order-dependent diagnostics, but
        // how many failures were triaged is fixed by the shard layout —
        // the deterministic view stays worker-count-independent.
        let mut stat = triage
            .profile
            .phases
            .get(nnsmith_obs::phase::TRIAGE)
            .copied()
            .unwrap_or_default();
        stat.count = triage.failures_seen as u64;
        report
            .phases
            .merged
            .phases
            .insert(nnsmith_obs::phase::TRIAGE.to_string(), stat);
        if config.campaign.log_events {
            report.events.extend(triage.events.iter().cloned());
            nnsmith_obs::sort_events(&mut report.events);
        }
        (report, triage)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_compilers::tvmsim;
    use nnsmith_difftest::{CampaignConfig, ShardCtx, TestCaseSource};
    use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
    use nnsmith_ops::{Bindings, Op, UnaryKind};
    use nnsmith_tensor::{DType, Tensor};
    use std::time::Duration;

    /// Source alternating clean tanh cases with scalar-ArgMax crashers
    /// (tvm-conv-5) whose padding varies — duplicates with different
    /// graphs and values.
    struct MixedSource {
        n: usize,
        emitted: usize,
    }

    impl TestCaseSource for MixedSource {
        fn name(&self) -> &str {
            "mixed"
        }
        fn next_case(&mut self) -> Option<TestCase> {
            if self.emitted >= self.n {
                return None;
            }
            self.emitted += 1;
            let crasher = self.emitted.is_multiple_of(2);
            let width = 2 + self.emitted % 3;
            let mut g: Graph<Op> = Graph::new();
            let x = g.add_node(
                NodeKind::Input,
                vec![],
                vec![TensorType::concrete(DType::F32, &[width as i64])],
            );
            let tanh = g.add_node(
                NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
                vec![ValueRef::output0(x)],
                vec![TensorType::concrete(DType::F32, &[width as i64])],
            );
            if crasher {
                g.add_node(
                    NodeKind::Operator(Op::ArgExtreme {
                        largest: true,
                        axis: 0,
                        keepdims: false,
                    }),
                    vec![ValueRef::output0(tanh)],
                    vec![TensorType::concrete(DType::I64, &[])],
                );
            }
            let mut b = Bindings::new();
            b.insert(
                nnsmith_graph::NodeId(0),
                Tensor::from_f32(&[width], (0..width).map(|i| i as f32 * 0.3).collect()).unwrap(),
            );
            Some(TestCase::from_bindings(g, b))
        }
    }

    fn config(workers: usize) -> EngineConfig {
        EngineConfig {
            workers,
            shards: 4,
            seed: 9,
            campaign: CampaignConfig {
                duration: Duration::from_secs(60),
                max_cases: Some(16),
                // Keep every duplicate crashing (no "fix-on-find") so the
                // dedup itself is what collapses them.
                fix_found_bugs: false,
                ..CampaignConfig::default()
            },
        }
    }

    fn factory() -> impl SourceFactory {
        nnsmith_difftest::FnSourceFactory::new("mixed", |_: ShardCtx| {
            Box::new(MixedSource { n: 8, emitted: 0 }) as Box<dyn TestCaseSource + Send>
        })
    }

    #[test]
    fn duplicates_collapse_into_one_bin() {
        let compiler = tvmsim();
        let (report, triage) =
            run_triaged_engine(&compiler, &factory(), &config(2), &TriageConfig::default());
        assert_eq!(report.result.cases, 16);
        // 2 crashers per shard x 4 shards, all the same seeded bug.
        assert_eq!(triage.failures_seen, 8);
        assert_eq!(triage.bins.len(), 1, "bins: {:?}", triage.bins.keys());
        let bin = triage.bins.values().next().unwrap();
        assert_eq!(bin.count, 8);
        assert_eq!(bin.bug_ids, vec!["tvm-conv-5".to_string()]);
        assert!(bin.reproducer.graph.operators().len() <= 2);
    }

    #[test]
    fn triage_bins_identical_across_worker_counts() {
        let compiler = tvmsim();
        let cfg = TriageConfig::default();
        let (_, one) = run_triaged_engine(&compiler, &factory(), &config(1), &cfg);
        let (_, four) = run_triaged_engine(&compiler, &factory(), &config(4), &cfg);
        assert_eq!(one.failures_seen, four.failures_seen);
        assert_eq!(
            serde::json::to_string(&one),
            serde::json::to_string(&four),
            "merged triage reports must not depend on the worker count"
        );
    }
}
