//! Bug signatures: the dedup key that turns a stream of raw oracle
//! findings into a handful of distinct bugs.
//!
//! A signature is `symptom × phase × root-cause key`. The symptom and
//! phase come from the [`TestOutcome`] (which compilation stage crashed,
//! or — for semantic mismatches — the O0-localization verdict of §4). The
//! root-cause key prefers stable evidence over per-case detail:
//!
//! 1. a seeded-bug id embedded in a crash message, or the attributed
//!    seeded bugs of a mismatch (`seeded:` keys) — every duplicate of one
//!    seeded bug bins together regardless of the triggering graph;
//! 2. otherwise the normalized first line of the crash message;
//! 3. otherwise (an unattributed mismatch) a structural *neighborhood
//!    hash* of the offending graph: operator names, dtypes and ranks with
//!    their edge structure, ignoring concrete dimensions and values, so
//!    same-shape-bug cases with different solver models still collide.
//!    IR-payload cases (the Tzer baseline) have no graph — their
//!    unattributed findings key on an [`ir_hash`] of the loop-nest
//!    structure instead (`anon-ir:` prefix), with constants bucketed and
//!    variable identities erased for the same collide-on-root-cause
//!    property.

use serde::{Deserialize, Serialize};

use nnsmith_compilers::{LExpr, LStmt, LoweredFunc};
use nnsmith_difftest::{seeded_bug_id, FaultSite, TestCase, TestOutcome};
use nnsmith_graph::{Graph, NodeKind};
use nnsmith_ops::Op;

/// The dedup key of one distinct bug.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BugSignature {
    /// Observable symptom: `"crash"` or `"semantic"`.
    pub symptom: String,
    /// Pipeline phase: `"export"`, `"compile"`, `"runtime"`,
    /// `"optimization"` or `"conversion"`.
    pub phase: String,
    /// Root-cause key (see module docs for the preference order).
    pub key: String,
}

impl BugSignature {
    /// The flat `symptom/phase/key` form used as a bin key.
    pub fn as_key(&self) -> String {
        format!("{}/{}/{}", self.symptom, self.phase, self.key)
    }

    /// Seeded-bug ids carried by the key, if any.
    pub fn seeded_ids(&self) -> Vec<String> {
        match self.key.strip_prefix("seeded:") {
            Some(ids) => ids.split('+').map(str::to_string).collect(),
            None => Vec::new(),
        }
    }
}

impl std::fmt::Display for BugSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_key())
    }
}

/// Extracts the signature of a finding; `None` for non-finding outcomes.
pub fn signature_of(case: &TestCase, outcome: &TestOutcome) -> Option<BugSignature> {
    let (symptom, phase, key) = match outcome {
        TestOutcome::ExportCrash { message } => ("crash", "export", crash_key(message)),
        TestOutcome::CompileCrash { message } => ("crash", "compile", crash_key(message)),
        TestOutcome::RuntimeError { message } => ("crash", "runtime", crash_key(message)),
        TestOutcome::ResultMismatch {
            site, attributed, ..
        } => {
            let phase = match site {
                FaultSite::Optimization => "optimization",
                FaultSite::Conversion => "conversion",
            };
            let key = if attributed.is_empty() {
                match &case.ir {
                    // Tzer findings carry IR locations, not graph
                    // neighborhoods: key on the loop-nest structure.
                    Some(funcs) => format!("anon-ir:{:016x}", ir_hash(funcs)),
                    None => format!("anon:{:016x}", neighborhood_hash(&case.graph)),
                }
            } else {
                let mut ids = attributed.clone();
                ids.sort();
                ids.dedup();
                format!("seeded:{}", ids.join("+"))
            };
            ("semantic", phase, key)
        }
        _ => return None,
    };
    Some(BugSignature {
        symptom: symptom.to_string(),
        phase: phase.to_string(),
        key,
    })
}

/// Normalizes a crash message into a root-cause key: the seeded-bug id
/// when present, the first line otherwise.
fn crash_key(message: &str) -> String {
    if let Some(id) = seeded_bug_id(message) {
        return format!("seeded:{id}");
    }
    message.lines().next().unwrap_or(message).to_string()
}

/// Structural hash of a graph's operator neighborhood: op names, dtypes
/// and ranks plus producer edges, in topological order. Concrete dimension
/// values and tensor contents are deliberately excluded so duplicates with
/// different solver models collide.
pub fn neighborhood_hash(graph: &Graph<Op>) -> u64 {
    let mut text = String::new();
    let order = graph
        .topo_order()
        .unwrap_or_else(|_| graph.iter().map(|(id, _)| id).collect());
    for id in order {
        let node = graph.node(id);
        match &node.kind {
            NodeKind::Operator(op) => text.push_str(op.name()),
            NodeKind::Input | NodeKind::Placeholder => text.push_str("in"),
            NodeKind::Weight => text.push('w'),
        }
        for out in &node.outputs {
            text.push_str(&format!(":{}r{}", out.dtype, out.rank()));
        }
        for v in &node.inputs {
            text.push_str(&format!("<{}.{}", v.node.0, v.index));
        }
        text.push(';');
    }
    fnv1a(text.as_bytes())
}

/// True when `key` is an unattributed root-cause key — graph-hashed
/// (`anon:`) or IR-hashed (`anon-ir:`). Such findings must be reduced
/// before binning: their captured key hashes the raw random case, so
/// duplicates of one root cause only collide post-reduction.
pub fn is_anonymous_key(key: &str) -> bool {
    key.starts_with("anon:") || key.starts_with("anon-ir:")
}

/// Structural hash of low-level IR (the [`neighborhood_hash`] analogue for
/// Tzer findings): loop-nest shape with log-bucketed extents, and index
/// expression shape with variable identities erased and constants
/// log-bucketed — so 1-minimal reproducers of one IR root cause collide
/// while structurally different causes stay apart.
pub fn ir_hash(funcs: &[LoweredFunc]) -> u64 {
    fn expr_text(e: &LExpr, out: &mut String) {
        match e {
            LExpr::Const(c) => out.push_str(&format!("c{}", nnsmith_compilers::log_bucket(*c))),
            LExpr::Var(_) => out.push('v'),
            LExpr::Add(a, b) | LExpr::Mul(a, b) | LExpr::Div(a, b) | LExpr::Mod(a, b) => {
                out.push(match e {
                    LExpr::Add(..) => '+',
                    LExpr::Mul(..) => '*',
                    LExpr::Div(..) => '/',
                    _ => '%',
                });
                out.push('(');
                expr_text(a, out);
                out.push(',');
                expr_text(b, out);
                out.push(')');
            }
        }
    }
    fn stmt_text(stmts: &[LStmt], out: &mut String) {
        for s in stmts {
            match s {
                LStmt::Store { index } => {
                    out.push('S');
                    expr_text(index, out);
                }
                LStmt::For { extent, body, .. } => {
                    out.push_str(&format!("F{}[", nnsmith_compilers::log_bucket(*extent)));
                    stmt_text(body, out);
                    out.push(']');
                }
            }
        }
    }
    let mut text = String::new();
    for f in funcs {
        stmt_text(&f.body, &mut text);
        text.push(';');
    }
    fnv1a(text.as_bytes())
}

/// Stable string hash (FNV-1a) for deriving deterministic seeds from
/// signature keys.
pub fn stable_hash(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

/// FNV-1a: a fixed, process-independent hash (std's hashers are seeded).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_graph::{NodeKind, TensorType, ValueRef};
    use nnsmith_ops::{Bindings, UnaryKind};
    use nnsmith_tensor::DType;

    fn tanh_case(dims: &[i64]) -> TestCase {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, dims)],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, dims)],
        );
        TestCase::from_bindings(g, Bindings::new())
    }

    #[test]
    fn seeded_crash_key_ignores_detail() {
        let case = tanh_case(&[2]);
        let a = signature_of(
            &case,
            &TestOutcome::CompileCrash {
                message: "crash: seeded bug tvm-conv-5: scalar argmax".into(),
            },
        )
        .unwrap();
        let b = signature_of(
            &case,
            &TestOutcome::CompileCrash {
                message: "crash: seeded bug tvm-conv-5: different per-case text".into(),
            },
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.symptom, "crash");
        assert_eq!(a.phase, "compile");
        assert_eq!(a.seeded_ids(), vec!["tvm-conv-5".to_string()]);
    }

    #[test]
    fn mismatch_attribution_sorted() {
        let case = tanh_case(&[2]);
        let sig = |attributed: Vec<&str>| {
            signature_of(
                &case,
                &TestOutcome::ResultMismatch {
                    detail: "output 0 element 3".into(),
                    site: FaultSite::Optimization,
                    attributed: attributed.into_iter().map(str::to_string).collect(),
                },
            )
            .unwrap()
        };
        assert_eq!(sig(vec!["b", "a"]), sig(vec!["a", "b"]));
        assert_eq!(sig(vec!["a", "b"]).seeded_ids(), vec!["a", "b"]);
        assert_eq!(sig(vec!["a"]).phase, "optimization");
    }

    #[test]
    fn anon_mismatch_hashes_structure_not_dims() {
        // Same op/dtype/rank skeleton, different concrete dims → same hash;
        // different rank → different hash.
        let a = tanh_case(&[2, 3]);
        let b = tanh_case(&[5, 7]);
        let c = tanh_case(&[2]);
        assert_eq!(neighborhood_hash(&a.graph), neighborhood_hash(&b.graph));
        assert_ne!(neighborhood_hash(&a.graph), neighborhood_hash(&c.graph));
    }

    #[test]
    fn ir_mismatch_keys_on_ir_structure_not_graph() {
        use nnsmith_compilers::{LExpr, LStmt, LoweredFunc};
        let func = |extent: i64, var: u32| LoweredFunc {
            name: "k".into(),
            body: vec![LStmt::For {
                var,
                extent,
                body: vec![LStmt::Store {
                    index: LExpr::Mod(Box::new(LExpr::Var(var)), Box::new(LExpr::Var(var + 1))),
                }],
                vectorized: false,
                unrolled: false,
            }],
        };
        let mismatch = TestOutcome::ResultMismatch {
            detail: "ir".into(),
            site: FaultSite::Optimization,
            attributed: Vec::new(),
        };
        // Same structure, different variable ids and same-bucket extents →
        // same key; different expression shape → different key.
        let a = signature_of(&TestCase::from_ir(vec![func(8, 0)]), &mismatch).unwrap();
        let b = signature_of(&TestCase::from_ir(vec![func(9, 7)]), &mismatch).unwrap();
        assert_eq!(a, b);
        assert!(a.key.starts_with("anon-ir:"), "key: {}", a.key);
        assert!(is_anonymous_key(&a.key));
        let deeper = TestCase::from_ir(vec![LoweredFunc {
            name: "k".into(),
            body: vec![LStmt::Store {
                index: LExpr::Var(0),
            }],
        }]);
        let c = signature_of(&deeper, &mismatch).unwrap();
        assert_ne!(a.key, c.key);
        // IR anon keys never collide with graph anon keys.
        assert!(!c.key.starts_with("anon:"));
    }

    #[test]
    fn pass_is_not_a_finding() {
        let case = tanh_case(&[2]);
        assert!(signature_of(&case, &TestOutcome::Pass).is_none());
        assert!(signature_of(&case, &TestOutcome::NumericInvalid).is_none());
    }
}
