//! Bug signatures: the dedup key that turns a stream of raw oracle
//! findings into a handful of distinct bugs.
//!
//! A signature is `symptom × phase × root-cause key`. The symptom and
//! phase come from the [`TestOutcome`] (which compilation stage crashed,
//! or — for semantic mismatches — the O0-localization verdict of §4). The
//! root-cause key prefers stable evidence over per-case detail:
//!
//! 1. a seeded-bug id embedded in a crash message, or the attributed
//!    seeded bugs of a mismatch (`seeded:` keys) — every duplicate of one
//!    seeded bug bins together regardless of the triggering graph;
//! 2. otherwise the normalized first line of the crash message;
//! 3. otherwise (an unattributed mismatch) a structural *neighborhood
//!    hash* of the offending graph: operator names, dtypes and ranks with
//!    their edge structure, ignoring concrete dimensions and values, so
//!    same-shape-bug cases with different solver models still collide.

use serde::{Deserialize, Serialize};

use nnsmith_difftest::{seeded_bug_id, FaultSite, TestCase, TestOutcome};
use nnsmith_graph::{Graph, NodeKind};
use nnsmith_ops::Op;

/// The dedup key of one distinct bug.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BugSignature {
    /// Observable symptom: `"crash"` or `"semantic"`.
    pub symptom: String,
    /// Pipeline phase: `"export"`, `"compile"`, `"runtime"`,
    /// `"optimization"` or `"conversion"`.
    pub phase: String,
    /// Root-cause key (see module docs for the preference order).
    pub key: String,
}

impl BugSignature {
    /// The flat `symptom/phase/key` form used as a bin key.
    pub fn as_key(&self) -> String {
        format!("{}/{}/{}", self.symptom, self.phase, self.key)
    }

    /// Seeded-bug ids carried by the key, if any.
    pub fn seeded_ids(&self) -> Vec<String> {
        match self.key.strip_prefix("seeded:") {
            Some(ids) => ids.split('+').map(str::to_string).collect(),
            None => Vec::new(),
        }
    }
}

impl std::fmt::Display for BugSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_key())
    }
}

/// Extracts the signature of a finding; `None` for non-finding outcomes.
pub fn signature_of(case: &TestCase, outcome: &TestOutcome) -> Option<BugSignature> {
    let (symptom, phase, key) = match outcome {
        TestOutcome::ExportCrash { message } => ("crash", "export", crash_key(message)),
        TestOutcome::CompileCrash { message } => ("crash", "compile", crash_key(message)),
        TestOutcome::RuntimeError { message } => ("crash", "runtime", crash_key(message)),
        TestOutcome::ResultMismatch {
            site, attributed, ..
        } => {
            let phase = match site {
                FaultSite::Optimization => "optimization",
                FaultSite::Conversion => "conversion",
            };
            let key = if attributed.is_empty() {
                format!("anon:{:016x}", neighborhood_hash(&case.graph))
            } else {
                let mut ids = attributed.clone();
                ids.sort();
                ids.dedup();
                format!("seeded:{}", ids.join("+"))
            };
            ("semantic", phase, key)
        }
        _ => return None,
    };
    Some(BugSignature {
        symptom: symptom.to_string(),
        phase: phase.to_string(),
        key,
    })
}

/// Normalizes a crash message into a root-cause key: the seeded-bug id
/// when present, the first line otherwise.
fn crash_key(message: &str) -> String {
    if let Some(id) = seeded_bug_id(message) {
        return format!("seeded:{id}");
    }
    message.lines().next().unwrap_or(message).to_string()
}

/// Structural hash of a graph's operator neighborhood: op names, dtypes
/// and ranks plus producer edges, in topological order. Concrete dimension
/// values and tensor contents are deliberately excluded so duplicates with
/// different solver models collide.
pub fn neighborhood_hash(graph: &Graph<Op>) -> u64 {
    let mut text = String::new();
    let order = graph
        .topo_order()
        .unwrap_or_else(|_| graph.iter().map(|(id, _)| id).collect());
    for id in order {
        let node = graph.node(id);
        match &node.kind {
            NodeKind::Operator(op) => text.push_str(op.name()),
            NodeKind::Input | NodeKind::Placeholder => text.push_str("in"),
            NodeKind::Weight => text.push('w'),
        }
        for out in &node.outputs {
            text.push_str(&format!(":{}r{}", out.dtype, out.rank()));
        }
        for v in &node.inputs {
            text.push_str(&format!("<{}.{}", v.node.0, v.index));
        }
        text.push(';');
    }
    fnv1a(text.as_bytes())
}

/// Stable string hash (FNV-1a) for deriving deterministic seeds from
/// signature keys.
pub fn stable_hash(s: &str) -> u64 {
    fnv1a(s.as_bytes())
}

/// FNV-1a: a fixed, process-independent hash (std's hashers are seeded).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_graph::{NodeKind, TensorType, ValueRef};
    use nnsmith_ops::{Bindings, UnaryKind};
    use nnsmith_tensor::DType;

    fn tanh_case(dims: &[i64]) -> TestCase {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, dims)],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, dims)],
        );
        TestCase::from_bindings(g, Bindings::new())
    }

    #[test]
    fn seeded_crash_key_ignores_detail() {
        let case = tanh_case(&[2]);
        let a = signature_of(
            &case,
            &TestOutcome::CompileCrash {
                message: "crash: seeded bug tvm-conv-5: scalar argmax".into(),
            },
        )
        .unwrap();
        let b = signature_of(
            &case,
            &TestOutcome::CompileCrash {
                message: "crash: seeded bug tvm-conv-5: different per-case text".into(),
            },
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.symptom, "crash");
        assert_eq!(a.phase, "compile");
        assert_eq!(a.seeded_ids(), vec!["tvm-conv-5".to_string()]);
    }

    #[test]
    fn mismatch_attribution_sorted() {
        let case = tanh_case(&[2]);
        let sig = |attributed: Vec<&str>| {
            signature_of(
                &case,
                &TestOutcome::ResultMismatch {
                    detail: "output 0 element 3".into(),
                    site: FaultSite::Optimization,
                    attributed: attributed.into_iter().map(str::to_string).collect(),
                },
            )
            .unwrap()
        };
        assert_eq!(sig(vec!["b", "a"]), sig(vec!["a", "b"]));
        assert_eq!(sig(vec!["a", "b"]).seeded_ids(), vec!["a", "b"]);
        assert_eq!(sig(vec!["a"]).phase, "optimization");
    }

    #[test]
    fn anon_mismatch_hashes_structure_not_dims() {
        // Same op/dtype/rank skeleton, different concrete dims → same hash;
        // different rank → different hash.
        let a = tanh_case(&[2, 3]);
        let b = tanh_case(&[5, 7]);
        let c = tanh_case(&[2]);
        assert_eq!(neighborhood_hash(&a.graph), neighborhood_hash(&b.graph));
        assert_ne!(neighborhood_hash(&a.graph), neighborhood_hash(&c.graph));
    }

    #[test]
    fn pass_is_not_a_finding() {
        let case = tanh_case(&[2]);
        assert!(signature_of(&case, &TestOutcome::Pass).is_none());
        assert!(signature_of(&case, &TestOutcome::NumericInvalid).is_none());
    }
}
