//! The triage CLI: reduce a campaign's findings into a reproducer corpus
//! and replay corpora byte-for-byte.
//!
//! ```text
//! triage reduce [--compiler tvmsim|ortsim|trtsim] [--cases N] [--seed N] [--out FILE]
//!     Run an NNSmith campaign through the triaged engine and write the
//!     minimized reproducer corpus as JSON.
//!
//! triage replay FILE...
//!     Load each corpus file and replay every reproducer; exit non-zero
//!     if any fails to reproduce its stored signature.
//!
//! triage smoke
//!     Seeded-bug smoke: reduce one known crasher, round-trip it through
//!     JSON, replay it, and verify the verdict — the CI triage job.
//! ```

use std::process::ExitCode;
use std::time::Duration;

use nnsmith_compilers::{compiler_by_name, tvmsim, CompileOptions};
use nnsmith_difftest::{CampaignConfig, EngineConfig, TestCase, Tolerance};
use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
use nnsmith_ops::{Bindings, Op};
use nnsmith_tensor::{DType, Tensor};
use nnsmith_triage::{
    reduce_case, run_triaged_engine, Corpus, ReduceConfig, Reproducer, TriageConfig,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("reduce") => cmd_reduce(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("smoke") => cmd_smoke(),
        _ => {
            eprintln!("usage: triage <reduce|replay|smoke> [args]");
            ExitCode::from(2)
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_reduce(args: &[String]) -> ExitCode {
    let compiler_name = flag_value(args, "--compiler").unwrap_or("tvmsim");
    let Some(compiler) = compiler_by_name(compiler_name) else {
        eprintln!("unknown compiler {compiler_name:?} (tvmsim|ortsim|trtsim)");
        return ExitCode::from(2);
    };
    let cases: usize = flag_value(args, "--cases")
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(101);
    let out = flag_value(args, "--out").unwrap_or("triage_corpus.json");

    let factory = nnsmith_core::NnSmithFactory::new(nnsmith_core::NnSmithConfig::default());
    let config = EngineConfig {
        workers: 1,
        shards: 4,
        seed,
        campaign: CampaignConfig {
            duration: Duration::from_secs(3600),
            max_cases: Some(cases),
            ..CampaignConfig::default()
        },
    };
    let (report, triage) =
        run_triaged_engine(&compiler, &factory, &config, &TriageConfig::default());
    println!(
        "{} cases, {} failing, {} bins ({} reductions, {} oracle runs)",
        report.result.cases,
        triage.failures_seen,
        triage.bins.len(),
        triage.reductions,
        triage.oracle_runs
    );
    for (key, bin) in &triage.bins {
        println!(
            "  {key}: x{} -> {} ops (shard {}, case {})",
            bin.count,
            bin.reproducer.graph.operators().len(),
            bin.shard,
            bin.case_index
        );
    }
    let corpus = triage.to_corpus();
    match corpus.save(out) {
        Ok(()) => {
            println!("wrote {out} ({} reproducers)", corpus.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_replay(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("usage: triage replay FILE...");
        return ExitCode::from(2);
    }
    let mut failures = 0usize;
    for file in files {
        let corpus = match Corpus::load(file) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{file}: {e}");
                failures += 1;
                continue;
            }
        };
        for (key, rep) in &corpus.reproducers {
            match rep.replay() {
                Ok(report) if report.reproduced => println!("{file}: {key}: reproduced"),
                Ok(report) => {
                    eprintln!("{file}: {key}: DIVERGED (observed {:?})", report.observed);
                    failures += 1;
                }
                Err(e) => {
                    eprintln!("{file}: {key}: {e}");
                    failures += 1;
                }
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// A bloated tvm-conv-5 crasher (scalar ArgMax behind two irrelevant
/// stages) — the seeded-bug smoke case.
fn smoke_case() -> TestCase {
    let mut g: Graph<Op> = Graph::new();
    let x = g.add_node(
        NodeKind::Input,
        vec![],
        vec![TensorType::concrete(DType::F32, &[6])],
    );
    let tanh = g.add_node(
        NodeKind::Operator(Op::Unary(nnsmith_ops::UnaryKind::Tanh)),
        vec![ValueRef::output0(x)],
        vec![TensorType::concrete(DType::F32, &[6])],
    );
    let relu = g.add_node(
        NodeKind::Operator(Op::Unary(nnsmith_ops::UnaryKind::Relu)),
        vec![ValueRef::output0(tanh)],
        vec![TensorType::concrete(DType::F32, &[6])],
    );
    g.add_node(
        NodeKind::Operator(Op::ArgExtreme {
            largest: true,
            axis: 0,
            keepdims: false,
        }),
        vec![ValueRef::output0(relu)],
        vec![TensorType::concrete(DType::I64, &[])],
    );
    let mut b = Bindings::new();
    b.insert(
        nnsmith_graph::NodeId(0),
        Tensor::from_f32(&[6], vec![0.1, 0.9, 0.3, 0.5, 0.2, 0.4]).unwrap(),
    );
    TestCase::from_bindings(g, b)
}

fn cmd_smoke() -> ExitCode {
    let compiler = tvmsim();
    let Some(red) = reduce_case(
        &compiler,
        &smoke_case(),
        &CompileOptions::default(),
        Tolerance::default(),
        &ReduceConfig::default(),
    ) else {
        eprintln!("smoke: seeded case was not a finding");
        return ExitCode::FAILURE;
    };
    println!(
        "smoke: {} reduced {} -> {} ops",
        red.signature, red.original_ops, red.reduced_ops
    );
    if red.signature.key != "seeded:tvm-conv-5" || red.reduced_ops > 2 {
        eprintln!("smoke: unexpected reduction result");
        return ExitCode::FAILURE;
    }
    let rep = Reproducer::from_reduction(&red, "tvmsim", Tolerance::default());
    let mut corpus = Corpus::new();
    corpus.insert(rep);
    let js = corpus.to_json();
    let back = match Corpus::from_json(&js) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("smoke: corpus decode failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if back.to_json() != js {
        eprintln!("smoke: corpus JSON is not byte-stable");
        return ExitCode::FAILURE;
    }
    for rep in back.reproducers.values() {
        match rep.replay() {
            Ok(r) if r.reproduced => println!("smoke: replayed {}", rep.signature),
            other => {
                eprintln!("smoke: replay diverged: {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("smoke: OK");
    ExitCode::SUCCESS
}
