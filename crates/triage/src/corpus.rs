//! The persistent reproducer corpus: minimized cases serialized to JSON
//! and replayed byte-identically.
//!
//! A [`Reproducer`] is everything needed to re-run one minimized finding
//! on a fresh process: the concrete graph, the exact weight/input tensors,
//! the comparison tolerance and the compiler name. Serialization is
//! deterministic (sorted maps, shortest-roundtrip floats), so
//! serialize → deserialize → serialize is the identity on bytes — the
//! property the regression-corpus test pins.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use nnsmith_compilers::{compiler_by_name, CompileOptions, CoverageSet};
use nnsmith_difftest::{run_case, TestCase, Tolerance};
use nnsmith_graph::Graph;
use nnsmith_ops::{Bindings, Op};
use nnsmith_tensor::Tensor;

use crate::reduce::Reduction;
use crate::signature::{signature_of, BugSignature};

/// One minimized, replayable finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reproducer {
    /// The bug signature this case reproduces.
    pub signature: BugSignature,
    /// Compiler system name (resolved via
    /// [`nnsmith_compilers::compiler_by_name`] on replay).
    pub compiler: String,
    /// Seeded bugs replay must disable first: the maskers that were
    /// "fixed" before this (otherwise-masked) bug became observable.
    pub disabled_bugs: Vec<String>,
    /// Relative comparison tolerance.
    pub rtol: f64,
    /// Absolute comparison tolerance.
    pub atol: f64,
    /// The minimized concrete graph (empty for IR findings).
    pub graph: Graph<Op>,
    /// Weight tensors by node id (sorted: deterministic encoding).
    pub weights: BTreeMap<u32, Tensor>,
    /// Input tensors by node id (sorted: deterministic encoding).
    pub inputs: BTreeMap<u32, Tensor>,
    /// Minimized low-level IR payload, for findings from IR-mutation
    /// sources (the Tzer baseline). Replay drives the TIR pipeline on it
    /// instead of the graph frontend.
    pub ir: Option<Vec<nnsmith_compilers::LoweredFunc>>,
    /// Operator count of the original, unreduced case.
    pub original_ops: usize,
}

/// Outcome of replaying a reproducer.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ReplayReport {
    /// Signature observed on replay.
    pub observed: Option<BugSignature>,
    /// True when the observed signature equals the stored one.
    pub reproduced: bool,
}

impl Reproducer {
    /// Packages a finished reduction for the corpus.
    pub fn from_reduction(red: &Reduction, compiler: &str, tol: Tolerance) -> Reproducer {
        Reproducer {
            signature: red.signature.clone(),
            compiler: compiler.to_string(),
            disabled_bugs: red.disabled_bugs.clone(),
            rtol: tol.rtol,
            atol: tol.atol,
            graph: red.case.graph.clone(),
            weights: red
                .case
                .weights
                .iter()
                .map(|(id, t)| (id.0, t.clone()))
                .collect(),
            inputs: red
                .case
                .inputs
                .iter()
                .map(|(id, t)| (id.0, t.clone()))
                .collect(),
            ir: red.case.ir.clone(),
            original_ops: red.original_ops,
        }
    }

    /// Seeded-bug ids implicated, when identified (derived from the
    /// signature — not stored, so it can never drift from it).
    pub fn bug_ids(&self) -> Vec<String> {
        self.signature.seeded_ids()
    }

    /// Reassembles the runnable test case inside one fresh intern pool.
    ///
    /// Deserialization interns each tensor type into a private per-type
    /// pool; rehoming the graph here gives the replayed case a single
    /// arena with the usual hash-consing sharing, dropped with the case.
    pub fn to_case(&self) -> TestCase {
        if let Some(funcs) = &self.ir {
            return TestCase::from_ir(funcs.clone());
        }
        let pool = nnsmith_solver::InternPool::small();
        let mut weights = Bindings::new();
        for (&id, t) in &self.weights {
            weights.insert(nnsmith_graph::NodeId(id), t.clone());
        }
        let mut inputs = std::collections::HashMap::new();
        for (&id, t) in &self.inputs {
            inputs.insert(nnsmith_graph::NodeId(id), t.clone());
        }
        TestCase {
            graph: self.graph.rehomed(&pool),
            weights,
            inputs,
            ir: None,
        }
    }

    /// Re-runs the case on the named compiler (default opt level, every
    /// seeded bug enabled except the recorded maskers) and compares the
    /// observed signature to the stored one.
    ///
    /// # Errors
    ///
    /// Fails when the compiler name is unknown.
    pub fn replay(&self) -> Result<ReplayReport, String> {
        let compiler = compiler_by_name(&self.compiler)
            .ok_or_else(|| format!("unknown compiler {:?}", self.compiler))?;
        let case = self.to_case();
        let tol = Tolerance {
            rtol: self.rtol,
            atol: self.atol,
        };
        let mut options = CompileOptions::default();
        for id in &self.disabled_bugs {
            // Canonical lookup spans the graph-level and TIR-level
            // registries, so IR-campaign maskers disable on replay too.
            if let Some(canon) = nnsmith_compilers::canonical_bug_id(id) {
                options.bugs.disable(canon);
            }
        }
        let mut scratch = CoverageSet::new();
        let outcome = run_case(&compiler, &case, &options, tol, &mut scratch);
        let observed = signature_of(&case, &outcome);
        let reproduced = observed.as_ref() == Some(&self.signature);
        Ok(ReplayReport {
            observed,
            reproduced,
        })
    }
}

/// A corpus of reproducers, keyed by `compiler::signature`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    /// Reproducers by `<compiler>::<`[`BugSignature::as_key`]`>`, sorted.
    /// The compiler qualifies the key because signatures are
    /// compiler-blind: the same anonymous neighborhood hash on two
    /// systems is two distinct bugs, and merging per-compiler corpora
    /// must not overwrite one with the other.
    pub reproducers: BTreeMap<String, Reproducer>,
}

impl Corpus {
    /// Creates an empty corpus.
    pub fn new() -> Self {
        Corpus::default()
    }

    /// Inserts (or replaces) the reproducer for its compiler + signature.
    pub fn insert(&mut self, r: Reproducer) {
        self.reproducers
            .insert(format!("{}::{}", r.compiler, r.signature.as_key()), r);
    }

    /// Absorbs every reproducer of `other` (keys are compiler-qualified,
    /// so merging per-compiler corpora cannot collide across systems).
    pub fn merge(&mut self, other: Corpus) {
        self.reproducers.extend(other.reproducers);
    }

    /// Bridges the reproducer corpus into the coverage-feedback loop:
    /// every graph-level reproducer, reassembled as a runnable
    /// [`TestCase`], in key order (deterministic). IR reproducers are
    /// skipped — they seed the Tzer corpus, not the graph generator.
    pub fn seed_cases(&self) -> Vec<TestCase> {
        self.reproducers
            .values()
            .filter(|r| r.ir.is_none())
            .map(Reproducer::to_case)
            .collect()
    }

    /// Number of distinct reproducers.
    pub fn len(&self) -> usize {
        self.reproducers.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.reproducers.is_empty()
    }

    /// Deterministic JSON encoding.
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Decodes a corpus from JSON.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a structural mismatch.
    pub fn from_json(s: &str) -> Result<Corpus, serde::json::Error> {
        serde::json::from_str(s)
    }

    /// Writes the corpus to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a corpus from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; malformed JSON becomes `InvalidData`.
    pub fn load(path: &str) -> std::io::Result<Corpus> {
        let text = std::fs::read_to_string(path)?;
        Corpus::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::{reduce_case, ReduceConfig};
    use nnsmith_compilers::tvmsim;
    use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
    use nnsmith_ops::Op;
    use nnsmith_tensor::DType;

    fn argmax_case() -> TestCase {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        g.add_node(
            NodeKind::Operator(Op::ArgExtreme {
                largest: true,
                axis: 0,
                keepdims: false,
            }),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::I64, &[])],
        );
        let mut b = Bindings::new();
        b.insert(
            nnsmith_graph::NodeId(0),
            Tensor::from_f32(&[4], vec![1., 5., 2., 4.]).unwrap(),
        );
        TestCase::from_bindings(g, b)
    }

    #[test]
    fn reproducer_roundtrip_and_replay() {
        let compiler = tvmsim();
        let red = reduce_case(
            &compiler,
            &argmax_case(),
            &CompileOptions::default(),
            Tolerance::default(),
            &ReduceConfig::default(),
        )
        .expect("finding");
        let rep = Reproducer::from_reduction(&red, "tvmsim", Tolerance::default());
        assert_eq!(rep.bug_ids(), vec!["tvm-conv-5".to_string()]);

        let mut corpus = Corpus::new();
        corpus.insert(rep);
        let js = corpus.to_json();
        let back = Corpus::from_json(&js).expect("decodes");
        assert_eq!(back, corpus);
        assert_eq!(back.to_json(), js, "byte-identical re-encode");

        let (_, rep2) = back.reproducers.iter().next().expect("one entry");
        let report = rep2.replay().expect("known compiler");
        assert!(report.reproduced, "observed {:?}", report.observed);
    }

    #[test]
    fn ir_reproducer_roundtrip_and_replay() {
        use nnsmith_compilers::{LExpr, LStmt, LoweredFunc};
        let compiler = tvmsim();
        let case = TestCase::from_ir(vec![LoweredFunc {
            name: "mutant".into(),
            body: vec![LStmt::Store {
                index: LExpr::Mod(Box::new(LExpr::Var(0)), Box::new(LExpr::Var(1))),
            }],
        }]);
        let red = reduce_case(
            &compiler,
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &ReduceConfig::default(),
        )
        .expect("finding");
        let rep = Reproducer::from_reduction(&red, "tvmsim", Tolerance::default());
        assert_eq!(rep.bug_ids(), vec!["tir-simpl-mod".to_string()]);
        assert!(rep.ir.is_some());

        let mut corpus = Corpus::new();
        corpus.insert(rep);
        let js = corpus.to_json();
        let back = Corpus::from_json(&js).expect("decodes");
        assert_eq!(back, corpus);
        assert_eq!(back.to_json(), js, "byte-identical re-encode");

        let (_, rep2) = back.reproducers.iter().next().expect("one entry");
        let report = rep2.replay().expect("known compiler");
        assert!(report.reproduced, "observed {:?}", report.observed);
    }

    #[test]
    fn decodes_corpora_written_before_the_ir_field_existed() {
        // Corpora persisted by older binaries have no "ir" key; loading
        // them must keep working (the field decodes as None).
        let compiler = tvmsim();
        let red = reduce_case(
            &compiler,
            &argmax_case(),
            &CompileOptions::default(),
            Tolerance::default(),
            &ReduceConfig::default(),
        )
        .expect("finding");
        let mut corpus = Corpus::new();
        corpus.insert(Reproducer::from_reduction(
            &red,
            "tvmsim",
            Tolerance::default(),
        ));
        let old_format = corpus.to_json().replace("\"ir\":null,", "");
        assert!(!old_format.contains("\"ir\""), "fixture must drop the key");
        let back = Corpus::from_json(&old_format).expect("old corpora still decode");
        assert_eq!(back, corpus);
        let (_, rep) = back.reproducers.iter().next().expect("one entry");
        assert!(rep.ir.is_none());
        assert!(rep.replay().expect("known compiler").reproduced);
    }

    #[test]
    fn seed_cases_bridge_graph_reproducers_only() {
        use nnsmith_compilers::{LExpr, LStmt, LoweredFunc};
        let compiler = tvmsim();
        let mut corpus = Corpus::new();
        for case in [
            argmax_case(),
            TestCase::from_ir(vec![LoweredFunc {
                name: "mutant".into(),
                body: vec![LStmt::Store {
                    index: LExpr::Mod(Box::new(LExpr::Var(0)), Box::new(LExpr::Var(1))),
                }],
            }]),
        ] {
            let red = reduce_case(
                &compiler,
                &case,
                &CompileOptions::default(),
                Tolerance::default(),
                &ReduceConfig::default(),
            )
            .expect("finding");
            corpus.insert(Reproducer::from_reduction(
                &red,
                "tvmsim",
                Tolerance::default(),
            ));
        }
        assert_eq!(corpus.len(), 2);
        let seeds = corpus.seed_cases();
        assert_eq!(seeds.len(), 1, "IR reproducers don't seed the graph loop");
        assert!(!seeds[0].is_ir());
        assert!(!seeds[0].graph.operators().is_empty());
    }

    #[test]
    fn replay_unknown_compiler_errors() {
        let compiler = tvmsim();
        let red = reduce_case(
            &compiler,
            &argmax_case(),
            &CompileOptions::default(),
            Tolerance::default(),
            &ReduceConfig::default(),
        )
        .expect("finding");
        let mut rep = Reproducer::from_reduction(&red, "tvmsim", Tolerance::default());
        rep.compiler = "nvcc".into();
        assert!(rep.replay().is_err());
    }
}
