//! Delta-debugging reduction of failing test cases.
//!
//! Given a case whose oracle verdict is a finding, the reducer shrinks it
//! until it is **1-minimal**: no single operator can be removed without
//! losing the bug signature. Two passes alternate:
//!
//! * **node removal with edge hoisting** — an operator is deleted and every
//!   consumer of its outputs is rewired to a fresh `Input` leaf of the same
//!   concrete type, bound to the tensor that flowed on that edge in the
//!   reference execution. The candidate is well-typed by construction and
//!   (for semantic bugs) sees the same values, so the verdict usually
//!   survives; leaves and operators left dangling are pruned in later
//!   rounds;
//! * **constraint-aware shape shrinking** — every leaf dimension becomes a
//!   fresh solver variable bounded by its current value, the operator
//!   `requires` constraints are re-asserted along the graph, and the
//!   min-biased solver produces the smallest well-typed re-concretization.
//!   Operating on the interned constraint representation keeps re-solving
//!   cheap (`TensorType` dimensions are `ExprId` handles).
//!
//! Every candidate is re-run through the differential oracle and accepted
//! only if its [`BugSignature`] matches the original, so reduction is
//! verdict-preserving by construction.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::SeedableRng;

use nnsmith_compilers::{CompileOptions, Compiler, CoverageSet, LExpr, LStmt, LoweredFunc};
use nnsmith_difftest::{run_case, TestCase, TestOutcome, Tolerance};
use nnsmith_graph::{Graph, NodeId, NodeKind, TensorType, ValueRef};
use nnsmith_ops::{Bindings, Op, OpMemo};
use nnsmith_solver::{IntExpr, SatResult, Solver, SolverConfig};
use nnsmith_tensor::Tensor;

use crate::signature::{signature_of, BugSignature};

/// The differential oracle the reducer replays candidates through.
///
/// Production code uses a [`Compiler`] (each candidate goes through the
/// full export → compile → run → compare pipeline of
/// [`nnsmith_difftest::run_case`]); tests substitute synthetic oracles to
/// exercise triage behaviours — unattributed semantic mismatches, say —
/// that the simulated compilers cannot produce organically.
pub trait CaseOracle: Sync {
    /// Runs one differential test of `case` and returns its outcome.
    fn run_oracle(&self, case: &TestCase, options: &CompileOptions, tol: Tolerance) -> TestOutcome;
}

impl CaseOracle for Compiler {
    fn run_oracle(&self, case: &TestCase, options: &CompileOptions, tol: Tolerance) -> TestOutcome {
        let mut scratch = CoverageSet::new();
        run_case(self, case, options, tol, &mut scratch)
    }
}

/// Reduction knobs.
#[derive(Debug, Clone)]
pub struct ReduceConfig {
    /// Outer removal/shrink rounds before giving up on a fixpoint.
    pub max_rounds: usize,
    /// Run the solver-backed shape-shrinking pass after node removal.
    pub shrink_shapes: bool,
    /// Seed for regenerated leaf tensors after a shape shrink.
    pub value_seed: u64,
}

impl Default for ReduceConfig {
    fn default() -> Self {
        ReduceConfig {
            max_rounds: 32,
            shrink_shapes: true,
            value_seed: 0x7a1a_9e5e_ed00_0001,
        }
    }
}

/// A finished reduction.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The 1-minimal case.
    pub case: TestCase,
    /// The minimal case's oracle outcome.
    pub outcome: TestOutcome,
    /// The preserved bug signature.
    pub signature: BugSignature,
    /// Seeded bugs that had to be disabled to expose this signature (a
    /// masked bug found after the campaign "fixed" the maskers). Empty in
    /// the common case; replay must disable the same set.
    pub disabled_bugs: Vec<String>,
    /// Operator count before reduction.
    pub original_ops: usize,
    /// Operator count after reduction.
    pub reduced_ops: usize,
    /// Oracle executions spent.
    pub oracle_runs: usize,
}

/// Runs the oracle on a candidate and extracts its signature.
fn check(
    oracle: &dyn CaseOracle,
    case: &TestCase,
    options: &CompileOptions,
    tol: Tolerance,
) -> (TestOutcome, Option<BugSignature>) {
    let outcome = oracle.run_oracle(case, options, tol);
    let sig = signature_of(case, &outcome);
    (outcome, sig)
}

/// Signature comparison used while reducing: exact equality, except that
/// *unattributed* mismatches match on symptom and phase alone — their key
/// is a structural hash of the whole case (graph neighborhood or IR loop
/// nest), which any reduction necessarily changes, so exact matching would
/// forbid all progress. The two anonymous families never match each other:
/// a graph-hashed finding cannot reduce into an IR-hashed one.
fn compatible(reference: &BugSignature, candidate: &BugSignature) -> bool {
    if reference == candidate {
        return true;
    }
    let anon_family = |key: &str| {
        if key.starts_with("anon-ir:") {
            Some("ir")
        } else if key.starts_with("anon:") {
            Some("graph")
        } else {
            None
        }
    };
    reference.symptom == candidate.symptom
        && reference.phase == candidate.phase
        && anon_family(&reference.key).is_some()
        && anon_family(&reference.key) == anon_family(&candidate.key)
}

/// Reduces `case` to a 1-minimal, signature-preserving case.
///
/// Returns `None` when the case is not a finding in the first place (its
/// outcome produces no signature).
pub fn reduce_case(
    compiler: &Compiler,
    case: &TestCase,
    options: &CompileOptions,
    tol: Tolerance,
    cfg: &ReduceConfig,
) -> Option<Reduction> {
    reduce_case_expecting(compiler, case, options, tol, cfg, None)
}

/// [`reduce_case`], pinned to a specific signature.
///
/// A campaign that "fixes" found bugs can capture a failure whose bug is
/// *masked* under the base options (an earlier-firing seeded bug, already
/// fixed during the campaign, fires first on re-run). When `expected` is
/// set and the base run observes a different seeded signature, the
/// interfering seeded bugs are disabled — reconstructing the campaign's
/// state — until the expected signature reproduces; the disabled set is
/// recorded in [`Reduction::disabled_bugs`] so replay can do the same.
///
/// Returns `None` when the expected signature cannot be reproduced.
pub fn reduce_case_expecting(
    compiler: &Compiler,
    case: &TestCase,
    options: &CompileOptions,
    tol: Tolerance,
    cfg: &ReduceConfig,
    expected: Option<&BugSignature>,
) -> Option<Reduction> {
    reduce_case_expecting_with(compiler, case, options, tol, cfg, expected)
}

/// [`reduce_case_expecting`] over any [`CaseOracle`] — the seam triage and
/// tests use to drive reduction without a full simulated compiler.
pub fn reduce_case_expecting_with(
    oracle: &dyn CaseOracle,
    case: &TestCase,
    options: &CompileOptions,
    tol: Tolerance,
    cfg: &ReduceConfig,
    expected: Option<&BugSignature>,
) -> Option<Reduction> {
    let mut oracle_runs = 0;
    let mut options = options.clone();
    let mut disabled_bugs: Vec<String> = Vec::new();
    let (outcome0, sig0) = loop {
        oracle_runs += 1;
        let (outcome, sig) = check(oracle, case, &options, tol);
        let sig = sig?;
        let Some(expected) = expected else {
            break (outcome, sig);
        };
        if sig == *expected {
            break (outcome, sig);
        }
        // Disable the interfering seeded bugs and retry; bail when the
        // observed signature carries nothing to disable (the expected bug
        // is not reproducible at all).
        let expected_ids = expected.seeded_ids();
        let mut progressed = false;
        for id in sig.seeded_ids() {
            if !expected_ids.contains(&id) && !disabled_bugs.contains(&id) {
                // Canonical lookup spans the graph-level and TIR-level
                // registries, so IR-campaign maskers disable too.
                if let Some(canon) = nnsmith_compilers::canonical_bug_id(&id) {
                    options.bugs.disable(canon);
                    disabled_bugs.push(id);
                    progressed = true;
                }
            }
        }
        if !progressed || disabled_bugs.len() > 16 {
            return None;
        }
    };
    let options = &options;
    if let Some(funcs) = &case.ir {
        // IR payload (Tzer finding): delta-debug the loop nest instead of
        // the graph.
        return Some(reduce_ir(
            oracle,
            funcs,
            options,
            tol,
            cfg,
            sig0,
            outcome0,
            disabled_bugs,
            oracle_runs,
        ));
    }
    let original_ops = case.graph.operators().len();

    let mut current = case.clone();
    let mut outcome = outcome0;
    for _ in 0..cfg.max_rounds {
        let mut changed = false;
        // Reference execution of the current case supplies hoisted-edge
        // tensors. Findings always pass the reference stage, so this
        // succeeds; bail defensively otherwise.
        let Ok(exec) = nnsmith_ops::execute(&current.graph, &current.all_bindings()) else {
            break;
        };
        // Sinks first: removing consumers before producers frees whole
        // chains fastest.
        let mut victims = current.graph.operators();
        victims.reverse();
        for victim in victims {
            let Some(candidate) = remove_op(&current, &exec.values, victim) else {
                continue;
            };
            oracle_runs += 1;
            let (cand_outcome, cand_sig) = check(oracle, &candidate, options, tol);
            if cand_sig.is_some_and(|s| compatible(&sig0, &s)) {
                current = candidate;
                outcome = cand_outcome;
                changed = true;
                break;
            }
        }
        if !changed {
            break;
        }
    }

    if cfg.shrink_shapes {
        if let Some(candidate) = shrink_shapes(&current, &sig0, cfg) {
            oracle_runs += 1;
            let (cand_outcome, cand_sig) = check(oracle, &candidate, options, tol);
            if cand_sig.is_some_and(|s| compatible(&sig0, &s)) {
                current = candidate;
                outcome = cand_outcome;
            }
        }
    }

    let reduced_ops = current.graph.operators().len();
    // An anonymous mismatch's key hashes the graph, so recompute it on the
    // reduced case — the stored signature must be what a replay of the
    // minimal case observes. Seeded keys are unaffected.
    let signature = signature_of(&current, &outcome).unwrap_or(sig0);
    Some(Reduction {
        case: current,
        outcome,
        signature,
        disabled_bugs,
        original_ops,
        reduced_ops,
        oracle_runs,
    })
}

/// Delta-debugs an IR-payload case to a signature-preserving local
/// minimum. A **ddmin-style chunked pre-pass** first deletes whole
/// kernels and statement chunks (halving granularity, Zeller's
/// complement phase) — for deep Tzer mutants this removes most of the
/// bloat in O(log n) accepted steps instead of one statement per
/// full-scan round. The fine-grained scan then polishes the survivor:
/// statements (removal, loop unwrapping, extent shrinking) and
/// index-expression subtrees (zeroing and child hoisting) are greedily
/// removed while the oracle keeps reporting a [`compatible`] signature.
/// Both phases scan candidates in a fixed order, and the fine scan runs
/// to the same fixpoint from any ddmin survivor, so reduction stays
/// deterministic and duplicates of one root cause still converge to the
/// same canonical minimal IR — which is what lets `anon-ir:` findings
/// dedupe on the post-reduction hash.
#[allow(clippy::too_many_arguments)] // internal tail of reduce_case_expecting_with
fn reduce_ir(
    oracle: &dyn CaseOracle,
    funcs: &[LoweredFunc],
    options: &CompileOptions,
    tol: Tolerance,
    cfg: &ReduceConfig,
    sig0: BugSignature,
    outcome0: TestOutcome,
    disabled_bugs: Vec<String>,
    mut oracle_runs: usize,
) -> Reduction {
    let mut current = funcs.to_vec();
    let mut outcome = outcome0;
    ddmin_prepass(
        oracle,
        options,
        tol,
        &sig0,
        &mut current,
        &mut outcome,
        &mut oracle_runs,
    );
    // Every accepted candidate strictly decreases the reduction potential
    // (node count, wide-loop count, or nonzero-leaf count — no step can
    // increase any of them), so the initial potential bounds the rounds to
    // fixpoint for ANY oracle. `max_rounds` stays the caller's cost cap,
    // exactly like the graph path: oversized mutants may stop above the
    // canonical minimum.
    for _ in 0..cfg.max_rounds.min(ir_potential(funcs) + 1) {
        let mut changed = false;
        for candidate in ir_candidates(&current) {
            oracle_runs += 1;
            let cand_case = TestCase::from_ir(candidate.clone());
            let (cand_outcome, cand_sig) = check(oracle, &cand_case, options, tol);
            if cand_sig.is_some_and(|s| compatible(&sig0, &s)) {
                current = candidate;
                outcome = cand_outcome;
                changed = true;
                break;
            }
        }
        if !changed {
            break;
        }
    }
    let reduced_weight = ir_weight(&current);
    let case = TestCase::from_ir(current);
    // Anonymous IR keys hash the loop nest: recompute on the minimal case
    // so the stored signature is what a replay observes.
    let signature = signature_of(&case, &outcome).unwrap_or(sig0);
    Reduction {
        case,
        outcome,
        signature,
        disabled_bugs,
        original_ops: ir_weight(funcs),
        reduced_ops: reduced_weight,
        oracle_runs,
    }
}

/// The ddmin complement phase over one list: repeatedly tries deleting
/// whole chunks, starting at two chunks and halving chunk size only when
/// no deletion at the current granularity survives. `test` returns `true`
/// when the candidate still exhibits the signature. Deterministic: chunks
/// are scanned front to back at every granularity.
fn ddmin_list<T: Clone>(items: &[T], mut test: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current = items.to_vec();
    let mut n = 2usize;
    while current.len() >= 2 && n <= current.len() {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut complement = Vec::with_capacity(current.len() - (end - start));
            complement.extend_from_slice(&current[..start]);
            complement.extend_from_slice(&current[end..]);
            if test(&complement) {
                current = complement;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n == current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    current
}

/// The statement list at `path` (a chain of `For`-statement indices) of a
/// kernel body.
fn stmt_list_at<'a>(body: &'a [LStmt], path: &[usize]) -> &'a [LStmt] {
    match path.split_first() {
        None => body,
        Some((&i, rest)) => match &body[i] {
            LStmt::For { body: inner, .. } => stmt_list_at(inner, rest),
            _ => unreachable!("ddmin path points at a For statement"),
        },
    }
}

/// Replaces the statement list at `path`.
fn set_stmt_list_at(body: &mut Vec<LStmt>, path: &[usize], new: Vec<LStmt>) {
    match path.split_first() {
        None => *body = new,
        Some((&i, rest)) => match &mut body[i] {
            LStmt::For { body: inner, .. } => set_stmt_list_at(inner, rest, new),
            _ => unreachable!("ddmin path points at a For statement"),
        },
    }
}

/// The chunked-removal pre-pass of the IR reducer: ddmin over the kernel
/// list, then over every statement list (outermost first, descending into
/// surviving loops). Only deletes — loop unwrapping, extent shrinking and
/// expression steps stay with the fine scan, which therefore still
/// reaches the same canonical minimal forms from the ddmin survivor.
fn ddmin_prepass(
    oracle: &dyn CaseOracle,
    options: &CompileOptions,
    tol: Tolerance,
    sig0: &BugSignature,
    current: &mut Vec<LoweredFunc>,
    outcome: &mut TestOutcome,
    oracle_runs: &mut usize,
) {
    // Every accepted candidate refreshes `latest`; after the pre-pass the
    // last acceptance is exactly the final `current`, so the outcome
    // stays in sync without a confirming re-run.
    let mut latest: Option<TestOutcome> = None;
    {
        let mut accepts = |cand: &[LoweredFunc], latest: &mut Option<TestOutcome>| -> bool {
            *oracle_runs += 1;
            let case = TestCase::from_ir(cand.to_vec());
            let (o, sig) = check(oracle, &case, options, tol);
            if sig.is_some_and(|s| compatible(sig0, &s)) {
                *latest = Some(o);
                true
            } else {
                false
            }
        };
        if current.len() > 1 {
            *current = ddmin_list(current, |cand| accepts(cand, &mut latest));
        }
        for k in 0..current.len() {
            // Depth-first over statement lists; a path is re-read after
            // its ddmin so recursion descends into the reduced list.
            let mut paths: Vec<Vec<usize>> = vec![Vec::new()];
            while let Some(path) = paths.pop() {
                let list = stmt_list_at(&current[k].body, &path).to_vec();
                if list.len() >= 2 {
                    let reduced = ddmin_list(&list, |cand| {
                        let mut trial = current.clone();
                        set_stmt_list_at(&mut trial[k].body, &path, cand.to_vec());
                        accepts(&trial, &mut latest)
                    });
                    if reduced.len() != list.len() {
                        set_stmt_list_at(&mut current[k].body, &path, reduced);
                    }
                }
                let list = stmt_list_at(&current[k].body, &path);
                for (i, s) in list.iter().enumerate() {
                    if matches!(s, LStmt::For { .. }) {
                        let mut p = path.clone();
                        p.push(i);
                        paths.push(p);
                    }
                }
            }
        }
    }
    if let Some(o) = latest {
        *outcome = o;
    }
}

/// Reduction size metric for IR cases: statements plus index-expression
/// nodes (the "operator count" analogue graph reductions report).
fn ir_weight(funcs: &[LoweredFunc]) -> usize {
    fn stmts(list: &[LStmt]) -> usize {
        list.iter()
            .map(|s| match s {
                LStmt::Store { index } => 1 + index.size(),
                LStmt::For { body, .. } => 1 + stmts(body),
            })
            .sum()
    }
    funcs.iter().map(|f| stmts(&f.body)).sum()
}

/// Termination potential of the IR reducer: node weight plus the
/// weight-*neutral* step targets — loops with extent > 1 (extent-shrink)
/// and leaves other than `Const(0)` (leaf zeroing). Every candidate in
/// [`ir_candidates`] strictly decreases at least one component and
/// increases none, so this bounds the accepted steps to fixpoint.
fn ir_potential(funcs: &[LoweredFunc]) -> usize {
    fn expr(e: &LExpr) -> usize {
        match e {
            LExpr::Const(0) => 0,
            LExpr::Const(_) | LExpr::Var(_) => 1,
            LExpr::Add(a, b) | LExpr::Mul(a, b) | LExpr::Div(a, b) | LExpr::Mod(a, b) => {
                expr(a) + expr(b)
            }
        }
    }
    fn stmts(list: &[LStmt]) -> usize {
        list.iter()
            .map(|s| match s {
                LStmt::Store { index } => expr(index),
                LStmt::For { extent, body, .. } => usize::from(*extent > 1) + stmts(body),
            })
            .sum()
    }
    ir_weight(funcs) + funcs.iter().map(|f| stmts(&f.body)).sum::<usize>()
}

/// All one-step IR reductions of `funcs`, in the fixed order the reducer
/// scans them: kernel removal, then per-kernel statement/expression steps
/// (later statements first, mirroring the graph pass's sinks-first order).
fn ir_candidates(funcs: &[LoweredFunc]) -> Vec<Vec<LoweredFunc>> {
    let mut out = Vec::new();
    if funcs.len() > 1 {
        for i in (0..funcs.len()).rev() {
            let mut v = funcs.to_vec();
            v.remove(i);
            out.push(v);
        }
    }
    for (i, f) in funcs.iter().enumerate() {
        for body in ir_stmt_steps(&f.body) {
            let mut v = funcs.to_vec();
            v[i].body = body;
            out.push(v);
        }
    }
    out
}

/// One-step reductions of a statement list: drop a statement, unwrap a
/// loop into its body, shrink an extent to 1, or take one expression step
/// inside a store — each applied at every position, outermost level first,
/// later statements first.
fn ir_stmt_steps(stmts: &[LStmt]) -> Vec<Vec<LStmt>> {
    let mut out = Vec::new();
    for i in (0..stmts.len()).rev() {
        let mut v = stmts.to_vec();
        v.remove(i);
        out.push(v);
    }
    for i in (0..stmts.len()).rev() {
        match &stmts[i] {
            LStmt::For { extent, body, .. } => {
                // Unwrap: splice the body in place of the loop.
                let mut v = stmts.to_vec();
                v.splice(i..=i, body.iter().cloned());
                out.push(v);
                if *extent > 1 {
                    let mut v = stmts.to_vec();
                    if let LStmt::For { extent, .. } = &mut v[i] {
                        *extent = 1;
                    }
                    out.push(v);
                }
                for sub in ir_stmt_steps(body) {
                    let mut v = stmts.to_vec();
                    if let LStmt::For { body, .. } = &mut v[i] {
                        *body = sub;
                    }
                    out.push(v);
                }
            }
            LStmt::Store { index } => {
                for e in ir_expr_steps(index) {
                    let mut v = stmts.to_vec();
                    if let LStmt::Store { index } = &mut v[i] {
                        *index = e;
                    }
                    out.push(v);
                }
            }
        }
    }
    out
}

/// One-step reductions of an index expression: zero the whole subtree,
/// hoist a child over its parent, or recurse — strongest shrink first, so
/// minimal forms are canonical (`Mod(0, v)`, not an arbitrary survivor).
fn ir_expr_steps(e: &LExpr) -> Vec<LExpr> {
    let mut out = Vec::new();
    if !matches!(e, LExpr::Const(0)) {
        out.push(LExpr::Const(0));
    }
    let rebuild = |a: LExpr, b: LExpr| match e {
        LExpr::Add(..) => LExpr::Add(Box::new(a), Box::new(b)),
        LExpr::Mul(..) => LExpr::Mul(Box::new(a), Box::new(b)),
        LExpr::Div(..) => LExpr::Div(Box::new(a), Box::new(b)),
        LExpr::Mod(..) => LExpr::Mod(Box::new(a), Box::new(b)),
        _ => unreachable!("rebuild only called for binary nodes"),
    };
    if let LExpr::Add(a, b) | LExpr::Mul(a, b) | LExpr::Div(a, b) | LExpr::Mod(a, b) = e {
        out.push((**a).clone());
        out.push((**b).clone());
        for ea in ir_expr_steps(a) {
            out.push(rebuild(ea, (**b).clone()));
        }
        for eb in ir_expr_steps(b) {
            out.push(rebuild((**a).clone(), eb));
        }
    }
    out
}

/// True if no single operator removal preserves the case's signature —
/// the 1-minimality property the reducer guarantees at its fixpoint.
pub fn is_one_minimal(
    compiler: &Compiler,
    case: &TestCase,
    options: &CompileOptions,
    tol: Tolerance,
) -> bool {
    is_one_minimal_with(compiler, case, options, tol)
}

/// [`is_one_minimal`] over any [`CaseOracle`].
pub fn is_one_minimal_with(
    oracle: &dyn CaseOracle,
    case: &TestCase,
    options: &CompileOptions,
    tol: Tolerance,
) -> bool {
    let (_, Some(sig0)) = check(oracle, case, options, tol) else {
        return false;
    };
    let Ok(exec) = nnsmith_ops::execute(&case.graph, &case.all_bindings()) else {
        return false;
    };
    for victim in case.graph.operators() {
        if let Some(candidate) = remove_op(case, &exec.values, victim) {
            let (_, sig) = check(oracle, &candidate, options, tol);
            if sig.is_some_and(|s| compatible(&sig0, &s)) {
                return false;
            }
        }
    }
    true
}

/// Builds the candidate with `victim` removed: consumers of its outputs
/// are rewired to fresh `Input` leaves carrying the recorded edge tensors,
/// and leaves that fed only `victim` are pruned.
fn remove_op(
    case: &TestCase,
    edge_values: &HashMap<ValueRef, Tensor>,
    victim: NodeId,
) -> Option<TestCase> {
    let graph = &case.graph;

    // Which original nodes survive: every operator but the victim, plus
    // every leaf still referenced by a survivor.
    let retained_ops: Vec<NodeId> = graph
        .operators()
        .into_iter()
        .filter(|&id| id != victim)
        .collect();
    let mut needed_leaves: HashSet<NodeId> = HashSet::new();
    let mut hoisted: Vec<ValueRef> = Vec::new();
    for &id in &retained_ops {
        for v in &graph.node(id).inputs {
            if v.node == victim {
                if !hoisted.contains(v) {
                    hoisted.push(*v);
                }
            } else if !matches!(graph.node(v.node).kind, NodeKind::Operator(_)) {
                needed_leaves.insert(v.node);
            }
        }
    }
    // A graph with no nodes at all cannot exist; keep one leaf if pruning
    // removed everything (covers input-pattern bugs like rank-0 inputs).
    if retained_ops.is_empty() && needed_leaves.is_empty() && hoisted.is_empty() {
        return None;
    }

    let mut mapping: HashMap<NodeId, NodeId> = HashMap::new();
    let mut out: Graph<Op> = Graph::new();
    let mut weights = Bindings::new();
    let mut inputs: HashMap<NodeId, Tensor> = HashMap::new();

    // First pass: surviving nodes in original order (keeps reduction
    // deterministic and ids compact).
    for (id, node) in graph.iter() {
        let keep = match node.kind {
            NodeKind::Operator(_) => id != victim,
            _ => needed_leaves.contains(&id),
        };
        if !keep {
            continue;
        }
        let new_id = out.add_node(node.kind.clone(), node.inputs.clone(), node.outputs.clone());
        mapping.insert(id, new_id);
        if let Some(t) = case.weights.get(&id) {
            weights.insert(new_id, t.clone());
        }
        if let Some(t) = case.inputs.get(&id) {
            inputs.insert(new_id, t.clone());
        }
    }
    // Hoisted edges become fresh inputs bound to the recorded tensors.
    let mut hoist_map: HashMap<ValueRef, NodeId> = HashMap::new();
    for v in hoisted {
        let tensor = edge_values.get(&v)?.clone();
        let ttype = graph.value_type(v).clone();
        let new_id = out.add_node(NodeKind::Input, vec![], vec![ttype]);
        inputs.insert(new_id, tensor);
        hoist_map.insert(v, new_id);
    }
    // Second pass: rewrite input references.
    for i in 0..out.len() {
        let id = NodeId(i as u32);
        let refs = out.node(id).inputs.clone();
        let rewritten: Vec<ValueRef> = refs
            .into_iter()
            .map(|v| match hoist_map.get(&v) {
                Some(&input) => ValueRef::output0(input),
                None => ValueRef {
                    node: *mapping.get(&v.node).expect("retained producer"),
                    index: v.index,
                },
            })
            .collect();
        out.node_mut(id).inputs = rewritten;
    }
    debug_assert!(out.validate().is_ok());
    Some(TestCase {
        graph: out,
        weights,
        inputs,
        ir: None,
    })
}

/// Constraint-aware re-concretization: every leaf dimension becomes a
/// solver variable bounded by its current value, operator constraints are
/// re-asserted through the graph, and the min-biased model yields the
/// smallest well-typed shapes. Returns `None` when nothing shrinks.
fn shrink_shapes(case: &TestCase, sig: &BugSignature, cfg: &ReduceConfig) -> Option<TestCase> {
    let graph = &case.graph;
    let order = graph.topo_order().ok()?;
    let mut solver = Solver::with_config(SolverConfig {
        seed: cfg.value_seed,
        ..SolverConfig::default()
    });
    // Per-reduction type-transfer memo: delta-debugging re-type-checks the
    // same operators over recurring shape signatures on every probe, so
    // the symbolic derivations below hit the table after the first pass.
    let memo = OpMemo::new(solver.pool().clone());

    // Symbolic leaf types (one variable per dimension, upper-bounded by the
    // concrete value so shrinking can only shrink) and symbolic op outputs
    // via type_transfer.
    let mut sym_types: HashMap<ValueRef, TensorType> = HashMap::new();
    let mut leaf_vars: HashMap<NodeId, Vec<nnsmith_solver::VarId>> = HashMap::new();
    for &id in &order {
        let node = graph.node(id);
        match &node.kind {
            NodeKind::Placeholder => return None,
            NodeKind::Input | NodeKind::Weight => {
                let dims = node.outputs[0].concrete_shape()?;
                let vars: Vec<_> = dims
                    .iter()
                    .enumerate()
                    .map(|(d, &hi)| solver.new_var(format!("{id}_d{d}"), 1, hi.max(1)))
                    .collect();
                let ttype = TensorType::new_in(
                    solver.pool(),
                    node.outputs[0].dtype,
                    vars.iter().map(|&v| IntExpr::var(v)).collect(),
                );
                sym_types.insert(ValueRef::output0(id), ttype);
                leaf_vars.insert(id, vars);
            }
            NodeKind::Operator(op) => {
                let in_types: Vec<TensorType> = node
                    .inputs
                    .iter()
                    .map(|v| sym_types.get(v).cloned())
                    .collect::<Option<_>>()?;
                for id in memo.requires_ids(op, &in_types).ok()? {
                    solver.assert_id(id);
                }
                let outs = memo.type_transfer(op, &in_types).ok()?;
                for (index, t) in outs.into_iter().enumerate() {
                    sym_types.insert(ValueRef { node: id, index }, t);
                }
            }
        }
    }
    let model = match solver.check() {
        SatResult::Sat(m) => m,
        _ => return None,
    };

    // Rebuild the graph with the shrunk model; keep tensors whose shape
    // did not change, regenerate the rest deterministically.
    let mut out = graph.clone();
    let mut changed = false;
    for (&leaf, vars) in &leaf_vars {
        let old = out.node(leaf).outputs[0].concrete_shape()?;
        let new: Vec<i64> = vars.iter().map(|&v| model.get(v).unwrap_or(1)).collect();
        if new != old {
            changed = true;
        }
    }
    if !changed {
        return None;
    }
    let mut weights = Bindings::new();
    let mut inputs: HashMap<NodeId, Tensor> = HashMap::new();
    for &id in &order {
        let node_kind = out.node(id).kind.clone();
        match node_kind {
            NodeKind::Input | NodeKind::Weight => {
                let dtype = out.node(id).outputs[0].dtype;
                let vars = &leaf_vars[&id];
                let new_dims: Vec<i64> = vars.iter().map(|&v| model.get(v).unwrap_or(1)).collect();
                let old = out.node(id).outputs[0].clone();
                let tensor = if old.concrete_shape().as_deref() == Some(&new_dims) {
                    original_binding(case, id)?
                } else {
                    let dims: Vec<usize> = new_dims.iter().map(|&d| d as usize).collect();
                    let mut rng = StdRng::seed_from_u64(
                        cfg.value_seed ^ (u64::from(id.0) << 32) ^ sig_hash(sig),
                    );
                    if dtype.is_float() {
                        Tensor::uniform(&dims, dtype, -1.0, 1.0, &mut rng)
                    } else if dtype.is_int() {
                        Tensor::uniform(&dims, dtype, 1.0, 4.0, &mut rng)
                    } else {
                        Tensor::uniform(&dims, dtype, 0.0, 1.0, &mut rng)
                    }
                };
                // Rebuild into the reducer's own pool, never the case's:
                // triage runs concurrently with the engine, and interning
                // into a live campaign pool would race its arena-stats
                // snapshot (and pin the campaign arena from the corpus).
                // Topo order makes this total — every downstream operator
                // re-derives its outputs from these rehomed leaves.
                out.node_mut(id).outputs[0] =
                    TensorType::concrete_in(solver.pool(), dtype, &new_dims);
                match out.node(id).kind {
                    NodeKind::Weight => {
                        weights.insert(id, tensor);
                    }
                    _ => {
                        inputs.insert(id, tensor);
                    }
                }
            }
            NodeKind::Operator(ref op) => {
                let in_types: Vec<TensorType> = out
                    .node(id)
                    .inputs
                    .iter()
                    .map(|v| out.value_type(*v).clone())
                    .collect();
                // Case tensor types live in their own pools, so this
                // usually falls through uncached; campaign-pooled cases
                // hit the same table as the symbolic pass above.
                let outs = memo.type_transfer(op, &in_types).ok()?;
                out.node_mut(id).outputs = outs;
            }
            NodeKind::Placeholder => return None,
        }
    }
    Some(TestCase {
        graph: out,
        weights,
        inputs,
        ir: None,
    })
}

fn original_binding(case: &TestCase, id: NodeId) -> Option<Tensor> {
    case.weights
        .get(&id)
        .or_else(|| case.inputs.get(&id))
        .cloned()
}

fn sig_hash(sig: &BugSignature) -> u64 {
    crate::signature::stable_hash(&sig.as_key())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnsmith_compilers::{ortsim, tvmsim};
    use nnsmith_ops::{BinaryKind, UnaryKind};
    use nnsmith_tensor::DType;

    /// A bloated case triggering tvm-conv-5 (ArgMax to scalar) with two
    /// irrelevant tanh/add stages around it.
    fn bloated_argmax_case() -> TestCase {
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[6])],
        );
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &[6])],
        );
        let add = g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Add)),
            vec![ValueRef::output0(x), ValueRef::output0(w)],
            vec![TensorType::concrete(DType::F32, &[6])],
        );
        let tanh = g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(add)],
            vec![TensorType::concrete(DType::F32, &[6])],
        );
        let arg = g.add_node(
            NodeKind::Operator(Op::ArgExtreme {
                largest: true,
                axis: 0,
                keepdims: false,
            }),
            vec![ValueRef::output0(tanh)],
            vec![TensorType::concrete(DType::I64, &[])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Relu)),
            vec![ValueRef::output0(tanh)],
            vec![TensorType::concrete(DType::F32, &[6])],
        );
        let _ = arg;
        let mut b = Bindings::new();
        b.insert(
            x,
            Tensor::from_f32(&[6], vec![0.1, 0.9, 0.3, 0.5, 0.2, 0.4]).unwrap(),
        );
        b.insert(w, Tensor::from_f32(&[6], vec![0.2; 6]).unwrap());
        TestCase::from_bindings(g, b)
    }

    #[test]
    fn reduces_crash_case_to_minimum() {
        let compiler = tvmsim();
        let case = bloated_argmax_case();
        let red = reduce_case(
            &compiler,
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &ReduceConfig::default(),
        )
        .expect("finding");
        assert_eq!(red.signature.key, "seeded:tvm-conv-5");
        assert!(
            red.reduced_ops < red.original_ops,
            "no shrink: {} ops",
            red.reduced_ops
        );
        assert!(red.reduced_ops <= 2, "got {} ops", red.reduced_ops);
        assert!(is_one_minimal(
            &compiler,
            &red.case,
            &CompileOptions::default(),
            Tolerance::default()
        ));
        // The minimal case still replays to the same signature.
        let (_, sig) = check(
            &compiler,
            &red.case,
            &CompileOptions::default(),
            Tolerance::default(),
        );
        assert_eq!(sig.as_ref(), Some(&red.signature));
    }

    #[test]
    fn shrink_respects_requires() {
        // Input 6-wide shrinks to 1 for the argmax chain (no lower bound
        // beyond positivity) while staying well-typed.
        let compiler = tvmsim();
        let case = bloated_argmax_case();
        let red = reduce_case(
            &compiler,
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &ReduceConfig::default(),
        )
        .expect("finding");
        for v in red.case.graph.all_values() {
            let dims = red
                .case
                .graph
                .value_type(v)
                .concrete_dims()
                .expect("concrete");
            for d in dims {
                assert!(d >= 1);
            }
        }
        assert!(red.case.graph.validate().is_ok());
    }

    #[test]
    fn expected_signature_reduces_masked_bug() {
        // A case triggering two tvmsim bugs at once: whichever fires first
        // masks the other under the base options. A campaign that "fixed"
        // the first captures the second's outcome, and triage must reduce
        // toward the *captured* signature by disabling the masker.
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        let tanh = g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[4])],
        );
        // Branch 1: ReflectPad (tvm-pass-4, transformation crash).
        g.add_node(
            NodeKind::Operator(Op::Pad {
                pads: vec![(IntExpr::Const(1), IntExpr::Const(1))],
                kind: nnsmith_ops::PadKind::Reflect,
            }),
            vec![ValueRef::output0(tanh)],
            vec![TensorType::concrete(DType::F32, &[6])],
        );
        // Branch 2: scalar ArgMax (tvm-conv-5, conversion crash).
        g.add_node(
            NodeKind::Operator(Op::ArgExtreme {
                largest: true,
                axis: 0,
                keepdims: false,
            }),
            vec![ValueRef::output0(tanh)],
            vec![TensorType::concrete(DType::I64, &[])],
        );
        let mut b = Bindings::new();
        b.insert(x, Tensor::from_f32(&[4], vec![0.1, 0.4, 0.2, 0.3]).unwrap());
        let case = TestCase::from_bindings(g, b);

        let compiler = tvmsim();
        let base = CompileOptions::default();
        let (_, first) = check(&compiler, &case, &base, Tolerance::default());
        let first = first.expect("finding");
        let first_id = first.seeded_ids()[0].clone();
        // The campaign's view after fixing the first bug: the masked one.
        let mut fixed = base.clone();
        fixed
            .bugs
            .disable(nnsmith_compilers::bug_by_id(&first_id).unwrap().id);
        let (_, masked) = check(&compiler, &case, &fixed, Tolerance::default());
        let masked = masked.expect("second bug fires once the first is fixed");
        assert_ne!(first, masked);

        // Reducing toward the masked signature from base options must
        // disable the masker, not silently reduce the first bug.
        let red = reduce_case_expecting(
            &compiler,
            &case,
            &base,
            Tolerance::default(),
            &ReduceConfig::default(),
            Some(&masked),
        )
        .expect("masked bug reproducible");
        assert_eq!(red.signature, masked);
        assert_eq!(red.disabled_bugs, vec![first_id]);
        assert!(red.reduced_ops <= 2);

        // And the reproducer replays with the same masker set disabled.
        let rep = crate::corpus::Reproducer::from_reduction(&red, "tvmsim", Tolerance::default());
        let report = rep.replay().expect("known compiler");
        assert!(report.reproduced, "observed {:?}", report.observed);
    }

    #[test]
    fn reduces_ir_crash_case_to_minimal_kernel() {
        // A bloated Tzer-style mutant: deep-ish nest, two irrelevant
        // stores, and one store whose index divides by a loop variable
        // (the seeded tir-simpl-div crash).
        let compiler = tvmsim();
        let func = LoweredFunc {
            name: "mutant".into(),
            body: vec![LStmt::For {
                var: 0,
                extent: 16,
                body: vec![
                    LStmt::Store {
                        index: LExpr::Var(0),
                    },
                    LStmt::For {
                        var: 1,
                        extent: 8,
                        body: vec![
                            LStmt::Store {
                                index: LExpr::Add(
                                    Box::new(LExpr::Mul(
                                        Box::new(LExpr::Var(0)),
                                        Box::new(LExpr::Const(8)),
                                    )),
                                    Box::new(LExpr::Div(
                                        Box::new(LExpr::Var(1)),
                                        Box::new(LExpr::Var(0)),
                                    )),
                                ),
                            },
                            LStmt::Store {
                                index: LExpr::Const(3),
                            },
                        ],
                        vectorized: false,
                        unrolled: false,
                    },
                ],
                vectorized: false,
                unrolled: false,
            }],
        };
        let case = TestCase::from_ir(vec![func]);
        let red = reduce_case(
            &compiler,
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &ReduceConfig::default(),
        )
        .expect("finding");
        assert_eq!(red.signature.key, "seeded:tir-simpl-div");
        assert!(
            red.reduced_ops < red.original_ops,
            "no shrink: {} vs {}",
            red.reduced_ops,
            red.original_ops
        );
        let funcs = red.case.ir.as_ref().expect("ir case stays ir");
        // Canonical minimum: one store, Div(0, v).
        assert_eq!(funcs.len(), 1);
        assert_eq!(
            funcs[0].body,
            vec![LStmt::Store {
                index: LExpr::Div(Box::new(LExpr::Const(0)), Box::new(LExpr::Var(0)))
            }]
        );
        // The minimal case still replays to the same signature.
        let (_, sig) = check(
            &compiler,
            &red.case,
            &CompileOptions::default(),
            Tolerance::default(),
        );
        assert_eq!(sig.as_ref(), Some(&red.signature));
    }

    #[test]
    fn ddmin_list_removes_chunks_deterministically() {
        // Keep exactly the element 42: ddmin must find the singleton and
        // scan deterministically.
        let items: Vec<i32> = (0..32).collect();
        let mut runs = 0usize;
        let reduced = ddmin_list(&items, |cand| {
            runs += 1;
            cand.contains(&17)
        });
        assert_eq!(reduced, vec![17]);
        // Chunked removal: far fewer tests than the ~O(n²) a greedy
        // single-deletion scan would need to strip 31 elements.
        assert!(runs < 64, "ddmin used {runs} tests");
        // Test predicates that always fail leave the input untouched.
        let unreduced = ddmin_list(&items, |_| false);
        assert_eq!(unreduced, items);
    }

    #[test]
    fn ddmin_prepass_strips_wide_mutants_to_the_canonical_minimum() {
        // 24 irrelevant stores around one Div(Var, Var) crasher
        // (tir-simpl-div). The chunked pre-pass deletes the bloat in
        // chunks; the fine scan still polishes to the same canonical
        // minimal form the greedy-only reducer produced.
        let compiler = tvmsim();
        let mut body: Vec<LStmt> = (0..24)
            .map(|i| LStmt::Store {
                index: LExpr::Const(i),
            })
            .collect();
        body.insert(
            12,
            LStmt::Store {
                index: LExpr::Div(Box::new(LExpr::Var(0)), Box::new(LExpr::Var(1))),
            },
        );
        let case = TestCase::from_ir(vec![LoweredFunc {
            name: "wide".into(),
            body,
        }]);
        let red = reduce_case(
            &compiler,
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &ReduceConfig::default(),
        )
        .expect("finding");
        assert_eq!(red.signature.key, "seeded:tir-simpl-div");
        let funcs = red.case.ir.as_ref().expect("ir case stays ir");
        assert_eq!(
            funcs[0].body,
            vec![LStmt::Store {
                index: LExpr::Div(Box::new(LExpr::Const(0)), Box::new(LExpr::Var(1)))
            }]
        );
        // Chunk deletion keeps the oracle budget linear-ish in the bloat.
        assert!(
            red.oracle_runs < 150,
            "spent {} oracle runs",
            red.oracle_runs
        );
    }

    #[test]
    fn non_finding_returns_none() {
        let compiler = ortsim();
        let mut g: Graph<Op> = Graph::new();
        let x = g.add_node(
            NodeKind::Input,
            vec![],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![ValueRef::output0(x)],
            vec![TensorType::concrete(DType::F32, &[2])],
        );
        let mut b = Bindings::new();
        b.insert(x, Tensor::from_f32(&[2], vec![0.5, -0.5]).unwrap());
        let case = TestCase::from_bindings(g, b);
        assert!(reduce_case(
            &compiler,
            &case,
            &CompileOptions::default(),
            Tolerance::default(),
            &ReduceConfig::default()
        )
        .is_none());
    }
}
