//! # nnsmith-triage
//!
//! The post-oracle triage subsystem: turns the raw stream of oracle
//! findings (`Verdict::Mismatch`, crashes) produced by fuzzing campaigns
//! into *deduplicated, minimized bug reports* — the data behind the
//! paper's bug study (Table 3) rather than a pile of duplicate cases.
//!
//! Three stages, composable or driven end-to-end by
//! [`run_triaged_engine`]:
//!
//! * **reduction** ([`reduce_case`]) — delta-debugs a failing case until
//!   it is 1-minimal, using edge hoisting (consumers of a removed
//!   operator get fresh inputs carrying the recorded edge tensors) and
//!   constraint-aware shape shrinking through the solver, so every
//!   candidate stays well-typed;
//! * **signatures** ([`signature_of`]) — `symptom × phase × root-cause`
//!   dedup keys that collapse every duplicate of one bug into one bin;
//! * **corpus** ([`Corpus`], [`Reproducer`]) — minimized cases serialize
//!   to deterministic JSON and replay byte-identically on a fresh
//!   process (`triage replay`).

#![warn(missing_docs)]

mod corpus;
mod engine;
mod reduce;
mod signature;

pub use corpus::{Corpus, ReplayReport, Reproducer};
pub use engine::{
    run_matrix_triaged_engine, run_triaged_engine, Bin, TriageConfig, TriageReport, TriageSink,
    UnreducedBin,
};
pub use reduce::{
    is_one_minimal, is_one_minimal_with, reduce_case, reduce_case_expecting,
    reduce_case_expecting_with, CaseOracle, ReduceConfig, Reduction,
};
pub use signature::{
    ir_hash, is_anonymous_key, neighborhood_hash, signature_of, stable_hash, BugSignature,
};
