//! Regression test for the anonymous-mismatch binning gap (ROADMAP open
//! item): unattributed semantic mismatches used to bin on the *unreduced*
//! graph's neighborhood hash, so two distinct random graphs hitting the
//! same unseeded root cause landed in separate bins. Triage now reduces
//! every anonymous failure first and bins on the **post-reduction**
//! signature, collapsing them into one bin.
//!
//! The simulated compilers attribute every seeded mismatch, so an
//! organically-unattributed mismatch cannot be produced through them; the
//! test drives the public [`TriageSink`] with a synthetic [`CaseOracle`]
//! that mismatches (unattributed) whenever the graph contains an
//! `ArgExtreme` operator — the real-compiler shape of an unseeded
//! optimizer bug tied to one operator.

use nnsmith_compilers::CompileOptions;
use nnsmith_difftest::{CapturedFailure, FaultSite, TestCase, TestOutcome, Tolerance};
use nnsmith_graph::{Graph, NodeKind, TensorType, ValueRef};
use nnsmith_ops::{BinaryKind, Bindings, Op, UnaryKind};
use nnsmith_tensor::{DType, Tensor};
use nnsmith_triage::{signature_of, CaseOracle, TriageConfig, TriageSink};

/// Synthetic differential oracle: any graph containing `ArgExtreme`
/// produces an *unattributed* optimization mismatch; everything else
/// passes. Deterministic and structure-only, like a real unseeded bug
/// whose trigger is one operator.
struct ArgmaxMismatchOracle;

impl CaseOracle for ArgmaxMismatchOracle {
    fn run_oracle(
        &self,
        case: &TestCase,
        _options: &CompileOptions,
        _tol: Tolerance,
    ) -> TestOutcome {
        let triggers = case
            .graph
            .iter()
            .any(|(_, n)| matches!(&n.kind, NodeKind::Operator(Op::ArgExtreme { .. })));
        if triggers {
            TestOutcome::ResultMismatch {
                detail: "argmax output disagrees".into(),
                site: FaultSite::Optimization,
                attributed: Vec::new(),
            }
        } else {
            TestOutcome::Pass
        }
    }
}

/// A bloated case around the ArgExtreme root cause: `width`-sized input,
/// optionally an extra tanh stage and an add-with-weight stage, so two
/// calls produce structurally different graphs (different neighborhood
/// hashes) with the same root cause.
fn bloated_case(width: usize, extra_tanh: bool, with_add: bool) -> TestCase {
    let mut g: Graph<Op> = Graph::new();
    let dims = [width as i64];
    let x = g.add_node(
        NodeKind::Input,
        vec![],
        vec![TensorType::concrete(DType::F32, &dims)],
    );
    let mut cur = ValueRef::output0(x);
    let mut b = Bindings::new();
    b.insert(
        x,
        Tensor::from_f32(&[width], (0..width).map(|i| i as f32 * 0.17).collect()).unwrap(),
    );
    if with_add {
        let w = g.add_node(
            NodeKind::Weight,
            vec![],
            vec![TensorType::concrete(DType::F32, &dims)],
        );
        b.insert(w, Tensor::from_f32(&[width], vec![0.25; width]).unwrap());
        let add = g.add_node(
            NodeKind::Operator(Op::Binary(BinaryKind::Add)),
            vec![cur, ValueRef::output0(w)],
            vec![TensorType::concrete(DType::F32, &dims)],
        );
        cur = ValueRef::output0(add);
    }
    if extra_tanh {
        let tanh = g.add_node(
            NodeKind::Operator(Op::Unary(UnaryKind::Tanh)),
            vec![cur],
            vec![TensorType::concrete(DType::F32, &dims)],
        );
        cur = ValueRef::output0(tanh);
    }
    g.add_node(
        NodeKind::Operator(Op::ArgExtreme {
            largest: true,
            axis: 0,
            keepdims: false,
        }),
        vec![cur],
        vec![TensorType::concrete(DType::I64, &[])],
    );
    TestCase::from_bindings(g, b)
}

fn capture(case: TestCase) -> CapturedFailure {
    let outcome =
        ArgmaxMismatchOracle.run_oracle(&case, &CompileOptions::default(), Tolerance::default());
    assert!(outcome.is_finding(), "fixture must be a finding");
    CapturedFailure {
        backend: "synthetic".into(),
        case,
        outcome,
    }
}

#[test]
fn distinct_graphs_with_one_unseeded_root_cause_share_a_bin() {
    let oracle = ArgmaxMismatchOracle;
    // Three structurally different graphs (different wrappers, different
    // widths) around the same root cause: their *captured* anonymous
    // signatures all differ.
    let failures = [
        capture(bloated_case(4, true, true)),
        capture(bloated_case(6, false, true)),
        capture(bloated_case(5, true, false)),
    ];
    let captured_keys: Vec<String> = failures
        .iter()
        .map(|f| signature_of(&f.case, &f.outcome).expect("finding").as_key())
        .collect();
    assert_ne!(captured_keys[0], captured_keys[1]);
    assert_ne!(captured_keys[0], captured_keys[2]);
    assert!(captured_keys.iter().all(|k| k.contains("anon:")));

    let mut sink = TriageSink::new(
        &oracle,
        "synthetic",
        CompileOptions::default(),
        Tolerance::default(),
        TriageConfig::default(),
    );
    for (i, f) in failures.iter().enumerate() {
        sink.ingest(i % 2, i, f);
    }
    let report = sink.finish();

    assert_eq!(report.failures_seen, 3);
    assert!(
        report.unreduced.is_empty(),
        "all anon failures reproduce under the oracle: {:?}",
        report.unreduced.keys()
    );
    // The fix: post-reduction binning collapses them into ONE bin.
    assert_eq!(
        report.bins.len(),
        1,
        "distinct graphs with one unseeded root cause must dedupe: {:?}",
        report.bins.keys()
    );
    let bin = report.bins.values().next().unwrap();
    assert_eq!(bin.count, 3);
    assert!(bin.bug_ids.is_empty(), "unseeded bug has no seeded ids");
    // The representative is the smallest provenance and is 1-minimal:
    // just the ArgExtreme over an input.
    assert_eq!((bin.shard, bin.case_index), (0, 0));
    assert!(
        bin.reproducer.graph.operators().len() <= 1,
        "expected a 1-minimal reproducer, got {} ops",
        bin.reproducer.graph.operators().len()
    );
    // And its stored signature is what the minimal case itself hashes to,
    // so a replay of the reproducer observes the stored signature.
    let replay_sig = signature_of(
        &bin.reproducer.to_case(),
        &ArgmaxMismatchOracle.run_oracle(
            &bin.reproducer.to_case(),
            &CompileOptions::default(),
            Tolerance::default(),
        ),
    )
    .expect("minimal case still a finding");
    assert_eq!(replay_sig, bin.signature);
}

#[test]
fn order_independence_of_anon_binning() {
    // Reversed ingestion order must produce the identical serialized
    // report (the workers=1 ≡ workers=N contract for the anon path).
    let oracle = ArgmaxMismatchOracle;
    let failures = [
        capture(bloated_case(4, true, true)),
        capture(bloated_case(6, false, true)),
        capture(bloated_case(5, true, false)),
    ];
    let run = |order: &[usize]| {
        let mut sink = TriageSink::new(
            &oracle,
            "synthetic",
            CompileOptions::default(),
            Tolerance::default(),
            TriageConfig::default(),
        );
        for &i in order {
            sink.ingest(i % 2, i, &failures[i]);
        }
        serde::json::to_string(&sink.finish())
    };
    assert_eq!(run(&[0, 1, 2]), run(&[2, 1, 0]));
}
