//! Regression test for IR-keyed triage signatures: Tzer findings carry IR
//! locations, not graph neighborhoods, so unattributed IR mismatches key
//! on a structural hash of the loop nest (`anon-ir:`) and — like the
//! graph-level anonymous path (`tests/anon_binning.rs`, which this file is
//! modeled on) — are reduced *first* and binned on the post-reduction
//! signature. Two shards hitting the same Tzer root cause must collapse
//! into one bin; structurally distinct causes must stay separate.
//!
//! The simulated TIR pipeline attributes every seeded IR mismatch, so an
//! organically-unattributed IR mismatch cannot be produced through it; the
//! test drives the public [`TriageSink`] with a synthetic [`CaseOracle`]
//! that mismatches (unattributed) whenever a store index contains a `Mod`
//! — or, as the second root cause, a `Div` — node.

use nnsmith_compilers::{CompileOptions, LExpr, LStmt, LoweredFunc};
use nnsmith_difftest::{CapturedFailure, FaultSite, TestCase, TestOutcome, Tolerance};
use nnsmith_triage::{signature_of, CaseOracle, TriageConfig, TriageSink};

/// Synthetic differential oracle: any IR case whose store indexes contain
/// `Mod` or `Div` produces an *unattributed* optimization mismatch;
/// everything else passes. Deterministic and structure-only, like a real
/// unseeded TIR bug whose trigger is one index form.
struct IrMismatchOracle;

fn contains(e: &LExpr, pred: &dyn Fn(&LExpr) -> bool) -> bool {
    if pred(e) {
        return true;
    }
    match e {
        LExpr::Const(_) | LExpr::Var(_) => false,
        LExpr::Add(a, b) | LExpr::Mul(a, b) | LExpr::Div(a, b) | LExpr::Mod(a, b) => {
            contains(a, pred) || contains(b, pred)
        }
    }
}

fn any_index(stmts: &[LStmt], pred: &dyn Fn(&LExpr) -> bool) -> bool {
    stmts.iter().any(|s| match s {
        LStmt::Store { index } => contains(index, pred),
        LStmt::For { body, .. } => any_index(body, pred),
    })
}

impl CaseOracle for IrMismatchOracle {
    fn run_oracle(
        &self,
        case: &TestCase,
        _options: &CompileOptions,
        _tol: Tolerance,
    ) -> TestOutcome {
        let Some(funcs) = &case.ir else {
            return TestOutcome::Pass;
        };
        let triggers = funcs
            .iter()
            .any(|f| any_index(&f.body, &|e| matches!(e, LExpr::Mod(..) | LExpr::Div(..))));
        if triggers {
            TestOutcome::ResultMismatch {
                detail: "tir store index disagrees".into(),
                site: FaultSite::Optimization,
                attributed: Vec::new(),
            }
        } else {
            TestOutcome::Pass
        }
    }
}

/// A bloated Tzer-style mutant around one root-cause index node: wrapper
/// loops, irrelevant stores, and arithmetic around the trigger differ per
/// call so the *captured* anonymous signatures differ.
fn bloated_ir_case(root: LExpr, wrapper_loops: u32, extra_stores: usize, pad: i64) -> TestCase {
    let mut body = vec![LStmt::Store {
        index: LExpr::Add(
            Box::new(LExpr::Mul(
                Box::new(LExpr::Var(0)),
                Box::new(LExpr::Const(pad)),
            )),
            Box::new(root),
        ),
    }];
    for _ in 0..extra_stores {
        body.push(LStmt::Store {
            index: LExpr::Var(1),
        });
    }
    for v in 0..wrapper_loops {
        body = vec![LStmt::For {
            var: v + 10,
            extent: 4 + v as i64,
            body,
            vectorized: false,
            unrolled: false,
        }];
    }
    TestCase::from_ir(vec![LoweredFunc {
        name: "mutant".into(),
        body,
    }])
}

fn modulo() -> LExpr {
    LExpr::Mod(Box::new(LExpr::Var(2)), Box::new(LExpr::Const(7)))
}

fn division() -> LExpr {
    LExpr::Div(Box::new(LExpr::Var(3)), Box::new(LExpr::Const(5)))
}

fn capture(case: TestCase) -> CapturedFailure {
    let outcome =
        IrMismatchOracle.run_oracle(&case, &CompileOptions::default(), Tolerance::default());
    assert!(outcome.is_finding(), "fixture must be a finding");
    CapturedFailure {
        backend: "synthetic".into(),
        case,
        outcome,
    }
}

#[test]
fn same_ir_root_cause_across_shards_shares_a_bin_distinct_causes_do_not() {
    let oracle = IrMismatchOracle;
    // Shards 0 and 1 hit the Mod root cause through structurally different
    // mutants; shard 0 also hits the Div cause. Captured anon-ir keys all
    // differ (the raw mutants hash differently).
    let failures = [
        capture(bloated_ir_case(modulo(), 2, 1, 8)),
        capture(bloated_ir_case(modulo(), 3, 2, 16)),
        capture(bloated_ir_case(division(), 1, 2, 4)),
    ];
    let captured_keys: Vec<String> = failures
        .iter()
        .map(|f| signature_of(&f.case, &f.outcome).expect("finding").as_key())
        .collect();
    assert_ne!(captured_keys[0], captured_keys[1]);
    assert_ne!(captured_keys[0], captured_keys[2]);
    assert!(
        captured_keys.iter().all(|k| k.contains("anon-ir:")),
        "{captured_keys:?}"
    );

    let mut sink = TriageSink::new(
        &oracle,
        "synthetic",
        CompileOptions::default(),
        Tolerance::default(),
        TriageConfig::default(),
    );
    sink.ingest(0, 4, &failures[0]);
    sink.ingest(1, 2, &failures[1]);
    sink.ingest(0, 9, &failures[2]);
    let report = sink.finish();

    assert_eq!(report.failures_seen, 3);
    assert!(
        report.unreduced.is_empty(),
        "all anon-ir failures reproduce under the oracle: {:?}",
        report.unreduced.keys()
    );
    // Post-reduction binning: the two Mod mutants collapse into ONE bin,
    // the Div mutant stays its own.
    assert_eq!(
        report.bins.len(),
        2,
        "expected mod-bin + div-bin: {:?}",
        report.bins.keys()
    );
    let counts: Vec<usize> = report.bins.values().map(|b| b.count).collect();
    assert!(
        counts.contains(&2),
        "mod duplicates must dedupe: {counts:?}"
    );
    assert!(counts.contains(&1), "div cause stays separate: {counts:?}");
    for bin in report.bins.values() {
        assert!(bin.bug_ids.is_empty(), "unseeded IR bug has no seeded ids");
        let funcs = bin.reproducer.ir.as_ref().expect("IR reproducer");
        // Minimal: a single store holding just the root-cause node.
        assert_eq!(funcs.len(), 1);
        assert_eq!(funcs[0].body.len(), 1, "body: {:?}", funcs[0].body);
        // The stored signature is what the minimal case itself hashes to,
        // so replaying the reproducer observes the stored signature.
        let replay = bin.reproducer.to_case();
        let replay_sig = signature_of(
            &replay,
            &IrMismatchOracle.run_oracle(&replay, &CompileOptions::default(), Tolerance::default()),
        )
        .expect("minimal case still a finding");
        assert_eq!(replay_sig, bin.signature);
    }
    // The dedup key carried the IR family prefix end-to-end.
    assert!(report.bins.keys().all(|k| k.contains("anon-ir:")));
}

#[test]
fn ir_binning_is_order_independent() {
    // Reversed ingestion order must produce the identical serialized
    // report (the workers=1 ≡ workers=N contract for the anon-ir path).
    let oracle = IrMismatchOracle;
    let failures = [
        capture(bloated_ir_case(modulo(), 2, 1, 8)),
        capture(bloated_ir_case(modulo(), 3, 2, 16)),
        capture(bloated_ir_case(division(), 1, 2, 4)),
    ];
    let run = |order: &[usize]| {
        let mut sink = TriageSink::new(
            &oracle,
            "synthetic",
            CompileOptions::default(),
            Tolerance::default(),
            TriageConfig::default(),
        );
        for &i in order {
            sink.ingest(i % 2, i, &failures[i]);
        }
        serde::json::to_string(&sink.finish())
    };
    assert_eq!(run(&[0, 1, 2]), run(&[2, 1, 0]));
}
