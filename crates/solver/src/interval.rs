//! Interval arithmetic used to prune the solver's search space.
//!
//! Intervals are conservative: the true value of an expression under any
//! assignment consistent with the variable domains is always contained in the
//! computed interval. Pruning decisions derived from intervals are therefore
//! sound (the solver never declares a satisfiable system unsatisfiable because
//! of interval reasoning).

use crate::expr::{BinOp, BoolExpr, CmpOp, IntExpr, VarId};

/// An inclusive integer interval `[lo, hi]`.
///
/// The empty interval is represented by `lo > hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

/// Clamp bound used to keep interval arithmetic away from `i64` overflow.
const BIG: i64 = i64::MAX / 4;

impl Interval {
    /// Creates the interval `[lo, hi]`.
    pub fn new(lo: i64, hi: i64) -> Self {
        Interval { lo, hi }
    }

    /// The single-point interval `[v, v]`.
    pub fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The canonical empty interval.
    pub fn empty() -> Self {
        Interval { lo: 1, hi: 0 }
    }

    /// True if the interval contains no integers.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// True if the interval is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// True if `v` lies within the interval.
    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Number of integers in the interval (saturating).
    pub fn width(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (self.hi as i128 - self.lo as i128 + 1).min(u64::MAX as i128) as u64
        }
    }

    /// Intersection of two intervals.
    pub fn intersect(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    fn clamp(v: i128) -> i64 {
        v.clamp(-(BIG as i128), BIG as i128) as i64
    }

    fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: Self::clamp(self.lo as i128 + other.lo as i128),
            hi: Self::clamp(self.hi as i128 + other.hi as i128),
        }
    }

    fn sub(&self, other: &Interval) -> Interval {
        Interval {
            lo: Self::clamp(self.lo as i128 - other.hi as i128),
            hi: Self::clamp(self.hi as i128 - other.lo as i128),
        }
    }

    fn mul(&self, other: &Interval) -> Interval {
        let candidates = [
            self.lo as i128 * other.lo as i128,
            self.lo as i128 * other.hi as i128,
            self.hi as i128 * other.lo as i128,
            self.hi as i128 * other.hi as i128,
        ];
        let lo = candidates.iter().copied().min().expect("nonempty");
        let hi = candidates.iter().copied().max().expect("nonempty");
        Interval {
            lo: Self::clamp(lo),
            hi: Self::clamp(hi),
        }
    }

    fn div(&self, other: &Interval) -> Interval {
        // Floor division; exclude zero from the divisor range. If the divisor
        // can only be zero the result is empty (the solver rejects such
        // assignments at concrete evaluation time anyway).
        let mut lo = i64::MAX;
        let mut hi = i64::MIN;
        let mut divisor_candidates: Vec<i64> = Vec::with_capacity(4);
        for d in [other.lo, other.hi, -1, 1] {
            if d != 0 && other.contains(d) && !divisor_candidates.contains(&d) {
                divisor_candidates.push(d);
            }
        }
        if divisor_candidates.is_empty() {
            return Interval::empty();
        }
        for &d in &divisor_candidates {
            for n in [self.lo, self.hi] {
                let q = n.div_euclid(d);
                lo = lo.min(q);
                hi = hi.max(q);
            }
        }
        Interval { lo, hi }
    }

    fn modulo(&self, other: &Interval) -> Interval {
        // rem_euclid is always in [0, |d|-1].
        let max_abs = other.lo.abs().max(other.hi.abs());
        if max_abs == 0 {
            return Interval::empty();
        }
        if self.is_point() && other.is_point() && other.lo != 0 {
            return Interval::point(self.lo.rem_euclid(other.lo));
        }
        Interval {
            lo: 0,
            hi: max_abs - 1,
        }
    }

    fn min_i(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    fn max_i(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// Three-valued truth for constraints evaluated over intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// The constraint holds under every assignment in the domains.
    True,
    /// The constraint fails under every assignment in the domains.
    False,
    /// The domains admit both satisfying and violating assignments.
    Unknown,
}

impl Truth {
    /// Negation in three-valued logic.
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }
}

/// Applies a binary operator over intervals; empty operands yield the
/// empty interval (no consistent value exists for a subexpression, e.g.
/// division by an always-zero divisor).
pub(crate) fn apply_bin(op: BinOp, ia: Interval, ib: Interval) -> Interval {
    if ia.is_empty() || ib.is_empty() {
        return Interval::empty();
    }
    match op {
        BinOp::Add => ia.add(&ib),
        BinOp::Sub => ia.sub(&ib),
        BinOp::Mul => ia.mul(&ib),
        BinOp::Div => ia.div(&ib),
        BinOp::Mod => ia.modulo(&ib),
        BinOp::Min => ia.min_i(&ib),
        BinOp::Max => ia.max_i(&ib),
    }
}

/// Evaluates the interval of `expr` given per-variable domains.
pub fn int_interval(expr: &IntExpr, domain: &dyn Fn(VarId) -> Interval) -> Interval {
    match expr {
        IntExpr::Const(c) => Interval::point(*c),
        IntExpr::Var(v) => domain(*v),
        IntExpr::Bin(op, a, b) => apply_bin(*op, int_interval(a, domain), int_interval(b, domain)),
    }
}

pub(crate) fn cmp_truth(op: CmpOp, a: Interval, b: Interval) -> Truth {
    if a.is_empty() || b.is_empty() {
        // An empty interval means "no consistent value exists" (e.g. division
        // by an always-zero divisor): the comparison can never be satisfied.
        return Truth::False;
    }
    match op {
        CmpOp::Le => {
            if a.hi <= b.lo {
                Truth::True
            } else if a.lo > b.hi {
                Truth::False
            } else {
                Truth::Unknown
            }
        }
        CmpOp::Lt => {
            if a.hi < b.lo {
                Truth::True
            } else if a.lo >= b.hi {
                Truth::False
            } else {
                Truth::Unknown
            }
        }
        CmpOp::Ge => cmp_truth(CmpOp::Le, b, a),
        CmpOp::Gt => cmp_truth(CmpOp::Lt, b, a),
        CmpOp::Eq => {
            if a.is_point() && b.is_point() && a.lo == b.lo {
                Truth::True
            } else if a.hi < b.lo || a.lo > b.hi {
                Truth::False
            } else {
                Truth::Unknown
            }
        }
        CmpOp::Ne => cmp_truth(CmpOp::Eq, a, b).not(),
    }
}

/// Evaluates the three-valued truth of `expr` over variable domains.
pub fn bool_truth(expr: &BoolExpr, domain: &dyn Fn(VarId) -> Interval) -> Truth {
    match expr {
        BoolExpr::Lit(true) => Truth::True,
        BoolExpr::Lit(false) => Truth::False,
        BoolExpr::Cmp(op, a, b) => cmp_truth(*op, int_interval(a, domain), int_interval(b, domain)),
        BoolExpr::And(parts) => {
            let mut all_true = true;
            for p in parts {
                match bool_truth(p, domain) {
                    Truth::False => return Truth::False,
                    Truth::Unknown => all_true = false,
                    Truth::True => {}
                }
            }
            if all_true {
                Truth::True
            } else {
                Truth::Unknown
            }
        }
        BoolExpr::Or(parts) => {
            let mut all_false = true;
            for p in parts {
                match bool_truth(p, domain) {
                    Truth::True => return Truth::True,
                    Truth::Unknown => all_false = false,
                    Truth::False => {}
                }
            }
            if all_false {
                Truth::False
            } else {
                Truth::Unknown
            }
        }
        BoolExpr::Not(inner) => bool_truth(inner, domain).not(),
    }
}

// --- interned-handle variants -----------------------------------------------
//
// Same algorithms as `int_interval` / `bool_truth`, but walking arena
// handles instead of owned trees; used by the solver's hot paths. Handle
// resolution is lock-free (see `crate::intern`), so these never block.

use crate::intern::{BoolId, BoolNode, ExprId, IntNode, InternPool};

pub(crate) fn int_interval_node(
    p: &InternPool,
    id: ExprId,
    domain: &dyn Fn(VarId) -> Interval,
) -> Interval {
    match p.int_node(id) {
        IntNode::Const(c) => Interval::point(*c),
        IntNode::Var(v) => domain(*v),
        IntNode::Bin(op, a, b) => apply_bin(
            *op,
            int_interval_node(p, *a, domain),
            int_interval_node(p, *b, domain),
        ),
    }
}

pub(crate) fn bool_truth_node(
    p: &InternPool,
    id: BoolId,
    domain: &dyn Fn(VarId) -> Interval,
) -> Truth {
    match p.bool_node(id) {
        BoolNode::Lit(true) => Truth::True,
        BoolNode::Lit(false) => Truth::False,
        BoolNode::Cmp(op, a, b) => cmp_truth(
            *op,
            int_interval_node(p, *a, domain),
            int_interval_node(p, *b, domain),
        ),
        BoolNode::And(parts) => {
            let mut all_true = true;
            for part in parts {
                match bool_truth_node(p, *part, domain) {
                    Truth::False => return Truth::False,
                    Truth::Unknown => all_true = false,
                    Truth::True => {}
                }
            }
            if all_true {
                Truth::True
            } else {
                Truth::Unknown
            }
        }
        BoolNode::Or(parts) => {
            let mut all_false = true;
            for part in parts {
                match bool_truth_node(p, *part, domain) {
                    Truth::True => return Truth::True,
                    Truth::Unknown => all_false = false,
                    Truth::False => {}
                }
            }
            if all_false {
                Truth::False
            } else {
                Truth::Unknown
            }
        }
        BoolNode::Not(inner) => bool_truth_node(p, *inner, domain).not(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(ranges: &[(u32, i64, i64)]) -> impl Fn(VarId) -> Interval + '_ {
        move |v: VarId| {
            ranges
                .iter()
                .find(|(id, _, _)| *id == v.0)
                .map(|(_, lo, hi)| Interval::new(*lo, *hi))
                .unwrap_or(Interval::new(i64::MIN / 8, i64::MAX / 8))
        }
    }

    fn v(id: u32) -> IntExpr {
        IntExpr::Var(VarId(id))
    }

    #[test]
    fn add_interval() {
        let d = dom(&[(0, 1, 4), (1, 10, 20)]);
        let i = int_interval(&(v(0) + v(1)), &d);
        assert_eq!(i, Interval::new(11, 24));
    }

    #[test]
    fn mul_interval_with_negatives() {
        let d = dom(&[(0, -2, 3), (1, -5, 4)]);
        let i = int_interval(&(v(0) * v(1)), &d);
        assert_eq!(i, Interval::new(-15, 12));
    }

    #[test]
    fn div_interval_positive() {
        let d = dom(&[(0, 10, 20), (1, 2, 5)]);
        let i = int_interval(&(v(0) / v(1)), &d);
        assert!(i.contains(2)); // 10/5
        assert!(i.contains(10)); // 20/2
        assert!(i.lo <= 2 && i.hi >= 10);
    }

    #[test]
    fn div_by_always_zero_is_empty() {
        let d = dom(&[(0, 1, 5), (1, 0, 0)]);
        let i = int_interval(&(v(0) / v(1)), &d);
        assert!(i.is_empty());
    }

    #[test]
    fn truth_definite_true() {
        let d = dom(&[(0, 1, 4)]);
        assert_eq!(bool_truth(&v(0).le(10.into()), &d), Truth::True);
        assert_eq!(bool_truth(&v(0).ge(5.into()), &d), Truth::False);
        assert_eq!(bool_truth(&v(0).le(2.into()), &d), Truth::Unknown);
    }

    #[test]
    fn truth_eq() {
        let d = dom(&[(0, 3, 3)]);
        assert_eq!(bool_truth(&v(0).eq_expr(3.into()), &d), Truth::True);
        assert_eq!(bool_truth(&v(0).eq_expr(4.into()), &d), Truth::False);
        let d2 = dom(&[(0, 1, 5)]);
        assert_eq!(bool_truth(&v(0).eq_expr(4.into()), &d2), Truth::Unknown);
    }

    #[test]
    fn truth_and_or() {
        let d = dom(&[(0, 1, 4), (1, 10, 10)]);
        let c = BoolExpr::and([v(0).ge(1.into()), v(1).eq_expr(10.into())]);
        assert_eq!(bool_truth(&c, &d), Truth::True);
        let c2 = BoolExpr::or([v(0).ge(100.into()), v(1).eq_expr(9.into())]);
        assert_eq!(bool_truth(&c2, &d), Truth::False);
    }

    #[test]
    fn width() {
        assert_eq!(Interval::new(1, 4).width(), 4);
        assert_eq!(Interval::empty().width(), 0);
        assert_eq!(Interval::point(7).width(), 1);
    }

    #[test]
    fn mod_interval() {
        let d = dom(&[(0, 0, 100)]);
        let i = int_interval(&(v(0) % 4.into()), &d);
        assert_eq!(i, Interval::new(0, 3));
    }
}
