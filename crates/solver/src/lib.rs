//! # nnsmith-solver
//!
//! An incremental integer constraint solver — the stand-in for Z3 in this
//! Rust reproduction of NNSmith (ASPLOS 2023).
//!
//! NNSmith grows computation graphs operator by operator; each candidate
//! insertion contributes *type-matching constraints* (shape equalities and
//! operator-specific inequalities such as "the kernel fits within the padded
//! image"). The generator asks the solver whether the accumulated system is
//! satisfiable, and uses the returned model to concretize placeholder shapes
//! and operator attributes.
//!
//! The fragment needed is bounded integer arithmetic (`+ - * / % min max`)
//! with comparisons, conjunction, disjunction and negation. This crate solves
//! it with interval propagation plus randomized backtracking, biased toward
//! minimal values so that — like Z3 — unconstrained attributes land on
//! boundary values. That bias is deliberate: it is what makes the paper's
//! *attribute binning* (Algorithm 2) observable and necessary.
//!
//! ## Example
//!
//! ```
//! use nnsmith_solver::{IntExpr, Solver};
//!
//! // Pool2d-style constraint: kernel fits in the padded input.
//! let mut s = Solver::default();
//! let iw = s.new_var("iw", 1, 224);
//! let kw = s.new_var("kw", 1, 11);
//! let pad = s.new_var("pad", 0, 3);
//! s.assert(IntExpr::var(kw).le(IntExpr::from(2) * IntExpr::var(pad) + IntExpr::var(iw)));
//! let model = s.check().model().cloned().expect("satisfiable");
//! assert!(model.get(kw).unwrap() <= 2 * model.get(pad).unwrap() + model.get(iw).unwrap());
//! ```

#![warn(missing_docs)]
#![allow(clippy::should_implement_trait)] // BoolExpr::not / Truth::not mirror Z3 naming

mod expr;
pub mod intern;
mod interval;
mod solver;
pub mod tape;

pub use expr::{BinOp, BoolExpr, CmpOp, IntExpr, VarId};
pub use intern::{live_node_count, BoolId, ExprId, InternPool, PoolStats};
pub use interval::{bool_truth, int_interval, Interval, Truth};
pub use solver::{Model, SatResult, Solver, SolverConfig, SolverStats};
pub use tape::{Tape, TapeScratch};
