//! Hash-consed expression arena — the shared, interned constraint layer.
//!
//! Historically every asserted constraint was stored as an owned
//! [`IntExpr`]/[`BoolExpr`] tree, so cloning a solver (or spawning a fresh
//! generation source per campaign shard) deep-cloned every node, and
//! structurally identical subterms (the `d >= 1`, `d <= max_dim` caps
//! every tensor dimension contributes) were stored once per occurrence.
//!
//! This module interns expressions in a process-wide arena instead:
//!
//! * [`ExprId`] / [`BoolId`] are `Copy` handles into append-only tables,
//!   so a constraint *system* is a `Vec<BoolId>` — cloning a solver or
//!   sharing accumulated constraints across worker threads copies a few
//!   machine words per constraint;
//! * interning **hash-conses**: structurally equal terms get the same
//!   handle, across every solver in the process (shard workers included);
//! * the intern-time smart constructors ([`PoolInner::bin`],
//!   [`PoolInner::cmp`], …) **constant-fold** and apply the same algebraic
//!   identities as the tree-level builders in [`crate::expr`], so fully
//!   concrete arithmetic never allocates nodes at all;
//! * the arena is `Send + Sync` (a `RwLock` around append-only tables);
//!   readers — the solver's propagation/search hot paths — take one read
//!   guard per `check` call, not one per node.
//!
//! Handles are only meaningful within the process; nothing may depend on
//! the numeric *order* of ids (two runs can intern in different orders
//! when worker threads race), only on their equality. All solver logic
//! honours this: same-seed campaigns are bit-reproducible regardless of
//! worker count.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock, RwLockReadGuard};

use crate::expr::{BinOp, BoolExpr, CmpOp, IntExpr, VarId};
use crate::interval::{Interval, Truth};

/// Handle of an interned integer expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExprId(u32);

/// Handle of an interned boolean expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoolId(u32);

/// An interned integer-expression node; children are handles.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IntNode {
    /// A literal constant.
    Const(i64),
    /// A solver variable.
    Var(VarId),
    /// A binary operation.
    Bin(BinOp, ExprId, ExprId),
}

/// An interned boolean-expression node; children are handles.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoolNode {
    /// Constant truth value.
    Lit(bool),
    /// Comparison between two integer expressions.
    Cmp(CmpOp, ExprId, ExprId),
    /// Conjunction.
    And(Vec<BoolId>),
    /// Disjunction.
    Or(Vec<BoolId>),
    /// Negation.
    Not(BoolId),
}

/// Counters describing the arena (diagnostics, benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Distinct interned integer nodes.
    pub int_nodes: usize,
    /// Distinct interned boolean nodes.
    pub bool_nodes: usize,
}

/// The arena tables. Access through [`read_pool`] or the interning
/// methods, which manage the process-wide lock.
#[derive(Debug, Default)]
pub struct PoolInner {
    ints: Vec<IntNode>,
    bools: Vec<BoolNode>,
    int_ids: HashMap<IntNode, ExprId>,
    bool_ids: HashMap<BoolNode, BoolId>,
}

impl PoolInner {
    /// Resolves an integer handle.
    pub fn int_node(&self, id: ExprId) -> &IntNode {
        &self.ints[id.0 as usize]
    }

    /// Resolves a boolean handle.
    pub fn bool_node(&self, id: BoolId) -> &BoolNode {
        &self.bools[id.0 as usize]
    }

    /// The constant value of an interned expression, if it is a literal.
    pub fn as_const(&self, id: ExprId) -> Option<i64> {
        match self.int_node(id) {
            IntNode::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Arena counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            int_nodes: self.ints.len(),
            bool_nodes: self.bools.len(),
        }
    }

    fn intern_int_node(&mut self, node: IntNode) -> ExprId {
        if let Some(&id) = self.int_ids.get(&node) {
            return id;
        }
        let id = ExprId(self.ints.len() as u32);
        self.ints.push(node.clone());
        self.int_ids.insert(node, id);
        id
    }

    fn intern_bool_node(&mut self, node: BoolNode) -> BoolId {
        if let Some(&id) = self.bool_ids.get(&node) {
            return id;
        }
        let id = BoolId(self.bools.len() as u32);
        self.bools.push(node.clone());
        self.bool_ids.insert(node, id);
        id
    }

    /// Interns a constant.
    pub fn constant(&mut self, v: i64) -> ExprId {
        self.intern_int_node(IntNode::Const(v))
    }

    /// Interns a variable reference.
    pub fn var(&mut self, v: VarId) -> ExprId {
        self.intern_int_node(IntNode::Var(v))
    }

    /// Interns a binary operation, constant-folding and applying the same
    /// algebraic identities as [`IntExpr::bin`].
    pub fn bin(&mut self, op: BinOp, lhs: ExprId, rhs: ExprId) -> ExprId {
        let (lc, rc) = (self.as_const(lhs), self.as_const(rhs));
        if let (Some(a), Some(b)) = (lc, rc) {
            if let Some(v) = op.apply(a, b) {
                return self.constant(v);
            }
        }
        match (op, lc, rc) {
            (BinOp::Add, _, Some(0)) => return lhs,
            (BinOp::Add, Some(0), _) => return rhs,
            (BinOp::Sub, _, Some(0)) => return lhs,
            (BinOp::Mul, _, Some(1)) => return lhs,
            (BinOp::Mul, Some(1), _) => return rhs,
            (BinOp::Mul, Some(0), _) | (BinOp::Mul, _, Some(0)) => return self.constant(0),
            (BinOp::Div, _, Some(1)) => return lhs,
            _ => {}
        }
        self.intern_int_node(IntNode::Bin(op, lhs, rhs))
    }

    /// Interns a truth literal.
    pub fn lit(&mut self, b: bool) -> BoolId {
        self.intern_bool_node(BoolNode::Lit(b))
    }

    /// Interns a comparison, folding constants and syntactically-identical
    /// operands exactly like [`BoolExpr::cmp`].
    pub fn cmp(&mut self, op: CmpOp, lhs: ExprId, rhs: ExprId) -> BoolId {
        if let (Some(a), Some(b)) = (self.as_const(lhs), self.as_const(rhs)) {
            return self.lit(op.apply(a, b));
        }
        if lhs == rhs {
            // Hash-consing makes syntactic equality a handle comparison.
            return self.lit(matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge));
        }
        self.intern_bool_node(BoolNode::Cmp(op, lhs, rhs))
    }

    /// Interns a conjunction (flattening, short-circuiting on `false`).
    pub fn and(&mut self, parts: impl IntoIterator<Item = BoolId>) -> BoolId {
        let mut flat = Vec::new();
        for p in parts {
            match self.bool_node(p) {
                BoolNode::Lit(true) => {}
                BoolNode::Lit(false) => return self.lit(false),
                BoolNode::And(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(p),
            }
        }
        match flat.len() {
            0 => self.lit(true),
            1 => flat[0],
            _ => self.intern_bool_node(BoolNode::And(flat)),
        }
    }

    /// Interns a disjunction (flattening, short-circuiting on `true`).
    pub fn or(&mut self, parts: impl IntoIterator<Item = BoolId>) -> BoolId {
        let mut flat = Vec::new();
        for p in parts {
            match self.bool_node(p) {
                BoolNode::Lit(false) => {}
                BoolNode::Lit(true) => return self.lit(true),
                BoolNode::Or(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(p),
            }
        }
        match flat.len() {
            0 => self.lit(false),
            1 => flat[0],
            _ => self.intern_bool_node(BoolNode::Or(flat)),
        }
    }

    /// Interns a negation (collapsing double negation).
    pub fn not(&mut self, inner: BoolId) -> BoolId {
        match self.bool_node(inner) {
            BoolNode::Lit(b) => {
                let b = !*b;
                self.lit(b)
            }
            BoolNode::Not(e) => *e,
            _ => self.intern_bool_node(BoolNode::Not(inner)),
        }
    }

    /// Interns an owned integer expression tree.
    pub fn intern_int(&mut self, e: &IntExpr) -> ExprId {
        match e {
            IntExpr::Const(c) => self.constant(*c),
            IntExpr::Var(v) => self.var(*v),
            IntExpr::Bin(op, a, b) => {
                let a = self.intern_int(a);
                let b = self.intern_int(b);
                self.bin(*op, a, b)
            }
        }
    }

    /// Interns an owned boolean expression tree.
    pub fn intern_bool(&mut self, e: &BoolExpr) -> BoolId {
        match e {
            BoolExpr::Lit(b) => self.lit(*b),
            BoolExpr::Cmp(op, a, b) => {
                let a = self.intern_int(a);
                let b = self.intern_int(b);
                self.cmp(*op, a, b)
            }
            BoolExpr::And(parts) => {
                let ids: Vec<BoolId> = parts.iter().map(|p| self.intern_bool(p)).collect();
                self.and(ids)
            }
            BoolExpr::Or(parts) => {
                let ids: Vec<BoolId> = parts.iter().map(|p| self.intern_bool(p)).collect();
                self.or(ids)
            }
            BoolExpr::Not(inner) => {
                let id = self.intern_bool(inner);
                self.not(id)
            }
        }
    }

    /// Reconstructs the owned tree form of an interned integer expression.
    pub fn to_int_expr(&self, id: ExprId) -> IntExpr {
        match self.int_node(id) {
            IntNode::Const(c) => IntExpr::Const(*c),
            IntNode::Var(v) => IntExpr::Var(*v),
            IntNode::Bin(op, a, b) => IntExpr::Bin(
                *op,
                Box::new(self.to_int_expr(*a)),
                Box::new(self.to_int_expr(*b)),
            ),
        }
    }

    /// Reconstructs the owned tree form of an interned boolean expression.
    pub fn to_bool_expr(&self, id: BoolId) -> BoolExpr {
        match self.bool_node(id) {
            BoolNode::Lit(b) => BoolExpr::Lit(*b),
            BoolNode::Cmp(op, a, b) => {
                BoolExpr::Cmp(*op, self.to_int_expr(*a), self.to_int_expr(*b))
            }
            BoolNode::And(parts) => {
                BoolExpr::And(parts.iter().map(|p| self.to_bool_expr(*p)).collect())
            }
            BoolNode::Or(parts) => {
                BoolExpr::Or(parts.iter().map(|p| self.to_bool_expr(*p)).collect())
            }
            BoolNode::Not(inner) => BoolExpr::Not(Box::new(self.to_bool_expr(*inner))),
        }
    }

    // --- evaluation over handles --------------------------------------------

    /// Evaluates an interned integer expression under an assignment.
    pub fn eval_int(&self, id: ExprId, lookup: &dyn Fn(VarId) -> Option<i64>) -> Option<i64> {
        match self.int_node(id) {
            IntNode::Const(c) => Some(*c),
            IntNode::Var(v) => lookup(*v),
            IntNode::Bin(op, a, b) => {
                let a = self.eval_int(*a, lookup)?;
                let b = self.eval_int(*b, lookup)?;
                op.apply(a, b)
            }
        }
    }

    /// Evaluates an interned boolean expression under an assignment, with
    /// the same partial-evaluation semantics as [`BoolExpr::eval`].
    pub fn eval_bool(&self, id: BoolId, lookup: &dyn Fn(VarId) -> Option<i64>) -> Option<bool> {
        match self.bool_node(id) {
            BoolNode::Lit(b) => Some(*b),
            BoolNode::Cmp(op, a, b) => {
                Some(op.apply(self.eval_int(*a, lookup)?, self.eval_int(*b, lookup)?))
            }
            BoolNode::And(parts) => {
                let mut all = true;
                for p in parts {
                    match self.eval_bool(*p, lookup) {
                        Some(true) => {}
                        Some(false) => return Some(false),
                        None => all = false,
                    }
                }
                if all {
                    Some(true)
                } else {
                    None
                }
            }
            BoolNode::Or(parts) => {
                let mut any_unknown = false;
                for p in parts {
                    match self.eval_bool(*p, lookup) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => any_unknown = true,
                    }
                }
                if any_unknown {
                    None
                } else {
                    Some(false)
                }
            }
            BoolNode::Not(inner) => self.eval_bool(*inner, lookup).map(|b| !b),
        }
    }

    /// Collects every variable mentioned by an interned integer expression.
    pub fn collect_int_vars(&self, id: ExprId, out: &mut Vec<VarId>) {
        match self.int_node(id) {
            IntNode::Const(_) => {}
            IntNode::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            IntNode::Bin(_, a, b) => {
                self.collect_int_vars(*a, out);
                self.collect_int_vars(*b, out);
            }
        }
    }

    /// Collects every variable mentioned by an interned boolean expression.
    pub fn collect_bool_vars(&self, id: BoolId, out: &mut Vec<VarId>) {
        match self.bool_node(id) {
            BoolNode::Lit(_) => {}
            BoolNode::Cmp(_, a, b) => {
                self.collect_int_vars(*a, out);
                self.collect_int_vars(*b, out);
            }
            BoolNode::And(parts) | BoolNode::Or(parts) => {
                for &p in parts {
                    self.collect_bool_vars(p, out);
                }
            }
            BoolNode::Not(inner) => self.collect_bool_vars(*inner, out),
        }
    }

    // --- interval reasoning over handles ------------------------------------

    /// Interval of an interned integer expression over variable domains
    /// (mirrors [`crate::int_interval`]).
    pub fn int_interval(&self, id: ExprId, domain: &dyn Fn(VarId) -> Interval) -> Interval {
        crate::interval::int_interval_node(self, id, domain)
    }

    /// Three-valued truth of an interned boolean expression over variable
    /// domains (mirrors [`crate::bool_truth`]).
    pub fn bool_truth(&self, id: BoolId, domain: &dyn Fn(VarId) -> Interval) -> Truth {
        crate::interval::bool_truth_node(self, id, domain)
    }
}

fn pool() -> &'static RwLock<PoolInner> {
    static POOL: OnceLock<RwLock<PoolInner>> = OnceLock::new();
    POOL.get_or_init(Default::default)
}

/// Takes a read guard on the process-wide arena. Hold it across a batch of
/// evaluations (the solver holds one per `check`) rather than re-acquiring
/// per node.
pub fn read_pool() -> RwLockReadGuard<'static, PoolInner> {
    pool().read().expect("expression pool poisoned")
}

/// Runs `f` with mutable access to the process-wide arena (interning).
pub fn with_pool<R>(f: impl FnOnce(&mut PoolInner) -> R) -> R {
    f(&mut pool().write().expect("expression pool poisoned"))
}

/// Interns an integer expression tree into the process-wide arena.
pub fn intern_int(e: &IntExpr) -> ExprId {
    with_pool(|p| p.intern_int(e))
}

/// Interns a batch of integer expression trees under one arena lock
/// (a tensor shape's dimensions, typically).
pub fn intern_int_many(es: &[IntExpr]) -> Vec<ExprId> {
    with_pool(|p| es.iter().map(|e| p.intern_int(e)).collect())
}

/// Reconstructs the owned tree form of an interned integer expression.
pub fn int_expr_of(id: ExprId) -> IntExpr {
    read_pool().to_int_expr(id)
}

/// Interns a boolean expression tree into the process-wide arena.
pub fn intern_bool(e: &BoolExpr) -> BoolId {
    with_pool(|p| p.intern_bool(e))
}

/// Current process-wide arena counters.
pub fn pool_stats() -> PoolStats {
    read_pool().stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> IntExpr {
        IntExpr::Var(VarId(id))
    }

    #[test]
    fn hash_consing_dedups() {
        let a = intern_int(&(v(0) + 1.into()));
        let b = intern_int(&(v(0) + 1.into()));
        assert_eq!(a, b);
        let c = intern_int(&(v(0) + 2.into()));
        assert_ne!(a, c);
    }

    #[test]
    fn constant_folding_at_intern_time() {
        with_pool(|p| {
            let four = p.constant(4);
            let three = p.constant(3);
            let twelve = p.bin(BinOp::Mul, four, three);
            assert_eq!(p.as_const(twelve), Some(12));
            // Identities.
            let x = p.var(VarId(7));
            let zero = p.constant(0);
            let one = p.constant(1);
            assert_eq!(p.bin(BinOp::Add, x, zero), x);
            assert_eq!(p.bin(BinOp::Mul, x, one), x);
            let folded_zero = p.bin(BinOp::Mul, x, zero);
            assert_eq!(p.as_const(folded_zero), Some(0));
        });
    }

    #[test]
    fn cmp_folds_syntactic_equality_via_handles() {
        with_pool(|p| {
            let e1 = {
                let a = p.var(VarId(3));
                let b = p.constant(5);
                p.bin(BinOp::Add, a, b)
            };
            let e2 = {
                let a = p.var(VarId(3));
                let b = p.constant(5);
                p.bin(BinOp::Add, a, b)
            };
            assert_eq!(e1, e2);
            let t = p.cmp(CmpOp::Eq, e1, e2);
            assert!(matches!(p.bool_node(t), BoolNode::Lit(true)));
            let f = p.cmp(CmpOp::Lt, e1, e2);
            assert!(matches!(p.bool_node(f), BoolNode::Lit(false)));
        });
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let e = (v(0) - 3.into()) / 2.into() + v(1) * 4.into();
        let c = e.clone().le(v(2));
        let id = intern_bool(&c);
        let p = read_pool();
        let back = p.to_bool_expr(id);
        let lookup = |var: VarId| Some([9i64, 2, 20][var.0 as usize]);
        assert_eq!(back.eval(&lookup), c.eval(&lookup));
        assert_eq!(p.eval_bool(id, &lookup), c.eval(&lookup));
    }

    #[test]
    fn eval_partial_semantics_match() {
        // And with one definite false and one unknown must be Some(false).
        let c = BoolExpr::and([v(0).le(1.into()), v(1).le(1.into())]);
        let id = intern_bool(&c);
        let p = read_pool();
        let lookup = |var: VarId| if var == VarId(0) { Some(5) } else { None };
        assert_eq!(p.eval_bool(id, &lookup), Some(false));
        assert_eq!(c.eval(&lookup), Some(false));
    }

    #[test]
    fn collect_vars_matches_tree() {
        let c = (v(0) + v(1) * v(0)).le(v(2));
        let id = intern_bool(&c);
        let mut tree_vars = Vec::new();
        c.collect_vars(&mut tree_vars);
        let mut interned_vars = Vec::new();
        read_pool().collect_bool_vars(id, &mut interned_vars);
        assert_eq!(tree_vars, interned_vars);
    }

    #[test]
    fn handles_shared_across_threads() {
        let id = intern_int(&(v(40) + v(41)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    // Interning the same structure on another thread yields
                    // the same handle, and reads resolve it.
                    let again = intern_int(&(v(40) + v(41)));
                    assert_eq!(again, id);
                    read_pool().eval_int(id, &|_| Some(1))
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), Some(2));
        }
    }
}
