//! Hash-consed expression arenas — first-class, campaign-scoped intern
//! pools.
//!
//! Historically every asserted constraint was stored as an owned
//! [`IntExpr`]/[`BoolExpr`] tree; PR 1 interned expressions into one
//! **process-wide** `RwLock` arena. That design had two scaling problems
//! the roadmap called out as blockers for paper-scale (4-hour+) campaigns:
//!
//! * **unbounded growth** — the arena was append-only and process-global,
//!   so every distinct node a campaign ever interned stayed live for the
//!   process lifetime;
//! * **single-lock contention** — every `Solver::check` took a read guard
//!   and every intern a write guard on the same `RwLock`, serializing all
//!   shard workers through one cache line.
//!
//! This module replaces the singleton with **[`InternPool`] handles**:
//!
//! * an `InternPool` is a cheaply clonable handle (`Arc`) to a private
//!   arena. A campaign creates one, passes clones to its shard workers and
//!   drops it when done — node memory is reclaimed per campaign instead of
//!   accumulating forever. Anything that outlives the campaign (a captured
//!   failure's tensor types, say) keeps its own handle, so reclamation is
//!   exactly reference-counted, never dangling;
//! * internally the pool is **sharded N ways by node hash**. Each shard is
//!   an append-only segment table whose slots are published individually
//!   through `OnceLock` (an atomic state load on read) and counted by an
//!   atomic length — so the read path ([`InternPool::int_node`],
//!   [`InternPool::eval_bool`], interval reasoning, everything
//!   `Solver::check` does) acquires **no lock at all**. Writers take a
//!   short per-shard mutex only while interning a *new* node: interning
//!   re-checks a lock-free, direct-mapped probe cache over the published
//!   slots first, so re-interning a known structure — the overwhelmingly
//!   common case in intern-heavy generation, where the same shape
//!   subterms recur constantly — never touches the mutex at all;
//! * interning **hash-conses** within a pool: structurally equal terms get
//!   the same handle, across every solver and thread sharing that pool;
//! * the intern-time smart constructors ([`InternPool::bin`],
//!   [`InternPool::cmp`], …) **constant-fold** and apply the same
//!   algebraic identities as the tree-level builders in [`crate::expr`],
//!   so fully concrete arithmetic never allocates nodes at all.
//!
//! [`ExprId`]/[`BoolId`] handles are only meaningful within the pool that
//! produced them; nothing may depend on the numeric *order* of ids (two
//! runs intern in different orders when worker threads race), only on
//! their equality. All solver logic honours this: same-seed campaigns are
//! bit-reproducible regardless of worker count. Cross-pool comparison goes
//! through [`InternPool::structural_eq_int`] (used by `TensorType`'s
//! `Eq`/`Hash`), which compares the normalized node structure, not ids.
//!
//! Process-wide [`live_node_count`] counters (plain atomics — deliberately
//! *not* a hidden global pool) exist so soak tests can prove that dropping
//! a campaign's pool really returns interned-node memory to baseline.
//!
//! # Id-space partition and the shared base segment
//!
//! Handles are 32 bits, split in two by bit 31:
//!
//! ```text
//!   bit 31 set   BASE_FLAG | index            → process-wide base segment
//!   bit 31 clear (slot << SHARD_BITS) | shard → private sharded tables
//! ```
//!
//! The **base segment** is a lazily-built, process-wide, read-only table
//! of the nodes every campaign interns over and over: small integer
//! constants, low-numbered dimension variables, the boolean literals and
//! the canonical `d >= 1` size caps. It is frozen after construction, so
//! every pool maps it "below" its private shards the way an OS maps a
//! shared read-only text segment below private writable pages:
//!
//! * interning a base-resident structure is a pure hash-map lookup — no
//!   shard probe, no writer mutex, no allocation, in *any* pool;
//! * a base id resolves without touching a shard and is valid in (and
//!   identical across) every pool — [`InternPool::rehome_int`] returns it
//!   unchanged;
//! * base nodes are deliberately **excluded** from [`live_node_count`],
//!   [`PoolStats::int_nodes`]/[`PoolStats::bool_nodes`] and the byte
//!   counters: they are process memory, not campaign memory, so
//!   per-campaign reclamation accounting stays exact (the soak-test
//!   invariant).
//!
//! Because interning always consults the base map first, no private shard
//! slot can ever hold a base-resident structure — which is what makes the
//! mixed-pool fast path in [`InternPool::structural_eq_int`] sound.
//! Reserving bit 31 halves the private per-shard index space to 2^27
//! slots, still >3 GiB of nodes in a single shard of a single
//! per-campaign pool.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use serde::{Deserialize, Serialize};

use crate::expr::{BinOp, BoolExpr, CmpOp, IntExpr, VarId};
use crate::interval::{Interval, Truth};

/// Handle of an interned integer expression (valid only within the pool
/// that produced it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExprId(u32);

/// Handle of an interned boolean expression (valid only within the pool
/// that produced it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoolId(u32);

/// An interned integer-expression node; children are handles.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IntNode {
    /// A literal constant.
    Const(i64),
    /// A solver variable.
    Var(VarId),
    /// A binary operation.
    Bin(BinOp, ExprId, ExprId),
}

/// An interned boolean-expression node; children are handles.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BoolNode {
    /// Constant truth value.
    Lit(bool),
    /// Comparison between two integer expressions.
    Cmp(CmpOp, ExprId, ExprId),
    /// Conjunction.
    And(Vec<BoolId>),
    /// Disjunction.
    Or(Vec<BoolId>),
    /// Negation.
    Not(BoolId),
}

/// Counters describing one pool (diagnostics, benchmarks, the `"arena"`
/// block of `BENCH_*.json`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Distinct interned integer nodes.
    pub int_nodes: usize,
    /// Distinct interned boolean nodes.
    pub bool_nodes: usize,
    /// Approximate heap bytes held by the node tables (excluding the
    /// hash-cons maps, which mirror the tables ~1:1).
    pub bytes: usize,
    /// Interns answered by the shared read-only base segment (pure
    /// lookups: no shard probe, no writer mutex, no allocation).
    pub base_hits: usize,
    /// Interns that fell through the base segment to the private shards.
    pub base_misses: usize,
    /// Lookups answered by memo tables attached to this pool (the
    /// ops-layer type-transfer LUTs report here via
    /// [`InternPool::note_memo_hit`]).
    pub memo_hits: usize,
}

// ---------------------------------------------------------------------------
// Process-wide live-node accounting (soak-test instrumentation, not a pool).

static LIVE_INT_NODES: AtomicUsize = AtomicUsize::new(0);
static LIVE_BOOL_NODES: AtomicUsize = AtomicUsize::new(0);

/// Total interned nodes currently live across every [`InternPool`] in the
/// process. Dropping the last handle of a pool subtracts its nodes — the
/// invariant `tests/arena_soak.rs` pins.
pub fn live_node_count() -> usize {
    LIVE_INT_NODES.load(Ordering::Relaxed) + LIVE_BOOL_NODES.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// The shared read-only base segment.

/// The process-wide frozen table of pre-interned common nodes. Built once
/// (lazily, deterministically), never mutated afterwards, shared by every
/// pool; see the module docs' id-space partition. Child handles inside
/// base nodes are themselves base ids, so tree interning produces
/// exactly the keys stored in the lookup maps.
struct BaseSegment {
    ints: Vec<IntNode>,
    bools: Vec<BoolNode>,
    int_ids: HashMap<IntNode, u32>,
    bool_ids: HashMap<BoolNode, u32>,
}

impl BaseSegment {
    fn add_int(&mut self, node: IntNode) -> ExprId {
        if let Some(&i) = self.int_ids.get(&node) {
            return ExprId(BASE_FLAG | i);
        }
        let i = self.ints.len() as u32;
        self.ints.push(node.clone());
        self.int_ids.insert(node, i);
        ExprId(BASE_FLAG | i)
    }

    fn add_bool(&mut self, node: BoolNode) -> BoolId {
        if let Some(&i) = self.bool_ids.get(&node) {
            return BoolId(BASE_FLAG | i);
        }
        let i = self.bools.len() as u32;
        self.bools.push(node.clone());
        self.bool_ids.insert(node, i);
        BoolId(BASE_FLAG | i)
    }
}

/// The base segment, built on first use. Contents are chosen from what
/// generation and triage intern constantly: every small constant a shape
/// dimension or op attribute plausibly takes (plus the powers of two up
/// to the solver's default dimension ceiling), the low-numbered solver
/// variables, the boolean literals, and the canonical `d >= 1` size cap
/// for each of those variables. Nodes added here are **not** counted in
/// `LIVE_*` or any pool's stats — the segment is process memory by
/// design.
fn base() -> &'static BaseSegment {
    static BASE: OnceLock<BaseSegment> = OnceLock::new();
    BASE.get_or_init(|| {
        let mut b = BaseSegment {
            ints: Vec::new(),
            bools: Vec::new(),
            int_ids: HashMap::new(),
            bool_ids: HashMap::new(),
        };
        for c in -8..=256i64 {
            b.add_int(IntNode::Const(c));
        }
        let mut p = 512i64;
        while p <= 1 << 20 {
            b.add_int(IntNode::Const(p));
            p *= 2;
        }
        for i in 0..64u32 {
            b.add_int(IntNode::Var(VarId(i)));
        }
        b.add_bool(BoolNode::Lit(false));
        b.add_bool(BoolNode::Lit(true));
        let one = b.add_int(IntNode::Const(1));
        for i in 0..64u32 {
            let var = b.add_int(IntNode::Var(VarId(i)));
            b.add_bool(BoolNode::Cmp(CmpOp::Ge, var, one));
        }
        b
    })
}

// ---------------------------------------------------------------------------
// Sharded storage.

/// Bit 31 marks a handle into the process-wide read-only base segment;
/// private shard ids keep it clear (see the module docs' id-space
/// partition).
const BASE_FLAG: u32 = 1 << 31;
/// Shard index lives in the low bits of a private id, slot index in the
/// bits between it and the base flag.
const SHARD_BITS: u32 = 4;
const SHARD_MASK: u32 = (1 << SHARD_BITS) - 1;
/// Hard cap on shards (everything the id encoding allows).
pub const MAX_SHARDS: usize = 1 << SHARD_BITS;
/// log2 of the first segment's slot count.
const SEG_BASE_LOG2: u32 = 6;
/// Segments double in size; 22 of them cover the full 2^27 per-shard
/// index space left once bit 31 is reserved for the base segment.
const NUM_SEGS: usize = (31 - SHARD_BITS - SEG_BASE_LOG2) as usize + 1;

fn pack(shard: usize, idx: u32) -> u32 {
    // 2^27 slots per shard (bit 31 is the base-segment flag). Shifting
    // past that would silently alias new ids onto old slots — corrupt
    // constraints instead of a crash — so overflow must be loud. (At ~28
    // bytes/node that is >3 GiB in one shard of one pool; per-campaign
    // pools make reaching it pathological.)
    assert!(
        idx >> (31 - SHARD_BITS) == 0,
        "intern pool shard overflow: {idx} nodes in one shard exceeds the id encoding"
    );
    (idx << SHARD_BITS) | shard as u32
}

fn unpack(id: u32) -> (usize, u32) {
    ((id & SHARD_MASK) as usize, id >> SHARD_BITS)
}

/// Maps a flat slot index to its (segment, offset) coordinates.
fn locate(idx: u32) -> (usize, usize) {
    let n = idx + (1 << SEG_BASE_LOG2);
    let top = 31 - n.leading_zeros();
    ((top - SEG_BASE_LOG2) as usize, (n - (1 << top)) as usize)
}

fn seg_capacity(seg: usize) -> usize {
    1usize << (SEG_BASE_LOG2 as usize + seg)
}

/// Append-only slot table: a fixed array of lazily-allocated,
/// doubling-size segments. Slots are published individually via
/// `OnceLock`, so `get` on a published slot is an atomic load plus a
/// dereference — no lock, and `&T` borrows are stable for the table's
/// lifetime (slots are never moved or mutated after publication).
struct Table<T> {
    segs: [OnceLock<Box<[OnceLock<T>]>>; NUM_SEGS],
}

impl<T> Table<T> {
    fn new() -> Self {
        Table {
            segs: std::array::from_fn(|_| OnceLock::new()),
        }
    }

    /// Lock-free read of a published slot.
    fn get(&self, idx: u32) -> Option<&T> {
        let (seg, off) = locate(idx);
        self.segs[seg].get()?.get(off)?.get()
    }

    /// Publishes a slot. Only ever called by the shard writer (under the
    /// shard mutex) with a fresh index, so the `set` cannot race.
    fn set(&self, idx: u32, value: T) {
        let (seg, off) = locate(idx);
        let slab = self.segs[seg].get_or_init(|| {
            (0..seg_capacity(seg))
                .map(|_| OnceLock::new())
                .collect::<Vec<_>>()
                .into_boxed_slice()
        });
        let _ = slab[off].set(value);
    }
}

/// Writer-side state of one shard: the hash-cons maps.
#[derive(Default)]
struct ShardWriter {
    int_ids: HashMap<IntNode, u32>,
    bool_ids: HashMap<BoolNode, u32>,
}

/// Entries in the lock-free probe cache: `(hash tag << 32) | (slot + 1)`,
/// `0` = empty. The cache is a direct-mapped, last-writer-wins index over
/// the shard's *published* slots: a matching tag nominates a candidate
/// slot whose node is then compared for real (publication makes the read
/// safe), so a hit is always correct and a collision just falls through
/// to the mutex. Writers refresh entries under the shard mutex.
const PROBE_SLOTS: usize = 512;

fn probe_entry(hash: u64, idx: u32) -> u64 {
    ((hash >> 32) << 32) | u64::from(idx + 1)
}

struct ProbeCache {
    entries: Box<[std::sync::atomic::AtomicU64]>,
}

impl ProbeCache {
    fn new() -> Self {
        ProbeCache {
            entries: (0..PROBE_SLOTS)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
        }
    }

    fn slot(hash: u64) -> usize {
        // High bits: the low bits already picked the shard.
        (hash >> 32) as usize & (PROBE_SLOTS - 1)
    }

    /// The candidate slot index published for `hash`, if any. The caller
    /// must verify the node behind it — equal tags do not imply equal
    /// nodes.
    fn lookup(&self, hash: u64) -> Option<u32> {
        let v = self.entries[Self::slot(hash)].load(Ordering::Acquire);
        (v != 0 && (v >> 32) == (hash >> 32)).then(|| (v as u32) - 1)
    }

    fn publish(&self, hash: u64, idx: u32) {
        self.entries[Self::slot(hash)].store(probe_entry(hash, idx), Ordering::Release);
    }
}

struct Shard {
    ints: Table<IntNode>,
    bools: Table<BoolNode>,
    /// Published node counts (stats; publication itself is per-slot).
    int_len: AtomicU32,
    bool_len: AtomicU32,
    /// Approximate table bytes.
    bytes: AtomicUsize,
    /// Lock-free pre-check indexes: interning an already-known node hits
    /// here and never touches the writer mutex (the ROADMAP contention
    /// item — intern-heavy generation re-interns the same subterms
    /// constantly, so the steady state is all hits).
    int_probe: ProbeCache,
    bool_probe: ProbeCache,
    /// Taken only while interning a genuinely new node; never on the read
    /// path, never on a probe hit.
    writer: Mutex<ShardWriter>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            ints: Table::new(),
            bools: Table::new(),
            int_len: AtomicU32::new(0),
            bool_len: AtomicU32::new(0),
            bytes: AtomicUsize::new(0),
            int_probe: ProbeCache::new(),
            bool_probe: ProbeCache::new(),
            writer: Mutex::new(ShardWriter::default()),
        }
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        LIVE_INT_NODES.fetch_sub(
            self.int_len.load(Ordering::Relaxed) as usize,
            Ordering::Relaxed,
        );
        LIVE_BOOL_NODES.fetch_sub(
            self.bool_len.load(Ordering::Relaxed) as usize,
            Ordering::Relaxed,
        );
    }
}

struct PoolShared {
    shards: Box<[Shard]>,
    /// Interns answered by the read-only base segment.
    base_hits: AtomicUsize,
    /// Interns that fell through to the private shards.
    base_misses: AtomicUsize,
    /// Hits reported by memo tables attached to this pool (the ops-layer
    /// type-transfer LUTs), so the win shows up in campaign artifacts.
    memo_hits: AtomicUsize,
}

/// A first-class, campaign-scoped hash-consing arena.
///
/// Cloning copies a handle (`Arc`); the arena itself lives until the last
/// handle drops. See the module docs for the sharding and lock-freedom
/// design.
///
/// # Examples
///
/// ```
/// use nnsmith_solver::intern::InternPool;
/// use nnsmith_solver::{IntExpr, VarId};
///
/// let pool = InternPool::default();
/// let a = pool.intern_int(&(IntExpr::var(VarId(0)) + 1.into()));
/// let b = pool.intern_int(&(IntExpr::var(VarId(0)) + 1.into()));
/// assert_eq!(a, b); // hash-consing: one handle per structure
/// ```
#[derive(Clone)]
pub struct InternPool {
    inner: Arc<PoolShared>,
}

impl Default for InternPool {
    /// A full-width pool for campaign/solver use.
    fn default() -> Self {
        InternPool::with_shards(8)
    }
}

impl std::fmt::Debug for InternPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InternPool")
            .field("shards", &self.num_shards())
            .field("stats", &self.stats())
            .finish()
    }
}

impl InternPool {
    /// Creates a pool with `n` shards (rounded down to a power of two,
    /// clamped to `1..=`[`MAX_SHARDS`]). More shards cut writer contention;
    /// fewer cut per-pool footprint.
    ///
    /// The shard count only partitions the pool's *private* id space:
    /// [`MAX_SHARDS`] is bounded by the `SHARD_BITS` low bits of a
    /// private id, and reserving bit 31 for the shared base segment
    /// leaves 2^27 slots per shard regardless of `n` (see the module
    /// docs' id-space partition). Every pool — whatever its shard count —
    /// maps the same base segment below its shards, so base-resident
    /// interning cost is independent of `n`.
    pub fn with_shards(n: usize) -> Self {
        let n = n.clamp(1, MAX_SHARDS);
        let n = if n.is_power_of_two() {
            n
        } else {
            n.next_power_of_two() / 2
        };
        InternPool {
            inner: Arc::new(PoolShared {
                shards: (0..n).map(|_| Shard::new()).collect(),
                base_hits: AtomicUsize::new(0),
                base_misses: AtomicUsize::new(0),
                memo_hits: AtomicUsize::new(0),
            }),
        }
    }

    /// A single-shard pool: the lightest footprint, for small standalone
    /// call sites (a hand-built concrete `TensorType`, a decoded
    /// reproducer) that never see multi-threaded interning.
    pub fn small() -> Self {
        InternPool::with_shards(1)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// True when `self` and `other` are handles to the same arena (id
    /// spaces are interchangeable).
    pub fn same_pool(&self, other: &InternPool) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Pool counters. Node and byte counts cover the private shards only;
    /// the shared base segment is process memory and never appears here.
    pub fn stats(&self) -> PoolStats {
        let mut s = PoolStats::default();
        for shard in self.inner.shards.iter() {
            s.int_nodes += shard.int_len.load(Ordering::Relaxed) as usize;
            s.bool_nodes += shard.bool_len.load(Ordering::Relaxed) as usize;
            s.bytes += shard.bytes.load(Ordering::Relaxed);
        }
        s.base_hits = self.inner.base_hits.load(Ordering::Relaxed);
        s.base_misses = self.inner.base_misses.load(Ordering::Relaxed);
        s.memo_hits = self.inner.memo_hits.load(Ordering::Relaxed);
        s
    }

    /// Records one hit in a memo table attached to this pool (the
    /// ops-layer type-transfer LUT). Counted per pool so the memoization
    /// win lands in the same `"arena"` stats block campaigns already
    /// export.
    pub fn note_memo_hit(&self) {
        self.inner.memo_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Test/diagnostic hook: acquires every shard's writer mutex and holds
    /// them until the guard drops, parking any thread that tries to intern
    /// a *new* node (re-interning known nodes hits the lock-free probe
    /// cache and proceeds). The contention smoke test uses this to prove
    /// the read path — and the known-node intern path — is lock-free.
    pub fn stall_writers(&self) -> WriterStall<'_> {
        WriterStall {
            _guards: self
                .inner
                .shards
                .iter()
                .map(|s| s.writer.lock().expect("shard writer poisoned"))
                .collect(),
        }
    }

    // --- sharding ------------------------------------------------------------

    fn hash_of<T: Hash>(tag: u8, node: &T) -> u64 {
        // DefaultHasher::new() is deterministic within a build (fixed keys),
        // which keeps shard assignment — though never id *order* — stable.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        tag.hash(&mut h);
        node.hash(&mut h);
        h.finish()
    }

    fn intern_int_node(&self, node: IntNode) -> ExprId {
        // Base-segment fast path: a pure lookup in a frozen map, shared by
        // every pool — no shard probe, no mutex, no allocation.
        if let Some(&i) = base().int_ids.get(&node) {
            self.inner.base_hits.fetch_add(1, Ordering::Relaxed);
            return ExprId(BASE_FLAG | i);
        }
        self.inner.base_misses.fetch_add(1, Ordering::Relaxed);
        let hash = Self::hash_of(0, &node);
        let si = (hash as usize) & (self.inner.shards.len() - 1);
        let shard = &self.inner.shards[si];
        // Lock-free pre-check: a probe hit nominates a published slot; if
        // its node really is `node`, the id is final (hash-consing means
        // one slot per structure) and the writer mutex is never touched.
        if let Some(idx) = shard.int_probe.lookup(hash) {
            if shard.ints.get(idx).is_some_and(|n| *n == node) {
                return ExprId(pack(si, idx));
            }
        }
        let mut w = shard.writer.lock().expect("shard writer poisoned");
        if let Some(&idx) = w.int_ids.get(&node) {
            shard.int_probe.publish(hash, idx);
            return ExprId(pack(si, idx));
        }
        let idx = shard.int_len.load(Ordering::Relaxed);
        shard.ints.set(idx, node.clone());
        shard
            .bytes
            .fetch_add(std::mem::size_of::<IntNode>(), Ordering::Relaxed);
        LIVE_INT_NODES.fetch_add(1, Ordering::Relaxed);
        shard.int_len.store(idx + 1, Ordering::Release);
        w.int_ids.insert(node, idx);
        shard.int_probe.publish(hash, idx);
        ExprId(pack(si, idx))
    }

    fn intern_bool_node(&self, node: BoolNode) -> BoolId {
        if let Some(&i) = base().bool_ids.get(&node) {
            self.inner.base_hits.fetch_add(1, Ordering::Relaxed);
            return BoolId(BASE_FLAG | i);
        }
        self.inner.base_misses.fetch_add(1, Ordering::Relaxed);
        let hash = Self::hash_of(1, &node);
        let si = (hash as usize) & (self.inner.shards.len() - 1);
        let shard = &self.inner.shards[si];
        if let Some(idx) = shard.bool_probe.lookup(hash) {
            if shard.bools.get(idx).is_some_and(|n| *n == node) {
                return BoolId(pack(si, idx));
            }
        }
        let mut w = shard.writer.lock().expect("shard writer poisoned");
        if let Some(&idx) = w.bool_ids.get(&node) {
            shard.bool_probe.publish(hash, idx);
            return BoolId(pack(si, idx));
        }
        let idx = shard.bool_len.load(Ordering::Relaxed);
        let child_bytes = match &node {
            BoolNode::And(v) | BoolNode::Or(v) => v.len() * std::mem::size_of::<BoolId>(),
            _ => 0,
        };
        shard.bools.set(idx, node.clone());
        shard.bytes.fetch_add(
            std::mem::size_of::<BoolNode>() + child_bytes,
            Ordering::Relaxed,
        );
        LIVE_BOOL_NODES.fetch_add(1, Ordering::Relaxed);
        shard.bool_len.store(idx + 1, Ordering::Release);
        w.bool_ids.insert(node, idx);
        shard.bool_probe.publish(hash, idx);
        BoolId(pack(si, idx))
    }

    // --- lock-free reads -----------------------------------------------------

    /// Resolves an integer handle (lock-free).
    ///
    /// # Panics
    ///
    /// Panics on a handle from a different pool that does not resolve here.
    pub fn int_node(&self, id: ExprId) -> &IntNode {
        if id.0 & BASE_FLAG != 0 {
            return &base().ints[(id.0 & !BASE_FLAG) as usize];
        }
        let (si, idx) = unpack(id.0);
        self.inner.shards[si]
            .ints
            .get(idx)
            .expect("ExprId from a different pool")
    }

    /// Resolves a boolean handle (lock-free).
    ///
    /// # Panics
    ///
    /// Panics on a handle from a different pool that does not resolve here.
    pub fn bool_node(&self, id: BoolId) -> &BoolNode {
        if id.0 & BASE_FLAG != 0 {
            return &base().bools[(id.0 & !BASE_FLAG) as usize];
        }
        let (si, idx) = unpack(id.0);
        self.inner.shards[si]
            .bools
            .get(idx)
            .expect("BoolId from a different pool")
    }

    /// The constant value of an interned expression, if it is a literal.
    pub fn as_const(&self, id: ExprId) -> Option<i64> {
        match self.int_node(id) {
            IntNode::Const(c) => Some(*c),
            _ => None,
        }
    }

    // --- smart constructors --------------------------------------------------

    /// Interns a constant.
    pub fn constant(&self, v: i64) -> ExprId {
        self.intern_int_node(IntNode::Const(v))
    }

    /// Interns a variable reference.
    pub fn var(&self, v: VarId) -> ExprId {
        self.intern_int_node(IntNode::Var(v))
    }

    /// Interns a binary operation, constant-folding and applying the same
    /// algebraic identities as [`IntExpr::bin`].
    pub fn bin(&self, op: BinOp, lhs: ExprId, rhs: ExprId) -> ExprId {
        let (lc, rc) = (self.as_const(lhs), self.as_const(rhs));
        if let (Some(a), Some(b)) = (lc, rc) {
            if let Some(v) = op.apply(a, b) {
                return self.constant(v);
            }
        }
        match (op, lc, rc) {
            (BinOp::Add, _, Some(0)) => return lhs,
            (BinOp::Add, Some(0), _) => return rhs,
            (BinOp::Sub, _, Some(0)) => return lhs,
            (BinOp::Mul, _, Some(1)) => return lhs,
            (BinOp::Mul, Some(1), _) => return rhs,
            (BinOp::Mul, Some(0), _) | (BinOp::Mul, _, Some(0)) => return self.constant(0),
            (BinOp::Div, _, Some(1)) => return lhs,
            _ => {}
        }
        self.intern_int_node(IntNode::Bin(op, lhs, rhs))
    }

    /// Interns a truth literal.
    pub fn lit(&self, b: bool) -> BoolId {
        self.intern_bool_node(BoolNode::Lit(b))
    }

    /// Interns a comparison, folding constants and syntactically-identical
    /// operands exactly like [`BoolExpr::cmp`].
    pub fn cmp(&self, op: CmpOp, lhs: ExprId, rhs: ExprId) -> BoolId {
        if let (Some(a), Some(b)) = (self.as_const(lhs), self.as_const(rhs)) {
            return self.lit(op.apply(a, b));
        }
        if lhs == rhs {
            // Hash-consing makes syntactic equality a handle comparison.
            return self.lit(matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge));
        }
        self.intern_bool_node(BoolNode::Cmp(op, lhs, rhs))
    }

    /// Interns a conjunction (flattening, short-circuiting on `false`).
    pub fn and(&self, parts: impl IntoIterator<Item = BoolId>) -> BoolId {
        let mut flat = Vec::new();
        for p in parts {
            match self.bool_node(p) {
                BoolNode::Lit(true) => {}
                BoolNode::Lit(false) => return self.lit(false),
                BoolNode::And(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(p),
            }
        }
        match flat.len() {
            0 => self.lit(true),
            1 => flat[0],
            _ => self.intern_bool_node(BoolNode::And(flat)),
        }
    }

    /// Interns a disjunction (flattening, short-circuiting on `true`).
    pub fn or(&self, parts: impl IntoIterator<Item = BoolId>) -> BoolId {
        let mut flat = Vec::new();
        for p in parts {
            match self.bool_node(p) {
                BoolNode::Lit(false) => {}
                BoolNode::Lit(true) => return self.lit(true),
                BoolNode::Or(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(p),
            }
        }
        match flat.len() {
            0 => self.lit(false),
            1 => flat[0],
            _ => self.intern_bool_node(BoolNode::Or(flat)),
        }
    }

    /// Interns a negation (collapsing double negation).
    pub fn not(&self, inner: BoolId) -> BoolId {
        match self.bool_node(inner) {
            BoolNode::Lit(b) => {
                let b = !*b;
                self.lit(b)
            }
            BoolNode::Not(e) => *e,
            _ => self.intern_bool_node(BoolNode::Not(inner)),
        }
    }

    /// Interns an owned integer expression tree.
    pub fn intern_int(&self, e: &IntExpr) -> ExprId {
        match e {
            IntExpr::Const(c) => self.constant(*c),
            IntExpr::Var(v) => self.var(*v),
            IntExpr::Bin(op, a, b) => {
                let a = self.intern_int(a);
                let b = self.intern_int(b);
                self.bin(*op, a, b)
            }
        }
    }

    /// Interns a batch of integer expression trees (a tensor shape's
    /// dimensions, typically).
    pub fn intern_int_many(&self, es: &[IntExpr]) -> Vec<ExprId> {
        es.iter().map(|e| self.intern_int(e)).collect()
    }

    /// Interns an owned boolean expression tree.
    pub fn intern_bool(&self, e: &BoolExpr) -> BoolId {
        match e {
            BoolExpr::Lit(b) => self.lit(*b),
            BoolExpr::Cmp(op, a, b) => {
                let a = self.intern_int(a);
                let b = self.intern_int(b);
                self.cmp(*op, a, b)
            }
            BoolExpr::And(parts) => {
                let ids: Vec<BoolId> = parts.iter().map(|p| self.intern_bool(p)).collect();
                self.and(ids)
            }
            BoolExpr::Or(parts) => {
                let ids: Vec<BoolId> = parts.iter().map(|p| self.intern_bool(p)).collect();
                self.or(ids)
            }
            BoolExpr::Not(inner) => {
                let id = self.intern_bool(inner);
                self.not(id)
            }
        }
    }

    /// Reconstructs the owned tree form of an interned integer expression.
    pub fn to_int_expr(&self, id: ExprId) -> IntExpr {
        match self.int_node(id) {
            IntNode::Const(c) => IntExpr::Const(*c),
            IntNode::Var(v) => IntExpr::Var(*v),
            IntNode::Bin(op, a, b) => IntExpr::Bin(
                *op,
                Box::new(self.to_int_expr(*a)),
                Box::new(self.to_int_expr(*b)),
            ),
        }
    }

    /// Reconstructs the owned tree form of an interned boolean expression.
    pub fn to_bool_expr(&self, id: BoolId) -> BoolExpr {
        match self.bool_node(id) {
            BoolNode::Lit(b) => BoolExpr::Lit(*b),
            BoolNode::Cmp(op, a, b) => {
                BoolExpr::Cmp(*op, self.to_int_expr(*a), self.to_int_expr(*b))
            }
            BoolNode::And(parts) => {
                BoolExpr::And(parts.iter().map(|p| self.to_bool_expr(*p)).collect())
            }
            BoolNode::Or(parts) => {
                BoolExpr::Or(parts.iter().map(|p| self.to_bool_expr(*p)).collect())
            }
            BoolNode::Not(inner) => BoolExpr::Not(Box::new(self.to_bool_expr(*inner))),
        }
    }

    /// Re-interns an expression of `from` into this pool, returning the
    /// equivalent local handle (identity when `from` *is* this pool, and
    /// for base-segment ids, which are valid in every pool).
    pub fn rehome_int(&self, from: &InternPool, id: ExprId) -> ExprId {
        if id.0 & BASE_FLAG != 0 || self.same_pool(from) {
            return id;
        }
        match from.int_node(id) {
            IntNode::Const(c) => self.constant(*c),
            IntNode::Var(v) => self.var(*v),
            IntNode::Bin(op, a, b) => {
                let a = self.rehome_int(from, *a);
                let b = self.rehome_int(from, *b);
                self.bin(*op, a, b)
            }
        }
    }

    // --- cross-pool structure ------------------------------------------------

    /// Structural equality of two interned integer expressions, possibly
    /// from different pools. Within one pool this is a handle comparison
    /// (hash-consing); across pools it walks the normalized nodes.
    pub fn structural_eq_int(&self, id: ExprId, other: &InternPool, oid: ExprId) -> bool {
        if self.same_pool(other) {
            return id == oid;
        }
        // A base id denotes the same node in every pool, and no private
        // slot can hold a base-resident structure (interning consults the
        // base map first), so once either side is base the comparison is
        // a handle comparison even across pools.
        if (id.0 | oid.0) & BASE_FLAG != 0 {
            return id == oid;
        }
        match (self.int_node(id), other.int_node(oid)) {
            (IntNode::Const(a), IntNode::Const(b)) => a == b,
            (IntNode::Var(a), IntNode::Var(b)) => a == b,
            (IntNode::Bin(op_a, a1, a2), IntNode::Bin(op_b, b1, b2)) => {
                op_a == op_b
                    && self.structural_eq_int(*a1, other, *b1)
                    && self.structural_eq_int(*a2, other, *b2)
            }
            _ => false,
        }
    }

    /// Pool-independent structural hash of an interned integer expression
    /// (consistent with [`InternPool::structural_eq_int`]).
    pub fn structural_hash_int<H: Hasher>(&self, id: ExprId, state: &mut H) {
        match self.int_node(id) {
            IntNode::Const(c) => {
                0u8.hash(state);
                c.hash(state);
            }
            IntNode::Var(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            IntNode::Bin(op, a, b) => {
                2u8.hash(state);
                op.hash(state);
                self.structural_hash_int(*a, state);
                self.structural_hash_int(*b, state);
            }
        }
    }

    // --- evaluation over handles --------------------------------------------

    /// Evaluates an interned integer expression under an assignment.
    pub fn eval_int(&self, id: ExprId, lookup: &dyn Fn(VarId) -> Option<i64>) -> Option<i64> {
        match self.int_node(id) {
            IntNode::Const(c) => Some(*c),
            IntNode::Var(v) => lookup(*v),
            IntNode::Bin(op, a, b) => {
                let a = self.eval_int(*a, lookup)?;
                let b = self.eval_int(*b, lookup)?;
                op.apply(a, b)
            }
        }
    }

    /// Evaluates an interned boolean expression under an assignment, with
    /// the same partial-evaluation semantics as [`BoolExpr::eval`].
    pub fn eval_bool(&self, id: BoolId, lookup: &dyn Fn(VarId) -> Option<i64>) -> Option<bool> {
        match self.bool_node(id) {
            BoolNode::Lit(b) => Some(*b),
            BoolNode::Cmp(op, a, b) => {
                Some(op.apply(self.eval_int(*a, lookup)?, self.eval_int(*b, lookup)?))
            }
            BoolNode::And(parts) => {
                let mut all = true;
                for p in parts {
                    match self.eval_bool(*p, lookup) {
                        Some(true) => {}
                        Some(false) => return Some(false),
                        None => all = false,
                    }
                }
                if all {
                    Some(true)
                } else {
                    None
                }
            }
            BoolNode::Or(parts) => {
                let mut any_unknown = false;
                for p in parts {
                    match self.eval_bool(*p, lookup) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => any_unknown = true,
                    }
                }
                if any_unknown {
                    None
                } else {
                    Some(false)
                }
            }
            BoolNode::Not(inner) => self.eval_bool(*inner, lookup).map(|b| !b),
        }
    }

    /// Collects every variable mentioned by an interned integer expression.
    pub fn collect_int_vars(&self, id: ExprId, out: &mut Vec<VarId>) {
        match self.int_node(id) {
            IntNode::Const(_) => {}
            IntNode::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            IntNode::Bin(_, a, b) => {
                self.collect_int_vars(*a, out);
                self.collect_int_vars(*b, out);
            }
        }
    }

    /// Collects every variable mentioned by an interned boolean expression.
    pub fn collect_bool_vars(&self, id: BoolId, out: &mut Vec<VarId>) {
        match self.bool_node(id) {
            BoolNode::Lit(_) => {}
            BoolNode::Cmp(_, a, b) => {
                self.collect_int_vars(*a, out);
                self.collect_int_vars(*b, out);
            }
            BoolNode::And(parts) | BoolNode::Or(parts) => {
                for &p in parts {
                    self.collect_bool_vars(p, out);
                }
            }
            BoolNode::Not(inner) => self.collect_bool_vars(*inner, out),
        }
    }

    // --- interval reasoning over handles ------------------------------------

    /// Interval of an interned integer expression over variable domains
    /// (mirrors [`crate::int_interval`]).
    pub fn int_interval(&self, id: ExprId, domain: &dyn Fn(VarId) -> Interval) -> Interval {
        crate::interval::int_interval_node(self, id, domain)
    }

    /// Three-valued truth of an interned boolean expression over variable
    /// domains (mirrors [`crate::bool_truth`]).
    pub fn bool_truth(&self, id: BoolId, domain: &dyn Fn(VarId) -> Interval) -> Truth {
        crate::interval::bool_truth_node(self, id, domain)
    }
}

/// Guard returned by [`InternPool::stall_writers`]; writers stay parked
/// until it drops.
pub struct WriterStall<'a> {
    _guards: Vec<MutexGuard<'a, ShardWriter>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> IntExpr {
        IntExpr::Var(VarId(id))
    }

    #[test]
    fn hash_consing_dedups() {
        let p = InternPool::default();
        let a = p.intern_int(&(v(0) + 1.into()));
        let b = p.intern_int(&(v(0) + 1.into()));
        assert_eq!(a, b);
        let c = p.intern_int(&(v(0) + 2.into()));
        assert_ne!(a, c);
    }

    #[test]
    fn pools_are_independent() {
        let p = InternPool::default();
        let q = InternPool::default();
        assert!(!p.same_pool(&q));
        let a = p.intern_int(&(v(0) * 3.into()));
        let b = q.intern_int(&(v(0) * 3.into()));
        // Distinct id spaces, but structurally equal content.
        assert!(p.structural_eq_int(a, &q, b));
        assert_eq!(q.stats().int_nodes, p.stats().int_nodes);
    }

    #[test]
    fn constant_folding_at_intern_time() {
        let p = InternPool::default();
        let four = p.constant(4);
        let three = p.constant(3);
        let twelve = p.bin(BinOp::Mul, four, three);
        assert_eq!(p.as_const(twelve), Some(12));
        // Identities.
        let x = p.var(VarId(7));
        let zero = p.constant(0);
        let one = p.constant(1);
        assert_eq!(p.bin(BinOp::Add, x, zero), x);
        assert_eq!(p.bin(BinOp::Mul, x, one), x);
        let folded_zero = p.bin(BinOp::Mul, x, zero);
        assert_eq!(p.as_const(folded_zero), Some(0));
    }

    #[test]
    fn cmp_folds_syntactic_equality_via_handles() {
        let p = InternPool::default();
        let e1 = {
            let a = p.var(VarId(3));
            let b = p.constant(5);
            p.bin(BinOp::Add, a, b)
        };
        let e2 = {
            let a = p.var(VarId(3));
            let b = p.constant(5);
            p.bin(BinOp::Add, a, b)
        };
        assert_eq!(e1, e2);
        let t = p.cmp(CmpOp::Eq, e1, e2);
        assert!(matches!(p.bool_node(t), BoolNode::Lit(true)));
        let f = p.cmp(CmpOp::Lt, e1, e2);
        assert!(matches!(p.bool_node(f), BoolNode::Lit(false)));
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let p = InternPool::default();
        let e = (v(0) - 3.into()) / 2.into() + v(1) * 4.into();
        let c = e.clone().le(v(2));
        let id = p.intern_bool(&c);
        let back = p.to_bool_expr(id);
        let lookup = |var: VarId| Some([9i64, 2, 20][var.0 as usize]);
        assert_eq!(back.eval(&lookup), c.eval(&lookup));
        assert_eq!(p.eval_bool(id, &lookup), c.eval(&lookup));
    }

    #[test]
    fn eval_partial_semantics_match() {
        // And with one definite false and one unknown must be Some(false).
        let p = InternPool::default();
        let c = BoolExpr::and([v(0).le(1.into()), v(1).le(1.into())]);
        let id = p.intern_bool(&c);
        let lookup = |var: VarId| if var == VarId(0) { Some(5) } else { None };
        assert_eq!(p.eval_bool(id, &lookup), Some(false));
        assert_eq!(c.eval(&lookup), Some(false));
    }

    #[test]
    fn collect_vars_matches_tree() {
        let p = InternPool::default();
        let c = (v(0) + v(1) * v(0)).le(v(2));
        let id = p.intern_bool(&c);
        let mut tree_vars = Vec::new();
        c.collect_vars(&mut tree_vars);
        let mut interned_vars = Vec::new();
        p.collect_bool_vars(id, &mut interned_vars);
        assert_eq!(tree_vars, interned_vars);
    }

    #[test]
    fn handles_shared_across_threads() {
        let p = InternPool::default();
        let id = p.intern_int(&(v(40) + v(41)));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = p.clone();
                std::thread::spawn(move || {
                    // Interning the same structure on another thread yields
                    // the same handle, and reads resolve it.
                    let again = p.intern_int(&(v(40) + v(41)));
                    assert_eq!(again, id);
                    p.eval_int(id, &|_| Some(1))
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), Some(2));
        }
    }

    #[test]
    fn known_nodes_intern_without_the_writer_mutex() {
        // The lock-free pre-check (ROADMAP contention item): re-interning
        // an already-known structure must succeed even while every writer
        // mutex is held, and must return the hash-consed id. A probe-miss
        // (new node) would park on the mutex, so completion within the
        // timeout proves the known-node path never touches it.
        let p = InternPool::default();
        let known_int = p.intern_int(&(v(0) + 1.into()));
        let known_bool = p.intern_bool(&v(3).le(v(4)));
        let _stall = p.stall_writers();
        let (tx, rx) = std::sync::mpsc::channel();
        let worker = {
            let p = p.clone();
            std::thread::spawn(move || {
                let i = p.intern_int(&(v(0) + 1.into()));
                let b = p.intern_bool(&v(3).le(v(4)));
                tx.send((i, b)).unwrap();
            })
        };
        let (i, b) = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("known-node interning must not block on stalled writers");
        assert_eq!(i, known_int);
        assert_eq!(b, known_bool);
        drop(_stall);
        worker.join().unwrap();
    }

    #[test]
    fn probe_collisions_still_hash_cons() {
        // Hammer one pool with far more distinct nodes than probe slots so
        // entries are repeatedly evicted; every structure must still map
        // to exactly one id (collisions fall through to the mutex).
        let p = InternPool::with_shards(1);
        let first: Vec<_> = (0..4096u32)
            .map(|i| p.intern_int(&(v(i % 64) + i64::from(i).into())))
            .collect();
        let second: Vec<_> = (0..4096u32)
            .map(|i| p.intern_int(&(v(i % 64) + i64::from(i).into())))
            .collect();
        assert_eq!(first, second);
        // Node count matches a pool that saw each structure exactly once
        // (no duplicate slots from evicted probe entries).
        let q = InternPool::with_shards(1);
        for i in 0..4096u32 {
            q.intern_int(&(v(i % 64) + i64::from(i).into()));
        }
        assert_eq!(p.stats().int_nodes, q.stats().int_nodes);
    }

    #[test]
    fn dropping_a_pool_reclaims_nodes() {
        let before = live_node_count();
        let p = InternPool::default();
        for i in 0..100 {
            p.intern_int(&(v(i) + i64::from(i).into()));
        }
        let grown = live_node_count();
        assert!(grown > before, "interning must grow the live count");
        let q = p.clone();
        drop(p);
        // A surviving handle keeps the arena alive.
        assert_eq!(live_node_count(), grown);
        drop(q);
        assert_eq!(live_node_count(), before);
    }

    #[test]
    fn segment_math_covers_the_index_space() {
        // locate() must be a bijection onto (segment, offset) pairs with
        // offsets within capacity.
        let mut expected = 0u32;
        for seg in 0..4usize {
            for off in 0..seg_capacity(seg) {
                let idx = expected;
                assert_eq!(locate(idx), (seg, off), "idx {idx}");
                expected += 1;
            }
        }
        // And the last representable private index (27 bits once the
        // base flag and shard bits are carved out) still lands in bounds.
        let max_idx = u32::MAX >> (SHARD_BITS + 1);
        let (seg, off) = locate(max_idx);
        assert!(seg < NUM_SEGS);
        assert!(off < seg_capacity(seg));
    }

    #[test]
    fn shard_counts_are_powers_of_two() {
        assert_eq!(InternPool::with_shards(0).num_shards(), 1);
        assert_eq!(InternPool::with_shards(1).num_shards(), 1);
        assert_eq!(InternPool::with_shards(5).num_shards(), 4);
        assert_eq!(InternPool::with_shards(8).num_shards(), 8);
        assert_eq!(InternPool::with_shards(64).num_shards(), MAX_SHARDS);
        assert_eq!(InternPool::small().num_shards(), 1);
    }

    #[test]
    fn stats_track_bytes() {
        // Operands chosen outside the base segment (high var ids,
        // non-power constants above its range) so every node lands in the
        // private shards and shows up in this pool's accounting.
        let p = InternPool::default();
        assert_eq!(p.stats().bytes, 0);
        p.intern_bool(&BoolExpr::and([
            v(100).le(2_000_003.into()),
            v(101).ge(2_000_033.into()),
        ]));
        let s = p.stats();
        assert!(s.int_nodes >= 4);
        assert!(s.bool_nodes >= 3);
        assert!(s.bytes > 0);
        assert!(s.base_misses > 0);
    }

    #[test]
    fn base_segment_interning_is_shared_and_unaccounted() {
        let p = InternPool::default();
        let q = InternPool::small();
        // Base-resident structures get the same process-global handle in
        // every pool, without touching any shard.
        let a = p.constant(7);
        let b = q.constant(7);
        assert_eq!(a, b);
        assert_eq!(p.var(VarId(3)), q.var(VarId(3)));
        assert_eq!(p.lit(true), q.lit(true));
        // Both pools resolve the shared node.
        assert_eq!(p.as_const(a), Some(7));
        assert_eq!(q.as_const(b), Some(7));
        // Rehoming a base id is the identity.
        assert_eq!(q.rehome_int(&p, a), a);
        // And none of it counts toward per-pool reclamation accounting.
        assert_eq!(p.stats().int_nodes, 0);
        assert_eq!(p.stats().bool_nodes, 0);
        assert_eq!(p.stats().bytes, 0);
        assert!(p.stats().base_hits >= 3);
    }

    #[test]
    fn canonical_size_caps_are_base_resident() {
        // The `d >= 1` cap every generated dimension gets: built through
        // the ordinary smart constructors, it must land on the shared
        // pre-interned form in any pool.
        let p = InternPool::default();
        let q = InternPool::default();
        let cap_p = p.cmp(CmpOp::Ge, p.var(VarId(5)), p.constant(1));
        let cap_q = q.cmp(CmpOp::Ge, q.var(VarId(5)), q.constant(1));
        assert_eq!(cap_p, cap_q);
        assert_eq!(p.stats().bool_nodes, 0);
        // Cross-pool structural equality short-circuits on base handles.
        let d_p = p.var(VarId(9));
        let d_q = q.var(VarId(9));
        assert!(p.structural_eq_int(d_p, &q, d_q));
        assert!(!p.structural_eq_int(d_p, &q, q.var(VarId(10))));
    }

    #[test]
    fn base_and_private_nodes_mix_in_one_expression() {
        // A tree whose leaves are base-resident but whose interior nodes
        // are not: resolution, evaluation and round-tripping must cross
        // the base/private boundary transparently.
        let p = InternPool::default();
        let e = (v(0) + 3.into()) * v(70) + 2_000_003.into();
        let id = p.intern_int(&e);
        assert_eq!(p.to_int_expr(id), e);
        let lookup = |var: VarId| Some(if var == VarId(0) { 2 } else { 4 });
        assert_eq!(p.eval_int(id, &lookup), e.eval(&lookup));
        let s = p.stats();
        assert!(s.base_hits > 0, "leaves should hit the base segment");
        assert!(s.int_nodes > 0, "interior nodes stay private");
    }

    #[test]
    fn memo_hits_flow_into_stats() {
        let p = InternPool::default();
        assert_eq!(p.stats().memo_hits, 0);
        p.note_memo_hit();
        p.note_memo_hit();
        assert_eq!(p.stats().memo_hits, 2);
    }
}
