//! Compiled constraint tapes: the solver's hot-path evaluator.
//!
//! [`Solver::check`](crate::Solver::check) used to answer every query by
//! recursive walks over interned expression DAGs — one virtual `dyn Fn`
//! variable lookup per leaf, one `Option` chain per operator, and a full
//! re-walk of every constraint per warm-model probe, per propagation round
//! and per backtracking candidate. This module compiles the asserted
//! constraint set once into a flat register bytecode and re-evaluates
//! assignments by streaming that tape.
//!
//! # Instruction layout
//!
//! A [`Tape`] holds two instruction vectors: [`IntInstr`] for integer
//! subexpressions and [`BoolInstr`] for boolean ones. An instruction's
//! index is its *register*. Registers are append-only and
//! **topologically ordered**: an instruction only references registers
//! with strictly smaller indices, so a single forward pass evaluates the
//! whole tape with every operand already computed. Because compilation is
//! keyed on interned ids (`int_reg` / `bool_reg`), each distinct
//! subexpression gets **exactly one** instruction — hash-consing already
//! dedups the DAG, so a shape atom shared by twelve constraints is
//! evaluated once per assignment instead of twelve times.
//!
//! "Unknown" (unassigned variable, division by zero, overflow) is not an
//! in-band sentinel value: `i64::MIN + 0 == i64::MIN` is a perfectly legal
//! result, so no integer can soundly mean "no value". Instead each integer
//! register carries a parallel known-flag and boolean registers use a
//! three-valued byte ([`B_FALSE`]/[`B_TRUE`]/[`B_UNKNOWN`]), giving the
//! exact partial-evaluation semantics of
//! [`BoolExpr::eval`](crate::BoolExpr::eval) (Kleene strong three-valued
//! logic) without `Option` chains or recursion.
//!
//! # Frame marks
//!
//! The tape is incremental. [`Tape::push_constraint`] appends the
//! instructions a new constraint needs (only the ones not already
//! present) and records a [`Root`] carrying the instruction-vector
//! lengths *before* the append — the constraint's frame marks.
//! [`Tape::truncate`] rolls the tape back to the marks of the first
//! dropped constraint, exactly mirroring the solver's
//! `push`/`pop`/`try_add_constraints` frame discipline. Instructions
//! created by surviving constraints are never touched: a register
//! compiled for constraint 3 and reused by constraint 7 lives at an index
//! below constraint 7's marks, so truncating to 5 keeps it.
//!
//! # Watch-index invariants
//!
//! `watch[slot]` lists the indices of constraints whose expression cone
//! mentions variable `slot` (variables are dense: slot == `VarId.0`).
//! Invariants, checked by [`Tape::check_invariants`]:
//!
//! * each list is strictly ascending (constraints are appended in index
//!   order and each constraint appears at most once per variable), so
//!   truncation pops entries off list tails;
//! * a constraint index appears in `watch[slot]` iff `slot` is in that
//!   root's deduped `vars` list;
//! * every root's dependency cone (`icone`/`bcone`) is ascending and
//!   downward-closed — evaluating the cone in order visits operands
//!   before users.
//!
//! The watch index is what turns interval propagation and backtracking
//! search into dirty-queue workers: narrowing one variable's domain only
//! re-enqueues `watch[slot]`, not the whole constraint set.

use std::collections::HashMap;

use crate::expr::{BinOp, CmpOp};
use crate::intern::{BoolId, BoolNode, ExprId, IntNode, InternPool};
use crate::interval::{apply_bin, cmp_truth, Interval, Truth};

/// Three-valued boolean register: definitely false.
pub const B_FALSE: u8 = 0;
/// Three-valued boolean register: definitely true.
pub const B_TRUE: u8 = 1;
/// Three-valued boolean register: unknown (unassigned input, division by
/// zero, or overflow somewhere in the cone).
pub const B_UNKNOWN: u8 = 2;

/// One integer instruction; the instruction's index is its register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntInstr {
    /// A literal constant.
    Const(i64),
    /// Read input slot `n` (dense: slot == `VarId.0`).
    Var(u32),
    /// Apply a binary operator to two integer registers.
    Bin(BinOp, u32, u32),
}

/// One boolean instruction; the instruction's index is its register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolInstr {
    /// A literal truth value.
    Lit(bool),
    /// Compare two integer registers.
    Cmp(CmpOp, u32, u32),
    /// Conjunction of boolean registers (Kleene fold).
    All(Box<[u32]>),
    /// Disjunction of boolean registers (Kleene fold).
    Any(Box<[u32]>),
    /// Negation of a boolean register.
    Not(u32),
}

/// One compiled constraint: its result register, its frame marks, and its
/// dependency cone.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Root {
    /// Boolean register holding the constraint's truth value.
    reg: u32,
    /// `int_instrs.len()` before this constraint was compiled.
    int_mark: u32,
    /// `bool_instrs.len()` before this constraint was compiled.
    bool_mark: u32,
    /// Integer registers this constraint depends on, ascending
    /// (downward-closed: a forward pass over the cone is a valid
    /// evaluation order).
    icone: Vec<u32>,
    /// Boolean registers this constraint depends on, ascending; the last
    /// entry is `reg`.
    bcone: Vec<u32>,
    /// Input slots mentioned by the cone, ascending, deduped.
    vars: Vec<u32>,
}

/// Reusable evaluation buffers. Owned by the solver separately from the
/// [`Tape`] so field-level split borrows work (`tape.eval_full(&mut
/// scratch, ..)` while both are solver fields).
#[derive(Debug, Clone, Default)]
pub struct TapeScratch {
    /// Concrete value per integer register.
    ivals: Vec<i64>,
    /// Known-flag per integer register (the "unknown sentinel").
    iknown: Vec<bool>,
    /// Three-valued result per boolean register.
    bvals: Vec<u8>,
    /// Interval per integer register (propagation passes).
    ivs: Vec<Interval>,
    /// Truth per boolean register (propagation passes).
    tvs: Vec<Truth>,
}

/// A flat, topologically-ordered register bytecode compiled from the
/// asserted constraint set. See the module docs for layout and
/// invariants.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tape {
    int_instrs: Vec<IntInstr>,
    bool_instrs: Vec<BoolInstr>,
    /// Reverse map: register -> interned id (for hash-map cleanup on
    /// truncation). Always parallel to the instruction vectors.
    int_ids: Vec<ExprId>,
    bool_ids: Vec<BoolId>,
    /// Interned id -> register; the hash-consing of the tape itself.
    int_reg: HashMap<ExprId, u32>,
    bool_reg: HashMap<BoolId, u32>,
    roots: Vec<Root>,
    /// Input slot -> ascending constraint indices mentioning it.
    watch: Vec<Vec<u32>>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of compiled constraints.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True when no constraint is compiled.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Number of integer instructions.
    pub fn int_len(&self) -> usize {
        self.int_instrs.len()
    }

    /// Number of boolean instructions.
    pub fn bool_len(&self) -> usize {
        self.bool_instrs.len()
    }

    /// Constraint indices watching input slot `slot` (ascending).
    pub fn watchers(&self, slot: u32) -> &[u32] {
        self.watch
            .get(slot as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Input slots mentioned by constraint `ci` (ascending, deduped).
    pub fn constraint_vars(&self, ci: usize) -> &[u32] {
        &self.roots[ci].vars
    }

    /// Every input slot some constraint mentions, ascending — the dense
    /// replacement for the solver's per-check `constrained_vars`
    /// recollection.
    pub fn constrained_slots(&self) -> Vec<u32> {
        (0..self.watch.len() as u32)
            .filter(|&s| !self.watch[s as usize].is_empty())
            .collect()
    }

    /// Compiles `id` (an interned constraint of `pool`) onto the tape and
    /// returns its constraint index. Subexpressions already on the tape
    /// are reused, not recompiled.
    pub fn push_constraint(&mut self, pool: &InternPool, id: BoolId) -> usize {
        let int_mark = self.int_instrs.len() as u32;
        let bool_mark = self.bool_instrs.len() as u32;
        let reg = self.compile_bool(pool, id);
        let (icone, bcone) = self.collect_cone(reg);
        let mut vars: Vec<u32> = icone
            .iter()
            .filter_map(|&r| match self.int_instrs[r as usize] {
                IntInstr::Var(slot) => Some(slot),
                _ => None,
            })
            .collect();
        vars.sort_unstable();
        vars.dedup();
        let ci = self.roots.len() as u32;
        for &slot in &vars {
            if self.watch.len() <= slot as usize {
                self.watch.resize(slot as usize + 1, Vec::new());
            }
            self.watch[slot as usize].push(ci);
        }
        self.roots.push(Root {
            reg,
            int_mark,
            bool_mark,
            icone,
            bcone,
            vars,
        });
        ci as usize
    }

    /// Rolls the tape back to its first `n` constraints, dropping the
    /// instructions only the dropped constraints needed (their frame
    /// marks) and their watch-list entries.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.roots.len() {
            return;
        }
        let int_mark = self.roots[n].int_mark as usize;
        let bool_mark = self.roots[n].bool_mark as usize;
        while self.roots.len() > n {
            let root = self.roots.pop().expect("len checked");
            let ci = self.roots.len() as u32;
            for &slot in &root.vars {
                let list = &mut self.watch[slot as usize];
                debug_assert_eq!(list.last().copied(), Some(ci));
                list.pop();
            }
        }
        for reg in int_mark..self.int_instrs.len() {
            self.int_reg.remove(&self.int_ids[reg]);
        }
        self.int_instrs.truncate(int_mark);
        self.int_ids.truncate(int_mark);
        for reg in bool_mark..self.bool_instrs.len() {
            self.bool_reg.remove(&self.bool_ids[reg]);
        }
        self.bool_instrs.truncate(bool_mark);
        self.bool_ids.truncate(bool_mark);
    }

    fn compile_int(&mut self, pool: &InternPool, id: ExprId) -> u32 {
        if let Some(&r) = self.int_reg.get(&id) {
            return r;
        }
        let instr = match pool.int_node(id) {
            IntNode::Const(c) => IntInstr::Const(*c),
            IntNode::Var(v) => IntInstr::Var(v.0),
            IntNode::Bin(op, a, b) => {
                let (op, a, b) = (*op, *a, *b);
                let ra = self.compile_int(pool, a);
                let rb = self.compile_int(pool, b);
                IntInstr::Bin(op, ra, rb)
            }
        };
        let r = self.int_instrs.len() as u32;
        self.int_instrs.push(instr);
        self.int_ids.push(id);
        self.int_reg.insert(id, r);
        r
    }

    fn compile_bool(&mut self, pool: &InternPool, id: BoolId) -> u32 {
        if let Some(&r) = self.bool_reg.get(&id) {
            return r;
        }
        let instr = match pool.bool_node(id) {
            BoolNode::Lit(b) => BoolInstr::Lit(*b),
            BoolNode::Cmp(op, a, b) => {
                let (op, a, b) = (*op, *a, *b);
                let ra = self.compile_int(pool, a);
                let rb = self.compile_int(pool, b);
                BoolInstr::Cmp(op, ra, rb)
            }
            BoolNode::And(parts) => {
                let parts = parts.clone();
                let regs: Vec<u32> = parts.iter().map(|&p| self.compile_bool(pool, p)).collect();
                BoolInstr::All(regs.into_boxed_slice())
            }
            BoolNode::Or(parts) => {
                let parts = parts.clone();
                let regs: Vec<u32> = parts.iter().map(|&p| self.compile_bool(pool, p)).collect();
                BoolInstr::Any(regs.into_boxed_slice())
            }
            BoolNode::Not(inner) => {
                let inner = *inner;
                BoolInstr::Not(self.compile_bool(pool, inner))
            }
        };
        let r = self.bool_instrs.len() as u32;
        self.bool_instrs.push(instr);
        self.bool_ids.push(id);
        self.bool_reg.insert(id, r);
        r
    }

    /// The ascending, downward-closed dependency cone of boolean register
    /// `root`.
    fn collect_cone(&self, root: u32) -> (Vec<u32>, Vec<u32>) {
        let mut bseen = vec![false; self.bool_instrs.len()];
        let mut iseen = vec![false; self.int_instrs.len()];
        let mut bstack = vec![root];
        let mut istack: Vec<u32> = Vec::new();
        while let Some(r) = bstack.pop() {
            if std::mem::replace(&mut bseen[r as usize], true) {
                continue;
            }
            match &self.bool_instrs[r as usize] {
                BoolInstr::Lit(_) => {}
                BoolInstr::Cmp(_, a, b) => {
                    istack.push(*a);
                    istack.push(*b);
                }
                BoolInstr::All(parts) | BoolInstr::Any(parts) => bstack.extend_from_slice(parts),
                BoolInstr::Not(x) => bstack.push(*x),
            }
        }
        while let Some(r) = istack.pop() {
            if std::mem::replace(&mut iseen[r as usize], true) {
                continue;
            }
            if let IntInstr::Bin(_, a, b) = &self.int_instrs[r as usize] {
                istack.push(*a);
                istack.push(*b);
            }
        }
        let icone = (0..iseen.len() as u32)
            .filter(|&r| iseen[r as usize])
            .collect();
        let bcone = (0..bseen.len() as u32)
            .filter(|&r| bseen[r as usize])
            .collect();
        (icone, bcone)
    }

    // --- concrete evaluation -------------------------------------------------

    /// Evaluates every constraint under a full assignment (`vals[slot]` is
    /// the value of variable `slot`; slots past the end read as unknown)
    /// and returns whether **all** roots are definitely true. One linear
    /// pass over the tape — the warm-model probe, warm repair, DFS leaves
    /// and the final model verification all go through here.
    pub fn eval_full(&self, s: &mut TapeScratch, vals: &[i64]) -> bool {
        let ni = self.int_instrs.len();
        let nb = self.bool_instrs.len();
        s.ivals.resize(ni, 0);
        s.iknown.resize(ni, false);
        s.bvals.resize(nb, B_UNKNOWN);
        for (i, instr) in self.int_instrs.iter().enumerate() {
            // Topological order: operand registers are already written.
            let (val, known) = match *instr {
                IntInstr::Const(c) => (c, true),
                IntInstr::Var(slot) => match vals.get(slot as usize) {
                    Some(&v) => (v, true),
                    None => (0, false),
                },
                IntInstr::Bin(op, a, b) => {
                    if s.iknown[a as usize] && s.iknown[b as usize] {
                        match op.apply(s.ivals[a as usize], s.ivals[b as usize]) {
                            Some(v) => (v, true),
                            None => (0, false),
                        }
                    } else {
                        (0, false)
                    }
                }
            };
            s.ivals[i] = val;
            s.iknown[i] = known;
        }
        for (i, instr) in self.bool_instrs.iter().enumerate() {
            s.bvals[i] = eval_bool_instr(instr, s);
        }
        self.roots.iter().all(|r| s.bvals[r.reg as usize] == B_TRUE)
    }

    /// Evaluates only the constraints at roots `[first_root..]` under a
    /// full assignment, visiting each one's dependency cone, and returns
    /// whether they are all definitely true.
    ///
    /// This is the incremental warm probe: when roots `[0, first_root)`
    /// were already verified under the *same* assignment by an earlier
    /// pass, re-evaluating them cannot change the outcome (bytecode
    /// evaluation is pure), so only the suffix appended since then needs
    /// work — `eval_roots_from(s, 0, vals)` is equivalent to
    /// [`Tape::eval_full`], and `first_root == len()` is free.
    pub fn eval_roots_from(&self, s: &mut TapeScratch, first_root: usize, vals: &[i64]) -> bool {
        if first_root == 0 {
            return self.eval_full(s, vals);
        }
        s.ivals.resize(self.int_instrs.len(), 0);
        s.iknown.resize(self.int_instrs.len(), false);
        s.bvals.resize(self.bool_instrs.len(), B_UNKNOWN);
        for root in &self.roots[first_root.min(self.roots.len())..] {
            // Cones are downward-closed and ascending, so every register
            // read below was written earlier in this same loop.
            for &r in &root.icone {
                let i = r as usize;
                let (val, known) = match self.int_instrs[i] {
                    IntInstr::Const(c) => (c, true),
                    IntInstr::Var(slot) => match vals.get(slot as usize) {
                        Some(&v) => (v, true),
                        None => (0, false),
                    },
                    IntInstr::Bin(op, a, b) => {
                        if s.iknown[a as usize] && s.iknown[b as usize] {
                            match op.apply(s.ivals[a as usize], s.ivals[b as usize]) {
                                Some(v) => (v, true),
                                None => (0, false),
                            }
                        } else {
                            (0, false)
                        }
                    }
                };
                s.ivals[i] = val;
                s.iknown[i] = known;
            }
            for &r in &root.bcone {
                s.bvals[r as usize] = eval_bool_instr(&self.bool_instrs[r as usize], s);
            }
            if s.bvals[root.reg as usize] != B_TRUE {
                return false;
            }
        }
        true
    }

    /// Evaluates one constraint under a (possibly partial) assignment:
    /// `known[slot]` gates whether `vals[slot]` is assigned. Only the
    /// constraint's dependency cone is visited. Returns `None` when the
    /// result is unknown — identical semantics to
    /// [`InternPool::eval_bool`].
    pub fn eval_constraint(
        &self,
        s: &mut TapeScratch,
        ci: usize,
        vals: &[i64],
        known: &[bool],
    ) -> Option<bool> {
        let root = &self.roots[ci];
        s.ivals.resize(self.int_instrs.len(), 0);
        s.iknown.resize(self.int_instrs.len(), false);
        s.bvals.resize(self.bool_instrs.len(), B_UNKNOWN);
        for &r in &root.icone {
            let i = r as usize;
            let (val, k) = match self.int_instrs[i] {
                IntInstr::Const(c) => (c, true),
                IntInstr::Var(slot) => {
                    if known.get(slot as usize).copied().unwrap_or(false) {
                        (vals[slot as usize], true)
                    } else {
                        (0, false)
                    }
                }
                IntInstr::Bin(op, a, b) => {
                    if s.iknown[a as usize] && s.iknown[b as usize] {
                        match op.apply(s.ivals[a as usize], s.ivals[b as usize]) {
                            Some(v) => (v, true),
                            None => (0, false),
                        }
                    } else {
                        (0, false)
                    }
                }
            };
            s.ivals[i] = val;
            s.iknown[i] = k;
        }
        for &r in &root.bcone {
            s.bvals[r as usize] = eval_bool_instr(&self.bool_instrs[r as usize], s);
        }
        match s.bvals[root.reg as usize] {
            B_FALSE => Some(false),
            B_TRUE => Some(true),
            _ => None,
        }
    }

    // --- interval reasoning --------------------------------------------------

    /// Three-valued truth of constraint `ci` over per-slot domains,
    /// evaluating only the constraint's cone. Leaves the cone's intervals
    /// in the scratch for a following [`Tape::narrow`] call.
    pub fn truth_of(&self, s: &mut TapeScratch, ci: usize, domains: &[Interval]) -> Truth {
        let root = &self.roots[ci];
        s.ivs.resize(self.int_instrs.len(), Interval::empty());
        s.tvs.resize(self.bool_instrs.len(), Truth::Unknown);
        for &r in &root.icone {
            let i = r as usize;
            s.ivs[i] = match self.int_instrs[i] {
                IntInstr::Const(c) => Interval::point(c),
                IntInstr::Var(slot) => domains[slot as usize],
                IntInstr::Bin(op, a, b) => apply_bin(op, s.ivs[a as usize], s.ivs[b as usize]),
            };
        }
        for &r in &root.bcone {
            let i = r as usize;
            s.tvs[i] = match &self.bool_instrs[i] {
                BoolInstr::Lit(true) => Truth::True,
                BoolInstr::Lit(false) => Truth::False,
                BoolInstr::Cmp(op, a, b) => cmp_truth(*op, s.ivs[*a as usize], s.ivs[*b as usize]),
                BoolInstr::All(parts) => {
                    let mut all_true = true;
                    let mut any_false = false;
                    for &p in parts.iter() {
                        match s.tvs[p as usize] {
                            Truth::False => any_false = true,
                            Truth::Unknown => all_true = false,
                            Truth::True => {}
                        }
                    }
                    if any_false {
                        Truth::False
                    } else if all_true {
                        Truth::True
                    } else {
                        Truth::Unknown
                    }
                }
                BoolInstr::Any(parts) => {
                    let mut all_false = true;
                    let mut any_true = false;
                    for &p in parts.iter() {
                        match s.tvs[p as usize] {
                            Truth::True => any_true = true,
                            Truth::Unknown => all_false = false,
                            Truth::False => {}
                        }
                    }
                    if any_true {
                        Truth::True
                    } else if all_false {
                        Truth::False
                    } else {
                        Truth::Unknown
                    }
                }
                BoolInstr::Not(x) => s.tvs[*x as usize].not(),
            };
        }
        s.tvs[root.reg as usize]
    }

    /// Narrows domains using constraint `ci` when it is a comparison with
    /// a bare variable on one side. Returns the narrowed slot, if any.
    ///
    /// **Invariant:** must be called right after [`Tape::truth_of`] for
    /// the same `ci` and `domains` — the other side's interval is read
    /// from the scratch instead of being recomputed.
    pub fn narrow(&self, s: &TapeScratch, ci: usize, domains: &mut [Interval]) -> Option<u32> {
        let root = &self.roots[ci];
        let BoolInstr::Cmp(op, ra, rb) = self.bool_instrs[root.reg as usize] else {
            return None;
        };
        let (op, slot, other) = match (&self.int_instrs[ra as usize], &self.int_instrs[rb as usize])
        {
            (IntInstr::Var(v), _) => (op, *v, rb),
            (_, IntInstr::Var(v)) => (op.swap(), *v, ra),
            _ => return None,
        };
        let other_iv = s.ivs[other as usize];
        if other_iv.is_empty() {
            return None;
        }
        let cur = domains[slot as usize];
        let new = narrowed(op, cur, other_iv);
        if new != cur {
            domains[slot as usize] = new;
            Some(slot)
        } else {
            None
        }
    }

    // --- diagnostics ---------------------------------------------------------

    /// Verifies the structural invariants documented in the module docs.
    /// Test/diagnostic helper; `Err` carries a description of the first
    /// violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.int_ids.len() != self.int_instrs.len()
            || self.bool_ids.len() != self.bool_instrs.len()
        {
            return Err("reverse id maps not parallel to instruction vectors".into());
        }
        if self.int_reg.len() != self.int_instrs.len()
            || self.bool_reg.len() != self.bool_instrs.len()
        {
            return Err("register maps out of sync with instruction vectors".into());
        }
        for (reg, id) in self.int_ids.iter().enumerate() {
            if self.int_reg.get(id) != Some(&(reg as u32)) {
                return Err(format!("int id at register {reg} not mapped back"));
            }
        }
        for (reg, id) in self.bool_ids.iter().enumerate() {
            if self.bool_reg.get(id) != Some(&(reg as u32)) {
                return Err(format!("bool id at register {reg} not mapped back"));
            }
        }
        let mut prev = (0u32, 0u32);
        for (ci, root) in self.roots.iter().enumerate() {
            if (root.int_mark, root.bool_mark) < prev {
                return Err(format!("constraint {ci}: frame marks not monotone"));
            }
            prev = (root.int_mark, root.bool_mark);
            if root.bcone.last() != Some(&root.reg) {
                return Err(format!("constraint {ci}: root register not last in cone"));
            }
            if !root.icone.windows(2).all(|w| w[0] < w[1])
                || !root.bcone.windows(2).all(|w| w[0] < w[1])
            {
                return Err(format!("constraint {ci}: cone not strictly ascending"));
            }
            for &slot in &root.vars {
                if !self.watchers(slot).contains(&(ci as u32)) {
                    return Err(format!("constraint {ci}: missing watch entry for {slot}"));
                }
            }
        }
        for (slot, list) in self.watch.iter().enumerate() {
            if !list.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("watch[{slot}] not strictly ascending"));
            }
            for &ci in list {
                let Some(root) = self.roots.get(ci as usize) else {
                    return Err(format!("watch[{slot}] references dropped constraint {ci}"));
                };
                if !root.vars.contains(&(slot as u32)) {
                    return Err(format!("watch[{slot}] entry {ci} not in root vars"));
                }
            }
        }
        Ok(())
    }
}

/// Narrows `cur` (the bare variable's domain) against `other` for
/// `var op other`. Saturating at the `i64` edges: `x < [MIN, MIN]` must
/// not wrap to an underflowed upper bound.
pub(crate) fn narrowed(op: CmpOp, cur: Interval, other: Interval) -> Interval {
    match op {
        CmpOp::Le => cur.intersect(&Interval::new(i64::MIN, other.hi)),
        CmpOp::Lt => cur.intersect(&Interval::new(i64::MIN, other.hi.saturating_sub(1))),
        CmpOp::Ge => cur.intersect(&Interval::new(other.lo, i64::MAX)),
        CmpOp::Gt => cur.intersect(&Interval::new(other.lo.saturating_add(1), i64::MAX)),
        CmpOp::Eq => cur.intersect(&other),
        CmpOp::Ne => {
            if other.is_point() {
                if cur.lo == other.lo && cur.hi > cur.lo {
                    Interval::new(cur.lo + 1, cur.hi)
                } else if cur.hi == other.lo && cur.hi > cur.lo {
                    Interval::new(cur.lo, cur.hi - 1)
                } else {
                    cur
                }
            } else {
                cur
            }
        }
    }
}

/// Kleene fold of one boolean instruction over already-evaluated
/// registers. Order-independent, so it matches the recursive
/// short-circuit evaluators bit for bit.
fn eval_bool_instr(instr: &BoolInstr, s: &TapeScratch) -> u8 {
    match instr {
        BoolInstr::Lit(b) => u8::from(*b),
        BoolInstr::Cmp(op, a, b) => {
            if s.iknown[*a as usize] && s.iknown[*b as usize] {
                u8::from(op.apply(s.ivals[*a as usize], s.ivals[*b as usize]))
            } else {
                B_UNKNOWN
            }
        }
        BoolInstr::All(parts) => {
            let mut any_unknown = false;
            for &p in parts.iter() {
                match s.bvals[p as usize] {
                    B_FALSE => return B_FALSE,
                    B_UNKNOWN => any_unknown = true,
                    _ => {}
                }
            }
            if any_unknown {
                B_UNKNOWN
            } else {
                B_TRUE
            }
        }
        BoolInstr::Any(parts) => {
            let mut any_unknown = false;
            for &p in parts.iter() {
                match s.bvals[p as usize] {
                    B_TRUE => return B_TRUE,
                    B_UNKNOWN => any_unknown = true,
                    _ => {}
                }
            }
            if any_unknown {
                B_UNKNOWN
            } else {
                B_FALSE
            }
        }
        BoolInstr::Not(x) => match s.bvals[*x as usize] {
            B_FALSE => B_TRUE,
            B_TRUE => B_FALSE,
            _ => B_UNKNOWN,
        },
    }
}
