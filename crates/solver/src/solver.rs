//! The incremental constraint solver.
//!
//! This plays the role Z3 plays in the original NNSmith: given the validity
//! constraints accumulated while growing a computation graph, decide whether a
//! candidate operator insertion is satisfiable and, if so, produce a model
//! (concrete values for placeholder dimensions and operator attributes).
//!
//! The solving fragment is bounded integer arithmetic with `+ - * / % min max`
//! and comparisons — exactly what tensor shape/attribute constraints need. The
//! algorithm is interval-propagation plus randomized backtracking search with
//! a low-value bias, which deliberately mirrors Z3's tendency to return
//! boundary models (the behaviour that motivates NNSmith's attribute binning,
//! §3.2 of the paper).

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::expr::{BinOp, BoolExpr, CmpOp, IntExpr, VarId};
use crate::intern::{BoolId, BoolNode, ExprId, IntNode, InternPool};
use crate::interval::{Interval, Truth};
use crate::tape::{Tape, TapeScratch};

/// Tuning knobs for [`Solver`].
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum number of search-tree nodes explored per `check` call.
    pub max_nodes: u64,
    /// Maximum candidate values tried per variable per node.
    pub max_candidates: usize,
    /// Default lower bound for variables created without explicit bounds.
    pub default_lo: i64,
    /// Default upper bound for variables created without explicit bounds.
    pub default_hi: i64,
    /// Warm-start the search from the last satisfying model (incremental
    /// solving, §3.2 step 2). Disabling this is the `ablation_incremental`
    /// configuration.
    pub incremental: bool,
    /// Evaluate through the compiled constraint tape ([`crate::tape`]):
    /// flat bytecode evaluation plus watch-indexed dirty-queue
    /// propagation. Disabling this falls back to recursive DAG walks with
    /// full-sweep fixpoint propagation — the benchmark baseline and an
    /// ablation escape hatch. Evaluation semantics are bit-identical
    /// either way (proptest-pinned).
    pub compiled_tape: bool,
    /// RNG seed for candidate sampling.
    pub seed: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_nodes: 50_000,
            max_candidates: 14,
            default_lo: 1,
            default_hi: 1 << 20,
            incremental: true,
            compiled_tape: true,
            seed: 0x5eed_cafe,
        }
    }
}

/// Result of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found.
    Sat(Model),
    /// The constraint system is provably unsatisfiable.
    Unsat,
    /// The search budget was exhausted before a verdict.
    Unknown,
}

impl SatResult {
    /// True if this is [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Extracts the model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// A satisfying assignment mapping variables to concrete values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<VarId, i64>,
}

impl Model {
    /// Value assigned to `v`, if any.
    pub fn get(&self, v: VarId) -> Option<i64> {
        self.values.get(&v).copied()
    }

    /// Evaluates an integer expression under this model.
    pub fn eval_int(&self, e: &IntExpr) -> Option<i64> {
        e.eval(&|v| self.get(v))
    }

    /// Evaluates a boolean expression under this model.
    pub fn eval_bool(&self, e: &BoolExpr) -> Option<bool> {
        e.eval(&|v| self.get(v))
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(variable, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, i64)> + '_ {
        self.values.iter().map(|(k, v)| (*k, *v))
    }

    fn insert(&mut self, v: VarId, val: i64) {
        self.values.insert(v, val);
    }
}

/// Cumulative counters exposed for benchmarking and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of `check` invocations.
    pub checks: u64,
    /// Checks that returned `Sat`.
    pub sat: u64,
    /// Checks that returned `Unsat`.
    pub unsat: u64,
    /// Checks that returned `Unknown`.
    pub unknown: u64,
    /// Total search nodes explored.
    pub nodes: u64,
    /// Checks answered purely by the warm-start model.
    pub warm_hits: u64,
    /// Constraints compiled onto the tape (one per asserted constraint
    /// while [`SolverConfig::compiled_tape`] is on).
    pub tape_compiles: u64,
    /// Full-assignment tape evaluations (warm probes, warm repairs, DFS
    /// leaves, final model verifications).
    pub tape_evals: u64,
    /// Constraint re-checks avoided by the watch index: every time
    /// propagation narrows a variable, only its watchers are re-enqueued
    /// and the rest of the constraint set is skipped.
    pub constraints_skipped: u64,
}

#[derive(Debug, Clone)]
struct VarInfo {
    #[allow(dead_code)]
    name: String,
    lo: i64,
    hi: i64,
}

/// An incremental integer constraint solver.
///
/// # Examples
///
/// ```
/// use nnsmith_solver::{IntExpr, Solver};
///
/// let mut s = Solver::default();
/// let h = s.new_var("h", 1, 64);
/// let k = s.new_var("k", 1, 64);
/// s.assert(IntExpr::var(k).le(IntExpr::var(h)));
/// let model = s.check().model().cloned().expect("satisfiable");
/// assert!(model.get(k).unwrap() <= model.get(h).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    /// The hash-consing arena this solver interns into. Owned as a handle:
    /// cloning a solver — or sharing an accumulated constraint system
    /// across campaign shards — copies ids, not expression trees, and
    /// every clone shares the same pool.
    pool: InternPool,
    vars: Vec<VarInfo>,
    /// Asserted constraints as handles into `pool`.
    constraints: Vec<BoolId>,
    frames: Vec<usize>,
    last_model: Option<Model>,
    config: SolverConfig,
    rng: StdRng,
    stats: SolverStats,
    /// Compiled bytecode for `constraints`, kept in lockstep by
    /// [`Solver::push_constraint`] / [`Solver::truncate_constraints`]
    /// (empty while `config.compiled_tape` is off).
    tape: Tape,
    /// Reusable tape evaluation buffers.
    scratch: TapeScratch,
    /// Reusable dense assignment buffer (slot == `VarId.0`).
    vals_buf: Vec<i64>,
    /// Monotone version counter of `last_model`: bumped on every
    /// replacement, so a verified-prefix claim can be tied to the exact
    /// model that produced it.
    model_gen: u64,
    /// `(model_gen, roots)` — the tape prefix `[0, roots)` is known to
    /// hold under the warm assignment derived from model generation
    /// `model_gen`. The warm probe resumes after this prefix: under an
    /// unchanged model (and append-only vars), re-running pure bytecode
    /// over the same inputs cannot change its verdict, so a repeated
    /// `check` with no new constraints costs O(1). Clamped on truncation.
    warm_verified: (u64, usize),
}

impl Default for Solver {
    fn default() -> Self {
        Solver::with_config(SolverConfig::default())
    }
}

impl Solver {
    /// Creates a solver with default configuration and its own private
    /// intern pool.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Creates a solver with default configuration interning into `pool`
    /// (the campaign's pool, typically).
    pub fn new_in(pool: InternPool) -> Self {
        Solver::with_config_in(SolverConfig::default(), pool)
    }

    /// Creates a solver with the given configuration and its own private
    /// intern pool.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver::with_config_in(config, InternPool::default())
    }

    /// Creates a solver with the given configuration interning into
    /// `pool`.
    pub fn with_config_in(config: SolverConfig, pool: InternPool) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Solver {
            pool,
            vars: Vec::new(),
            constraints: Vec::new(),
            frames: Vec::new(),
            last_model: None,
            config,
            rng,
            stats: SolverStats::default(),
            tape: Tape::new(),
            scratch: TapeScratch::default(),
            vals_buf: Vec::new(),
            model_gen: 0,
            warm_verified: (0, 0),
        }
    }

    /// The single point replacing `last_model`: bumps the model
    /// generation so stale verified-prefix claims can never apply to the
    /// new model.
    fn set_model(&mut self, model: Model) {
        self.model_gen += 1;
        self.last_model = Some(model);
    }

    /// Records that the whole current tape holds under the current
    /// model's warm assignment (every caller has just proved exactly
    /// that with a full-assignment evaluation).
    fn mark_tape_verified(&mut self) {
        self.warm_verified = (self.model_gen, self.tape.len());
    }

    /// The intern pool this solver's constraint handles live in.
    pub fn pool(&self) -> &InternPool {
        &self.pool
    }

    /// Cumulative statistics for this solver instance.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Declares a fresh bounded integer variable.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new_var(&mut self, name: impl Into<String>, lo: i64, hi: i64) -> VarId {
        assert!(lo <= hi, "variable bounds must satisfy lo <= hi");
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.into(),
            lo,
            hi,
        });
        id
    }

    /// Declares a variable with the configured default bounds (a tensor
    /// dimension: positive, bounded).
    pub fn new_dim_var(&mut self, name: impl Into<String>) -> VarId {
        let (lo, hi) = (self.config.default_lo, self.config.default_hi);
        self.new_var(name, lo, hi)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of currently-asserted constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Asserts a constraint in the current frame. The expression tree is
    /// interned into this solver's pool; structurally identical
    /// constraints (across every solver sharing the pool) share storage.
    pub fn assert(&mut self, c: BoolExpr) {
        let id = self.pool.intern_bool(&c);
        self.assert_id(id);
    }

    /// Asserts an already-interned constraint (a handle of this solver's
    /// pool) in the current frame.
    pub fn assert_id(&mut self, id: BoolId) {
        match self.pool.bool_node(id) {
            BoolNode::Lit(true) => return,
            BoolNode::And(parts) => {
                let parts: Vec<BoolId> = parts.clone();
                for p in parts {
                    self.push_constraint(p);
                }
                return;
            }
            _ => {}
        }
        self.push_constraint(id);
    }

    /// The single entry point appending to the constraint set: keeps the
    /// compiled tape in lockstep with `self.constraints`.
    fn push_constraint(&mut self, id: BoolId) {
        if self.config.compiled_tape {
            self.tape.push_constraint(&self.pool, id);
            self.stats.tape_compiles += 1;
            nnsmith_obs::count("solve/tape_compiles", 1);
        }
        self.constraints.push(id);
    }

    /// The single exit point shrinking the constraint set (`pop`,
    /// `try_add_*` rollback): truncates the tape to the same mark.
    fn truncate_constraints(&mut self, mark: usize) {
        self.constraints.truncate(mark);
        if self.config.compiled_tape {
            self.tape.truncate(mark);
        }
        // Roots past the new mark no longer exist; the verified-prefix
        // claim must shrink with them.
        self.warm_verified.1 = self.warm_verified.1.min(mark);
    }

    /// Asserts several constraints at once.
    pub fn assert_all(&mut self, cs: impl IntoIterator<Item = BoolExpr>) {
        for c in cs {
            self.assert(c);
        }
    }

    /// The asserted constraints as arena handles, in assertion order.
    pub fn constraint_ids(&self) -> &[BoolId] {
        &self.constraints
    }

    /// Opens a new assertion frame (like Z3's `push`).
    pub fn push(&mut self) {
        self.frames.push(self.constraints.len());
    }

    /// Discards every constraint asserted since the matching [`Solver::push`].
    ///
    /// # Panics
    ///
    /// Panics if there is no open frame.
    pub fn pop(&mut self) {
        let mark = self.frames.pop().expect("pop without matching push");
        self.truncate_constraints(mark);
    }

    /// Asserts `cs` and checks satisfiability; on failure the constraints are
    /// rolled back. This is the `try_add_constraints` primitive of Algorithm 1.
    ///
    /// Returns the model when the extended system is satisfiable.
    pub fn try_add_constraints(&mut self, cs: impl IntoIterator<Item = BoolExpr>) -> Option<Model> {
        let mark = self.constraints.len();
        self.assert_all(cs);
        match self.check() {
            SatResult::Sat(m) => Some(m),
            _ => {
                self.truncate_constraints(mark);
                None
            }
        }
    }

    /// [`Solver::try_add_constraints`] over already-interned handles.
    pub fn try_add_constraint_ids(
        &mut self,
        cs: impl IntoIterator<Item = BoolId>,
    ) -> Option<Model> {
        let mark = self.constraints.len();
        for c in cs {
            self.assert_id(c);
        }
        match self.check() {
            SatResult::Sat(m) => Some(m),
            _ => {
                self.truncate_constraints(mark);
                None
            }
        }
    }

    /// Checks satisfiability of the asserted constraints.
    ///
    /// The entire check reads the arena **without any lock**: handle
    /// resolution is per-slot atomic publication (see [`crate::intern`]),
    /// so concurrent interning on other shard workers never stalls this
    /// path.
    pub fn check(&mut self) -> SatResult {
        // One profiler span per satisfiability check (no-op unless the
        // calling thread enabled profiling — a shard worker of an
        // observed engine run).
        let _span = nnsmith_obs::span(nnsmith_obs::phase::SOLVE);
        self.stats.checks += 1;
        if self.config.compiled_tape {
            self.check_tape()
        } else {
            self.check_recursive()
        }
    }

    /// Tape-path satisfiability check: flat bytecode evaluation for every
    /// full-assignment probe, watch-indexed dirty-queue propagation, and
    /// dense-slot backtracking search.
    fn check_tape(&mut self) -> SatResult {
        debug_assert_eq!(self.tape.len(), self.constraints.len());
        let evals_before = self.stats.tape_evals;
        let skipped_before = self.stats.constraints_skipped;
        let result = self.check_tape_inner();
        let evals = self.stats.tape_evals - evals_before;
        if evals > 0 {
            nnsmith_obs::count("solve/tape_evals", evals);
        }
        let skipped = self.stats.constraints_skipped - skipped_before;
        if skipped > 0 {
            nnsmith_obs::count("solve/constraints_skipped", skipped);
        }
        result
    }

    fn check_tape_inner(&mut self) -> SatResult {
        // Fast path: the previous model may still satisfy everything
        // (common when the newly-added constraints only mention
        // already-solved variables). Verified in place on the tape — no
        // Model clone unless it hits.
        if self.config.incremental && self.last_model.is_some() {
            self.fill_warm_vals();
            // Incremental: the tape prefix verified under this same model
            // by an earlier probe is skipped — only constraints appended
            // since then are evaluated (a repeated `check` with nothing
            // new asserted does no evaluation work at all).
            let start = if self.warm_verified.0 == self.model_gen {
                self.warm_verified.1.min(self.tape.len())
            } else {
                0
            };
            self.stats.tape_evals += 1;
            if self
                .tape
                .eval_roots_from(&mut self.scratch, start, &self.vals_buf)
            {
                let model = self.model_from_vals();
                self.stats.sat += 1;
                self.stats.warm_hits += 1;
                self.set_model(model.clone());
                self.mark_tape_verified();
                return SatResult::Sat(model);
            }
        }

        let mut domains: Vec<Interval> = self
            .vars
            .iter()
            .map(|v| Interval::new(v.lo, v.hi))
            .collect();

        if self.propagate_tape(&mut domains) == Truth::False {
            self.stats.unsat += 1;
            return SatResult::Unsat;
        }

        // Warm repair: clamp the previous model into the propagated
        // domains and re-verify on the tape — after small constraint
        // additions (one binning range, one insertion) this usually
        // already satisfies everything.
        if self.config.incremental && self.last_model.is_some() && self.fill_repair_vals(&domains) {
            self.stats.tape_evals += 1;
            if self.tape.eval_full(&mut self.scratch, &self.vals_buf) {
                let model = self.model_from_vals();
                self.stats.sat += 1;
                self.stats.warm_hits += 1;
                self.set_model(model.clone());
                self.mark_tape_verified();
                return SatResult::Sat(model);
            }
        }

        let mut budget = self.config.max_nodes;
        let mut complete = true;
        let result = self.search_tape(&mut domains, &mut budget, &mut complete);
        match result {
            Some(model) => {
                self.stats.sat += 1;
                self.set_model(model.clone());
                self.mark_tape_verified();
                SatResult::Sat(model)
            }
            None => {
                if complete && budget > 0 {
                    self.stats.unsat += 1;
                    SatResult::Unsat
                } else {
                    self.stats.unknown += 1;
                    SatResult::Unknown
                }
            }
        }
    }

    /// Recursive-walk satisfiability check (`compiled_tape: false`): the
    /// pre-tape algorithm, kept as the benchmark baseline and ablation.
    fn check_recursive(&mut self) -> SatResult {
        // A pool handle clone (one atomic increment), so `self` stays
        // mutably borrowable below.
        let pool = self.pool.clone();
        let pool = &pool;

        // Fast path, verified in place: previous-model values (clamped to
        // a variable's bounds, defaulting to its minimum) may still
        // satisfy everything. The Model is only materialized on a hit.
        if self.config.incremental {
            if let Some(prev) = self.last_model.as_ref() {
                let vars = &self.vars;
                let lookup = |v: VarId| -> Option<i64> {
                    let info = &vars[v.0 as usize];
                    match prev.get(v) {
                        Some(val) if val >= info.lo && val <= info.hi => Some(val),
                        _ => Some(info.lo),
                    }
                };
                let ok = self
                    .constraints
                    .iter()
                    .all(|&c| pool.eval_bool(c, &lookup) == Some(true));
                if ok {
                    let mut model = Model::default();
                    for idx in 0..self.vars.len() {
                        let id = VarId(idx as u32);
                        model.insert(id, lookup(id).expect("total lookup"));
                    }
                    self.stats.sat += 1;
                    self.stats.warm_hits += 1;
                    self.set_model(model.clone());
                    return SatResult::Sat(model);
                }
            }
        }

        let mut domains: Vec<Interval> = self
            .vars
            .iter()
            .map(|v| Interval::new(v.lo, v.hi))
            .collect();

        match self.propagate(pool, &mut domains) {
            Truth::False => {
                self.stats.unsat += 1;
                return SatResult::Unsat;
            }
            Truth::True | Truth::Unknown => {}
        }

        // Warm repair: clamp the previous model into the propagated domains
        // and re-check — after small constraint additions (one binning range,
        // one insertion) this usually already satisfies everything.
        if self.config.incremental {
            if let Some(model) = self.warm_repair(pool, &domains) {
                self.stats.sat += 1;
                self.stats.warm_hits += 1;
                self.set_model(model.clone());
                return SatResult::Sat(model);
            }
        }

        let mut budget = self.config.max_nodes;
        let mut complete = true;
        let result = self.search(pool, &mut domains, &mut budget, &mut complete);
        match result {
            Some(model) => {
                self.stats.sat += 1;
                self.set_model(model.clone());
                SatResult::Sat(model)
            }
            None => {
                if complete && budget > 0 {
                    self.stats.unsat += 1;
                    SatResult::Unsat
                } else {
                    self.stats.unknown += 1;
                    SatResult::Unknown
                }
            }
        }
    }

    /// Clamps the warm model into the current propagated domains and
    /// verifies it. Returns the repaired model when it satisfies every
    /// constraint.
    fn warm_repair(&self, pool: &InternPool, domains: &[Interval]) -> Option<Model> {
        let prev = self.last_model.as_ref()?;
        let mut m = Model::default();
        for (idx, v) in self.vars.iter().enumerate() {
            let id = VarId(idx as u32);
            let dom = domains[idx];
            if dom.is_empty() {
                return None;
            }
            let val = prev.get(id).unwrap_or(v.lo).clamp(dom.lo, dom.hi);
            m.insert(id, val);
        }
        let lookup = |v: VarId| m.get(v);
        for &c in &self.constraints {
            if pool.eval_bool(c, &lookup) != Some(true) {
                return None;
            }
        }
        Some(m)
    }

    /// A copy of the most recent satisfying model, if any.
    pub fn last_model(&self) -> Option<&Model> {
        self.last_model.as_ref()
    }

    // --- tape-path internals -------------------------------------------------

    /// Fills `vals_buf` with the warm probe assignment: the previous
    /// model's value when it is within the variable's bounds, the
    /// variable's minimum otherwise (including fresh variables).
    fn fill_warm_vals(&mut self) {
        let prev = self.last_model.as_ref().expect("caller checked");
        self.vals_buf.clear();
        self.vals_buf
            .extend(self.vars.iter().enumerate().map(
                |(idx, v)| match prev.get(VarId(idx as u32)) {
                    Some(val) if val >= v.lo && val <= v.hi => val,
                    _ => v.lo,
                },
            ));
    }

    /// Fills `vals_buf` with the previous model clamped into the
    /// propagated domains. Returns false when any domain is empty (no
    /// repair possible).
    fn fill_repair_vals(&mut self, domains: &[Interval]) -> bool {
        let prev = self.last_model.as_ref().expect("caller checked");
        self.vals_buf.clear();
        for (idx, v) in self.vars.iter().enumerate() {
            let dom = domains[idx];
            if dom.is_empty() {
                return false;
            }
            let val = prev
                .get(VarId(idx as u32))
                .unwrap_or(v.lo)
                .clamp(dom.lo, dom.hi);
            self.vals_buf.push(val);
        }
        true
    }

    /// Materializes a [`Model`] from the dense assignment in `vals_buf`.
    fn model_from_vals(&self) -> Model {
        let mut m = Model::default();
        for (idx, &val) in self.vals_buf.iter().enumerate() {
            m.insert(VarId(idx as u32), val);
        }
        m
    }

    /// Dirty-queue interval propagation over the tape: starts with every
    /// constraint enqueued, then only re-enqueues the watchers of a
    /// narrowed variable. Work-capped at the same total the legacy
    /// 20-round full sweep allowed.
    fn propagate_tape(&mut self, domains: &mut [Interval]) -> Truth {
        let n = self.tape.len();
        if n == 0 {
            return Truth::Unknown;
        }
        let mut queued = vec![true; n];
        let mut queue: VecDeque<u32> = (0..n as u32).collect();
        let mut work = n.saturating_mul(20);
        while let Some(ci) = queue.pop_front() {
            queued[ci as usize] = false;
            if work == 0 {
                return Truth::Unknown;
            }
            work -= 1;
            match self.tape.truth_of(&mut self.scratch, ci as usize, domains) {
                Truth::False => return Truth::False,
                Truth::True => continue,
                Truth::Unknown => {}
            }
            if let Some(slot) = self.tape.narrow(&self.scratch, ci as usize, domains) {
                if domains[slot as usize].is_empty() {
                    return Truth::False;
                }
                let watchers = self.tape.watchers(slot);
                self.stats.constraints_skipped += (n - watchers.len()) as u64;
                for &w in watchers {
                    if !queued[w as usize] {
                        queued[w as usize] = true;
                        queue.push_back(w);
                    }
                }
            }
        }
        Truth::Unknown
    }

    /// Backtracking search over dense variable slots, using the watch
    /// index instead of a per-check constraint-index rebuild.
    fn search_tape(
        &mut self,
        domains: &mut Vec<Interval>,
        budget: &mut u64,
        complete: &mut bool,
    ) -> Option<Model> {
        let pool = self.pool.clone();
        let order = self.tape.constrained_slots();
        let nvars = self.vars.len();
        let mut vals = vec![0i64; nvars];
        let mut assigned = vec![false; nvars];
        // Pre-assign point domains.
        for &slot in &order {
            let d = domains[slot as usize];
            if d.is_point() {
                vals[slot as usize] = d.lo;
                assigned[slot as usize] = true;
            }
        }
        // Fail-first ordering: narrow domains first, ties broken by how
        // many constraints watch the variable (more-constrained first).
        let mut unassigned: Vec<u32> = order
            .iter()
            .copied()
            .filter(|&s| !assigned[s as usize])
            .collect();
        unassigned.sort_by_key(|&s| {
            let width = domains[s as usize].width();
            let cons = self.tape.watchers(s).len();
            (width, usize::MAX - cons)
        });
        self.dfs_tape(
            &pool,
            &unassigned,
            0,
            domains,
            &mut vals,
            &mut assigned,
            budget,
            complete,
        )?;
        // Complete the model: unconstrained variables take their minimum
        // (mirroring Z3's minimal-model bias).
        for (idx, v) in self.vars.iter().enumerate() {
            if !assigned[idx] {
                vals[idx] = v.lo;
            }
        }
        // Final exact verification (propagation is approximate, the model
        // is checked for real).
        self.stats.tape_evals += 1;
        if !self.tape.eval_full(&mut self.scratch, &vals) {
            return None;
        }
        let mut model = Model::default();
        for (idx, &val) in vals.iter().enumerate() {
            model.insert(VarId(idx as u32), val);
        }
        Some(model)
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs_tape(
        &mut self,
        pool: &InternPool,
        order: &[u32],
        depth: usize,
        domains: &mut Vec<Interval>,
        vals: &mut Vec<i64>,
        assigned: &mut Vec<bool>,
        budget: &mut u64,
        complete: &mut bool,
    ) -> Option<()> {
        if *budget == 0 {
            *complete = false;
            return None;
        }
        *budget -= 1;
        self.stats.nodes += 1;

        if depth == order.len() {
            // Leaf: check all constraints exactly under the assignment
            // (variables outside `order` take their minimum).
            self.vals_buf.clear();
            let vars = &self.vars;
            self.vals_buf.extend((0..vars.len()).map(|idx| {
                if assigned[idx] {
                    vals[idx]
                } else {
                    vars[idx].lo
                }
            }));
            self.stats.tape_evals += 1;
            let ok = self.tape.eval_full(&mut self.scratch, &self.vals_buf);
            return ok.then_some(());
        }

        let slot = order[depth];
        let dom = domains[slot as usize];
        if dom.is_empty() {
            return None;
        }
        let related: Vec<usize> = self
            .tape
            .watchers(slot)
            .iter()
            .map(|&c| c as usize)
            .collect();
        let suggestions = self.suggest_values(pool, VarId(slot), domains, &related);
        let candidates = self.candidates(VarId(slot), dom, &suggestions);
        if (candidates.len() as u64) < dom.width() {
            *complete = false;
        }
        for cand in candidates {
            vals[slot as usize] = cand;
            assigned[slot as usize] = true;
            domains[slot as usize] = Interval::point(cand);
            // Only constraints watching `slot` can newly fail.
            let mut ok = true;
            for &ci in &related {
                if self.tape.truth_of(&mut self.scratch, ci, domains) == Truth::False {
                    ok = false;
                    break;
                }
            }
            if ok
                && self
                    .dfs_tape(
                        pool,
                        order,
                        depth + 1,
                        domains,
                        vals,
                        assigned,
                        budget,
                        complete,
                    )
                    .is_some()
            {
                return Some(());
            }
            domains[slot as usize] = dom;
            assigned[slot as usize] = false;
            if *budget == 0 {
                *complete = false;
                return None;
            }
        }
        None
    }

    /// Fixed-point interval propagation. Narrows variable domains using
    /// single-variable-side comparisons and detects definite conflicts.
    fn propagate(&self, pool: &InternPool, domains: &mut [Interval]) -> Truth {
        for _round in 0..20 {
            let mut changed = false;
            for &c in &self.constraints {
                let truth = {
                    let dom = |v: VarId| domains[v.0 as usize];
                    pool.bool_truth(c, &dom)
                };
                match truth {
                    Truth::False => return Truth::False,
                    Truth::True => continue,
                    Truth::Unknown => {}
                }
                if Self::narrow(pool, c, domains) {
                    changed = true;
                }
                if domains.iter().any(Interval::is_empty) {
                    return Truth::False;
                }
            }
            if !changed {
                break;
            }
        }
        Truth::Unknown
    }

    /// Narrows domains for comparisons with a bare variable on one side.
    /// Returns true if any domain shrank. Conservative (never removes a value
    /// that could participate in a solution).
    fn narrow(pool: &InternPool, c: BoolId, domains: &mut [Interval]) -> bool {
        let (op, var, other) = match pool.bool_node(c) {
            BoolNode::Cmp(op, lhs, rhs) => match (pool.int_node(*lhs), pool.int_node(*rhs)) {
                (IntNode::Var(v), _) => (*op, *v, *rhs),
                (_, IntNode::Var(v)) => (op.swap(), *v, *lhs),
                _ => return false,
            },
            _ => return false,
        };
        let other_iv = {
            let dom = |v: VarId| domains[v.0 as usize];
            pool.int_interval(other, &dom)
        };
        if other_iv.is_empty() {
            return false;
        }
        let cur = domains[var.0 as usize];
        // Shared with the tape path; saturates at the i64 edges so that
        // `x < [MIN, MIN]`-style bounds never underflow (debug-build
        // panic before the fix).
        let new = crate::tape::narrowed(op, cur, other_iv);
        if new != cur {
            domains[var.0 as usize] = new;
            true
        } else {
            false
        }
    }

    fn constrained_vars(&self, pool: &InternPool) -> Vec<VarId> {
        let mut vars = Vec::new();
        for &c in &self.constraints {
            pool.collect_bool_vars(c, &mut vars);
        }
        vars.sort();
        vars.dedup();
        vars
    }

    /// Randomized backtracking search over the constrained variables.
    fn search(
        &mut self,
        pool: &InternPool,
        domains: &mut Vec<Interval>,
        budget: &mut u64,
        complete: &mut bool,
    ) -> Option<Model> {
        let order = self.constrained_vars(pool);
        let mut assignment: HashMap<VarId, i64> = HashMap::new();
        // Pre-assign point domains.
        for &v in &order {
            let d = domains[v.0 as usize];
            if d.is_point() {
                assignment.insert(v, d.lo);
            }
        }
        // Per-variable constraint index, so DFS only re-evaluates
        // constraints affected by the latest assignment.
        let mut con_index: HashMap<VarId, Vec<usize>> = HashMap::new();
        for (ci, &c) in self.constraints.iter().enumerate() {
            let mut vars = Vec::new();
            pool.collect_bool_vars(c, &mut vars);
            for v in vars {
                con_index.entry(v).or_default().push(ci);
            }
        }
        // Fail-first ordering: narrow domains first, ties broken by how many
        // constraints mention the variable (more-constrained first).
        let mut unassigned: Vec<VarId> = order
            .iter()
            .copied()
            .filter(|v| !assignment.contains_key(v))
            .collect();
        unassigned.sort_by_key(|v| {
            let width = domains[v.0 as usize].width();
            let cons = con_index.get(v).map_or(0, Vec::len);
            (width, usize::MAX - cons)
        });
        self.dfs(
            pool,
            &unassigned,
            0,
            domains,
            &mut assignment,
            &con_index,
            budget,
            complete,
        )?;
        // Complete the model: unconstrained variables take their minimum
        // (mirroring Z3's minimal-model bias).
        let mut model = Model::default();
        for (idx, v) in self.vars.iter().enumerate() {
            let id = VarId(idx as u32);
            let val = assignment.get(&id).copied().unwrap_or(v.lo);
            model.insert(id, val);
        }
        // Final exact verification (propagation is approximate, the model is
        // checked for real).
        let lookup = |v: VarId| model.get(v);
        for &c in &self.constraints {
            if pool.eval_bool(c, &lookup) != Some(true) {
                return None;
            }
        }
        Some(model)
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        pool: &InternPool,
        order: &[VarId],
        depth: usize,
        domains: &mut Vec<Interval>,
        assignment: &mut HashMap<VarId, i64>,
        con_index: &HashMap<VarId, Vec<usize>>,
        budget: &mut u64,
        complete: &mut bool,
    ) -> Option<()> {
        if *budget == 0 {
            *complete = false;
            return None;
        }
        *budget -= 1;
        self.stats.nodes += 1;

        if depth == order.len() {
            // Check all constraints exactly under the assignment (variables
            // outside `order` are unconstrained).
            let lookup = |v: VarId| {
                assignment
                    .get(&v)
                    .copied()
                    .or_else(|| Some(self.vars[v.0 as usize].lo))
            };
            for &c in &self.constraints {
                if pool.eval_bool(c, &lookup) != Some(true) {
                    return None;
                }
            }
            return Some(());
        }

        let var = order[depth];
        let dom = domains[var.0 as usize];
        if dom.is_empty() {
            return None;
        }
        let related = con_index.get(&var).map(Vec::as_slice).unwrap_or(&[]);
        let suggestions = self.suggest_values(pool, var, domains, related);
        let candidates = self.candidates(var, dom, &suggestions);
        if (candidates.len() as u64) < dom.width() {
            *complete = false;
        }
        for cand in candidates {
            assignment.insert(var, cand);
            let saved = domains[var.0 as usize];
            domains[var.0 as usize] = Interval::point(cand);
            // Only constraints mentioning `var` can newly fail.
            let ok = {
                let dom_fn = |v: VarId| domains[v.0 as usize];
                !related
                    .iter()
                    .any(|&ci| pool.bool_truth(self.constraints[ci], &dom_fn) == Truth::False)
            };
            if ok
                && self
                    .dfs(
                        pool,
                        order,
                        depth + 1,
                        domains,
                        assignment,
                        con_index,
                        budget,
                        complete,
                    )
                    .is_some()
            {
                return Some(());
            }
            domains[var.0 as usize] = saved;
            assignment.remove(&var);
            if *budget == 0 {
                *complete = false;
                return None;
            }
        }
        None
    }

    /// Values for `var` implied by equality constraints whose other
    /// variables are already pinned to points — e.g. after assigning three
    /// dims of a reshape target, the fourth is forced by the element-count
    /// equality. These are tried first during search.
    fn suggest_values(
        &self,
        pool: &InternPool,
        var: VarId,
        domains: &[Interval],
        related: &[usize],
    ) -> Vec<i64> {
        let mut out = Vec::new();
        let eval_pt = |v: VarId| -> Option<i64> {
            let d = domains[v.0 as usize];
            if d.is_point() {
                Some(d.lo)
            } else {
                None
            }
        };
        let visit = |c: BoolId, out: &mut Vec<i64>| {
            if let BoolNode::Cmp(CmpOp::Eq, a, b) = pool.bool_node(c) {
                for (expr, other) in [(*a, *b), (*b, *a)] {
                    if count_var(pool, expr, var) == 1 && count_var(pool, other, var) == 0 {
                        if let Some(target) = pool.eval_int(other, &eval_pt) {
                            if let Some(v) = invert_for(pool, expr, var, target, &eval_pt) {
                                if !out.contains(&v) {
                                    out.push(v);
                                }
                            }
                        }
                    }
                }
            }
        };
        for &ci in related {
            match pool.bool_node(self.constraints[ci]) {
                BoolNode::Or(parts) => {
                    for &p in parts {
                        visit(p, &mut out);
                    }
                }
                _ => visit(self.constraints[ci], &mut out),
            }
        }
        out
    }

    /// Candidate values for a variable, biased toward the domain minimum
    /// (Z3-like boundary models) with a few random probes for coverage.
    fn candidates(&mut self, var: VarId, dom: Interval, suggestions: &[i64]) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.config.max_candidates);
        let push = |v: i64, out: &mut Vec<i64>| {
            if dom.contains(v) && !out.contains(&v) {
                out.push(v);
            }
        };
        // Warm start from the previous model first, then constraint-implied
        // values.
        if self.config.incremental {
            if let Some(prev) = self.last_model.as_ref().and_then(|m| m.get(var)) {
                push(prev, &mut out);
            }
        }
        for &s in suggestions {
            push(s, &mut out);
        }
        push(dom.lo, &mut out);
        push(dom.lo + 1, &mut out);
        push(dom.lo + 2, &mut out);
        push(dom.lo + 3, &mut out);
        push(dom.hi, &mut out);
        // Random geometric probes across the range.
        let width = dom.width();
        while out.len() < self.config.max_candidates && (out.len() as u64) < width {
            let span = (dom.hi as i128 - dom.lo as i128) as f64;
            let t: f64 = self.rng.gen::<f64>();
            // Quadratic bias toward small values.
            let offset = (t * t * span) as i64;
            push(dom.lo.saturating_add(offset), &mut out);
            if out.len() >= self.config.max_candidates {
                break;
            }
            // Guard against tiny domains where all values are already present.
            if width <= self.config.max_candidates as u64 {
                for v in dom.lo..=dom.hi {
                    push(v, &mut out);
                }
                break;
            }
        }
        out
    }
}

/// Number of occurrences of `var` in the interned expression.
fn count_var(pool: &InternPool, expr: ExprId, var: VarId) -> usize {
    match pool.int_node(expr) {
        IntNode::Const(_) => 0,
        IntNode::Var(v) => usize::from(*v == var),
        IntNode::Bin(_, a, b) => count_var(pool, *a, var) + count_var(pool, *b, var),
    }
}

/// Solves `expr == target` for `var` by algebraic inversion, when `var`
/// occurs exactly once and every other variable evaluates to a point.
fn invert_for(
    pool: &InternPool,
    expr: ExprId,
    var: VarId,
    target: i64,
    eval_pt: &dyn Fn(VarId) -> Option<i64>,
) -> Option<i64> {
    match pool.int_node(expr) {
        IntNode::Var(v) if *v == var => Some(target),
        IntNode::Bin(op, a, b) => {
            let in_a = count_var(pool, *a, var) == 1;
            let (with_var, other, var_on_left) = if in_a {
                (*a, *b, true)
            } else {
                (*b, *a, false)
            };
            let other_val = pool.eval_int(other, eval_pt)?;
            let new_target = match op {
                BinOp::Add => target.checked_sub(other_val)?,
                BinOp::Sub => {
                    if var_on_left {
                        target.checked_add(other_val)?
                    } else {
                        other_val.checked_sub(target)?
                    }
                }
                BinOp::Mul => {
                    if other_val == 0 || target % other_val != 0 {
                        return None;
                    }
                    target / other_val
                }
                BinOp::Div if var_on_left => {
                    // floor(x / d) == t  ⇒  x ∈ [t·d, t·d + d − 1];
                    // suggest the lower end.
                    if other_val <= 0 {
                        return None;
                    }
                    target.checked_mul(other_val)?
                }
                _ => return None,
            };
            invert_for(pool, with_var, var, new_target, eval_pt)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BoolExpr;

    fn v(id: VarId) -> IntExpr {
        IntExpr::Var(id)
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 10);
        s.assert(v(x).ge(3.into()));
        let m = s.check().model().cloned().expect("sat");
        assert!(m.get(x).unwrap() >= 3);
    }

    #[test]
    fn boundary_bias_minimal_model() {
        // Like Z3, the solver should return the minimum satisfying value for
        // a simple lower-bound constraint — the behaviour motivating binning.
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 1 << 20);
        s.assert(v(x).ge(1.into()));
        let m = s.check().model().cloned().expect("sat");
        assert_eq!(m.get(x), Some(1));
    }

    #[test]
    fn unsat_detection() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 10);
        s.assert(v(x).ge(5.into()));
        s.assert(v(x).le(3.into()));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn push_pop_restores() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 10);
        s.assert(v(x).ge(2.into()));
        s.push();
        s.assert(v(x).le(1.into()));
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        assert!(s.check().is_sat());
    }

    #[test]
    fn try_add_constraints_rolls_back() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 10);
        s.assert(v(x).ge(2.into()));
        assert!(s.try_add_constraints([v(x).le(1.into())]).is_none());
        assert_eq!(s.num_constraints(), 1);
        assert!(s.try_add_constraints([v(x).le(5.into())]).is_some());
        assert_eq!(s.num_constraints(), 2);
    }

    #[test]
    fn conv_like_constraints() {
        // Output dim of a conv: (h - kh + 2*pad) / stride + 1 >= 1, kernel
        // must fit the (padded) image.
        let mut s = Solver::default();
        let h = s.new_var("h", 1, 224);
        let kh = s.new_var("kh", 1, 11);
        let pad = s.new_var("pad", 0, 5);
        let stride = s.new_var("stride", 1, 4);
        let out = (v(h) - v(kh) + IntExpr::from(2) * v(pad)) / v(stride) + IntExpr::from(1);
        s.assert(v(kh).le(v(h) + IntExpr::from(2) * v(pad)));
        s.assert(out.clone().ge(1.into()));
        s.assert(out.le(128.into()));
        let m = s.check().model().cloned().expect("sat");
        let hv = m.get(h).unwrap();
        let khv = m.get(kh).unwrap();
        let pv = m.get(pad).unwrap();
        let sv = m.get(stride).unwrap();
        assert!(khv <= hv + 2 * pv);
        assert!((hv - khv + 2 * pv) / sv + 1 >= 1);
    }

    #[test]
    fn reshape_product_constraint() {
        // Total elements preserved: n*c*h*w == a*b.
        let mut s = Solver::default();
        let n = s.new_var("n", 1, 4);
        let c = s.new_var("c", 1, 8);
        let h = s.new_var("h", 1, 32);
        let w = s.new_var("w", 1, 32);
        let a = s.new_var("a", 1, 64);
        let b = s.new_var("b", 1, 64);
        s.assert((v(n) * v(c) * v(h) * v(w)).eq_expr(v(a) * v(b)));
        let m = s.check().model().cloned().expect("sat");
        let prod_in = m.get(n).unwrap() * m.get(c).unwrap() * m.get(h).unwrap() * m.get(w).unwrap();
        let prod_out = m.get(a).unwrap() * m.get(b).unwrap();
        assert_eq!(prod_in, prod_out);
    }

    #[test]
    fn warm_start_reuses_model() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 100);
        s.assert(v(x).ge(10.into()));
        assert!(s.check().is_sat());
        let before = s.stats().warm_hits;
        // A constraint the current model already satisfies.
        s.assert(v(x).ge(5.into()));
        assert!(s.check().is_sat());
        assert_eq!(s.stats().warm_hits, before + 1);
    }

    #[test]
    fn non_incremental_config() {
        let mut s = Solver::with_config(SolverConfig {
            incremental: false,
            ..SolverConfig::default()
        });
        let x = s.new_var("x", 1, 100);
        s.assert(v(x).ge(10.into()));
        assert!(s.check().is_sat());
        s.assert(v(x).ge(5.into()));
        assert!(s.check().is_sat());
        assert_eq!(s.stats().warm_hits, 0);
    }

    #[test]
    fn equality_chain() {
        let mut s = Solver::default();
        let a = s.new_var("a", 1, 100);
        let b = s.new_var("b", 1, 100);
        let c = s.new_var("c", 1, 100);
        s.assert(v(a).eq_expr(v(b)));
        s.assert(v(b).eq_expr(v(c)));
        s.assert(v(c).eq_expr(42.into()));
        let m = s.check().model().cloned().expect("sat");
        assert_eq!(m.get(a), Some(42));
        assert_eq!(m.get(b), Some(42));
    }

    #[test]
    fn disjunction() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 10);
        s.assert(BoolExpr::or([
            v(x).eq_expr(7.into()),
            v(x).eq_expr(9.into()),
        ]));
        let m = s.check().model().cloned().expect("sat");
        let val = m.get(x).unwrap();
        assert!(val == 7 || val == 9);
    }

    #[test]
    fn binned_range_gives_in_range_value() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 1 << 20);
        s.assert(v(x).ge(16.into()));
        s.assert(v(x).le(31.into()));
        let m = s.check().model().cloned().expect("sat");
        let val = m.get(x).unwrap();
        assert!((16..=31).contains(&val));
    }

    #[test]
    fn divisibility() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 64);
        s.assert((v(x) % 4.into()).eq_expr(0.into()));
        s.assert(v(x).ge(5.into()));
        let m = s.check().model().cloned().expect("sat");
        let val = m.get(x).unwrap();
        assert_eq!(val % 4, 0);
        assert!(val >= 5);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 4);
        s.assert(v(x).ge(2.into()));
        let _ = s.check();
        let _ = s.check();
        assert_eq!(s.stats().checks, 2);
        assert!(s.stats().sat >= 1);
    }

    #[test]
    fn reshape_style_product_with_large_target() {
        // prod(out dims) must equal a concrete product far above the
        // candidate probes — solvable only via equality-implied values.
        let mut s = Solver::default();
        let a = s.new_var("a", 1, 1 << 20);
        let b = s.new_var("b", 1, 1 << 20);
        let c = s.new_var("c", 1, 1 << 20);
        let target: i64 = 2 * 62 * 62; // 7688
        s.assert((v(a) * v(b) * v(c)).eq_expr(target.into()));
        let m = s.check().model().cloned().expect("sat");
        assert_eq!(
            m.get(a).unwrap() * m.get(b).unwrap() * m.get(c).unwrap(),
            target
        );
    }

    #[test]
    fn or_equality_suggestions() {
        // BroadcastTo-style: out == 37 or out == 1, with 37 far from the
        // domain boundary probes.
        let mut s = Solver::default();
        let out = s.new_var("out", 1, 1 << 20);
        s.assert(BoolExpr::or([
            v(out).eq_expr(37.into()),
            IntExpr::Const(37).eq_expr(1.into()), // false disjunct
        ]));
        s.assert(v(out).ge(2.into()));
        let m = s.check().model().cloned().expect("sat");
        assert_eq!(m.get(out), Some(37));
    }

    #[test]
    fn linear_isolation() {
        // (x - 3) * 4 == 44  ⇒  x = 14.
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 1 << 20);
        s.assert(((v(x) - 3.into()) * 4.into()).eq_expr(44.into()));
        let m = s.check().model().cloned().expect("sat");
        assert_eq!(m.get(x), Some(14));
    }

    #[test]
    fn pop_panics_without_push() {
        let result = std::panic::catch_unwind(|| {
            let mut s = Solver::default();
            s.pop();
        });
        assert!(result.is_err());
    }
}
