//! The incremental constraint solver.
//!
//! This plays the role Z3 plays in the original NNSmith: given the validity
//! constraints accumulated while growing a computation graph, decide whether a
//! candidate operator insertion is satisfiable and, if so, produce a model
//! (concrete values for placeholder dimensions and operator attributes).
//!
//! The solving fragment is bounded integer arithmetic with `+ - * / % min max`
//! and comparisons — exactly what tensor shape/attribute constraints need. The
//! algorithm is interval-propagation plus randomized backtracking search with
//! a low-value bias, which deliberately mirrors Z3's tendency to return
//! boundary models (the behaviour that motivates NNSmith's attribute binning,
//! §3.2 of the paper).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::expr::{BinOp, BoolExpr, CmpOp, IntExpr, VarId};
use crate::intern::{BoolId, BoolNode, ExprId, IntNode, InternPool};
use crate::interval::{Interval, Truth};

/// Tuning knobs for [`Solver`].
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum number of search-tree nodes explored per `check` call.
    pub max_nodes: u64,
    /// Maximum candidate values tried per variable per node.
    pub max_candidates: usize,
    /// Default lower bound for variables created without explicit bounds.
    pub default_lo: i64,
    /// Default upper bound for variables created without explicit bounds.
    pub default_hi: i64,
    /// Warm-start the search from the last satisfying model (incremental
    /// solving, §3.2 step 2). Disabling this is the `ablation_incremental`
    /// configuration.
    pub incremental: bool,
    /// RNG seed for candidate sampling.
    pub seed: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_nodes: 50_000,
            max_candidates: 14,
            default_lo: 1,
            default_hi: 1 << 20,
            incremental: true,
            seed: 0x5eed_cafe,
        }
    }
}

/// Result of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found.
    Sat(Model),
    /// The constraint system is provably unsatisfiable.
    Unsat,
    /// The search budget was exhausted before a verdict.
    Unknown,
}

impl SatResult {
    /// True if this is [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }

    /// Extracts the model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SatResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// A satisfying assignment mapping variables to concrete values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<VarId, i64>,
}

impl Model {
    /// Value assigned to `v`, if any.
    pub fn get(&self, v: VarId) -> Option<i64> {
        self.values.get(&v).copied()
    }

    /// Evaluates an integer expression under this model.
    pub fn eval_int(&self, e: &IntExpr) -> Option<i64> {
        e.eval(&|v| self.get(v))
    }

    /// Evaluates a boolean expression under this model.
    pub fn eval_bool(&self, e: &BoolExpr) -> Option<bool> {
        e.eval(&|v| self.get(v))
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(variable, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, i64)> + '_ {
        self.values.iter().map(|(k, v)| (*k, *v))
    }

    fn insert(&mut self, v: VarId, val: i64) {
        self.values.insert(v, val);
    }
}

/// Cumulative counters exposed for benchmarking and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of `check` invocations.
    pub checks: u64,
    /// Checks that returned `Sat`.
    pub sat: u64,
    /// Checks that returned `Unsat`.
    pub unsat: u64,
    /// Checks that returned `Unknown`.
    pub unknown: u64,
    /// Total search nodes explored.
    pub nodes: u64,
    /// Checks answered purely by the warm-start model.
    pub warm_hits: u64,
}

#[derive(Debug, Clone)]
struct VarInfo {
    #[allow(dead_code)]
    name: String,
    lo: i64,
    hi: i64,
}

/// An incremental integer constraint solver.
///
/// # Examples
///
/// ```
/// use nnsmith_solver::{IntExpr, Solver};
///
/// let mut s = Solver::default();
/// let h = s.new_var("h", 1, 64);
/// let k = s.new_var("k", 1, 64);
/// s.assert(IntExpr::var(k).le(IntExpr::var(h)));
/// let model = s.check().model().cloned().expect("satisfiable");
/// assert!(model.get(k).unwrap() <= model.get(h).unwrap());
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    /// The hash-consing arena this solver interns into. Owned as a handle:
    /// cloning a solver — or sharing an accumulated constraint system
    /// across campaign shards — copies ids, not expression trees, and
    /// every clone shares the same pool.
    pool: InternPool,
    vars: Vec<VarInfo>,
    /// Asserted constraints as handles into `pool`.
    constraints: Vec<BoolId>,
    frames: Vec<usize>,
    last_model: Option<Model>,
    config: SolverConfig,
    rng: StdRng,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::with_config(SolverConfig::default())
    }
}

impl Solver {
    /// Creates a solver with default configuration and its own private
    /// intern pool.
    pub fn new() -> Self {
        Solver::default()
    }

    /// Creates a solver with default configuration interning into `pool`
    /// (the campaign's pool, typically).
    pub fn new_in(pool: InternPool) -> Self {
        Solver::with_config_in(SolverConfig::default(), pool)
    }

    /// Creates a solver with the given configuration and its own private
    /// intern pool.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver::with_config_in(config, InternPool::default())
    }

    /// Creates a solver with the given configuration interning into
    /// `pool`.
    pub fn with_config_in(config: SolverConfig, pool: InternPool) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Solver {
            pool,
            vars: Vec::new(),
            constraints: Vec::new(),
            frames: Vec::new(),
            last_model: None,
            config,
            rng,
            stats: SolverStats::default(),
        }
    }

    /// The intern pool this solver's constraint handles live in.
    pub fn pool(&self) -> &InternPool {
        &self.pool
    }

    /// Cumulative statistics for this solver instance.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Declares a fresh bounded integer variable.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new_var(&mut self, name: impl Into<String>, lo: i64, hi: i64) -> VarId {
        assert!(lo <= hi, "variable bounds must satisfy lo <= hi");
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.into(),
            lo,
            hi,
        });
        id
    }

    /// Declares a variable with the configured default bounds (a tensor
    /// dimension: positive, bounded).
    pub fn new_dim_var(&mut self, name: impl Into<String>) -> VarId {
        let (lo, hi) = (self.config.default_lo, self.config.default_hi);
        self.new_var(name, lo, hi)
    }

    /// Number of declared variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of currently-asserted constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Asserts a constraint in the current frame. The expression tree is
    /// interned into this solver's pool; structurally identical
    /// constraints (across every solver sharing the pool) share storage.
    pub fn assert(&mut self, c: BoolExpr) {
        let id = self.pool.intern_bool(&c);
        match self.pool.bool_node(id) {
            BoolNode::Lit(true) => {}
            BoolNode::And(parts) => self.constraints.extend(parts.iter().copied()),
            _ => self.constraints.push(id),
        }
    }

    /// Asserts an already-interned constraint (a handle of this solver's
    /// pool) in the current frame.
    pub fn assert_id(&mut self, id: BoolId) {
        match self.pool.bool_node(id) {
            BoolNode::Lit(true) => {}
            BoolNode::And(parts) => self.constraints.extend(parts.iter().copied()),
            _ => self.constraints.push(id),
        }
    }

    /// Asserts several constraints at once.
    pub fn assert_all(&mut self, cs: impl IntoIterator<Item = BoolExpr>) {
        for c in cs {
            self.assert(c);
        }
    }

    /// The asserted constraints as arena handles, in assertion order.
    pub fn constraint_ids(&self) -> &[BoolId] {
        &self.constraints
    }

    /// Opens a new assertion frame (like Z3's `push`).
    pub fn push(&mut self) {
        self.frames.push(self.constraints.len());
    }

    /// Discards every constraint asserted since the matching [`Solver::push`].
    ///
    /// # Panics
    ///
    /// Panics if there is no open frame.
    pub fn pop(&mut self) {
        let mark = self.frames.pop().expect("pop without matching push");
        self.constraints.truncate(mark);
    }

    /// Asserts `cs` and checks satisfiability; on failure the constraints are
    /// rolled back. This is the `try_add_constraints` primitive of Algorithm 1.
    ///
    /// Returns the model when the extended system is satisfiable.
    pub fn try_add_constraints(&mut self, cs: impl IntoIterator<Item = BoolExpr>) -> Option<Model> {
        let mark = self.constraints.len();
        self.assert_all(cs);
        match self.check() {
            SatResult::Sat(m) => Some(m),
            _ => {
                self.constraints.truncate(mark);
                None
            }
        }
    }

    /// [`Solver::try_add_constraints`] over already-interned handles.
    pub fn try_add_constraint_ids(
        &mut self,
        cs: impl IntoIterator<Item = BoolId>,
    ) -> Option<Model> {
        let mark = self.constraints.len();
        for c in cs {
            self.assert_id(c);
        }
        match self.check() {
            SatResult::Sat(m) => Some(m),
            _ => {
                self.constraints.truncate(mark);
                None
            }
        }
    }

    /// Checks satisfiability of the asserted constraints.
    ///
    /// The entire check reads the arena **without any lock**: handle
    /// resolution is per-slot atomic publication (see [`crate::intern`]),
    /// so concurrent interning on other shard workers never stalls this
    /// path.
    pub fn check(&mut self) -> SatResult {
        // One profiler span per satisfiability check (no-op unless the
        // calling thread enabled profiling — a shard worker of an
        // observed engine run).
        let _span = nnsmith_obs::span(nnsmith_obs::phase::SOLVE);
        self.stats.checks += 1;

        // A pool handle clone (one atomic increment), so `self` stays
        // mutably borrowable below.
        let pool = self.pool.clone();
        let pool = &pool;

        // Fast path: the previous model may still satisfy everything (common
        // when the newly-added constraints only mention already-solved
        // variables).
        if self.config.incremental {
            if let Some(prev) = self.full_warm_model() {
                let lookup = |v: VarId| prev.get(v);
                let ok = self
                    .constraints
                    .iter()
                    .all(|&c| pool.eval_bool(c, &lookup) == Some(true));
                if ok {
                    self.stats.sat += 1;
                    self.stats.warm_hits += 1;
                    self.last_model = Some(prev.clone());
                    return SatResult::Sat(prev);
                }
            }
        }

        let mut domains: Vec<Interval> = self
            .vars
            .iter()
            .map(|v| Interval::new(v.lo, v.hi))
            .collect();

        match self.propagate(pool, &mut domains) {
            Truth::False => {
                self.stats.unsat += 1;
                return SatResult::Unsat;
            }
            Truth::True | Truth::Unknown => {}
        }

        // Warm repair: clamp the previous model into the propagated domains
        // and re-check — after small constraint additions (one binning range,
        // one insertion) this usually already satisfies everything.
        if self.config.incremental {
            if let Some(model) = self.warm_repair(pool, &domains) {
                self.stats.sat += 1;
                self.stats.warm_hits += 1;
                self.last_model = Some(model.clone());
                return SatResult::Sat(model);
            }
        }

        let mut budget = self.config.max_nodes;
        let mut complete = true;
        let result = self.search(pool, &mut domains, &mut budget, &mut complete);
        match result {
            Some(model) => {
                self.stats.sat += 1;
                self.last_model = Some(model.clone());
                SatResult::Sat(model)
            }
            None => {
                if complete && budget > 0 {
                    self.stats.unsat += 1;
                    SatResult::Unsat
                } else {
                    self.stats.unknown += 1;
                    SatResult::Unknown
                }
            }
        }
    }

    /// Clamps the warm model into the current propagated domains and
    /// verifies it. Returns the repaired model when it satisfies every
    /// constraint.
    fn warm_repair(&self, pool: &InternPool, domains: &[Interval]) -> Option<Model> {
        let prev = self.last_model.as_ref()?;
        let mut m = Model::default();
        for (idx, v) in self.vars.iter().enumerate() {
            let id = VarId(idx as u32);
            let dom = domains[idx];
            if dom.is_empty() {
                return None;
            }
            let val = prev.get(id).unwrap_or(v.lo).clamp(dom.lo, dom.hi);
            m.insert(id, val);
        }
        let lookup = |v: VarId| m.get(v);
        for &c in &self.constraints {
            if pool.eval_bool(c, &lookup) != Some(true) {
                return None;
            }
        }
        Some(m)
    }

    /// A copy of the most recent satisfying model, if any.
    pub fn last_model(&self) -> Option<&Model> {
        self.last_model.as_ref()
    }

    // --- internals -----------------------------------------------------------

    /// Extends the last model with default (minimal) values for new variables.
    fn full_warm_model(&self) -> Option<Model> {
        let prev = self.last_model.as_ref()?;
        let mut m = prev.clone();
        for (idx, v) in self.vars.iter().enumerate() {
            let id = VarId(idx as u32);
            match m.get(id) {
                Some(val) if val >= v.lo && val <= v.hi => {}
                _ => m.insert(id, v.lo),
            }
        }
        Some(m)
    }

    /// Fixed-point interval propagation. Narrows variable domains using
    /// single-variable-side comparisons and detects definite conflicts.
    fn propagate(&self, pool: &InternPool, domains: &mut [Interval]) -> Truth {
        for _round in 0..20 {
            let mut changed = false;
            for &c in &self.constraints {
                let truth = {
                    let dom = |v: VarId| domains[v.0 as usize];
                    pool.bool_truth(c, &dom)
                };
                match truth {
                    Truth::False => return Truth::False,
                    Truth::True => continue,
                    Truth::Unknown => {}
                }
                if Self::narrow(pool, c, domains) {
                    changed = true;
                }
                if domains.iter().any(Interval::is_empty) {
                    return Truth::False;
                }
            }
            if !changed {
                break;
            }
        }
        Truth::Unknown
    }

    /// Narrows domains for comparisons with a bare variable on one side.
    /// Returns true if any domain shrank. Conservative (never removes a value
    /// that could participate in a solution).
    fn narrow(pool: &InternPool, c: BoolId, domains: &mut [Interval]) -> bool {
        let (op, var, other) = match pool.bool_node(c) {
            BoolNode::Cmp(op, lhs, rhs) => match (pool.int_node(*lhs), pool.int_node(*rhs)) {
                (IntNode::Var(v), _) => (*op, *v, *rhs),
                (_, IntNode::Var(v)) => (op.swap(), *v, *lhs),
                _ => return false,
            },
            _ => return false,
        };
        let other_iv = {
            let dom = |v: VarId| domains[v.0 as usize];
            pool.int_interval(other, &dom)
        };
        if other_iv.is_empty() {
            return false;
        }
        let cur = domains[var.0 as usize];
        let new = match op {
            CmpOp::Le => cur.intersect(&Interval::new(i64::MIN, other_iv.hi)),
            CmpOp::Lt => cur.intersect(&Interval::new(i64::MIN, other_iv.hi - 1)),
            CmpOp::Ge => cur.intersect(&Interval::new(other_iv.lo, i64::MAX)),
            CmpOp::Gt => cur.intersect(&Interval::new(other_iv.lo + 1, i64::MAX)),
            CmpOp::Eq => cur.intersect(&other_iv),
            CmpOp::Ne => {
                if other_iv.is_point() {
                    if cur.lo == other_iv.lo && cur.hi > cur.lo {
                        Interval::new(cur.lo + 1, cur.hi)
                    } else if cur.hi == other_iv.lo && cur.hi > cur.lo {
                        Interval::new(cur.lo, cur.hi - 1)
                    } else {
                        cur
                    }
                } else {
                    cur
                }
            }
        };
        if new != cur {
            domains[var.0 as usize] = new;
            true
        } else {
            false
        }
    }

    fn constrained_vars(&self, pool: &InternPool) -> Vec<VarId> {
        let mut vars = Vec::new();
        for &c in &self.constraints {
            pool.collect_bool_vars(c, &mut vars);
        }
        vars.sort();
        vars.dedup();
        vars
    }

    /// Randomized backtracking search over the constrained variables.
    fn search(
        &mut self,
        pool: &InternPool,
        domains: &mut Vec<Interval>,
        budget: &mut u64,
        complete: &mut bool,
    ) -> Option<Model> {
        let order = self.constrained_vars(pool);
        let mut assignment: HashMap<VarId, i64> = HashMap::new();
        // Pre-assign point domains.
        for &v in &order {
            let d = domains[v.0 as usize];
            if d.is_point() {
                assignment.insert(v, d.lo);
            }
        }
        // Per-variable constraint index, so DFS only re-evaluates
        // constraints affected by the latest assignment.
        let mut con_index: HashMap<VarId, Vec<usize>> = HashMap::new();
        for (ci, &c) in self.constraints.iter().enumerate() {
            let mut vars = Vec::new();
            pool.collect_bool_vars(c, &mut vars);
            for v in vars {
                con_index.entry(v).or_default().push(ci);
            }
        }
        // Fail-first ordering: narrow domains first, ties broken by how many
        // constraints mention the variable (more-constrained first).
        let mut unassigned: Vec<VarId> = order
            .iter()
            .copied()
            .filter(|v| !assignment.contains_key(v))
            .collect();
        unassigned.sort_by_key(|v| {
            let width = domains[v.0 as usize].width();
            let cons = con_index.get(v).map_or(0, Vec::len);
            (width, usize::MAX - cons)
        });
        self.dfs(
            pool,
            &unassigned,
            0,
            domains,
            &mut assignment,
            &con_index,
            budget,
            complete,
        )?;
        // Complete the model: unconstrained variables take their minimum
        // (mirroring Z3's minimal-model bias).
        let mut model = Model::default();
        for (idx, v) in self.vars.iter().enumerate() {
            let id = VarId(idx as u32);
            let val = assignment.get(&id).copied().unwrap_or(v.lo);
            model.insert(id, val);
        }
        // Final exact verification (propagation is approximate, the model is
        // checked for real).
        let lookup = |v: VarId| model.get(v);
        for &c in &self.constraints {
            if pool.eval_bool(c, &lookup) != Some(true) {
                return None;
            }
        }
        Some(model)
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        pool: &InternPool,
        order: &[VarId],
        depth: usize,
        domains: &mut Vec<Interval>,
        assignment: &mut HashMap<VarId, i64>,
        con_index: &HashMap<VarId, Vec<usize>>,
        budget: &mut u64,
        complete: &mut bool,
    ) -> Option<()> {
        if *budget == 0 {
            *complete = false;
            return None;
        }
        *budget -= 1;
        self.stats.nodes += 1;

        if depth == order.len() {
            // Check all constraints exactly under the assignment (variables
            // outside `order` are unconstrained).
            let lookup = |v: VarId| {
                assignment
                    .get(&v)
                    .copied()
                    .or_else(|| Some(self.vars[v.0 as usize].lo))
            };
            for &c in &self.constraints {
                if pool.eval_bool(c, &lookup) != Some(true) {
                    return None;
                }
            }
            return Some(());
        }

        let var = order[depth];
        let dom = domains[var.0 as usize];
        if dom.is_empty() {
            return None;
        }
        let related = con_index.get(&var).map(Vec::as_slice).unwrap_or(&[]);
        let suggestions = self.suggest_values(pool, var, domains, related);
        let candidates = self.candidates(var, dom, &suggestions);
        if (candidates.len() as u64) < dom.width() {
            *complete = false;
        }
        for cand in candidates {
            assignment.insert(var, cand);
            let saved = domains[var.0 as usize];
            domains[var.0 as usize] = Interval::point(cand);
            // Only constraints mentioning `var` can newly fail.
            let ok = {
                let dom_fn = |v: VarId| domains[v.0 as usize];
                !related
                    .iter()
                    .any(|&ci| pool.bool_truth(self.constraints[ci], &dom_fn) == Truth::False)
            };
            if ok
                && self
                    .dfs(
                        pool,
                        order,
                        depth + 1,
                        domains,
                        assignment,
                        con_index,
                        budget,
                        complete,
                    )
                    .is_some()
            {
                return Some(());
            }
            domains[var.0 as usize] = saved;
            assignment.remove(&var);
            if *budget == 0 {
                *complete = false;
                return None;
            }
        }
        None
    }

    /// Values for `var` implied by equality constraints whose other
    /// variables are already pinned to points — e.g. after assigning three
    /// dims of a reshape target, the fourth is forced by the element-count
    /// equality. These are tried first during search.
    fn suggest_values(
        &self,
        pool: &InternPool,
        var: VarId,
        domains: &[Interval],
        related: &[usize],
    ) -> Vec<i64> {
        let mut out = Vec::new();
        let eval_pt = |v: VarId| -> Option<i64> {
            let d = domains[v.0 as usize];
            if d.is_point() {
                Some(d.lo)
            } else {
                None
            }
        };
        let visit = |c: BoolId, out: &mut Vec<i64>| {
            if let BoolNode::Cmp(CmpOp::Eq, a, b) = pool.bool_node(c) {
                for (expr, other) in [(*a, *b), (*b, *a)] {
                    if count_var(pool, expr, var) == 1 && count_var(pool, other, var) == 0 {
                        if let Some(target) = pool.eval_int(other, &eval_pt) {
                            if let Some(v) = invert_for(pool, expr, var, target, &eval_pt) {
                                if !out.contains(&v) {
                                    out.push(v);
                                }
                            }
                        }
                    }
                }
            }
        };
        for &ci in related {
            match pool.bool_node(self.constraints[ci]) {
                BoolNode::Or(parts) => {
                    for &p in parts {
                        visit(p, &mut out);
                    }
                }
                _ => visit(self.constraints[ci], &mut out),
            }
        }
        out
    }

    /// Candidate values for a variable, biased toward the domain minimum
    /// (Z3-like boundary models) with a few random probes for coverage.
    fn candidates(&mut self, var: VarId, dom: Interval, suggestions: &[i64]) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.config.max_candidates);
        let push = |v: i64, out: &mut Vec<i64>| {
            if dom.contains(v) && !out.contains(&v) {
                out.push(v);
            }
        };
        // Warm start from the previous model first, then constraint-implied
        // values.
        if self.config.incremental {
            if let Some(prev) = self.last_model.as_ref().and_then(|m| m.get(var)) {
                push(prev, &mut out);
            }
        }
        for &s in suggestions {
            push(s, &mut out);
        }
        push(dom.lo, &mut out);
        push(dom.lo + 1, &mut out);
        push(dom.lo + 2, &mut out);
        push(dom.lo + 3, &mut out);
        push(dom.hi, &mut out);
        // Random geometric probes across the range.
        let width = dom.width();
        while out.len() < self.config.max_candidates && (out.len() as u64) < width {
            let span = (dom.hi as i128 - dom.lo as i128) as f64;
            let t: f64 = self.rng.gen::<f64>();
            // Quadratic bias toward small values.
            let offset = (t * t * span) as i64;
            push(dom.lo.saturating_add(offset), &mut out);
            if out.len() >= self.config.max_candidates {
                break;
            }
            // Guard against tiny domains where all values are already present.
            if width <= self.config.max_candidates as u64 {
                for v in dom.lo..=dom.hi {
                    push(v, &mut out);
                }
                break;
            }
        }
        out
    }
}

/// Number of occurrences of `var` in the interned expression.
fn count_var(pool: &InternPool, expr: ExprId, var: VarId) -> usize {
    match pool.int_node(expr) {
        IntNode::Const(_) => 0,
        IntNode::Var(v) => usize::from(*v == var),
        IntNode::Bin(_, a, b) => count_var(pool, *a, var) + count_var(pool, *b, var),
    }
}

/// Solves `expr == target` for `var` by algebraic inversion, when `var`
/// occurs exactly once and every other variable evaluates to a point.
fn invert_for(
    pool: &InternPool,
    expr: ExprId,
    var: VarId,
    target: i64,
    eval_pt: &dyn Fn(VarId) -> Option<i64>,
) -> Option<i64> {
    match pool.int_node(expr) {
        IntNode::Var(v) if *v == var => Some(target),
        IntNode::Bin(op, a, b) => {
            let in_a = count_var(pool, *a, var) == 1;
            let (with_var, other, var_on_left) = if in_a {
                (*a, *b, true)
            } else {
                (*b, *a, false)
            };
            let other_val = pool.eval_int(other, eval_pt)?;
            let new_target = match op {
                BinOp::Add => target.checked_sub(other_val)?,
                BinOp::Sub => {
                    if var_on_left {
                        target.checked_add(other_val)?
                    } else {
                        other_val.checked_sub(target)?
                    }
                }
                BinOp::Mul => {
                    if other_val == 0 || target % other_val != 0 {
                        return None;
                    }
                    target / other_val
                }
                BinOp::Div if var_on_left => {
                    // floor(x / d) == t  ⇒  x ∈ [t·d, t·d + d − 1];
                    // suggest the lower end.
                    if other_val <= 0 {
                        return None;
                    }
                    target.checked_mul(other_val)?
                }
                _ => return None,
            };
            invert_for(pool, with_var, var, new_target, eval_pt)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BoolExpr;

    fn v(id: VarId) -> IntExpr {
        IntExpr::Var(id)
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 10);
        s.assert(v(x).ge(3.into()));
        let m = s.check().model().cloned().expect("sat");
        assert!(m.get(x).unwrap() >= 3);
    }

    #[test]
    fn boundary_bias_minimal_model() {
        // Like Z3, the solver should return the minimum satisfying value for
        // a simple lower-bound constraint — the behaviour motivating binning.
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 1 << 20);
        s.assert(v(x).ge(1.into()));
        let m = s.check().model().cloned().expect("sat");
        assert_eq!(m.get(x), Some(1));
    }

    #[test]
    fn unsat_detection() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 10);
        s.assert(v(x).ge(5.into()));
        s.assert(v(x).le(3.into()));
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn push_pop_restores() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 10);
        s.assert(v(x).ge(2.into()));
        s.push();
        s.assert(v(x).le(1.into()));
        assert_eq!(s.check(), SatResult::Unsat);
        s.pop();
        assert!(s.check().is_sat());
    }

    #[test]
    fn try_add_constraints_rolls_back() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 10);
        s.assert(v(x).ge(2.into()));
        assert!(s.try_add_constraints([v(x).le(1.into())]).is_none());
        assert_eq!(s.num_constraints(), 1);
        assert!(s.try_add_constraints([v(x).le(5.into())]).is_some());
        assert_eq!(s.num_constraints(), 2);
    }

    #[test]
    fn conv_like_constraints() {
        // Output dim of a conv: (h - kh + 2*pad) / stride + 1 >= 1, kernel
        // must fit the (padded) image.
        let mut s = Solver::default();
        let h = s.new_var("h", 1, 224);
        let kh = s.new_var("kh", 1, 11);
        let pad = s.new_var("pad", 0, 5);
        let stride = s.new_var("stride", 1, 4);
        let out = (v(h) - v(kh) + IntExpr::from(2) * v(pad)) / v(stride) + IntExpr::from(1);
        s.assert(v(kh).le(v(h) + IntExpr::from(2) * v(pad)));
        s.assert(out.clone().ge(1.into()));
        s.assert(out.le(128.into()));
        let m = s.check().model().cloned().expect("sat");
        let hv = m.get(h).unwrap();
        let khv = m.get(kh).unwrap();
        let pv = m.get(pad).unwrap();
        let sv = m.get(stride).unwrap();
        assert!(khv <= hv + 2 * pv);
        assert!((hv - khv + 2 * pv) / sv + 1 >= 1);
    }

    #[test]
    fn reshape_product_constraint() {
        // Total elements preserved: n*c*h*w == a*b.
        let mut s = Solver::default();
        let n = s.new_var("n", 1, 4);
        let c = s.new_var("c", 1, 8);
        let h = s.new_var("h", 1, 32);
        let w = s.new_var("w", 1, 32);
        let a = s.new_var("a", 1, 64);
        let b = s.new_var("b", 1, 64);
        s.assert((v(n) * v(c) * v(h) * v(w)).eq_expr(v(a) * v(b)));
        let m = s.check().model().cloned().expect("sat");
        let prod_in = m.get(n).unwrap() * m.get(c).unwrap() * m.get(h).unwrap() * m.get(w).unwrap();
        let prod_out = m.get(a).unwrap() * m.get(b).unwrap();
        assert_eq!(prod_in, prod_out);
    }

    #[test]
    fn warm_start_reuses_model() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 100);
        s.assert(v(x).ge(10.into()));
        assert!(s.check().is_sat());
        let before = s.stats().warm_hits;
        // A constraint the current model already satisfies.
        s.assert(v(x).ge(5.into()));
        assert!(s.check().is_sat());
        assert_eq!(s.stats().warm_hits, before + 1);
    }

    #[test]
    fn non_incremental_config() {
        let mut s = Solver::with_config(SolverConfig {
            incremental: false,
            ..SolverConfig::default()
        });
        let x = s.new_var("x", 1, 100);
        s.assert(v(x).ge(10.into()));
        assert!(s.check().is_sat());
        s.assert(v(x).ge(5.into()));
        assert!(s.check().is_sat());
        assert_eq!(s.stats().warm_hits, 0);
    }

    #[test]
    fn equality_chain() {
        let mut s = Solver::default();
        let a = s.new_var("a", 1, 100);
        let b = s.new_var("b", 1, 100);
        let c = s.new_var("c", 1, 100);
        s.assert(v(a).eq_expr(v(b)));
        s.assert(v(b).eq_expr(v(c)));
        s.assert(v(c).eq_expr(42.into()));
        let m = s.check().model().cloned().expect("sat");
        assert_eq!(m.get(a), Some(42));
        assert_eq!(m.get(b), Some(42));
    }

    #[test]
    fn disjunction() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 10);
        s.assert(BoolExpr::or([
            v(x).eq_expr(7.into()),
            v(x).eq_expr(9.into()),
        ]));
        let m = s.check().model().cloned().expect("sat");
        let val = m.get(x).unwrap();
        assert!(val == 7 || val == 9);
    }

    #[test]
    fn binned_range_gives_in_range_value() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 1 << 20);
        s.assert(v(x).ge(16.into()));
        s.assert(v(x).le(31.into()));
        let m = s.check().model().cloned().expect("sat");
        let val = m.get(x).unwrap();
        assert!((16..=31).contains(&val));
    }

    #[test]
    fn divisibility() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 64);
        s.assert((v(x) % 4.into()).eq_expr(0.into()));
        s.assert(v(x).ge(5.into()));
        let m = s.check().model().cloned().expect("sat");
        let val = m.get(x).unwrap();
        assert_eq!(val % 4, 0);
        assert!(val >= 5);
    }

    #[test]
    fn stats_accumulate() {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 4);
        s.assert(v(x).ge(2.into()));
        let _ = s.check();
        let _ = s.check();
        assert_eq!(s.stats().checks, 2);
        assert!(s.stats().sat >= 1);
    }

    #[test]
    fn reshape_style_product_with_large_target() {
        // prod(out dims) must equal a concrete product far above the
        // candidate probes — solvable only via equality-implied values.
        let mut s = Solver::default();
        let a = s.new_var("a", 1, 1 << 20);
        let b = s.new_var("b", 1, 1 << 20);
        let c = s.new_var("c", 1, 1 << 20);
        let target: i64 = 2 * 62 * 62; // 7688
        s.assert((v(a) * v(b) * v(c)).eq_expr(target.into()));
        let m = s.check().model().cloned().expect("sat");
        assert_eq!(
            m.get(a).unwrap() * m.get(b).unwrap() * m.get(c).unwrap(),
            target
        );
    }

    #[test]
    fn or_equality_suggestions() {
        // BroadcastTo-style: out == 37 or out == 1, with 37 far from the
        // domain boundary probes.
        let mut s = Solver::default();
        let out = s.new_var("out", 1, 1 << 20);
        s.assert(BoolExpr::or([
            v(out).eq_expr(37.into()),
            IntExpr::Const(37).eq_expr(1.into()), // false disjunct
        ]));
        s.assert(v(out).ge(2.into()));
        let m = s.check().model().cloned().expect("sat");
        assert_eq!(m.get(out), Some(37));
    }

    #[test]
    fn linear_isolation() {
        // (x - 3) * 4 == 44  ⇒  x = 14.
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 1 << 20);
        s.assert(((v(x) - 3.into()) * 4.into()).eq_expr(44.into()));
        let m = s.check().model().cloned().expect("sat");
        assert_eq!(m.get(x), Some(14));
    }

    #[test]
    fn pop_panics_without_push() {
        let result = std::panic::catch_unwind(|| {
            let mut s = Solver::default();
            s.pop();
        });
        assert!(result.is_err());
    }
}
