//! Integer and boolean expression trees.
//!
//! These are the terms NNSmith's operator specifications are written in: a
//! tensor dimension or operator attribute is an [`IntExpr`]; a validity
//! constraint (an entry of an operator's `requires` list) is a [`BoolExpr`].
//!
//! Smart constructors constant-fold eagerly so that fully-concrete shapes stay
//! cheap: `IntExpr::from(4) * IntExpr::from(3)` is stored as `Const(12)`.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};

use serde::{Deserialize, Serialize};

/// Identifier of a solver variable.
///
/// Variables are created through [`crate::Solver::new_var`]; the id indexes
/// into the solver's variable table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Binary integer operations supported by the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Floor division (rounds toward negative infinity). Division by zero is
    /// unsatisfiable rather than a panic.
    Div,
    /// Euclidean remainder paired with [`BinOp::Div`].
    Mod,
    /// Binary minimum.
    Min,
    /// Binary maximum.
    Max,
}

impl BinOp {
    /// Applies the operation to two concrete values.
    ///
    /// Returns `None` on division/remainder by zero or on overflow.
    pub fn apply(self, a: i64, b: i64) -> Option<i64> {
        match self {
            BinOp::Add => a.checked_add(b),
            BinOp::Sub => a.checked_sub(b),
            BinOp::Mul => a.checked_mul(b),
            BinOp::Div => {
                if b == 0 {
                    None
                } else {
                    Some(a.div_euclid(b))
                }
            }
            BinOp::Mod => {
                if b == 0 {
                    None
                } else {
                    Some(a.rem_euclid(b))
                }
            }
            BinOp::Min => Some(a.min(b)),
            BinOp::Max => Some(a.max(b)),
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

/// A symbolic integer expression over solver variables.
///
/// # Examples
///
/// ```
/// use nnsmith_solver::{IntExpr, Solver};
///
/// let mut s = Solver::default();
/// let h = s.new_var("h", 1, 64);
/// let out = (IntExpr::var(h) - 3.into()) / 2.into() + 1.into();
/// assert!(format!("{out}").contains('/'));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntExpr {
    /// A literal constant.
    Const(i64),
    /// A solver variable.
    Var(VarId),
    /// A binary operation.
    Bin(BinOp, Box<IntExpr>, Box<IntExpr>),
}

impl IntExpr {
    /// Creates a variable reference.
    pub fn var(id: VarId) -> Self {
        IntExpr::Var(id)
    }

    /// Returns the constant value if this expression is a literal.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            IntExpr::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// True if the expression contains no variables.
    pub fn is_const(&self) -> bool {
        self.as_const().is_some()
    }

    /// Builds a binary expression, constant-folding when both sides are
    /// literals and applying cheap algebraic identities.
    pub fn bin(op: BinOp, lhs: IntExpr, rhs: IntExpr) -> Self {
        if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
            if let Some(v) = op.apply(a, b) {
                return IntExpr::Const(v);
            }
        }
        match (op, &lhs, &rhs) {
            (BinOp::Add, _, IntExpr::Const(0)) => return lhs,
            (BinOp::Add, IntExpr::Const(0), _) => return rhs,
            (BinOp::Sub, _, IntExpr::Const(0)) => return lhs,
            (BinOp::Mul, _, IntExpr::Const(1)) => return lhs,
            (BinOp::Mul, IntExpr::Const(1), _) => return rhs,
            (BinOp::Mul, IntExpr::Const(0), _) | (BinOp::Mul, _, IntExpr::Const(0)) => {
                return IntExpr::Const(0)
            }
            (BinOp::Div, _, IntExpr::Const(1)) => return lhs,
            _ => {}
        }
        IntExpr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Binary minimum.
    pub fn min(self, other: IntExpr) -> Self {
        IntExpr::bin(BinOp::Min, self, other)
    }

    /// Binary maximum.
    pub fn max(self, other: IntExpr) -> Self {
        IntExpr::bin(BinOp::Max, self, other)
    }

    /// Evaluates the expression under a variable assignment.
    ///
    /// Returns `None` if a variable is unassigned, a division by zero occurs,
    /// or arithmetic overflows.
    pub fn eval(&self, lookup: &dyn Fn(VarId) -> Option<i64>) -> Option<i64> {
        match self {
            IntExpr::Const(c) => Some(*c),
            IntExpr::Var(v) => lookup(*v),
            IntExpr::Bin(op, a, b) => {
                let a = a.eval(lookup)?;
                let b = b.eval(lookup)?;
                op.apply(a, b)
            }
        }
    }

    /// Collects every variable mentioned in the expression into `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            IntExpr::Const(_) => {}
            IntExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            IntExpr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Number of nodes in the expression tree (diagnostics / test helpers).
    pub fn size(&self) -> usize {
        match self {
            IntExpr::Const(_) | IntExpr::Var(_) => 1,
            IntExpr::Bin(_, a, b) => 1 + a.size() + b.size(),
        }
    }

    // --- comparison builders -------------------------------------------------

    /// `self == other`.
    pub fn eq_expr(self, other: IntExpr) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Eq, self, other)
    }

    /// `self != other`.
    pub fn ne_expr(self, other: IntExpr) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Ne, self, other)
    }

    /// `self <= other`.
    pub fn le(self, other: IntExpr) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Le, self, other)
    }

    /// `self < other`.
    pub fn lt(self, other: IntExpr) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Lt, self, other)
    }

    /// `self >= other`.
    pub fn ge(self, other: IntExpr) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Ge, self, other)
    }

    /// `self > other`.
    pub fn gt(self, other: IntExpr) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Gt, self, other)
    }
}

impl From<i64> for IntExpr {
    fn from(v: i64) -> Self {
        IntExpr::Const(v)
    }
}

impl From<VarId> for IntExpr {
    fn from(v: VarId) -> Self {
        IntExpr::Var(v)
    }
}

impl Add for IntExpr {
    type Output = IntExpr;
    fn add(self, rhs: IntExpr) -> IntExpr {
        IntExpr::bin(BinOp::Add, self, rhs)
    }
}

impl Sub for IntExpr {
    type Output = IntExpr;
    fn sub(self, rhs: IntExpr) -> IntExpr {
        IntExpr::bin(BinOp::Sub, self, rhs)
    }
}

impl Mul for IntExpr {
    type Output = IntExpr;
    fn mul(self, rhs: IntExpr) -> IntExpr {
        IntExpr::bin(BinOp::Mul, self, rhs)
    }
}

impl Div for IntExpr {
    type Output = IntExpr;
    fn div(self, rhs: IntExpr) -> IntExpr {
        IntExpr::bin(BinOp::Div, self, rhs)
    }
}

impl Rem for IntExpr {
    type Output = IntExpr;
    fn rem(self, rhs: IntExpr) -> IntExpr {
        IntExpr::bin(BinOp::Mod, self, rhs)
    }
}

impl Neg for IntExpr {
    type Output = IntExpr;
    fn neg(self) -> IntExpr {
        IntExpr::bin(BinOp::Sub, IntExpr::Const(0), self)
    }
}

impl fmt::Display for IntExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntExpr::Const(c) => write!(f, "{c}"),
            IntExpr::Var(v) => write!(f, "{v}"),
            IntExpr::Bin(op @ (BinOp::Min | BinOp::Max), a, b) => {
                write!(f, "{}({a}, {b})", op.symbol())
            }
            IntExpr::Bin(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
        }
    }
}

/// Comparison operators for [`BoolExpr::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-or-equal.
    Le,
    /// Strictly less.
    Lt,
    /// Greater-or-equal.
    Ge,
    /// Strictly greater.
    Gt,
}

impl CmpOp {
    /// Applies the comparison to two concrete values.
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Le => a <= b,
            CmpOp::Lt => a < b,
            CmpOp::Ge => a >= b,
            CmpOp::Gt => a > b,
        }
    }

    /// The comparison with operands swapped (`a op b` ⇔ `b op.swap() a`).
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Gt => CmpOp::Lt,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
        }
    }
}

/// A boolean constraint over integer expressions.
///
/// # Examples
///
/// ```
/// use nnsmith_solver::{BoolExpr, IntExpr, Solver};
///
/// let mut s = Solver::default();
/// let k = s.new_var("k", 1, 100);
/// let c = IntExpr::var(k).le(IntExpr::from(10));
/// assert!(matches!(c, BoolExpr::Cmp(..)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoolExpr {
    /// Constant truth value.
    Lit(bool),
    /// Comparison between two integer expressions.
    Cmp(CmpOp, IntExpr, IntExpr),
    /// Conjunction.
    And(Vec<BoolExpr>),
    /// Disjunction.
    Or(Vec<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    /// Always-true constraint.
    pub fn true_() -> Self {
        BoolExpr::Lit(true)
    }

    /// Always-false constraint.
    pub fn false_() -> Self {
        BoolExpr::Lit(false)
    }

    /// Builds a comparison, folding constants and syntactically-identical
    /// operands (`e == e` is true, `e < e` is false).
    pub fn cmp(op: CmpOp, lhs: IntExpr, rhs: IntExpr) -> Self {
        if let (Some(a), Some(b)) = (lhs.as_const(), rhs.as_const()) {
            return BoolExpr::Lit(op.apply(a, b));
        }
        if lhs == rhs {
            return BoolExpr::Lit(matches!(op, CmpOp::Eq | CmpOp::Le | CmpOp::Ge));
        }
        BoolExpr::Cmp(op, lhs, rhs)
    }

    /// Conjunction of a list of constraints (flattening nested `And`s).
    pub fn and(parts: impl IntoIterator<Item = BoolExpr>) -> Self {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                BoolExpr::Lit(true) => {}
                BoolExpr::Lit(false) => return BoolExpr::Lit(false),
                BoolExpr::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => BoolExpr::Lit(true),
            1 => flat.pop().expect("len checked"),
            _ => BoolExpr::And(flat),
        }
    }

    /// Disjunction of a list of constraints (flattening nested `Or`s).
    pub fn or(parts: impl IntoIterator<Item = BoolExpr>) -> Self {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                BoolExpr::Lit(false) => {}
                BoolExpr::Lit(true) => return BoolExpr::Lit(true),
                BoolExpr::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => BoolExpr::Lit(false),
            1 => flat.pop().expect("len checked"),
            _ => BoolExpr::Or(flat),
        }
    }

    /// Logical negation.
    pub fn not(self) -> Self {
        match self {
            BoolExpr::Lit(b) => BoolExpr::Lit(!b),
            BoolExpr::Not(inner) => *inner,
            other => BoolExpr::Not(Box::new(other)),
        }
    }

    /// Evaluates the constraint under a variable assignment.
    ///
    /// Returns `None` if evaluation hits an unassigned variable, a division
    /// by zero, or overflow (in which case the constraint is treated as
    /// unsatisfied by the solver).
    pub fn eval(&self, lookup: &dyn Fn(VarId) -> Option<i64>) -> Option<bool> {
        match self {
            BoolExpr::Lit(b) => Some(*b),
            BoolExpr::Cmp(op, a, b) => Some(op.apply(a.eval(lookup)?, b.eval(lookup)?)),
            BoolExpr::And(parts) => {
                let mut all = true;
                for p in parts {
                    match p.eval(lookup) {
                        Some(true) => {}
                        Some(false) => return Some(false),
                        None => all = false,
                    }
                }
                if all {
                    Some(true)
                } else {
                    None
                }
            }
            BoolExpr::Or(parts) => {
                let mut any_unknown = false;
                for p in parts {
                    match p.eval(lookup) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => any_unknown = true,
                    }
                }
                if any_unknown {
                    None
                } else {
                    Some(false)
                }
            }
            BoolExpr::Not(inner) => inner.eval(lookup).map(|b| !b),
        }
    }

    /// Collects every variable mentioned in the constraint into `out`.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            BoolExpr::Lit(_) => {}
            BoolExpr::Cmp(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            BoolExpr::And(parts) | BoolExpr::Or(parts) => {
                for p in parts {
                    p.collect_vars(out);
                }
            }
            BoolExpr::Not(inner) => inner.collect_vars(out),
        }
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Lit(b) => write!(f, "{b}"),
            BoolExpr::Cmp(op, a, b) => write!(f, "{a} {} {b}", op.symbol()),
            BoolExpr::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            BoolExpr::Not(inner) => write!(f, "!({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u32) -> IntExpr {
        IntExpr::Var(VarId(id))
    }

    #[test]
    fn const_folding() {
        let e = IntExpr::from(4) * IntExpr::from(3) + IntExpr::from(2);
        assert_eq!(e, IntExpr::Const(14));
    }

    #[test]
    fn identity_folding() {
        assert_eq!(v(0) + 0.into(), v(0));
        assert_eq!(v(0) * 1.into(), v(0));
        assert_eq!(v(0) * 0.into(), IntExpr::Const(0));
        assert_eq!(v(0) / 1.into(), v(0));
    }

    #[test]
    fn floor_division_is_euclidean() {
        assert_eq!(BinOp::Div.apply(-7, 2), Some(-4));
        assert_eq!(BinOp::Mod.apply(-7, 2), Some(1));
        assert_eq!(BinOp::Div.apply(7, 0), None);
    }

    #[test]
    fn eval_with_assignment() {
        let e = (v(0) - 3.into()) / 2.into() + 1.into();
        let got = e.eval(&|id| if id == VarId(0) { Some(9) } else { None });
        assert_eq!(got, Some(4));
    }

    #[test]
    fn eval_unassigned_is_none() {
        let e = v(0) + v(1);
        assert_eq!(e.eval(&|_| None), None);
    }

    #[test]
    fn bool_folding() {
        assert_eq!(
            BoolExpr::cmp(CmpOp::Le, 2.into(), 3.into()),
            BoolExpr::Lit(true)
        );
        assert_eq!(
            BoolExpr::and([BoolExpr::Lit(true), BoolExpr::Lit(false)]),
            BoolExpr::Lit(false)
        );
        assert_eq!(
            BoolExpr::or([BoolExpr::Lit(false), BoolExpr::Lit(true)]),
            BoolExpr::Lit(true)
        );
    }

    #[test]
    fn and_short_circuit_eval() {
        // (v0 <= 1) && (v1 <= 1): v0=5 makes it definitively false even with
        // v1 unassigned.
        let c = BoolExpr::and([v(0).le(1.into()), v(1).le(1.into())]);
        let got = c.eval(&|id| if id == VarId(0) { Some(5) } else { None });
        assert_eq!(got, Some(false));
    }

    #[test]
    fn collect_vars_dedups() {
        let e = v(0) + v(1) * v(0);
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec![VarId(0), VarId(1)]);
    }

    #[test]
    fn display_roundtrip_sanity() {
        let e = (v(0) + 1.into()) * v(1);
        assert_eq!(format!("{e}"), "((v0 + 1) * v1)");
        let c = v(0).le(v(1));
        assert_eq!(format!("{c}"), "v0 <= v1");
    }

    #[test]
    fn cmp_swap() {
        assert!(CmpOp::Lt.swap().apply(3, 2));
        assert!(CmpOp::Ge.swap().apply(2, 3));
        assert!(CmpOp::Eq.swap().apply(2, 2));
    }

    #[test]
    fn neg_is_zero_minus() {
        let e = -v(0);
        assert_eq!(e.eval(&|_| Some(5)), Some(-5));
    }
}
