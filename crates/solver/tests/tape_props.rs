//! Property-based tests pinning the compiled constraint tape
//! (`nnsmith_solver::tape`) to the recursive evaluators it replaces.
//!
//! The determinism contract of the tape is *bit-identical results*: for
//! any constraint and any (partial) assignment, streaming the bytecode
//! must agree with `InternPool::eval_bool` over handles and with
//! `BoolExpr::eval` over trees, including unknown-propagation semantics
//! (unassigned variables, division by zero, overflow).

use proptest::prelude::*;

use nnsmith_solver::tape::{Tape, TapeScratch};
use nnsmith_solver::{BoolExpr, IntExpr, InternPool, SatResult, Solver, SolverConfig, VarId};

const N_VARS: usize = 4;

/// Random expression trees built from a stack-machine instruction list
/// (the vendored proptest stand-in has no recursive combinator). Division
/// and modulo are kept in the operator mix on purpose: they are the
/// unknown-producing cases.
fn arb_int_expr() -> impl Strategy<Value = IntExpr> {
    proptest::collection::vec((0u8..8, -4i64..5, 0u32..N_VARS as u32), 1..24).prop_map(|steps| {
        let mut stack: Vec<IntExpr> = Vec::new();
        for (op, c, v) in steps {
            if stack.len() >= 2 && op < 5 {
                let b = stack.pop().expect("len checked");
                let a = stack.pop().expect("len checked");
                stack.push(match op {
                    0 => a + b,
                    1 => a - b,
                    2 => a * b,
                    3 => a / b,
                    _ => a % b,
                });
            } else if op.is_multiple_of(2) {
                stack.push(IntExpr::Const(c));
            } else {
                stack.push(IntExpr::Var(VarId(v)));
            }
        }
        let mut out = stack.pop().expect("steps non-empty");
        while let Some(next) = stack.pop() {
            out = out + next;
        }
        out
    })
}

/// A random constraint: comparison, conjunction, disjunction or negation
/// over random integer expressions.
fn arb_bool_expr() -> impl Strategy<Value = BoolExpr> {
    (
        proptest::collection::vec((arb_int_expr(), arb_int_expr(), 0u8..6), 1..4),
        0u8..4,
    )
        .prop_map(|(cmps, shape)| {
            let parts: Vec<BoolExpr> = cmps
                .into_iter()
                .map(|(a, b, op)| match op {
                    0 => a.eq_expr(b),
                    1 => a.ne_expr(b),
                    2 => a.le(b),
                    3 => a.lt(b),
                    4 => a.ge(b),
                    _ => a.gt(b),
                })
                .collect();
            match shape {
                0 => BoolExpr::and(parts),
                1 => BoolExpr::or(parts),
                2 => parts[0].clone().not(),
                _ => parts[0].clone(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Tape eval ≡ `InternPool::eval_bool` ≡ tree `BoolExpr::eval`, for
    /// partial assignments: each variable is independently assigned or
    /// unknown, and the three evaluators must agree on the exact
    /// three-valued outcome.
    #[test]
    fn tape_matches_recursive_eval(
        e in arb_bool_expr(),
        vals in proptest::collection::vec((-30i64..30, 0u8..2), N_VARS..=N_VARS),
    ) {
        let pool = InternPool::default();
        let id = pool.intern_bool(&e);
        let mut tape = Tape::new();
        let ci = tape.push_constraint(&pool, id);
        tape.check_invariants().expect("invariants after push");

        let dense: Vec<i64> = vals.iter().map(|&(v, _)| v).collect();
        let known: Vec<bool> = vals.iter().map(|&(_, k)| k == 1).collect();
        let lookup = |v: VarId| {
            if known[v.0 as usize] { Some(dense[v.0 as usize]) } else { None }
        };
        let mut scratch = TapeScratch::default();
        let got = tape.eval_constraint(&mut scratch, ci, &dense, &known);
        prop_assert_eq!(got, pool.eval_bool(id, &lookup), "tape vs pool on {}", e);
        prop_assert_eq!(got, e.eval(&lookup), "tape vs tree on {}", e);

        // Full assignments additionally pin the all-roots fast path.
        let all_known = vec![true; N_VARS];
        let full = tape.eval_constraint(&mut scratch, ci, &dense, &all_known);
        prop_assert_eq!(
            tape.eval_full(&mut scratch, &dense),
            full == Some(true),
            "eval_full vs per-constraint on {}", e
        );
    }

    /// Interval truth through the tape is bit-identical to the recursive
    /// handle-walking evaluator on arbitrary domains, and a definite
    /// `False` is sound: no concrete assignment in the domains satisfies
    /// the constraint (pruning never loses a model).
    #[test]
    fn tape_truth_matches_recursive_truth(
        e in arb_bool_expr(),
        ranges in proptest::collection::vec((-30i64..30, 0i64..12), N_VARS..=N_VARS),
    ) {
        use nnsmith_solver::{Interval, Truth};
        let pool = InternPool::default();
        let id = pool.intern_bool(&e);
        let mut tape = Tape::new();
        let ci = tape.push_constraint(&pool, id);
        let domains: Vec<Interval> = ranges
            .iter()
            .map(|&(lo, w)| Interval::new(lo, lo + w))
            .collect();
        let mut scratch = TapeScratch::default();
        let truth = tape.truth_of(&mut scratch, ci, &domains);
        let dom = |v: VarId| domains[v.0 as usize];
        prop_assert_eq!(truth, pool.bool_truth(id, &dom), "tape vs pool truth on {}", e);
        if truth == Truth::False {
            // Spot-check soundness at the domain corners.
            for pick_hi in [false, true] {
                let vals: Vec<i64> = domains
                    .iter()
                    .map(|d| if pick_hi { d.hi } else { d.lo })
                    .collect();
                let concrete = e.eval(&|v: VarId| Some(vals[v.0 as usize]));
                prop_assert!(concrete != Some(true), "False pruned a model of {}", e);
            }
        }
    }

    /// Push/pop/truncate consistency: rolling the tape back and replaying
    /// a different suffix yields exactly the tape a fresh compile of the
    /// final constraint sequence produces — instructions, roots, watch
    /// lists and register maps all included.
    #[test]
    fn truncate_replay_matches_fresh_compile(
        base in proptest::collection::vec(arb_bool_expr(), 1..5),
        dropped in proptest::collection::vec(arb_bool_expr(), 1..4),
        replay in proptest::collection::vec(arb_bool_expr(), 0..4),
    ) {
        let pool = InternPool::default();
        let mut tape = Tape::new();
        let mut kept: Vec<_> = Vec::new();
        for e in &base {
            let id = pool.intern_bool(e);
            tape.push_constraint(&pool, id);
            kept.push(id);
        }
        let mark = tape.len();
        for e in &dropped {
            tape.push_constraint(&pool, pool.intern_bool(e));
        }
        tape.check_invariants().expect("invariants before truncate");
        tape.truncate(mark);
        tape.check_invariants().expect("invariants after truncate");
        for e in &replay {
            let id = pool.intern_bool(e);
            tape.push_constraint(&pool, id);
            kept.push(id);
        }
        tape.check_invariants().expect("invariants after replay");

        let mut fresh = Tape::new();
        for &id in &kept {
            fresh.push_constraint(&pool, id);
        }
        prop_assert_eq!(&tape, &fresh, "replayed tape differs from fresh compile");
    }

    /// The solver's tape stays in lockstep with its constraint vector
    /// across push/pop/try_add rollbacks, and both solver modes agree on
    /// satisfiability.
    #[test]
    fn solver_modes_agree(
        seed in 0u64..10_000,
        n_cons in 1usize..8,
    ) {
        use rand::{Rng, SeedableRng};
        let run = |compiled_tape: bool| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut s = Solver::with_config(SolverConfig {
                compiled_tape,
                ..SolverConfig::default()
            });
            let vars: Vec<_> = (0..N_VARS)
                .map(|i| {
                    let lo = rng.gen_range(0i64..8);
                    let hi = lo + rng.gen_range(1i64..64);
                    s.new_var(format!("v{i}"), lo, hi)
                })
                .collect();
            let mut verdicts = Vec::new();
            for _ in 0..n_cons {
                let a = IntExpr::var(vars[rng.gen_range(0..N_VARS)]);
                let b = IntExpr::var(vars[rng.gen_range(0..N_VARS)]);
                let c: IntExpr = rng.gen_range(0i64..32).into();
                let cons = match rng.gen_range(0..4) {
                    0 => a.le(c),
                    1 => a.ge(c),
                    2 => a.lt(b + c),
                    _ => (a + b).eq_expr(c),
                };
                verdicts.push(s.try_add_constraints([cons]).is_some());
            }
            verdicts
        };
        prop_assert_eq!(run(true), run(false));
    }
}

/// Satellite regression: `narrow` on `Lt`/`Gt` against an interval edge
/// at `i64::MIN`/`i64::MAX` used to compute `hi - 1` / `lo + 1` without
/// saturation and panic in debug builds. Both solver modes must survive
/// extreme domains.
#[test]
fn narrow_saturates_at_i64_edges() {
    for compiled_tape in [true, false] {
        let mut s = Solver::with_config(SolverConfig {
            compiled_tape,
            ..SolverConfig::default()
        });
        let x = s.new_var("x", i64::MIN, i64::MAX);
        let y = s.new_var("y", i64::MIN, i64::MAX);
        // x < y with y's interval edge at MIN: narrowing x's upper bound
        // computes MIN - 1 unsaturated.
        s.push();
        s.assert(IntExpr::var(x).lt(IntExpr::var(y)));
        s.assert(IntExpr::var(y).le(i64::MIN.into()));
        assert_eq!(s.check(), SatResult::Unsat, "tape={compiled_tape}");
        s.pop();
        // x > y with y's interval edge at MAX: narrowing x's lower bound
        // computes MAX + 1 unsaturated.
        s.push();
        s.assert(IntExpr::var(x).gt(IntExpr::var(y)));
        s.assert(IntExpr::var(y).ge(i64::MAX.into()));
        assert_eq!(s.check(), SatResult::Unsat, "tape={compiled_tape}");
        s.pop();
        assert!(s.check().is_sat(), "tape={compiled_tape}");
    }
}

/// The watch index actually skips work: narrowing a variable only
/// re-enqueues its watchers, so `constraints_skipped` counts the
/// constraints that did *not* have to be re-checked.
#[test]
fn watch_index_skips_constraints() {
    let mut s = Solver::default();
    let x = s.new_var("x", 1, 100);
    let y = s.new_var("y", 1, 100);
    let z = s.new_var("z", 1, 100);
    // Narrowing x (via c0) re-enqueues only {c0, c1}; c2 (z-only) is
    // skipped. Symmetrically for z.
    s.assert(IntExpr::var(x).ge(10.into())); // c0: watches x
    s.assert(IntExpr::var(x).le(IntExpr::var(y))); // c1: watches x, y
    s.assert(IntExpr::var(z).ge(3.into())); // c2: watches z
    assert!(s.check().is_sat());
    let stats = s.stats();
    assert_eq!(stats.tape_compiles, 3);
    assert!(stats.tape_evals > 0, "tape evals recorded");
    assert!(
        stats.constraints_skipped > 0,
        "narrowing x must skip the z-only constraint"
    );
}
