//! Property-based tests of the constraint solver.

use proptest::prelude::*;

use nnsmith_solver::{BoolExpr, IntExpr, SatResult, Solver, SolverConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: every Sat model satisfies all asserted constraints.
    #[test]
    fn models_satisfy_random_systems(
        seed in 0u64..10_000,
        n_vars in 2usize..6,
        n_cons in 1usize..8,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut s = Solver::default();
        let vars: Vec<_> = (0..n_vars)
            .map(|i| {
                let lo = rng.gen_range(0i64..8);
                let hi = lo + rng.gen_range(1i64..64);
                s.new_var(format!("v{i}"), lo, hi)
            })
            .collect();
        let mut constraints = Vec::new();
        for _ in 0..n_cons {
            let a = IntExpr::var(vars[rng.gen_range(0..n_vars)]);
            let b = IntExpr::var(vars[rng.gen_range(0..n_vars)]);
            let c: IntExpr = rng.gen_range(0i64..32).into();
            let e = match rng.gen_range(0..4) {
                0 => a.clone() + b.clone(),
                1 => a.clone() * 2.into(),
                2 => a.clone() - b.clone(),
                _ => a.clone(),
            };
            let cons = match rng.gen_range(0..4) {
                0 => e.le(c),
                1 => e.ge(c),
                2 => e.lt(b + c),
                _ => e.eq_expr(b.min(c)),
            };
            constraints.push(cons.clone());
            s.assert(cons);
        }
        if let SatResult::Sat(m) = s.check() {
            for c in &constraints {
                prop_assert_eq!(m.eval_bool(c), Some(true), "violated: {}", c);
            }
        }
    }

    /// Bounds are respected by every model.
    #[test]
    fn models_respect_variable_bounds(lo in -8i64..8, width in 1i64..32) {
        let mut s = Solver::default();
        let v = s.new_var("v", lo, lo + width);
        s.assert(IntExpr::var(v).ge((lo - 100).into()));
        if let SatResult::Sat(m) = s.check() {
            let val = m.get(v).unwrap();
            prop_assert!(val >= lo && val <= lo + width);
        } else {
            prop_assert!(false, "trivially satisfiable system reported non-sat");
        }
    }

    /// Incremental and non-incremental modes agree on satisfiability for
    /// simple conjunctions.
    #[test]
    fn incremental_agrees_with_fresh_solves(
        bound_a in 1i64..16, bound_b in 1i64..16, limit in 1i64..40,
    ) {
        let build = |incremental: bool| {
            let mut s = Solver::with_config(SolverConfig {
                incremental,
                ..SolverConfig::default()
            });
            let a = s.new_var("a", 1, bound_a);
            let b = s.new_var("b", 1, bound_b);
            s.assert((IntExpr::var(a) + IntExpr::var(b)).le(limit.into()));
            s.assert(IntExpr::var(a).ge(2.into()));
            matches!(s.check(), SatResult::Sat(_))
        };
        prop_assert_eq!(build(true), build(false));
    }

    /// push/pop restores the exact constraint set: satisfiability after
    /// pop equals satisfiability before push.
    #[test]
    fn push_pop_is_transparent(k in 1i64..32) {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 16);
        s.assert(IntExpr::var(x).le(k.into()));
        let before = s.check().is_sat();
        s.push();
        s.assert(IntExpr::var(x).ge(100.into())); // unsatisfiable extra
        let mid = s.check().is_sat();
        prop_assert!(!mid);
        s.pop();
        let after = s.check().is_sat();
        prop_assert_eq!(before, after);
    }

    /// Definitely-contradictory bounds are reported Unsat (completeness on
    /// the interval fragment).
    #[test]
    fn contradictions_detected(lo in 1i64..50) {
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 1000);
        s.assert(IntExpr::var(x).ge((lo + 10).into()));
        s.assert(IntExpr::var(x).le(lo.into()));
        prop_assert_eq!(s.check(), SatResult::Unsat);
    }

    /// Product equalities solved via value suggestions remain sound.
    #[test]
    fn product_equalities(a in 1i64..12, b in 1i64..12, c in 1i64..12) {
        let target = a * b * c;
        let mut s = Solver::default();
        let x = s.new_var("x", 1, 1 << 16);
        let y = s.new_var("y", 1, 1 << 16);
        let z = s.new_var("z", 1, 1 << 16);
        s.assert((IntExpr::var(x) * IntExpr::var(y) * IntExpr::var(z)).eq_expr(target.into()));
        match s.check() {
            SatResult::Sat(m) => {
                let prod = m.get(x).unwrap() * m.get(y).unwrap() * m.get(z).unwrap();
                prop_assert_eq!(prod, target);
            }
            other => prop_assert!(false, "expected sat, got {:?}", other),
        }
    }

    /// BoolExpr::eval agrees with interval truth on point domains.
    #[test]
    fn interval_truth_matches_eval_on_points(v0 in -20i64..20, v1 in -20i64..20) {
        use nnsmith_solver::{bool_truth, Interval, Truth, VarId};
        let e = BoolExpr::cmp(
            nnsmith_solver::CmpOp::Le,
            IntExpr::Var(VarId(0)) * 2.into() + 3.into(),
            IntExpr::Var(VarId(1)),
        );
        let dom = |v: VarId| if v.0 == 0 { Interval::point(v0) } else { Interval::point(v1) };
        let truth = bool_truth(&e, &dom);
        let concrete = e.eval(&|v| Some(if v.0 == 0 { v0 } else { v1 })).unwrap();
        match truth {
            Truth::True => prop_assert!(concrete),
            Truth::False => prop_assert!(!concrete),
            Truth::Unknown => prop_assert!(false, "point domains must be decided"),
        }
    }
}
