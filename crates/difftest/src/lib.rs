//! # nnsmith-difftest
//!
//! Differential testing and fuzzing-campaign machinery for the NNSmith
//! reproduction.
//!
//! A [`TestCase`] (model + weights + numerically-valid inputs) is executed
//! on the reference backend and on a simulated compiler; outputs are
//! compared with magnitude-scaled tolerance, disagreements are localized by
//! recompiling at `O0` (§4), and seeded-bug identifiers are extracted from
//! crashes and mismatches. [`run_campaign`] drives a [`TestCaseSource`]
//! against a compiler under a time budget, producing the coverage
//! timelines, Venn regions, bug lists and operator-instance counts behind
//! Figures 4–10 and Table 3.

#![warn(missing_docs)]

mod campaign;
mod engine;
mod feedback;
mod harness;
mod oracle;
mod venn;

pub use campaign::{
    op_instance_keys, run_campaign, run_campaign_observed, run_matrix_campaign, BackendResult,
    CampaignConfig, CampaignResult, CapturedFailure, CaseRecord, TestCaseSource, TimelinePoint,
};
pub use engine::{
    merge_shard_results, run_engine, run_engine_observed, run_engine_shard, run_matrix_engine,
    run_matrix_engine_observed, shard_case_budget, shard_seed, EngineConfig, EngineReport,
    FnSourceFactory, ShardCtx, ShardRun, SolveStats, SourceFactory,
};
pub use feedback::{
    fnv_step, CaseFeedback, FeedbackConfig, FeedbackCorpus, FeedbackPlan, FeedbackSummary,
    YieldStats, BASE_WEIGHT, BOOST_WEIGHT,
};
pub use harness::{
    prepare_case, run_case, run_case_matrix, run_ir_case, run_prepared_case, seeded_bug_id,
    BackendVerdict, FaultSite, MatrixOutcome, PreparedCase, TestCase, TestOutcome,
};
pub use oracle::{compare_outputs, Tolerance, Verdict};
pub use venn::{Venn2, Venn3};
